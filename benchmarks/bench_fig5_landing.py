"""E1 / Fig. 5 — the landing-controller prediction, regenerated.

Paper artifact: from the single successful execution (radio down *after*
landing), JMPaX builds the 6-state lattice of Fig. 5 with 3 runs and
predicts 2 violating runs.  This bench reasserts the exact artifact and
times the end-to-end pipeline (instrumented run → lattice → verdicts).
"""

from conftest import table

from repro.analysis import detect, predict
from repro.lattice import ComputationLattice
from repro.sched import FixedScheduler, run_program
from repro.workloads import (
    LANDING_OBSERVED_SCHEDULE,
    LANDING_PROPERTY,
    LANDING_VARS,
    landing_controller,
)


def full_pipeline():
    execution = run_program(landing_controller(),
                            FixedScheduler(LANDING_OBSERVED_SCHEDULE))
    return predict(execution, LANDING_PROPERTY, mode="full")


def test_fig5_artifact(landing_execution):
    report = predict(landing_execution, LANDING_PROPERTY, mode="full")
    initial = {v: landing_execution.initial_store[v] for v in LANDING_VARS}
    lattice = ComputationLattice(2, initial, landing_execution.messages)

    rows = [
        ("messages emitted", 3, len(landing_execution.messages)),
        ("lattice states", 6, len(lattice)),
        ("runs", 3, report.n_runs),
        ("violating runs (predicted)", 2, len(report.violations)),
        ("observed run successful", True, report.observed_ok),
        ("baseline (JPaX) detects", False,
         not detect(landing_execution, LANDING_PROPERTY).ok),
    ]
    table("E1 / Fig. 5 — landing controller", ["artifact", "paper", "repro"], rows)
    for _name, paper, repro in rows:
        assert paper == repro

    states = sorted(lattice.state_tuple(c, LANDING_VARS) for c in lattice.cuts)
    table("Fig. 5 state set <landing, approved, radio>",
          ["state"], [(s,) for s in states])
    print("predicted counterexamples:")
    for v in report.violations:
        print("  " + v.pretty(LANDING_VARS))


def test_fig5_pipeline_benchmark(benchmark):
    report = benchmark(full_pipeline)
    assert len(report.violations) == 2
