"""E4 — predictive power vs observed-run-only monitoring.

Paper claim (§1, on the landing controller): "the chance of detecting this
safety violation by monitoring only the actual run is very low", while
JMPaX predicts it from a successful run.  This bench sweeps random
schedules and reports, for both example programs:

* baseline detection rate — fraction of schedules whose *observed* trace
  violates (what JPaX/Java-MaC catch);
* predictive detection rate — fraction of schedules from which JMPaX
  reports a violation (observed *or* predicted).

Shape expected: predictive rate >> baseline rate, with predictive close
to 1 for the landing controller.
"""

from conftest import table

from repro.analysis import detect, predict
from repro.sched import RandomScheduler, run_program
from repro.workloads import (
    AUDIT_PROPERTY,
    LANDING_PROPERTY,
    XYZ_PROPERTY,
    landing_controller,
    transfer_program,
    xyz_program,
)

N_SCHEDULES = 200


def rates(program_factory, spec, n=N_SCHEDULES):
    baseline = predictive = 0
    for seed in range(n):
        ex = run_program(program_factory(), RandomScheduler(seed))
        if not detect(ex, spec).ok:
            baseline += 1
            predictive += 1
        elif predict(ex, spec).violations:
            predictive += 1
    return baseline / n, predictive / n


def test_prediction_power_rates():
    rows = []
    for name, factory, spec in [
        ("landing-controller", landing_controller, LANDING_PROPERTY),
        ("xyz", xyz_program, XYZ_PROPERTY),
        ("bank-audit", transfer_program, AUDIT_PROPERTY),
    ]:
        base, pred = rates(factory, spec)
        rows.append((name, f"{base:.2f}", f"{pred:.2f}",
                     f"{pred / base:.1f}x" if base else "inf"))
    table("E4 — detection rate over random schedules "
          f"({N_SCHEDULES} seeds)",
          ["program", "baseline (JPaX)", "predictive (JMPaX)", "gain"],
          rows)

    # Shape assertions (the paper's qualitative claim):
    landing_base, landing_pred = rates(landing_controller, LANDING_PROPERTY)
    assert landing_base < 0.5, "observed-run detection must be the rare case"
    assert landing_pred > 0.9, "prediction must catch it from almost any run"
    assert landing_pred > landing_base * 2

    xyz_base, xyz_pred = rates(xyz_program, XYZ_PROPERTY)
    assert xyz_pred > xyz_base


def test_rarity_sweep():
    """The later thread 2 clears the radio (the longer it polls first), the
    rarer the observed-trace violation — the paper's 'the chance of
    detecting this safety violation by monitoring only the actual run is
    very low' — while prediction stays near-certain."""
    rows = []
    series = []
    for down, checks in [(1, 4), (2, 6), (3, 8)]:
        base, pred = rates(lambda: landing_controller(down, checks),
                           LANDING_PROPERTY)
        rows.append((f"down@{down}/{checks} checks",
                     f"{base:.3f}", f"{pred:.3f}"))
        series.append((base, pred))
    table("E4 — rarity sweep (landing controller)",
          ["radio-drop timing", "baseline rate", "predictive rate"], rows)
    bases = [b for b, _ in series]
    assert bases == sorted(bases, reverse=True), "baseline rate must shrink"
    assert series[-1][0] < 0.2, "observed-run detection becomes rare"
    assert all(p > 0.9 for _, p in series), "prediction stays near-certain"


def test_predictive_analysis_benchmark(benchmark):
    """Cost of one predict() call on the landing controller."""
    from repro.sched import FixedScheduler
    from repro.workloads import LANDING_OBSERVED_SCHEDULE

    ex = run_program(landing_controller(),
                     FixedScheduler(LANDING_OBSERVED_SCHEDULE))
    report = benchmark(lambda: predict(ex, LANDING_PROPERTY))
    assert report.violations


def test_baseline_detection_benchmark(benchmark):
    """Cost of the flat-trace baseline on the same execution (for the
    overhead ratio recorded in EXPERIMENTS.md)."""
    from repro.sched import FixedScheduler
    from repro.workloads import LANDING_OBSERVED_SCHEDULE

    ex = run_program(landing_controller(),
                     FixedScheduler(LANDING_OBSERVED_SCHEDULE))
    result = benchmark(lambda: detect(ex, LANDING_PROPERTY))
    assert result.ok
