"""Analysis bus: multi-engine fan-out cost and engine complementarity.

Four questions this bench answers (tables land in ``BENCH_engines.json``;
reading guide in ``docs/PERFORMANCE.md``):

* what does each online engine cost **alone** on the same causally-ordered
  stream (events/s for ltl / atomicity / pattern on one lock-region soup);
* does fanning all three out over one :class:`repro.engines.AnalysisBus`
  stay **< 2×** the costliest single-engine run — the PR acceptance bound
  — and how does one combined pass compare to the *sum* of three separate
  passes (running every engine costs one walk over the stream, not three);
* is the per-event **annotation** (vector clocks + sync happens-before)
  really computed once: a bus fanning out to three no-op engines must
  cost far less than three single-engine buses each annotating for
  themselves;
* are the engines **complementary**: on the seeded serializability bug
  (an R-W-R triple whose values never go negative) the LTL spec stays
  clean while the atomicity engine reports the violation.

Regenerate the committed baseline with::

    PYTHONPATH=src python -m pytest -s benchmarks/bench_engines.py \
        --emit-json BENCH_engines.json
"""

from __future__ import annotations

import random
import time

from repro.core import all_accesses
from repro.engines import AnalysisBus, AnalysisEngine
from repro.observer import Observer
from repro.sched import FixedScheduler, Program, RandomScheduler, run_program
from repro.sched.program import (
    Acquire,
    Internal,
    Read,
    Release,
    Write,
    straightline,
)

from conftest import baseline_table, load_baseline, table

BASELINE = "BENCH_engines.json"

#: The session spec: a temporal interval property (the paper's formula
#: shape), so the LTL lattice does real monitoring work on the soup —
#: predicted violations are expected and part of the measured cost.
SPEC = "(v0 > 5) -> [v1 >= 0, v1 > 8)"

#: The single-engine configurations, then the combined bus.
SINGLES = [
    ("ltl", [f"ltl:{SPEC}"]),
    ("atomicity", ["atomicity"]),
    ("pattern", ["pattern:W(v0)=9;R(v0);W(v1)"]),
]
COMBINED = ("ltl+atomicity+pattern", [s for _, sel in SINGLES for s in sel])


def _lock_soup(seed: int, ops_per_thread: int, n_threads: int = 4,
               n_vars: int = 2, n_locks: int = 2):
    """A random lock-region program run with every access relevant — the
    stream shape all three engines consume (sync + reads + writes)."""
    rng = random.Random(seed)
    variables = [f"v{i}" for i in range(n_vars)]
    locks = [f"L{i}" for i in range(n_locks)]
    bodies = []
    for _t in range(n_threads):
        ops, held = [], None
        for _ in range(ops_per_thread):
            u = rng.random()
            if u < 0.15 and held is None:
                held = rng.choice(locks)
                ops.append(Acquire(held))
            elif u < 0.30 and held is not None:
                ops.append(Release(held))
                held = None
            elif u < 0.40:
                ops.append(Internal())
            elif u < 0.72:
                ops.append(Write(rng.choice(variables), rng.randrange(10)))
            else:
                ops.append(Read(rng.choice(variables)))
        if held is not None:
            ops.append(Release(held))
        bodies.append(straightline(ops))
    initial = {v: 0 for v in variables}
    initial.update({lk: 0 for lk in locks})
    program = Program(initial=initial, threads=bodies)
    return run_program(program, RandomScheduler(seed),
                       relevance=all_accesses())


def _timed_run(execution, selections, repeats: int = 1):
    """Feed the whole stream through a fresh Observer; best-of-``repeats``
    wall time plus the last observer (for verdict sanity checks)."""
    msgs = list(execution.messages)
    best, obs = float("inf"), None
    for _ in range(repeats):
        o = Observer(execution.n_threads, dict(execution.initial_store),
                     engines=list(selections))
        t0 = time.perf_counter()
        for i in range(0, len(msgs), 256):
            o.receive_batch(msgs[i:i + 256])
        o.finish()
        dt = time.perf_counter() - t0
        if dt < best:
            best, obs = dt, o
    return best, obs


def test_multi_engine_fan_out_cost(quick):
    """One stream, shared clocks: combined {ltl, atomicity, pattern} must
    cost < 2× the costliest single-engine run (``--quick`` relaxes the
    bound for CI noise, the committed baseline holds the strict one)."""
    ex = _lock_soup(seed=0, ops_per_thread=60 if quick else 300,
                    n_threads=3 if quick else 4)
    n = len(ex.messages)
    _timed_run(ex, COMBINED[1])          # warm-up: imports, allocator caches
    repeats = 1 if quick else 3
    times, rows = {}, []
    for label, selections in SINGLES + [COMBINED]:
        dt, obs = _timed_run(ex, selections, repeats)
        times[label] = dt
        rows.append((label, n, f"{dt * 1e3:.1f}", f"{n / dt:,.0f}"))
        verdicts = obs.engine_verdicts()
        assert len(verdicts) == len(selections)
        assert all(v.sound for v in verdicts)
    table("multi-engine fan-out cost (one stream, shared clocks)",
          ["engines", "events", "time ms", "ev/s"], rows)

    singles = [times[label] for label, _ in SINGLES]
    vs_single = times[COMBINED[0]] / max(singles)
    vs_sum = times[COMBINED[0]] / sum(singles)
    table("fan-out ratios", ["comparison", "ratio"],
          [("combined vs costliest single", f"{vs_single:.2f}x"),
           ("combined vs sum of singles", f"{vs_sum:.2f}x")])
    assert vs_single < (3.0 if quick else 2.0), (
        f"three engines on one bus cost {vs_single:.2f}x the costliest "
        f"single-engine run — the shared-annotation bound is < 2x")


class _NullEngine(AnalysisEngine):
    """Consumes annotated events and does nothing: isolates the bus's own
    per-event cost (causal delivery + clock/HB annotation + fan-out)."""

    name = "null"
    version = "bench"
    requires_order = True

    def feed(self, ev):
        return []

    def counterexamples(self):
        return []


def test_annotation_computed_once(quick):
    """The bus annotates each delivered event once and shares the frozen
    ``BusEvent`` by identity: fanning out to three no-op engines must cost
    well under three single-engine buses annotating independently."""
    ex = _lock_soup(seed=1, ops_per_thread=60 if quick else 300,
                    n_threads=3 if quick else 4)
    msgs = list(ex.messages)

    def bus_time(n_engines, repeats):
        best = float("inf")
        for _ in range(repeats):
            bus = AnalysisBus(ex.n_threads,
                              [_NullEngine() for _ in range(n_engines)],
                              ordered=True)
            t0 = time.perf_counter()
            for i in range(0, len(msgs), 256):
                bus.feed_batch(msgs[i:i + 256])
            bus.finish()
            best = min(best, time.perf_counter() - t0)
        return best

    repeats = 2 if quick else 5
    bus_time(3, 1)                                  # warm-up
    one = bus_time(1, repeats)
    three = bus_time(3, repeats)
    separate = 3 * one
    rows = [("1 engine, 1 bus", f"{one * 1e3:.1f}"),
            ("3 engines, 1 bus (shared annotation)", f"{three * 1e3:.1f}"),
            ("3 engines, 3 buses (3x single)", f"{separate * 1e3:.1f}")]
    table("annotation amortization (no-op engines)",
          ["configuration", "time ms"], rows)
    assert three < separate * (0.95 if quick else 0.85), (
        f"3-engine bus {three * 1e3:.1f}ms vs 3 separate buses "
        f"{separate * 1e3:.1f}ms — annotation is not being shared")


def test_atomicity_flags_seeded_violation_ltl_misses():
    """The complementarity demonstration: a lock region whose two reads
    straddle a remote write (R-W-R, unserializable) while every value
    stays non-negative — invisible to ``x >= 0``, caught by AVIO."""
    region = straightline([Acquire("L"), Read("x"), Internal(),
                           Read("x"), Release("L")])
    remote = straightline([Write("x", 1)])
    program = Program(initial={"x": 0, "L": 0}, threads=[region, remote])
    ex = run_program(program, FixedScheduler([], strict=False),
                     relevance=all_accesses())
    obs = Observer(ex.n_threads, dict(ex.initial_store),
                   engines=["ltl:x >= 0", "atomicity"])
    obs.receive_batch(list(ex.messages))
    obs.finish()
    verdicts = {v.engine: v for v in obs.engine_verdicts()}
    assert verdicts["ltl"].verdict == "clean"
    assert verdicts["atomicity"].verdict == "violation"
    assert "R-W-R" in verdicts["atomicity"].counterexamples[0]
    table("engine complementarity — seeded serializability bug",
          ["engine", "verdict", "violations"],
          [(name, v.verdict, v.violations)
           for name, v in sorted(verdicts.items())])


def test_committed_baseline_is_current():
    """The committed ``BENCH_engines.json`` must exist, parse, and still
    show the acceptance numbers: all four configurations measured, the
    combined run < 2× the costliest single engine, and the atomicity
    engine flagging the seeded bug the LTL spec misses."""
    data = load_baseline(BASELINE)
    cost = baseline_table(data, "multi-engine fan-out cost", BASELINE)
    labels = [r[0] for r in cost["rows"]]
    assert labels == [label for label, _ in SINGLES] + [COMBINED[0]], (
        f"cost table in {BASELINE} covers {labels} — regenerate")
    ratios = baseline_table(data, "fan-out ratios", BASELINE)
    vs_single = float(dict((r[0], r[1]) for r in ratios["rows"])
                      ["combined vs costliest single"].rstrip("x"))
    assert vs_single < 2.0, (
        f"committed baseline shows {vs_single:.2f}x for the combined run — "
        f"above the 2x acceptance bound; regenerate {BASELINE} on a quiet "
        f"machine")
    amort = baseline_table(data, "annotation amortization", BASELINE)
    assert len(amort["rows"]) == 3
    comp = baseline_table(data, "engine complementarity", BASELINE)
    verdicts = {r[0]: r[1] for r in comp["rows"]}
    assert verdicts["ltl"] == "clean"
    assert verdicts["atomicity"] == "violation"
