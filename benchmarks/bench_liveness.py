"""E9 — liveness prediction via u·vω lassos (§4).

Times lasso search + Markey–Schnoebelen checking over lattices of looping
programs, and asserts the qualitative artifact: the starvation loop is
reported, satisfied liveness properties are not.
"""

from typing import Any, Generator

from conftest import table

from repro.analysis import find_lassos, predict_liveness_violations
from repro.lattice import ComputationLattice
from repro.sched import FixedScheduler, run_program
from repro.sched.program import Internal, Op, Program, Write


def toggler_program(cycles):
    def toggler() -> Generator[Op, Any, None]:
        for _ in range(cycles):
            yield Write("busy", 1)
            yield Internal()
            yield Write("busy", 0)

    def signaler() -> Generator[Op, Any, None]:
        yield Internal()
        yield Write("go", 1)

    return Program(
        initial={"busy": 0, "go": 0},
        threads=[toggler, signaler],
        relevant_vars=frozenset({"busy", "go"}),
        name=f"toggler-{cycles}",
    )


def lattice_for(cycles):
    ex = run_program(toggler_program(cycles), FixedScheduler([], strict=False))
    return ComputationLattice(2, {"busy": 0, "go": 0}, ex.messages)


def test_liveness_artifact():
    rows = []
    for cycles in (1, 2, 3):
        lat = lattice_for(cycles)
        lassos = list(find_lassos(lat, limit=500))
        bad = predict_liveness_violations(lat, "eventually(go == 1)",
                                          lasso_limit=500)
        ok = predict_liveness_violations(lat, "eventually(busy == 0)",
                                         lasso_limit=500)
        rows.append((cycles, len(lat), len(lassos), len(bad), len(ok)))
        if cycles >= 2:
            assert bad, "starvation lasso must be reported"
        assert not ok, "satisfied property must not be reported"
    table("E9 — lasso search over toggler lattices",
          ["cycles", "lattice nodes", "lassos", "violations(go)",
           "false alarms(busy)"], rows)


def test_lasso_search_benchmark(benchmark):
    lat = lattice_for(3)
    lassos = benchmark(lambda: list(find_lassos(lat, limit=1000)))
    assert lassos


def test_liveness_check_benchmark(benchmark):
    lat = lattice_for(3)
    benchmark(lambda: predict_liveness_violations(
        lat, "always(eventually(go == 1))", lasso_limit=1000))
