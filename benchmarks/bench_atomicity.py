"""E14 (extension) — atomicity-violation prediction artifact + cost.

The AVIO/Wang–Stoller serializability table over observed lock regions:
exactly the four unserializable patterns are reported, gated on sync-only
concurrency, independent of the observed schedule.
"""

from conftest import table

from repro.analysis import find_atomicity_violations
from repro.sched import FixedScheduler, Program, RandomScheduler, run_program
from repro.sched.program import Acquire, Internal, Read, Release, Write, straightline


def pattern_case(local_ops, remote_op):
    threads = [
        straightline([Acquire("L")] + local_ops + [Release("L")]),
        straightline([remote_op]),
    ]
    p = Program(initial={"x": 0, "L": 0}, threads=threads)
    return run_program(p, FixedScheduler([], strict=False))


CASES = [
    ("R-W-R", [Read("x"), Internal(), Read("x")], Write("x", 1), True),
    ("W-W-R", [Write("x", 1), Internal(), Read("x")], Write("x", 2), True),
    ("R-W-W", [Read("x"), Internal(), Write("x", 9)], Write("x", 1), True),
    ("W-R-W", [Write("x", 1), Internal(), Write("x", 2)], Read("x"), True),
    ("R-R-R", [Read("x"), Internal(), Read("x")], Read("x"), False),
    ("W-R-R", [Write("x", 1), Internal(), Read("x")], Read("x"), False),
    ("R-R-W", [Read("x"), Internal(), Write("x", 1)], Read("x"), False),
]


def test_serializability_table():
    rows = []
    for name, local_ops, remote, expect in CASES:
        ex = pattern_case(local_ops, remote)
        got = bool(find_atomicity_violations(ex))
        rows.append((name, "unserializable" if expect else "serializable",
                     "reported" if got else "silent"))
        assert got == expect, name
    table("E14 — AVIO serializability table", ["pattern", "class", "repro"],
          rows)


def test_schedule_independence():
    counts = set()
    for seed in range(8):
        threads = [
            straightline([Acquire("L"), Read("x"), Internal(), Read("x"),
                          Release("L")]),
            straightline([Write("x", 1)]),
        ]
        p = Program(initial={"x": 0, "L": 0}, threads=threads)
        ex = run_program(p, RandomScheduler(seed))
        counts.add(len(find_atomicity_violations(ex)))
    assert counts == {1}


def big_execution():
    threads = []
    for t in range(3):
        ops = []
        for k in range(10):
            ops += [Acquire("L"), Read("x"), Write("x", t * 100 + k),
                    Release("L"), Write("y", k)]
        threads.append(straightline(ops))
    p = Program(initial={"x": 0, "y": 0, "L": 0}, threads=threads)
    return run_program(p, RandomScheduler(1))


def test_atomicity_analysis_benchmark(benchmark):
    ex = big_execution()
    violations = benchmark(lambda: find_atomicity_violations(ex))
    # the unlocked y-writes interleave with the locked x-regions only if
    # they conflict — they don't (different variable); locked x-regions are
    # mutually ordered by the lock: expect no reports, just the sweep cost
    assert violations == []
