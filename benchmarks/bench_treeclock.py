"""Tree-clock backend: join crossover, batched ingest throughput, parity.

Four questions this bench answers (tables land in ``BENCH_treeclock.json``;
reading guide in ``docs/PERFORMANCE.md``):

* where is the flat-vs-tree **crossover**: ops/s of Algorithm-A-shaped
  clock soups at 4/16/64/256 threads, under the two extreme sharing
  regimes (every access to one shared variable vs 99% thread-local);
* what does the instrumentation emit end-to-end on each backend;
* does the **batched** observer path sustain ≥100k events/s in a single
  session (the acceptance floor; ``--quick`` relaxes it for CI noise);
* is the tree backend **bit-for-bit equivalent**: every workload × 3
  seeds archived and checked with the ``repro.store`` differential-replay
  machinery (same verdict, counterexamples, final clocks), plus the
  committed-baseline sanity test that keeps the JSON honest.

Regenerate the committed baseline with::

    PYTHONPATH=src python -m pytest -s benchmarks/bench_treeclock.py \
        --emit-json BENCH_treeclock.json
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core import AlgorithmA
from repro.core.vectorclock import make_thread_clock, make_var_clock
from repro.obs import metrics
from repro.observer.observer import Observer
from repro.sched import RandomScheduler, run_program
from repro.store import TraceArchive
from repro.store.replay import verify_entry
from repro.workloads import (
    AUDIT_PROPERTY,
    LANDING_PROPERTY,
    XYZ_PROPERTY,
    landing_controller,
    transfer_program,
    xyz_program,
)

from conftest import baseline_table, load_baseline, table

BASELINE = "BENCH_treeclock.json"

#: Thread counts of the crossover sweep (ISSUE 7 acceptance: 4/16/64/256).
SWEEP = (4, 16, 64, 256)

#: Differential-replay workloads: name, program factory, spec, variables.
WORKLOADS = [
    ("xyz", xyz_program, XYZ_PROPERTY, ("x", "y", "z")),
    ("landing", landing_controller, LANDING_PROPERTY,
     ("landing", "approved", "radio")),
    ("bank", transfer_program, AUDIT_PROPERTY, ("a", "b", "audited")),
]


# -- op soups: Algorithm A's exact clock choreography, nothing else -----------


def _ops(n_threads: int, n_ops: int, locality: float, seed: int):
    """Pre-generated (thread, var, is_write) ops — RNG outside the timing."""
    rng = random.Random(seed)
    out = []
    for _ in range(n_ops):
        t = rng.randrange(n_threads)
        if locality and rng.random() < locality:
            x = t
        else:
            x = 0 if not locality else rng.randrange(n_threads)
        out.append((t, x, rng.random() < 0.5))
    return out


def _soup_rate(backend: str, n_threads: int, ops) -> float:
    """Run one op soup on fresh clocks of ``backend``; returns ops/s."""
    threads = [make_thread_clock(backend, n_threads, i)
               for i in range(n_threads)]
    access = [make_var_clock(backend, n_threads) for _ in range(n_threads)]
    write = [make_var_clock(backend, n_threads) for _ in range(n_threads)]
    t0 = time.perf_counter()
    for t, x, is_write in ops:
        vi, va, vw = threads[t], access[x], write[x]
        vi.increment(t)
        if is_write:
            vi.merge(va)
            va.copy_from(vi)
            vw.copy_from(vi)
        else:
            vi.merge(vw)
            va.merge(vi)
    return len(ops) / (time.perf_counter() - t0)


@pytest.mark.parametrize("regime,locality", [("all-shared", 0.0),
                                             ("99%-local", 0.99)])
def test_join_crossover(regime, locality, quick):
    """Flat-vs-tree ops/s against thread count, per sharing regime.

    Flat joins are O(n) always; tree joins are O(knowledge transferred).
    All-shared transfers genuinely O(n) per event, so flat's lower
    per-component constant wins at every n; with locality the tree skips
    unchanged subtrees and overtakes around n=16 (AUTO_TREE_THRESHOLD).
    """
    sweep = SWEEP[:-1] if quick else SWEEP
    n_ops = 6_000 if quick else 40_000
    rows = []
    ratios = {}
    for n in sweep:
        ops = _ops(n, n_ops, locality, seed=n)
        flat = _soup_rate("flat", n, ops)
        tree = _soup_rate("tree", n, ops)
        ratios[n] = tree / flat
        rows.append((n, f"{flat:,.0f}", f"{tree:,.0f}",
                     f"{tree / flat:.2f}x"))
    table(f"tree-clock crossover — {regime} (ops/s)",
          ["threads", "flat ops/s", "tree ops/s", "tree/flat"], rows)
    if not quick and locality:
        # the crossover claim: under locality the tree wins at scale
        assert ratios[64] > 1.0 and ratios[256] > 1.0, ratios


def test_instrumentation_emit_rate(quick):
    """AlgorithmA end-to-end (events, messages, metrics guards included)."""
    n_events = 4_000 if quick else 20_000
    rows = []
    for backend in ("flat", "tree"):
        for n_threads, locality in ((4, 0.0), (64, 0.99)):
            ops = _ops(n_threads, n_events, locality, seed=1)
            algo = AlgorithmA(n_threads, clock_backend=backend)
            t0 = time.perf_counter()
            for t, x, is_write in ops:
                if is_write:
                    algo.on_write(t, f"v{x}", 1)
                else:
                    algo.on_read(t, f"v{x}")
            rate = n_events / (time.perf_counter() - t0)
            rows.append((backend, n_threads,
                         "all-shared" if not locality else "99%-local",
                         f"{rate:,.0f}"))
    table("instrumentation emit rate (AlgorithmA end-to-end)",
          ["backend", "threads", "regime", "events/s"], rows)


def _burst_messages(n_events: int, n_threads: int = 4):
    rng = random.Random(0)
    algo = AlgorithmA(n_threads)
    for k in range(n_events):
        algo.on_write(rng.randrange(n_threads), f"v{k % 8}", k)
    return algo.emitted


def test_single_session_ingest_throughput(quick):
    """The ≥100k events/s acceptance gate: batched observer, no spec.

    This is the sustained ingest rate of one session — causal delivery,
    causality index and causal log all on, predictor off (the spec-on
    rate is lattice-bound, not clock-bound; see docs/PERFORMANCE.md).
    Messages are pre-generated so only ingestion is timed.
    """
    n_events = 5_000 if quick else 50_000
    msgs = _burst_messages(n_events)
    rows = []
    for chunk in (1, 64, 512):
        obs = Observer(4, {f"v{i}": 0 for i in range(8)}, causal_log=True)
        t0 = time.perf_counter()
        if chunk == 1:
            for m in msgs:
                obs.receive(m)
        else:
            for i in range(0, len(msgs), chunk):
                obs.receive_batch(msgs[i:i + chunk])
        rate = n_events / (time.perf_counter() - t0)
        assert len(obs.causal_log) == n_events
        rows.append((chunk, f"{rate:,.0f}"))
    table("single-session ingest throughput (observer, causal log, no spec)",
          ["batch size", "events/s"], rows)
    best = max(float(r[1].replace(",", "")) for r in rows)
    floor = 20_000 if quick else 100_000
    assert best >= floor, f"best ingest {best:,.0f} ev/s below {floor:,}"


def test_backend_metrics_wired():
    """``algoa.vc_join_fast`` counts only tree fast-path joins, and the
    batched delivery path records ``delivery.batch_size``."""
    ops = _ops(8, 2_000, 0.99, seed=3)
    metrics.enable(reset=True)
    try:
        algo = AlgorithmA(8, clock_backend="flat")
        for t, x, is_write in ops:
            (algo.on_write if is_write else algo.on_read)(t, f"v{x}")
        assert metrics.REGISTRY.snapshot()["algoa.vc_join_fast"]["value"] == 0
        metrics.reset()
        algo = AlgorithmA(8, clock_backend="tree")
        for t, x, is_write in ops:
            (algo.on_write if is_write else algo.on_read)(t, f"v{x}")
        snap = metrics.REGISTRY.snapshot()
        assert snap["algoa.vc_join_fast"]["value"] > 0
        assert snap["algoa.vc_join_fast"]["value"] <= snap["algoa.vc_joins"]["value"]
        obs = Observer(4, {f"v{i}": 0 for i in range(8)}, causal_log=True)
        obs.receive_batch(_burst_messages(256))
        assert metrics.REGISTRY.snapshot()["delivery.batch_size"]["count"] == 1
    finally:
        metrics.disable()


def test_differential_replay_parity(tmp_path, quick):
    """Bit-for-bit equivalence gate, via the trace archive.

    Per workload × seed: the flat and tree backends must emit *identical*
    message streams; both are archived with their live verdicts; verdict,
    counterexamples and final clocks must match across backends; and
    deterministic replay of the tree-backend trace must reproduce its
    catalog entry exactly (``verify_entry`` returns no drift).
    """
    seeds = (0,) if quick else (0, 1, 2)
    archive = TraceArchive(tmp_path / "parity")
    rows = []
    for name, factory, spec, variables in WORKLOADS:
        for seed in seeds:
            flat = run_program(factory(), RandomScheduler(seed),
                               clock_backend="flat")
            tree = run_program(factory(), RandomScheduler(seed),
                               clock_backend="tree")
            assert [(m.event.eid, tuple(m.clock), m.event.value)
                    for m in flat.messages] == \
                   [(m.event.eid, tuple(m.clock), m.event.value)
                    for m in tree.messages], f"{name} seed={seed} stream drift"
            initial = {v: flat.initial_store[v] for v in variables}
            e_flat = archive.record_messages(
                f"{name}-flat-s{seed}", flat.n_threads, initial,
                flat.messages, spec=spec)
            e_tree = archive.record_messages(
                f"{name}-tree-s{seed}", tree.n_threads, initial,
                tree.messages, spec=spec)
            assert e_flat.violations == e_tree.violations
            assert e_flat.counterexamples == e_tree.counterexamples
            assert e_flat.final_clocks == e_tree.final_clocks
            assert e_flat.sound == e_tree.sound
            drift = verify_entry(archive, e_tree)
            assert not drift, f"{name} seed={seed}: {drift}"
            rows.append((name, seed, e_tree.events, e_tree.violations, "ok"))
    table("differential replay parity (flat vs tree, archived + replayed)",
          ["workload", "seed", "events", "violations", "parity"], rows)
    assert len(rows) == len(WORKLOADS) * len(seeds)


def test_committed_baseline_is_current():
    """The committed ``BENCH_treeclock.json`` must exist, parse, and still
    show the acceptance numbers: ≥100k ev/s ingest, the crossover sweep,
    and an all-ok parity table over every workload × 3 seeds."""
    data = load_baseline(BASELINE)
    ingest = baseline_table(data, "single-session ingest", BASELINE)
    best = max(float(r[1].replace(",", "")) for r in ingest["rows"])
    assert best >= 100_000, (
        f"committed baseline ingest peak {best:,.0f} ev/s is below the "
        f"100k acceptance floor — regenerate {BASELINE} on a quiet machine")
    for regime in ("all-shared", "99%-local"):
        t = baseline_table(data, f"tree-clock crossover — {regime}", BASELINE)
        threads = [int(r[0]) for r in t["rows"]]
        assert threads == list(SWEEP), (
            f"crossover sweep in {BASELINE} covers {threads}, expected "
            f"{list(SWEEP)} — regenerate without --quick")
    parity = baseline_table(data, "differential replay parity", BASELINE)
    assert len(parity["rows"]) == len(WORKLOADS) * 3
    assert all(r[-1] == "ok" for r in parity["rows"])
