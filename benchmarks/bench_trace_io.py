"""Trace-file and wire-format throughput.

The deployment-facing costs: serializing the message stream to a trace file
(streaming writer, the Algorithm A sink path), loading it back, and pushing
messages through the causal-delivery buffer under adversarial reordering.
"""

import random

from repro.core import AlgorithmA
from repro.observer.delivery import CausalDelivery
from repro.observer.trace import read_trace, write_trace

N_EVENTS = 5_000


def make_messages(n=N_EVENTS, n_threads=4, seed=0):
    rng = random.Random(seed)
    algo = AlgorithmA(n_threads)
    for k in range(n):
        algo.on_write(rng.randrange(n_threads), f"v{k % 8}", k)
    return algo.emitted


def test_trace_write_benchmark(benchmark, tmp_path):
    msgs = make_messages()
    path = tmp_path / "big.trace"

    def write():
        return write_trace(path, 4, {f"v{i}": 0 for i in range(8)}, msgs)

    assert benchmark(write) == N_EVENTS


def test_trace_read_benchmark(benchmark, tmp_path):
    msgs = make_messages()
    path = tmp_path / "big.trace"
    write_trace(path, 4, {f"v{i}": 0 for i in range(8)}, msgs)
    trace = benchmark(lambda: read_trace(path))
    assert len(trace.messages) == N_EVENTS
    # round-trip fidelity on a sample
    assert [tuple(m.clock) for m in trace.messages[:50]] == [
        tuple(m.clock) for m in msgs[:50]]


def test_causal_delivery_fifo_benchmark(benchmark):
    msgs = make_messages(n=2_000)

    def run():
        d = CausalDelivery(4)
        out = list(d.offer_many(msgs))
        assert d.pending == 0
        return out

    out = benchmark(run)
    assert len(out) == 2_000


def test_causal_delivery_reordered_benchmark(benchmark):
    msgs = make_messages(n=2_000)
    scrambled = list(msgs)
    # bounded scrambling (window 16) keeps the buffer small, the realistic
    # network case; full shuffles make the buffer quadratic by design
    rng = random.Random(3)
    for i in range(0, len(scrambled) - 16, 16):
        window = scrambled[i:i + 16]
        rng.shuffle(window)
        scrambled[i:i + 16] = window

    def run():
        d = CausalDelivery(4)
        out = list(d.offer_many(scrambled))
        assert d.pending == 0
        return out

    out = benchmark(run)
    assert len(out) == 2_000
