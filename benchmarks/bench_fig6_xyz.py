"""E2 / Fig. 6 — the x/y/z prediction, regenerated.

Paper artifact: messages e1⟨x=0,T1,(1,0)⟩, e2⟨z=1,T2,(1,1)⟩,
e3⟨y=1,T1,(2,0)⟩, e4⟨x=1,T2,(1,2)⟩; a 7-state lattice with 3 runs; the
run e1,e3,e2,e4 violates ``(x>0) -> [y==0, y>z)`` while JPaX-style flat
monitoring of the observed run reports success.
"""

from conftest import table

from repro.analysis import detect, predict
from repro.sched import FixedScheduler, run_program
from repro.workloads import (
    XYZ_OBSERVED_SCHEDULE,
    XYZ_PROPERTY,
    XYZ_VARS,
    xyz_program,
)


def full_pipeline():
    execution = run_program(xyz_program(), FixedScheduler(XYZ_OBSERVED_SCHEDULE))
    return predict(execution, XYZ_PROPERTY, mode="full")


def test_fig6_artifact(xyz_execution):
    report = predict(xyz_execution, XYZ_PROPERTY, mode="full")

    clocks = {m.event.label: tuple(m.clock) for m in xyz_execution.messages}
    rows = [
        ("e1 ⟨x=0,T1⟩", (1, 0), clocks["x=0"]),
        ("e2 ⟨z=1,T2⟩", (1, 1), clocks["z=1"]),
        ("e3 ⟨y=1,T1⟩", (2, 0), clocks["y=1"]),
        ("e4 ⟨x=1,T2⟩", (1, 2), clocks["x=1"]),
    ]
    table("E2 / Fig. 6 — MVC labels", ["message", "paper", "repro"], rows)
    for _n, paper, repro in rows:
        assert paper == repro

    rows2 = [
        ("lattice states", 7, report.nodes),
        ("runs", 3, report.n_runs),
        ("violating runs", 1, len(report.violations)),
        ("observed run successful", True, report.observed_ok),
        ("baseline (JPaX) detects", False, not detect(xyz_execution, XYZ_PROPERTY).ok),
    ]
    table("E2 / Fig. 6 — lattice and verdicts", ["artifact", "paper", "repro"], rows2)
    for _n, paper, repro in rows2:
        assert paper == repro

    v = report.violations[0]
    assert [m.event.label for m in v.messages] == ["x=0", "y=1", "z=1", "x=1"]
    print("violating run (paper's rightmost path): "
          + " -> ".join(m.event.label for m in v.messages))


def test_fig6_pipeline_benchmark(benchmark):
    report = benchmark(full_pipeline)
    assert len(report.violations) == 1
