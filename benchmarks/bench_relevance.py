"""Ablation (DESIGN.md §4.3) — relevance filtering (§2.3).

"To minimize the number of messages sent to the observer, we consider a
subset of relevant events."  Measures, for a workload with many variables of
which the specification mentions few: message count, lattice size, and
analysis time when emitting (a) only spec-variable writes (JMPaX's rule),
(b) all writes, (c) all accesses.  Shape expected: restricting relevance
shrinks messages and lattice sharply while verdicts are unchanged.
"""

import random

from conftest import table

from repro.analysis import predict
from repro.core import all_accesses, relevant_writes
from repro.sched import RandomScheduler, run_program
from repro.workloads import random_program

SPEC = "historically(v0 >= 0)"
SPEC_VARS = {"v0"}


def make_program(seed=3):
    return random_program(random.Random(seed), n_threads=3, n_vars=6,
                          ops_per_thread=8, write_ratio=0.6)


MODES = [
    ("spec writes", relevant_writes(SPEC_VARS)),
    ("all writes", lambda e: e.kind.is_write),
    ("all accesses", all_accesses()),
]


def run_mode(relevance, seed=3):
    program = make_program(seed)
    return run_program(program, RandomScheduler(seed), relevance=relevance)


def test_relevance_filtering_shape():
    rows = []
    verdicts = []
    for name, relevance in MODES:
        ex = run_mode(relevance)
        from repro.lattice import ComputationLattice

        initial = dict(ex.initial_store)
        lat = ComputationLattice(3, initial, ex.messages)
        report = predict(ex, SPEC)
        verdicts.append(report.ok)
        rows.append((name, len(ex.messages), len(lat), report.ok))
    table("Ablation — relevance predicate vs observer load",
          ["relevance", "messages", "lattice nodes", "spec holds"], rows)
    # fewer messages as relevance narrows
    assert rows[0][1] <= rows[1][1] <= rows[2][1]
    assert rows[0][2] <= rows[1][2] <= rows[2][2]
    # the verdict on the spec is the same regardless
    assert len(set(verdicts)) == 1


def test_spec_writes_benchmark(benchmark):
    ex = run_mode(relevant_writes(SPEC_VARS))
    report = benchmark(lambda: predict(ex, SPEC))
    assert report is not None


def test_all_writes_benchmark(benchmark):
    ex = run_mode(lambda e: e.kind.is_write)
    benchmark(lambda: predict(ex, SPEC))


def test_all_accesses_benchmark(benchmark):
    ex = run_mode(all_accesses())
    benchmark(lambda: predict(ex, SPEC))
