"""Chaos smoke: crash the analysis mid-stream, demand verdict parity.

Two faults, injected against a supervised ``repro.server`` daemon while a
client streams a workload:

* ``worker-kill``  — SIGKILL the session's analysis worker process half
  way through the stream.  The supervisor must restart it, replay the
  journal, and finish with the same verdict as an undisturbed run.
* ``conn-drop``    — sever the client's TCP connection half way through.
  The client's :class:`~repro.server.ReconnectPolicy` must resume by
  token and resend the unacked window, again with verdict parity.

Parity means: violation count, counterexample text, *and* final vector
clocks all match a standalone Observer fed the same execution.  Run by
the ``chaos-smoke`` CI job; exits non-zero on any mismatch.

With ``--fleet`` a third fault joins, injected against a supervised
2-shard :class:`~repro.fleet.AnalysisFleet` instead of a bare daemon:

* ``shard-kill``   — SIGKILL the whole shard *daemon* owning the session
  (looked up from the session-id stride) half way through the stream.
  The fleet supervisor must respawn the slot with recovery, the client's
  resume must be routed to the reborn shard, and the verdict must match.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py --seeds 3
    PYTHONPATH=src python benchmarks/chaos_smoke.py --seeds 2 --fleet
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import tempfile
import time

from repro.observer import Observer
from repro.sched import RandomScheduler, run_program
from repro.server import AnalysisServer, ReconnectPolicy, ServerConfig, attach
from repro.workloads import (
    AUDIT_PROPERTY,
    LANDING_PROPERTY,
    XYZ_PROPERTY,
    landing_controller,
    transfer_program,
    xyz_program,
)

WORKLOADS = [
    ("xyz", xyz_program, XYZ_PROPERTY, ("x", "y", "z")),
    ("landing", landing_controller, LANDING_PROPERTY,
     ("landing", "approved", "radio")),
    ("bank", transfer_program, AUDIT_PROPERTY, ("a", "b", "audited")),
]

FAULTS = ("worker-kill", "conn-drop")
FLEET_FAULTS = ("shard-kill", "conn-drop")


def control(factory, spec, variables, seed, backend="flat"):
    """Undisturbed run: execution + expected verdict from a standalone
    Observer (the same ground truth the soak tests use).  ``backend``
    picks Algorithm A's clock representation for the instrumented run —
    verdict parity must hold whichever backend produced the stream."""
    execution = run_program(factory(), RandomScheduler(seed),
                            clock_backend=backend)
    initial = {v: execution.initial_store[v] for v in variables}
    observer = Observer(execution.n_threads, initial, spec=spec)
    clocks = [tuple([0] * execution.n_threads)
              for _ in range(execution.n_threads)]
    for m in execution.messages:
        observer.receive(m)
        clocks[m.thread] = tuple(m.clock)
    observer.finish()
    expected = sorted(v.pretty(tuple(sorted(variables)))
                      for v in observer.violations)
    return execution, initial, expected, tuple(clocks)


def kill_worker(server, session_id, deadline=10.0):
    """SIGKILL the live analysis worker of a session; returns its pid."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        sess = server._sessions.get(session_id)
        proc = getattr(sess, "_proc", None) if sess is not None else None
        if proc is not None and proc.pid is not None and proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)
            return proc.pid
        time.sleep(0.02)
    raise RuntimeError(f"no live worker for session {session_id}")


def drop_connection(session):
    """Sever the client's socket under it (simulates a network cut)."""
    import socket as _socket

    sock = session._sender._sock
    try:
        sock.shutdown(_socket.SHUT_RDWR)
    except OSError:
        pass


def run_case(name, factory, spec, variables, seed, fault, ckpt_dir,
             backend="flat"):
    execution, initial, expected, clocks = control(
        factory, spec, variables, seed, backend)
    config = ServerConfig(
        port=0, workers=2, supervised=True, checkpoint_dir=ckpt_dir,
        checkpoint_every=4, resume_timeout=10.0, drain_timeout=60.0)
    problems = []
    with AnalysisServer(config) as srv:
        session = attach(
            srv.host, srv.port, n_threads=execution.n_threads,
            initial=initial, spec=spec, program=name,
            reconnect=ReconnectPolicy(max_attempts=8, backoff=0.05))
        half = max(1, len(execution.messages) // 2)
        for m in execution.messages[:half]:
            session.send(m)
        if fault == "worker-kill":
            kill_worker(srv, session.session_id)
        else:
            drop_connection(session)
        for m in execution.messages[half:]:
            session.send(m)
        verdict = session.close(timeout=60.0)

    if verdict.state != "finished":
        problems.append(f"state={verdict.state} error={verdict.error}")
    if verdict.analyzed != len(execution.messages):
        problems.append(
            f"analyzed {verdict.analyzed} != {len(execution.messages)}")
    got = sorted(verdict.counterexamples)
    if got != expected:
        problems.append(f"counterexamples {got} != {expected}")
    if verdict.violations != len(expected):
        problems.append(
            f"violations {verdict.violations} != {len(expected)}")
    if tuple(tuple(c) for c in verdict.final_clocks) != clocks:
        problems.append(
            f"final clocks {verdict.final_clocks} != {clocks}")
    return problems


def run_fleet_case(name, factory, spec, variables, seed, fault, ckpt_dir,
                   backend="flat"):
    """Same parity contract as :func:`run_case`, but the stream goes
    through a 2-shard fleet and ``shard-kill`` takes out the *owning
    shard daemon* (found via the session-id stride) rather than one
    session worker."""
    from repro.fleet import AnalysisFleet, FleetConfig, shard_of_session
    from repro.observer.reliable import RetransmitConfig

    execution, initial, expected, clocks = control(
        factory, spec, variables, seed, backend)
    config = FleetConfig(
        shards=2, workers=1, supervised=True, checkpoint_dir=ckpt_dir,
        checkpoint_every=4, resume_timeout=15.0, drain_timeout=60.0,
        heartbeat_interval=0.1, heartbeat_timeout=1.0,
        restart_backoff=0.05, restart_backoff_cap=0.2)
    problems = []
    with AnalysisFleet(config) as fleet:
        session = attach(
            fleet.host, fleet.port, n_threads=execution.n_threads,
            initial=initial, spec=spec, program=name, fault_tolerant=True,
            config=RetransmitConfig(window=64),
            reconnect=ReconnectPolicy(max_attempts=10, backoff=0.1))
        half = max(1, len(execution.messages) // 2)
        for m in execution.messages[:half]:
            session.send(m)
        if fault == "shard-kill":
            slot = shard_of_session(session.session_id)
            if fleet.supervisor.kill_shard(slot) is None:
                problems.append(f"no live shard {slot} to kill")
        else:
            drop_connection(session)
        for m in execution.messages[half:]:
            session.send(m)
        verdict = session.close(timeout=60.0)
        router = fleet.status()["fleet"]["router"]

    if verdict.state != "finished":
        problems.append(f"state={verdict.state} error={verdict.error}")
    if verdict.analyzed != len(execution.messages):
        problems.append(
            f"analyzed {verdict.analyzed} != {len(execution.messages)}")
    got = sorted(verdict.counterexamples)
    if got != expected:
        problems.append(f"counterexamples {got} != {expected}")
    if verdict.violations != len(expected):
        problems.append(
            f"violations {verdict.violations} != {len(expected)}")
    if tuple(tuple(c) for c in verdict.final_clocks) != clocks:
        problems.append(
            f"final clocks {verdict.final_clocks} != {clocks}")
    if fault == "shard-kill" and router["shard_restarts"] < 1:
        problems.append("shard-kill injected but the supervisor "
                        "recorded no restart")
    return problems


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seeds", type=int, default=3,
                    help="seeds per workload per fault (default 3)")
    ap.add_argument("--backend", default="flat",
                    choices=("flat", "tree", "auto"),
                    help="clock backend for the instrumented control run "
                         "(default flat); tree must give identical verdicts")
    ap.add_argument("--fleet", action="store_true",
                    help="inject against a supervised 2-shard fleet "
                         "(shard-kill + conn-drop) instead of one daemon")
    args = ap.parse_args()

    faults = FLEET_FAULTS if args.fleet else FAULTS
    runner = run_fleet_case if args.fleet else run_case
    failures = 0
    total = 0
    for name, factory, spec, variables in WORKLOADS:
        for seed in range(args.seeds):
            for fault in faults:
                total += 1
                with tempfile.TemporaryDirectory() as ckpt:
                    try:
                        problems = runner(
                            name, factory, spec, variables, seed, fault,
                            ckpt, backend=args.backend)
                    except Exception as exc:  # noqa: BLE001 - smoke harness
                        problems = [f"exception: {exc!r}"]
                tag = f"{name:<8} seed={seed} {fault:<11}"
                if problems:
                    failures += 1
                    print(f"FAIL {tag} " + "; ".join(problems))
                else:
                    print(f"ok   {tag}")
                sys.stdout.flush()
    print(f"\n{total - failures}/{total} chaos cases with verdict parity")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
