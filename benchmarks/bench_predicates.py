"""E11 (extension) — global predicate modalities and deadlock prediction.

§4: "one can start using standard techniques on debugging distributed
systems, considering ... state predicates".  Times Possibly/Definitely
sweeps over growing lattices and the lock-order analysis, and asserts the
qualitative artifacts (dangerous state possible but not definite; the
philosophers' cycle predicted from a clean run).
"""

from conftest import table

from repro.analysis import definitely, find_potential_deadlocks, possibly
from repro.lattice import ComputationLattice
from repro.sched import FixedScheduler, run_program
from repro.sched.program import Acquire, Program, Release, Write, straightline
from repro.workloads import LANDING_VARS


def writers_lattice(n_threads, writes_each):
    program = Program(
        initial={f"v{t}": 0 for t in range(n_threads)},
        threads=[
            straightline([Write(f"v{t}", k + 1) for k in range(writes_each)])
            for t in range(n_threads)
        ],
    )
    ex = run_program(program, FixedScheduler([], strict=False))
    return ComputationLattice(n_threads, {v: 0 for v in program.initial},
                              ex.messages)


def philosophers(n, left_handed=False):
    threads = []
    for i in range(n):
        left, right = f"fork{i}", f"fork{(i + 1) % n}"
        if left_handed and i == n - 1:
            left, right = right, left
        threads.append(straightline([Acquire(left), Acquire(right),
                                     Release(right), Release(left)]))
    return Program(initial={f"fork{i}": 0 for i in range(n)}, threads=threads)


def test_modalities_artifact(landing_execution):
    initial = {v: landing_execution.initial_store[v] for v in LANDING_VARS}
    lat = ComputationLattice(2, initial, landing_execution.messages)
    # the pre-landing hazard window: approved with the radio already down
    hazard = "approved == 1 and radio == 0 and landing == 0"
    rows = [
        ("possibly(hazard window)", True, possibly(lat, hazard).holds),
        ("definitely(hazard window)", False, definitely(lat, hazard).holds),
        ("definitely(final state)", True,
         definitely(lat, "landing == 1 and radio == 0 and approved == 1").holds),
        ("possibly(landing && !approved)", False,
         possibly(lat, "landing == 1 and approved == 0").holds),
    ]
    table("E11 — modalities on the Fig. 5 lattice",
          ["query", "expected", "measured"], rows)
    for _q, want, got in rows:
        assert want == got


def test_deadlock_artifact():
    rows = []
    for n in (3, 4, 5):
        ex = run_program(philosophers(n), FixedScheduler([], strict=False))
        naive = find_potential_deadlocks(ex)
        exf = run_program(philosophers(n, left_handed=True),
                          FixedScheduler([], strict=False))
        fixed = find_potential_deadlocks(exf)
        rows.append((n, len(naive), len(fixed)))
        assert len(naive) == 1 and not fixed
    table("E11 — philosophers' deadlock prediction",
          ["philosophers", "naive: cycles", "left-handed: cycles"], rows)


def test_possibly_benchmark(benchmark):
    lat = writers_lattice(3, 5)
    # worst case: predicate never true -> full sweep
    rep = benchmark(lambda: possibly(lat, "v0 + v1 + v2 == 99"))
    assert not rep.holds


def test_definitely_benchmark(benchmark):
    lat = writers_lattice(3, 5)
    rep = benchmark(lambda: definitely(lat, "v0 == 5 and v1 == 0"))
    assert not rep.holds


def test_deadlock_analysis_benchmark(benchmark):
    ex = run_program(philosophers(6), FixedScheduler([], strict=False))
    reports = benchmark(lambda: find_potential_deadlocks(ex))
    assert len(reports) == 1
