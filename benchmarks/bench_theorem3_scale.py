"""E3 / Theorem 3 — correctness at scale + cost of the clock comparison
kernels.

Theorem 3 is validated exhaustively in the unit tests; here it is re-checked
on a *large* random execution, and the two observer-side kernels (scalar
Theorem-3 point tests vs the numpy ClockArena bulk pass) are timed against
each other for materializing the full ⊳ relation — the ablation that decides
which kernel the CausalityIndex uses where.
"""

import random

import numpy as np
from conftest import table

from repro.core import AlgorithmA, CausalityIndex, Computation
from repro.core.computation import execution_from_specs
from repro.workloads import random_execution_specs


def make_messages(n_events=400, n_threads=4, seed=0):
    rng = random.Random(seed)
    specs = random_execution_specs(rng, n_threads=n_threads, n_vars=4,
                                   n_events=n_events, write_ratio=0.5)
    algo = AlgorithmA(n_threads)
    events = execution_from_specs(specs)
    for e in events:
        algo.process(e.thread, e.kind, e.var, e.value)
    return algo.emitted, events


def test_theorem3_holds_at_scale():
    messages, events = make_messages()
    comp = Computation(events)
    by_eid = {m.event.eid: m for m in messages}
    checked = 0
    for a, b, truth in comp.relevant_pairs():
        assert by_eid[a.eid].causally_precedes(by_eid[b.eid]) == truth
        checked += 1
    table("E3 — Theorem 3 at scale", ["events", "messages", "pairs checked"],
          [(len(events), len(messages), checked)])
    assert checked > 10_000


def test_scalar_kernel_benchmark(benchmark):
    messages, _ = make_messages()
    idx = CausalityIndex(4, messages)
    msgs = idx.messages

    def scalar_full_relation():
        total = 0
        for a in msgs:
            for b in msgs:
                if a is not b and a.causally_precedes(b):
                    total += 1
        return total

    scalar = benchmark(scalar_full_relation)
    assert scalar > 0


def test_numpy_kernel_benchmark(benchmark):
    messages, _ = make_messages()
    idx = CausalityIndex(4, messages)

    def numpy_full_relation():
        return int(idx.relation_matrix().sum())

    bulk = benchmark(numpy_full_relation)
    # cross-check the kernels against each other
    msgs = idx.messages
    scalar = sum(1 for a in msgs for b in msgs
                 if a is not b and a.causally_precedes(b))
    assert bulk == scalar
