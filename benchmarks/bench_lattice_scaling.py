"""E10 — "the computation lattice can grow quite large" (§4).

Measures lattice node count and run count as a function of concurrency
width (threads) and per-thread relevant events.  Shape expected: for k
threads of m independent events, nodes = (m+1)^k and runs = the multinomial
(km)! / (m!)^k — exponential in k, polynomial in m for fixed k.
"""

from math import factorial

from conftest import table

from repro.lattice import ComputationLattice
from repro.sched import FixedScheduler, run_program
from repro.sched.program import Program, Write, straightline


def independent_writers(n_threads, writes_each):
    return Program(
        initial={f"v{t}": 0 for t in range(n_threads)},
        threads=[
            straightline([Write(f"v{t}", k) for k in range(writes_each)])
            for t in range(n_threads)
        ],
        name=f"iw-{n_threads}x{writes_each}",
    )


def lattice_of(n_threads, writes_each):
    program = independent_writers(n_threads, writes_each)
    ex = run_program(program, FixedScheduler([], strict=False))
    initial = {v: 0 for v in program.initial}
    return ComputationLattice(n_threads, initial, ex.messages)


def expected_nodes(k, m):
    return (m + 1) ** k


def expected_runs(k, m):
    return factorial(k * m) // factorial(m) ** k


def test_lattice_growth_shape():
    rows = []
    for k, m in [(1, 4), (2, 2), (2, 4), (3, 2), (3, 3), (4, 2)]:
        lat = lattice_of(k, m)
        nodes, runs = len(lat), lat.count_runs()
        rows.append((f"{k}", f"{m}", nodes, expected_nodes(k, m),
                     runs, expected_runs(k, m)))
        assert nodes == expected_nodes(k, m)
        assert runs == expected_runs(k, m)
    table("E10 — lattice growth (independent writers)",
          ["threads", "events/thread", "nodes", "nodes (closed form)",
           "runs", "runs (closed form)"], rows)


def test_exponential_in_threads():
    sizes = [len(lattice_of(k, 2)) for k in (1, 2, 3, 4)]
    # strictly geometric growth (3^k here)
    ratios = [sizes[i + 1] / sizes[i] for i in range(3)]
    assert all(r == 3 for r in ratios), sizes


def test_lattice_construction_scaling_benchmark(benchmark):
    benchmark(lambda: lattice_of(3, 4))


def test_run_counting_benchmark(benchmark):
    lat = lattice_of(3, 4)
    runs = benchmark(lat.count_runs)
    assert runs == expected_runs(3, 4)
