"""Ablation — multi-spec monitoring: one composite sweep vs N sweeps.

Checks that :func:`predict_many` (a single lattice construction with a
composite monitor) beats N independent :func:`predict` calls when several
properties share the same relevant variables, and that both report identical
verdicts.  Also measures the composite-state blow-up the docs warn about.
"""

import random

from conftest import table

from repro.analysis import predict, predict_many
from repro.logic import Monitor
from repro.sched import RandomScheduler, run_program
from repro.workloads import random_program

SPECS = [
    "historically(v0 >= 0)",
    "start(v0 > 2) -> once(v1 > 0)",
    "[v1 > 0, v0 > 3) or true",
    "(v0 > 1) -> prev(v0 >= 0)",
]


def make_execution(seed=5):
    program = random_program(random.Random(seed), n_threads=3, n_vars=2,
                             ops_per_thread=6, write_ratio=0.7)
    return run_program(program, RandomScheduler(seed))


def test_verdicts_agree():
    ex = make_execution()
    many = predict_many(ex, SPECS)
    rows = []
    for spec in SPECS:
        single = predict(ex, spec)
        key = str(Monitor(spec).formula)
        rows.append((key[:40], bool(single.violations),
                     bool(many[key].violations)))
        assert bool(single.violations) == bool(many[key].violations)
    table("multi-spec vs individual sweeps — verdicts",
          ["spec", "individual", "composite"], rows)


def test_composite_state_overhead():
    ex = make_execution()
    many = predict_many(ex, SPECS)
    shared_stats = next(iter(many.values())).stats
    individual_states = 0
    for spec in SPECS:
        individual_states = max(
            individual_states, predict(ex, spec).stats.peak_resident_states
        )
    table("composite monitor state blow-up",
          ["metric", "value"],
          [("composite peak (cut,mstate) pairs",
            shared_stats.peak_resident_states),
           ("max individual peak", individual_states)])
    # bounded by the product in theory; in practice stays close to linear
    assert shared_stats.peak_resident_states <= individual_states ** len(SPECS)


def test_predict_many_benchmark(benchmark):
    ex = make_execution()
    reports = benchmark(lambda: predict_many(ex, SPECS))
    assert len(reports) == len(SPECS)


def test_individual_sweeps_benchmark(benchmark):
    ex = make_execution()

    def all_individually():
        return [predict(ex, spec) for spec in SPECS]

    reports = benchmark(all_individually)
    assert len(reports) == len(SPECS)
