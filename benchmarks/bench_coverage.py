"""E16 (extension) — coverage of the schedule space, quantified.

§1 motivates the whole technique with testing's "lack of coverage".  This
bench measures it: behavior classes (distinct relevant traces over all
interleavings), how many one observation's lattice covers, and how many
random observations a flat-trace tool vs the predictive tool needs to cover
everything.  It also pins the honest scope: prediction covers *ordering*
variation; *data* variation (different values written) still needs its own
observations.
"""

from conftest import table

from repro.analysis import observations_to_cover, prediction_coverage
from repro.sched import FixedScheduler, Program, run_program
from repro.sched.program import Write, straightline
from repro.workloads import (
    LANDING_OBSERVED_SCHEDULE,
    LANDING_PROPERTY,
    XYZ_OBSERVED_SCHEDULE,
    XYZ_PROPERTY,
    landing_controller,
    xyz_program,
)


def writers(k):
    return Program(
        initial={f"v{i}": 0 for i in range(k)},
        threads=[straightline([Write(f"v{i}", 1)]) for i in range(k)],
        name=f"writers-{k}",
    )


def test_one_observation_coverage():
    rows = []
    landing_ex = run_program(landing_controller(),
                             FixedScheduler(LANDING_OBSERVED_SCHEDULE))
    rep = prediction_coverage(landing_controller(), landing_ex,
                              LANDING_PROPERTY)
    rows.append(("landing", rep.total_classes, rep.covered_classes,
                 f"{rep.covered_violating}/{rep.violating_classes}"))
    assert rep.violating_fraction == 1.0

    xyz_ex = run_program(xyz_program(), FixedScheduler(XYZ_OBSERVED_SCHEDULE))
    rep2 = prediction_coverage(xyz_program(), xyz_ex, XYZ_PROPERTY)
    rows.append(("xyz", rep2.total_classes, rep2.covered_classes,
                 f"{rep2.covered_violating}/{rep2.violating_classes}"))

    for k in (2, 3):
        p = writers(k)
        ex = run_program(p, FixedScheduler([], strict=False))
        r = prediction_coverage(p, ex)
        rows.append((p.name, r.total_classes, r.covered_classes, "-"))
        assert r.fraction == 1.0  # pure ordering variation: full coverage

    table("E16 — behavior classes covered by ONE observation",
          ["program", "classes", "covered", "violating covered"], rows)


def test_observations_to_full_coverage():
    rows = []
    for name, program in [("xyz", xyz_program()), ("writers-3", writers(3))]:
        flat = observations_to_cover(program, predictive=False,
                                     max_observations=400)
        pred = observations_to_cover(program, predictive=True,
                                     max_observations=400)
        rows.append((name, flat, pred))
        assert pred is not None and (flat is None or pred <= flat)
    table("E16 — random observations needed for full class coverage",
          ["program", "flat-trace tool", "predictive tool"], rows)


def test_coverage_analysis_benchmark(benchmark):
    ex = run_program(xyz_program(), FixedScheduler(XYZ_OBSERVED_SCHEDULE))
    rep = benchmark(lambda: prediction_coverage(xyz_program(), ex,
                                                XYZ_PROPERTY))
    assert rep.covered_classes == 3
