"""Spec consistency checking (ISSUE 9) — latency vs formula size.

``repro spec check`` sits on two latency-sensitive paths: the CLI's
up-front ``--spec``/``--engine`` validation and the ``serve
--strict-specs`` handshake gate, where every attach pays one full
consistency check before a session is admitted.  This benchmark measures
check_formula latency against formula size (atoms, temporal depth) and
pins the budget the handshake integration relies on: every spec we ship
(demo registry + workload ``*_PROPERTY`` constants + pattern demos) must
check in **under 100 ms**.  Shape expected: latency grows with the
number of distinct atoms (the representative-state count is exponential
in distinct comparisons, capped by ``max_states``), not with plain
formula length; shipped specs sit well under the budget.
"""

import time

from conftest import table

from repro.cli import DEMOS
from repro.staticcheck.speccheck import (
    SpecCheckOptions,
    check_pattern,
    check_spec_text,
)
from repro.workloads import AUDIT_PROPERTY, LANDING_PROPERTY, XYZ_PROPERTY

BUDGET_MS = 100.0

#: Synthetic families, indexed by size n.
FAMILIES = {
    # n conjoined atoms over one variable: atom count grows, signatures don't
    "and-chain": lambda n: " and ".join(f"x >= {-i}" for i in range(n)),
    # n distinct variables: representative states grow fastest here
    "multi-var": lambda n: " and ".join(f"v{i} >= 0" for i in range(n)),
    # temporal nesting depth n
    "once-tower": lambda n: "once(" * n + "x == 1" + ")" * n,
    # n chained intervals
    "intervals": lambda n: " and ".join(
        f"[a{i} == 1, b{i} == 1)" for i in range(n)),
}

SIZES = (1, 2, 3, 4)


def timed_check(spec, options=None):
    start = time.perf_counter()
    result = check_spec_text(spec, options=options)
    elapsed_ms = (time.perf_counter() - start) * 1000
    return result, elapsed_ms


def shipped_specs():
    """Every spec a user gets without writing one: demo registry +
    workload property constants + a representative pattern selection."""
    specs = {name: demo.spec for name, demo in DEMOS.items()}
    specs["LANDING_PROPERTY"] = LANDING_PROPERTY
    specs["XYZ_PROPERTY"] = XYZ_PROPERTY
    specs["AUDIT_PROPERTY"] = AUDIT_PROPERTY
    try:
        from repro.workloads import RW_PROPERTY
        specs["RW_PROPERTY"] = RW_PROPERTY
    except ImportError:
        pass
    specs["pattern demo"] = "pattern:W(x);R(y);W(x)"
    return specs


def test_speccheck_latency_vs_formula_size():
    rows = []
    for family, make in FAMILIES.items():
        for n in SIZES:
            spec = make(n)
            result, elapsed_ms = timed_check(spec)
            rows.append([family, n, len(result.variables),
                         len(result.domain), result.subformulas_checked,
                         f"{elapsed_ms:.2f}"])
    table("spec check latency vs formula size",
          ["family", "n", "vars", "domain", "subformulas", "ms"],
          rows)
    # shape: every synthetic family stays checkable in interactive time
    for family, n, *_rest, ms in rows:
        assert float(ms) < 10 * BUDGET_MS, (family, n, ms)


def test_shipped_specs_under_handshake_budget():
    """The acceptance bar: every shipped spec checks in < 100 ms, so
    --strict-specs costs at most one spare round-trip at the handshake."""
    rows = []
    worst = 0.0
    for name, spec in sorted(shipped_specs().items()):
        result, elapsed_ms = timed_check(spec)
        worst = max(worst, elapsed_ms)
        rows.append([name, result.kind,
                     "ok" if result.ok else "FINDINGS",
                     f"{elapsed_ms:.2f}"])
        assert result.ok, (name, [d.pretty() for d in result.diagnostics])
        assert elapsed_ms < BUDGET_MS, (
            f"{name} took {elapsed_ms:.1f}ms, budget is {BUDGET_MS}ms")
    rows.append(["(worst)", "", "", f"{worst:.2f}"])
    table("shipped specs vs the 100ms handshake budget",
          ["spec", "kind", "verdict", "ms"], rows)


def test_pattern_checks_are_cheap():
    start = time.perf_counter()
    for _ in range(100):
        check_pattern("W(x);R(y)@T2;W(x)=1")
    per_check_ms = (time.perf_counter() - start) * 10
    table("pattern check amortized cost",
          ["steps", "checks", "ms/check"],
          [[3, 100, f"{per_check_ms:.3f}"]])
    assert per_check_ms < BUDGET_MS


def test_horizon_knob_scales_linearly_not_explosively():
    rows = []
    spec = LANDING_PROPERTY
    for horizon in (3, 5, 8, 12):
        opts = SpecCheckOptions(horizon=horizon)
        result, elapsed_ms = timed_check(spec, options=opts)
        assert result.ok and len(result.witness) == horizon
        rows.append([horizon, len(result.witness), f"{elapsed_ms:.2f}"])
    table("witness horizon vs latency (landing spec)",
          ["horizon", "witness len", "ms"], rows)
