"""E5 — the paper's space optimization: "at most two consecutive levels in
the computation lattice need to be stored at any moment."

Compares peak resident cuts of the level-by-level analyzer against the full
lattice size as concurrency grows, and times both constructions.  Shape
expected: full size grows combinatorially with threads × events, peak
resident stays bounded by the two widest levels (≪ full size for deep
lattices).
"""

import random

from conftest import table

from repro.lattice import ComputationLattice, LevelByLevelBuilder
from repro.sched import RandomScheduler, run_program
from repro.workloads import random_program

# independent writers to distinct variables -> maximal concurrency
SHAPES = [(2, 4), (2, 8), (3, 4), (3, 6), (4, 4)]


def writer_program(n_threads, writes_each):
    from repro.sched.program import Program, Write, straightline

    return Program(
        initial={f"v{t}": 0 for t in range(n_threads)},
        threads=[
            straightline([Write(f"v{t}", k) for k in range(writes_each)])
            for t in range(n_threads)
        ],
        name=f"writers-{n_threads}x{writes_each}",
    )


def run_shape(n_threads, writes_each):
    program = writer_program(n_threads, writes_each)
    ex = run_program(program, RandomScheduler(0))
    variables = sorted(program.default_relevance_vars())
    initial = {v: ex.initial_store[v] for v in variables}
    full = ComputationLattice(n_threads, initial, ex.messages)
    b = LevelByLevelBuilder(n_threads, initial, track_paths=False)
    b.feed_many(ex.messages)
    b.finish()
    return len(full), b.stats.peak_resident_cuts


def test_two_level_memory_bound():
    rows = []
    for n_threads, writes_each in SHAPES:
        full_size, peak = run_shape(n_threads, writes_each)
        rows.append((f"{n_threads}x{writes_each}", full_size, peak,
                     f"{full_size / peak:.1f}x"))
        assert peak <= full_size
    table("E5 — full lattice vs resident cuts (level-by-level)",
          ["threads x writes", "full lattice nodes", "peak resident cuts",
           "savings"],
          rows)
    # deep two-thread lattice: savings must be substantial
    full_size, peak = run_shape(2, 16)
    assert peak * 3 <= full_size, (full_size, peak)


def test_random_programs_memory_bound():
    for seed in range(5):
        program = random_program(random.Random(seed), n_threads=3, n_vars=6,
                                 ops_per_thread=5, write_ratio=0.9)
        ex = run_program(program, RandomScheduler(seed))
        variables = sorted(program.default_relevance_vars())
        initial = {v: ex.initial_store[v] for v in variables}
        full = ComputationLattice(3, initial, ex.messages)
        widths = [len(lv) for lv in full.levels()]
        bound = max((widths[i] + widths[i + 1]
                     for i in range(len(widths) - 1)),
                    default=1)
        b = LevelByLevelBuilder(3, initial, track_paths=False)
        b.feed_many(ex.messages)
        b.finish()
        assert b.stats.peak_resident_cuts <= bound


def test_full_lattice_benchmark(benchmark):
    program = writer_program(3, 6)
    ex = run_program(program, RandomScheduler(0))
    initial = {v: ex.initial_store[v] for v in sorted(program.default_relevance_vars())}
    lat = benchmark(lambda: ComputationLattice(3, initial, ex.messages))
    assert len(lat) == 7 ** 3


def test_level_by_level_benchmark(benchmark):
    program = writer_program(3, 6)
    ex = run_program(program, RandomScheduler(0))
    initial = {v: ex.initial_store[v] for v in sorted(program.default_relevance_vars())}

    def build():
        b = LevelByLevelBuilder(3, initial, track_paths=False)
        b.feed_many(ex.messages)
        b.finish()
        return b

    b = benchmark(build)
    assert b.stats.nodes_expanded == 7 ** 3
