"""E8 — synchronization events prune the lattice (§3.1).

Locks become shared-variable writes, installing happens-before edges between
critical sections; the lattice of the locked program must be dramatically
smaller (fewer runs) than the unlocked one for the same workload shape, and
all lock-violating interleavings must be gone.
"""

from conftest import table

from repro.core import all_accesses
from repro.lattice import ComputationLattice
from repro.sched import FixedScheduler, run_program
from repro.sched.program import Acquire, Program, Release, Write, straightline


def cs_program(n_threads, writes_each, locked):
    """Each thread writes its own variable `writes_each` times inside (or
    not) a shared critical section — distinct variables keep the unlocked
    version maximally concurrent."""
    threads = []
    for t in range(n_threads):
        ops = []
        if locked:
            ops.append(Acquire("L"))
        ops += [Write(f"v{t}", k) for k in range(writes_each)]
        if locked:
            ops.append(Release("L"))
        threads.append(straightline(ops))
    initial = {f"v{t}": 0 for t in range(n_threads)}
    if locked:
        initial["L"] = 0
    return Program(initial=initial, threads=threads,
                   name=f"cs-{'locked' if locked else 'free'}")


def lattice_of(program):
    ex = run_program(program, FixedScheduler([], strict=False),
                     relevance=all_accesses(set(program.initial) - {"L"}))
    variables = sorted(set(program.initial) - {"L"})
    initial = {v: ex.initial_store[v] for v in variables}
    return ComputationLattice(program.n_threads, initial, ex.messages)


def test_sync_pruning_shape():
    rows = []
    for n_threads, writes in [(2, 2), (2, 3), (3, 2)]:
        free = lattice_of(cs_program(n_threads, writes, locked=False))
        locked = lattice_of(cs_program(n_threads, writes, locked=True))
        rows.append((f"{n_threads}x{writes}",
                     len(free), free.count_runs(),
                     len(locked), locked.count_runs()))
        # the locked lattice is a chain: exactly one run
        assert locked.count_runs() == 1
        assert free.count_runs() > 1
    table("E8 — lattice size with and without lock events",
          ["threads x writes", "free nodes", "free runs",
           "locked nodes", "locked runs"], rows)


def test_critical_sections_never_interleave_in_any_run():
    locked = lattice_of(cs_program(3, 2, locked=True))
    for run in locked.runs():
        owners = [m.thread for m in run.messages]
        # writes of each thread form one contiguous block
        seen = []
        for t in owners:
            if not seen or seen[-1] != t:
                seen.append(t)
        assert len(seen) == 3, owners


def test_unlocked_lattice_benchmark(benchmark):
    p = cs_program(3, 3, locked=False)
    benchmark(lambda: lattice_of(p))


def test_locked_lattice_benchmark(benchmark):
    p = cs_program(3, 3, locked=True)
    benchmark(lambda: lattice_of(p))
