"""Spec-relevance slicing (ISSUE 4) — event volume, full vs sliced.

The slicer (``repro.staticcheck.slicer``) computes the transitively-closed
relevant-variable set from a specification and the program's data flow;
the instrumentation layer then drops (predicate route) or silences (quiet
route) everything outside it.  This benchmark measures what the paper's
"extract the relevant variables from the specification" (§4.1) buys: total
event/message counts and events/sec of the monitored run, full vs sliced,
on three workloads.  Shape expected: sliced runs never emit more, and emit
strictly less wherever the spec leaves a variable out of the slice;
verdicts are identical either way (the parity tests pin this).
"""

import time

from conftest import table

from repro.analysis import predict
from repro.sched import RandomScheduler, run_program
from repro.staticcheck import close_slice, python_flows, spec_variables
from repro.workloads import (
    handoff,
    producer_consumer,
    transfer_program,
    xyz_program,
)

#: (name, program factory, spec) — specs chosen so at least one shared
#: variable falls outside the slice.
WORKLOADS = [
    ("xyz", xyz_program, "x >= -1"),
    ("bank", transfer_program, "audited == 0 || audited == 1"),
    ("prodcons", lambda: producer_consumer(3), "consumed >= 0"),
    ("handoff", handoff, "done == 0 || data == 42"),
]

SEED = 11


def compute_slice(factory, spec):
    program = factory()
    shared = program.default_relevance_vars()
    flows = python_flows(list(program.threads), shared)
    return close_slice(spec_variables(spec), flows, shared=shared)


def timed_run(factory, relevance):
    start = time.perf_counter()
    ex = run_program(factory(), RandomScheduler(SEED), relevance=relevance)
    elapsed = time.perf_counter() - start
    return ex, elapsed


def test_slicing_event_volume_shape():
    rows = []
    any_reduced = False
    for name, factory, spec in WORKLOADS:
        sl = compute_slice(factory, spec)
        full, t_full = timed_run(factory, None)
        sliced, t_sliced = timed_run(factory, sl.predicate())

        v_full = predict(full, spec)
        v_sliced = predict(sliced, spec)
        assert (v_full.observed_ok, bool(v_full.violations)) == \
            (v_sliced.observed_ok, bool(v_sliced.violations)), name

        n_full, n_sliced = len(full.messages), len(sliced.messages)
        assert n_sliced <= n_full, name
        if sl.irrelevant:
            assert n_sliced < n_full, name
            any_reduced = True
        rate_full = n_full / t_full if t_full else float("inf")
        rate_sliced = n_sliced / t_sliced if t_sliced else float("inf")
        reduction = 100.0 * (1 - n_sliced / n_full) if n_full else 0.0
        rows.append((name, len(sl.relevant), len(sl.irrelevant),
                     n_full, n_sliced, f"{reduction:.0f}%",
                     f"{rate_full:,.0f}", f"{rate_sliced:,.0f}"))
    table("Spec-relevance slicing — observer message volume",
          ["workload", "relevant", "sliced out", "msgs full", "msgs sliced",
           "reduction", "msg/s full", "msg/s sliced"], rows)
    assert any_reduced  # slicing pays off on at least one workload


def test_slice_computation_is_cheap(benchmark):
    name, factory, spec = WORKLOADS[0]
    sl = benchmark(lambda: compute_slice(factory, spec))
    assert "x" in sl.relevant


def test_full_run_benchmark(benchmark):
    _, factory, _ = WORKLOADS[0]
    ex = benchmark(lambda: run_program(factory(), RandomScheduler(SEED)))
    assert ex.messages


def test_sliced_run_benchmark(benchmark):
    name, factory, spec = WORKLOADS[0]
    sl = compute_slice(factory, spec)
    ex = benchmark(lambda: run_program(factory(), RandomScheduler(SEED),
                                       relevance=sl.predicate()))
    assert len(ex.messages) > 0
