"""E7 — tolerance to message reordering (§2.2), and its buffering cost.

The observer must compute identical verdicts whatever the delivery order;
this bench validates verdict-invariance across adversarial channels and
times observer ingestion under FIFO vs reordered vs multi-channel delivery
(the buffering/stall overhead of out-of-order arrival).
"""

import random

from conftest import table

from repro.observer import (
    FifoChannel,
    MultiChannel,
    Observer,
    ReorderingChannel,
    deliver_all,
)
from repro.sched import RandomScheduler, run_program
from repro.workloads import XYZ_PROPERTY, XYZ_VARS, random_program


def big_execution(seed=0):
    program = random_program(random.Random(seed), n_threads=3, n_vars=4,
                             ops_per_thread=40, write_ratio=0.5)
    return program, run_program(program, RandomScheduler(seed))


def observe(execution, variables, delivery, spec=None):
    initial = {v: execution.initial_store[v] for v in variables}
    obs = Observer(execution.n_threads, initial, spec=spec)
    obs.receive_many(delivery)
    obs.finish()
    return obs


def test_verdict_invariance_across_channels(xyz_execution):
    verdicts = []
    channels = [
        ("fifo", FifoChannel()),
        ("reorder-w3", ReorderingChannel(seed=1, window=3)),
        ("reorder-unbounded", ReorderingChannel(seed=2, window=None)),
        ("multi-2", MultiChannel(k=2, seed=3)),
    ]
    rows = []
    for name, ch in channels:
        delivery = deliver_all(ch, xyz_execution.messages)
        obs = observe(xyz_execution, XYZ_VARS, delivery, spec=XYZ_PROPERTY)
        verdicts.append(len(obs.violations))
        rows.append((name, [m.event.label for m in delivery],
                     len(obs.violations)))
    table("E7 — delivery order vs verdict", ["channel", "order", "violations"],
          rows)
    assert set(verdicts) == {1}


def test_causality_identical_under_reordering():
    program, ex = big_execution()
    variables = sorted(program.default_relevance_vars())
    ref = observe(ex, variables, list(ex.messages))
    ref_matrix = ref.causality.relation_matrix()
    ref_eids = [m.event.eid for m in ref.causality.messages]
    for seed in range(4):
        delivery = deliver_all(ReorderingChannel(seed=seed, window=5),
                               ex.messages)
        obs = observe(ex, variables, delivery)
        # align by event id before comparing relations
        order = [obs.causality.messages.index(obs.causality.message(e))
                 for e in ref_eids]
        m = obs.causality.relation_matrix()[order][:, order]
        assert (m == ref_matrix).all()


def test_observer_fifo_benchmark(benchmark):
    program, ex = big_execution()
    variables = sorted(program.default_relevance_vars())
    delivery = deliver_all(FifoChannel(), ex.messages)
    benchmark(lambda: observe(ex, variables, delivery))


def test_observer_reordered_benchmark(benchmark):
    program, ex = big_execution()
    variables = sorted(program.default_relevance_vars())
    delivery = deliver_all(ReorderingChannel(seed=7, window=8), ex.messages)
    benchmark(lambda: observe(ex, variables, delivery))


def test_observer_multichannel_benchmark(benchmark):
    program, ex = big_execution()
    variables = sorted(program.default_relevance_vars())
    delivery = deliver_all(MultiChannel(k=3, seed=7), ex.messages)
    benchmark(lambda: observe(ex, variables, delivery))
