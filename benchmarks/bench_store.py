"""Trace-archive costs: v2 vs v1 format throughput and replay overhead.

Three questions a deployment asks of the store:

* what does the v2 segment format cost (and save) against v1 JSONL —
  write/read throughput and bytes per event;
* what does deterministic replay cost relative to the live analysis it
  reproduces (the ``repro replay --all --expect-catalog`` budget);
* does the archive round-trip scale linearly in events.
"""

import random
import time

from repro.core import AlgorithmA
from repro.logic import Monitor
from repro.observer.observer import Observer
from repro.observer.trace import read_trace, write_trace
from repro.store import SegmentWriter, TraceArchive, read_trace_v2, replay_entry
from repro.store.replay import replay_trace

from conftest import table

N_EVENTS = 5_000
N_THREADS = 4
SPEC = "v0 >= 0"


def make_messages(n=N_EVENTS, n_threads=N_THREADS, seed=0):
    rng = random.Random(seed)
    algo = AlgorithmA(n_threads)
    for k in range(n):
        algo.on_write(rng.randrange(n_threads), f"v{k % 8}", k)
    return algo.emitted


def initial_store():
    return {f"v{i}": 0 for i in range(8)}


def write_v2(path, msgs, **kw):
    with SegmentWriter(path, N_THREADS, initial_store(), **kw) as w:
        for m in msgs:
            w.write(m)
    return w


def test_v2_write_benchmark(benchmark, tmp_path):
    msgs = make_messages()
    path = tmp_path / "big.rpt"
    w = benchmark(lambda: write_v2(path, msgs))
    assert w.count == N_EVENTS


def test_v2_read_benchmark(benchmark, tmp_path):
    msgs = make_messages()
    path = tmp_path / "big.rpt"
    write_v2(path, msgs)
    trace = benchmark(lambda: read_trace_v2(path))
    assert len(trace.messages) == N_EVENTS
    assert [tuple(m.clock) for m in trace.messages[:50]] == [
        tuple(m.clock) for m in msgs[:50]]


def test_format_comparison(tmp_path):
    """v1 vs v2: throughput and size on the same 5k-event stream."""
    msgs = make_messages()
    rows = []
    v1, v2 = tmp_path / "t.trace", tmp_path / "t.rpt"

    t0 = time.perf_counter()
    write_trace(v1, N_THREADS, initial_store(), msgs)
    w1 = time.perf_counter() - t0
    t0 = time.perf_counter()
    read_trace(v1)
    r1 = time.perf_counter() - t0

    t0 = time.perf_counter()
    write_v2(v2, msgs)
    w2 = time.perf_counter() - t0
    t0 = time.perf_counter()
    read_trace_v2(v2)
    r2 = time.perf_counter() - t0

    for name, path, wt, rt in (("v1 jsonl", v1, w1, r1),
                               ("v2 segments", v2, w2, r2)):
        size = path.stat().st_size
        rows.append((name, f"{N_EVENTS / wt:,.0f}", f"{N_EVENTS / rt:,.0f}",
                     size, f"{size / N_EVENTS:.1f}"))
    table("trace format v1 vs v2 (5k events, 4 threads)",
          ["format", "write ev/s", "read ev/s", "bytes", "bytes/event"],
          rows)
    # the compressed segment format must be substantially smaller
    assert v2.stat().st_size < 0.5 * v1.stat().st_size


def test_replay_vs_live_overhead(tmp_path):
    """Replay must cost about the same as the live analysis it reproduces —
    it runs the identical pipeline, plus segment decompression."""
    msgs = make_messages(n=2_000)

    t0 = time.perf_counter()
    observer = Observer(N_THREADS, initial_store(), spec=Monitor(SPEC),
                        causal_log=True)
    for m in msgs:
        observer.receive(m)
    observer.finish()
    live = time.perf_counter() - t0

    archive = TraceArchive(tmp_path / "arch")
    entry = archive.record_messages("bench", N_THREADS, initial_store(),
                                    msgs, spec=SPEC)
    t0 = time.perf_counter()
    result = replay_entry(archive, entry)
    replay = time.perf_counter() - t0

    table("replay vs live analysis (2k events, spec on)",
          ["path", "wall s", "events/s"],
          [("live pipeline", f"{live:.4f}", f"{2_000 / live:,.0f}"),
           ("archived replay", f"{replay:.4f}", f"{2_000 / replay:,.0f}"),
           ("ratio", f"{replay / live:.2f}x", "")])
    assert result.violations == len(observer.violations)
    assert result.events == 2_000
    # same pipeline + decompression: allow generous CI jitter, catch
    # an accidental quadratic replay path
    assert replay < 20 * live


def test_replay_scaling(tmp_path):
    """Replay wall time grows linearly in archived events."""
    rows = []
    rates = []
    for n in (500, 2_000, 8_000):
        path = tmp_path / f"s{n}.rpt"
        write_v2(path, make_messages(n=n))
        t0 = time.perf_counter()
        result = replay_trace(path, spec=SPEC)
        dt = time.perf_counter() - t0
        assert result.events == n
        rates.append(n / dt)
        rows.append((n, f"{dt:.4f}", f"{n / dt:,.0f}"))
    table("replay scaling (v2 archive, spec on)",
          ["events", "wall s", "events/s"], rows)
    # linear: throughput at 16x the events stays within ~8x of the small run
    assert max(rates) / min(rates) < 8
