"""Multi-session analysis server throughput.

The deployment question the server answers: how many attach→stream→verdict
round-trips per second can one daemon sustain, and what does per-event
ingestion cost once the reliable framing, the session queue and the worker
pool are all in the path?  Sessions here run the paper's xyz workload, so
each one exercises the full predictive pipeline (Algorithm A clocks in,
lattice verdicts out).
"""

import threading
import time

from conftest import table

from repro.sched import FixedScheduler, run_program
from repro.server import AnalysisServer, ServerConfig, attach
from repro.workloads import XYZ_OBSERVED_SCHEDULE, XYZ_PROPERTY, xyz_program

N_SESSIONS = 16


def _xyz_run():
    execution = run_program(xyz_program(),
                            FixedScheduler(XYZ_OBSERVED_SCHEDULE))
    initial = {v: execution.initial_store[v] for v in ("x", "y", "z")}
    return execution, initial


def _run_session(srv, execution, initial):
    session = attach(srv.host, srv.port, n_threads=execution.n_threads,
                     initial=initial, spec=XYZ_PROPERTY, program="xyz")
    for m in execution.messages:
        session.send(m)
    return session.close()


def test_sessions_per_second_benchmark(benchmark):
    execution, initial = _xyz_run()
    with AnalysisServer(ServerConfig(port=0, workers=2,
                                     max_sessions=N_SESSIONS)) as srv:

        def sequential_sessions():
            for _ in range(N_SESSIONS):
                verdict = _run_session(srv, execution, initial)
                assert verdict.state == "finished"
            return N_SESSIONS

        t0 = time.perf_counter()
        n = benchmark(sequential_sessions)
        elapsed = time.perf_counter() - t0
    rate = n / elapsed
    table("server session throughput (xyz workload, full round-trip)",
          ["sessions", "mean s/batch", "sessions/s"],
          [(n, f"{elapsed:.4f}", f"{rate:.1f}")])
    assert rate > 1   # sanity floor: a session is well under a second


def test_concurrent_sessions_benchmark(benchmark):
    execution, initial = _xyz_run()
    with AnalysisServer(ServerConfig(port=0, workers=4,
                                     max_sessions=N_SESSIONS)) as srv:

        def concurrent_sessions():
            verdicts = [None] * N_SESSIONS

            def client(i):
                verdicts[i] = _run_session(srv, execution, initial)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(N_SESSIONS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(v is not None and v.state == "finished"
                       for v in verdicts)
            return N_SESSIONS

        t0 = time.perf_counter()
        n = benchmark(concurrent_sessions)
        elapsed = time.perf_counter() - t0
    rate = n / elapsed
    table("server session throughput (16 concurrent clients)",
          ["sessions", "mean s/batch", "sessions/s"],
          [(n, f"{elapsed:.4f}", f"{rate:.1f}")])
    assert rate > 1


def test_server_event_throughput_benchmark(benchmark):
    """Per-event cost through the whole ingest path, amortized over a
    longer stream (no spec: isolates transport + queue + observer clocks
    from lattice exploration)."""
    import random

    from repro.core import AlgorithmA

    rng = random.Random(7)
    algo = AlgorithmA(4)
    for k in range(2_000):
        algo.on_write(rng.randrange(4), f"v{k % 8}", k)
    msgs = algo.emitted
    initial = {f"v{i}": 0 for i in range(8)}

    with AnalysisServer(ServerConfig(port=0, workers=2)) as srv:

        def stream_all():
            session = attach(srv.host, srv.port, n_threads=4,
                             initial=initial, spec=None, program="firehose")
            for m in msgs:
                session.send(m)
            verdict = session.close()
            assert verdict.state == "finished"
            assert verdict.analyzed == len(msgs)
            return len(msgs)

        t0 = time.perf_counter()
        n = benchmark(stream_all)
        elapsed = time.perf_counter() - t0
    table("server event ingest (no spec, 4 threads)",
          ["events", "mean s", "events/s"],
          [(n, f"{elapsed:.4f}", f"{n / elapsed:.0f}")])
