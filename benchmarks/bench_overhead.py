"""E6 — instrumentation overhead ("All these can add significant delays to
the normal execution of programs", §1), plus the MVC-kernel ablation.

Reported series:

* per-event cost of Algorithm A as the thread count n grows (clock width);
* per-event cost as the variable count grows (clock table pressure);
* instrumented vs uninstrumented execution of the same cooperative program;
* list-backed MutableVectorClock vs numpy vectors for the in-place merge —
  the DESIGN.md §4.1 ablation justifying the list kernel on the hot path.
"""

import random

import numpy as np
import pytest
from conftest import table

from repro.core import AlgorithmA, EventKind
from repro.core.vectorclock import MutableVectorClock
from repro.sched import FixedScheduler, run_program
from repro.workloads import random_program

N_EVENTS = 2_000


def drive_algorithm(n_threads, n_vars, n_events=N_EVENTS, seed=0):
    rng = random.Random(seed)
    algo = AlgorithmA(n_threads)
    variables = [f"v{i}" for i in range(n_vars)]
    for k in range(n_events):
        t = rng.randrange(n_threads)
        var = variables[k % n_vars]
        if k % 2:
            algo.on_write(t, var, k)
        else:
            algo.on_read(t, var)
    return algo


@pytest.mark.parametrize("n_threads", [2, 8, 32, 128])
def test_per_event_cost_vs_threads(benchmark, n_threads):
    benchmark.extra_info["n_threads"] = n_threads
    algo = benchmark(lambda: drive_algorithm(n_threads, n_vars=8))
    assert len(algo.emitted) == N_EVENTS // 2


@pytest.mark.parametrize("n_vars", [1, 16, 256])
def test_per_event_cost_vs_variables(benchmark, n_vars):
    benchmark.extra_info["n_vars"] = n_vars
    algo = benchmark(lambda: drive_algorithm(4, n_vars=n_vars))
    assert algo.variables


def test_instrumented_vs_plain_execution():
    """End-to-end slowdown of running a program with Algorithm A attached
    (the scheduler always attaches it; the 'plain' variant uses a
    no-relevance predicate and measures the irreducible part)."""
    import time

    program = random_program(random.Random(1), n_threads=4, n_vars=4,
                             ops_per_thread=400, write_ratio=0.5)

    def run(relevance):
        t0 = time.perf_counter()
        run_program(program, FixedScheduler([], strict=False),
                    relevance=relevance)
        return time.perf_counter() - t0

    full = min(run(lambda e: e.kind.is_write) for _ in range(5))
    silent = min(run(lambda e: False) for _ in range(5))
    table("E6 — execution time with/without message emission",
          ["variant", "seconds"],
          [("emitting writes", f"{full:.4f}"),
           ("no relevant events", f"{silent:.4f}"),
           ("ratio", f"{full / silent:.2f}x")])
    # messages cost something, but the same order of magnitude
    assert full < silent * 10


def test_mvc_kernel_list_benchmark(benchmark):
    """Ablation: in-place merge with Python int lists (the shipped kernel)."""
    width = 32
    a = MutableVectorClock([1] * width)
    b = MutableVectorClock(list(range(width)))

    def merge_loop():
        for _ in range(1000):
            a.merge(b)
        return a

    benchmark(merge_loop)


def test_mvc_kernel_numpy_benchmark(benchmark):
    """Ablation: the same merge through numpy maximum (per-call dispatch
    dominates at small widths — this is why the list kernel ships)."""
    width = 32
    a = np.ones(width, dtype=np.int64)
    b = np.arange(width, dtype=np.int64)

    def merge_loop():
        out = a
        for _ in range(1000):
            np.maximum(out, b, out=out)
        return out

    benchmark(merge_loop)


def test_obs_disabled_guard_overhead():
    """The observability hooks must be ~free when off: the flag checks they
    compile down to must cost <5% of one Algorithm A event.

    Measured directly: (a) the per-event cost of the instrumented algorithm
    with observability disabled, (b) the net cost of one disabled
    ``if ENABLED:`` guard (loop cost subtracted), scaled by the four guard
    evaluations on the per-event hot path (tracing gate + event counter +
    join counter + message counter).
    """
    import time

    from repro.obs import metrics, tracing

    assert not metrics.ENABLED and not tracing.ENABLED

    event_s = min(_timed(lambda: drive_algorithm(8, n_vars=8))
                  for _ in range(5))
    event_ns = event_s / N_EVENTS * 1e9

    n = 1_000_000
    t0 = time.perf_counter()
    for _ in range(n):
        if metrics.ENABLED:
            raise AssertionError("metrics unexpectedly enabled")
    guarded_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(n):
        pass
    empty_s = time.perf_counter() - t0
    guard_ns = max(0.0, (guarded_s - empty_s) / n * 1e9)

    overhead = 4 * guard_ns / event_ns
    table("E6 — disabled-observability guard overhead",
          ["quantity", "value"],
          [("per-event cost (obs off)", f"{event_ns:.0f} ns"),
           ("one disabled guard", f"{guard_ns:.1f} ns"),
           ("guards per event", "4"),
           ("overhead", f"{overhead:.2%}")])
    assert overhead < 0.05


def test_obs_enabled_vs_disabled():
    """Cost of turning the whole observability layer on (metrics + spans on
    every event).  No hard budget — enabling is opt-in — but it must stay
    within an order of magnitude of the plain run."""
    from repro import obs

    disabled_s = min(_timed(lambda: drive_algorithm(8, n_vars=8))
                     for _ in range(5))
    obs.enable(reset=True)
    try:
        enabled_s = min(_timed(lambda: drive_algorithm(8, n_vars=8))
                        for _ in range(5))
        events = obs.metrics.REGISTRY.counter("algoa.events").value
    finally:
        # disable but do NOT reset: --emit-json snapshots these counts
        obs.disable()
    assert events == 5 * N_EVENTS  # counters accumulate across the 5 reps
    table("E6 — observability enabled vs disabled",
          ["variant", "seconds", "per event"],
          [("obs disabled", f"{disabled_s:.4f}",
            f"{disabled_s / N_EVENTS * 1e9:.0f} ns"),
           ("obs enabled", f"{enabled_s:.4f}",
            f"{enabled_s / N_EVENTS * 1e9:.0f} ns"),
           ("ratio", f"{enabled_s / disabled_s:.2f}x", "")])
    assert enabled_s < disabled_s * 10


def _timed(fn):
    import time

    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_sync_only_mode_not_slower(benchmark):
    """sync_only_clocks skips the variable-clock merges for data accesses;
    it must never cost more than the full algorithm."""
    def drive(sync_only):
        algo = AlgorithmA(8, sync_only_clocks=sync_only)
        for k in range(N_EVENTS):
            if k % 2:
                algo.on_write(k % 8, "x", k)
            else:
                algo.on_read(k % 8, "x")
        return algo

    benchmark(lambda: drive(True))
