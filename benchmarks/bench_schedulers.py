"""Ablation — scheduler strategies vs bug exposure and prediction coverage.

Compares, on the landing controller: how often each *testing* strategy
exposes the bug on the observed trace (uniform random, PCT at depths 2/3,
round-robin), against the exhaustive ground-truth violation rate
(model_check) and against predictive analysis (which needs only one clean
run).  Shape expected: prediction ≈ certain from any single run; PCT beats
uniform at narrow windows; round-robin (deterministic) either always or
never sees it.
"""

from conftest import table

from repro.analysis import detect, model_check, predict
from repro.sched import (
    PCTScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    run_program,
)
from repro.workloads import LANDING_PROPERTY, landing_controller

N = 150


def program():
    # narrow race window: radio drops on the 3rd check of 8
    return landing_controller(radio_down_iteration=3, max_radio_checks=8)


def rate(scheduler_factory, n=N):
    hits = 0
    for seed in range(n):
        ex = run_program(program(), scheduler_factory(seed))
        if not detect(ex, LANDING_PROPERTY).ok:
            hits += 1
    return hits / n


def test_scheduler_comparison():
    ground = model_check(program(), LANDING_PROPERTY, max_executions=100_000)
    uniform = rate(lambda s: RandomScheduler(s))
    pct2 = rate(lambda s: PCTScheduler(seed=s, depth=2, expected_steps=16))
    pct3 = rate(lambda s: PCTScheduler(seed=s, depth=3, expected_steps=16))
    rr = rate(lambda s: RoundRobinScheduler(quantum=1 + s % 3))

    # prediction from one clean run (first uniform seed with a clean trace)
    predicted = None
    for seed in range(N):
        ex = run_program(program(), RandomScheduler(seed))
        if detect(ex, LANDING_PROPERTY).ok:
            predicted = bool(predict(ex, LANDING_PROPERTY).violations)
            break

    rows = [
        ("exhaustive (ground truth)",
         f"{ground.violating_runs}/{ground.total_runs} runs violate"),
        ("uniform random, observed-trace", f"{uniform:.3f}"),
        ("PCT depth 2, observed-trace", f"{pct2:.3f}"),
        ("PCT depth 3, observed-trace", f"{pct3:.3f}"),
        ("round-robin, observed-trace", f"{rr:.3f}"),
        ("predictive, from ONE clean run", "1.000" if predicted else "0.000"),
    ]
    table("Scheduler strategies vs bug exposure (landing, narrow window)",
          ["strategy", "detection"], rows)

    assert ground.violating_runs > 0
    assert predicted, "prediction must catch the bug from a single clean run"
    # every sampling strategy is imperfect on the narrow window
    assert max(uniform, pct2, pct3) < 1.0


def test_uniform_random_benchmark(benchmark):
    benchmark(lambda: run_program(program(), RandomScheduler(1)))


def test_pct_benchmark(benchmark):
    benchmark(lambda: run_program(program(),
                                  PCTScheduler(seed=1, depth=3,
                                               expected_steps=16)))


def test_model_check_benchmark(benchmark):
    result = benchmark(lambda: model_check(program(), LANDING_PROPERTY,
                                           max_executions=100_000))
    assert result.total_runs > 100
