"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one artifact of the paper's evaluation (see
DESIGN.md §3 for the experiment index).  Shape claims are asserted; timings
go through pytest-benchmark; the printed tables (run with ``-s`` to see
them live) are the rows recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json

import pytest

from repro.sched import FixedScheduler, run_program
from repro.workloads import (
    LANDING_OBSERVED_SCHEDULE,
    XYZ_OBSERVED_SCHEDULE,
    landing_controller,
    xyz_program,
)

#: Every table printed this session, in order, for ``--emit-json``.
_RECORDED_TABLES: list[dict] = []


def pytest_addoption(parser):
    parser.addoption(
        "--emit-json", default=None, metavar="FILE",
        help="write every benchmark table printed this session, plus a "
             "snapshot of the repro.obs metrics registry, to FILE as JSON")


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--emit-json")
    if not path:
        return
    from repro.obs import metrics

    payload = {
        "tables": _RECORDED_TABLES,
        "metrics": metrics.REGISTRY.snapshot(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)


@pytest.fixture(scope="session")
def landing_execution():
    return run_program(landing_controller(), FixedScheduler(LANDING_OBSERVED_SCHEDULE))


@pytest.fixture(scope="session")
def xyz_execution():
    return run_program(xyz_program(), FixedScheduler(XYZ_OBSERVED_SCHEDULE))


def table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Print an aligned table (visible with ``pytest -s``)."""
    _RECORDED_TABLES.append({
        "title": title,
        "headers": [str(h) for h in headers],
        "rows": [[str(c) for c in r] for r in rows],
    })
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
              for i, h in enumerate(headers)]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
