"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one artifact of the paper's evaluation (see
DESIGN.md §3 for the experiment index).  Shape claims are asserted; timings
go through pytest-benchmark; the printed tables (run with ``-s`` to see
them live) are the rows recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sched import FixedScheduler, run_program
from repro.workloads import (
    LANDING_OBSERVED_SCHEDULE,
    XYZ_OBSERVED_SCHEDULE,
    landing_controller,
    xyz_program,
)

#: Every table printed this session, in order, for ``--emit-json``.
_RECORDED_TABLES: list[dict] = []


def pytest_addoption(parser):
    parser.addoption(
        "--emit-json", default=None, metavar="FILE",
        help="write every benchmark table printed this session, plus a "
             "snapshot of the repro.obs metrics registry, to FILE as JSON")
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="reduced problem sizes and relaxed throughput floors — the "
             "CI perf-smoke configuration, not for committed baselines")


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--emit-json")
    if not path:
        return
    from repro.obs import metrics

    payload = {
        "tables": _RECORDED_TABLES,
        "metrics": metrics.REGISTRY.snapshot(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """True when the session runs with ``--quick`` (CI perf-smoke)."""
    return bool(request.config.getoption("--quick"))


#: Repo root — where the committed ``BENCH_*.json`` baselines live.
REPO_ROOT = Path(__file__).resolve().parent.parent


def load_baseline(name: str) -> dict:
    """Read a committed ``BENCH_*.json`` baseline, failing *clearly*.

    A missing or schema-mismatched baseline is an actionable setup problem
    (regenerate and commit the file), not a bug in the caller — so this
    fails the test with a one-line instruction instead of a traceback.
    """
    path = REPO_ROOT / name
    regen = (f"regenerate with: PYTHONPATH=src python -m pytest -s "
             f"benchmarks/<bench> --emit-json {name}  (see docs/PERFORMANCE.md)")
    if not path.exists():
        pytest.fail(f"benchmark baseline {name} is missing from the repo "
                    f"root — {regen}", pytrace=False)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        pytest.fail(f"benchmark baseline {name} is not valid JSON "
                    f"({exc}) — {regen}", pytrace=False)
    if not isinstance(data, dict) or not isinstance(data.get("tables"), list) \
            or not isinstance(data.get("metrics"), dict):
        pytest.fail(f"benchmark baseline {name} has the wrong shape "
                    f"(expected {{'tables': [...], 'metrics': {{...}}}}, "
                    f"got top-level keys "
                    f"{sorted(data) if isinstance(data, dict) else type(data).__name__}) "
                    f"— {regen}", pytrace=False)
    for i, t in enumerate(data["tables"]):
        if not isinstance(t, dict) or not {"title", "headers", "rows"} <= set(t):
            pytest.fail(f"benchmark baseline {name} table #{i} is malformed "
                        f"(needs title/headers/rows) — {regen}", pytrace=False)
    return data


def baseline_table(data: dict, title_prefix: str, name: str) -> dict:
    """First table whose title starts with ``title_prefix``; clear failure
    when the baseline predates the table."""
    for t in data["tables"]:
        if t["title"].startswith(title_prefix):
            return t
    pytest.fail(
        f"benchmark baseline {name} has no table titled '{title_prefix}…' — "
        f"it predates the current bench; regenerate and commit it",
        pytrace=False)


@pytest.fixture(scope="session")
def landing_execution():
    return run_program(landing_controller(), FixedScheduler(LANDING_OBSERVED_SCHEDULE))


@pytest.fixture(scope="session")
def xyz_execution():
    return run_program(xyz_program(), FixedScheduler(XYZ_OBSERVED_SCHEDULE))


def table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Print an aligned table (visible with ``pytest -s``)."""
    _RECORDED_TABLES.append({
        "title": title,
        "headers": [str(h) for h in headers],
        "rows": [[str(c) for c in r] for r in rows],
    })
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
              for i, h in enumerate(headers)]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
