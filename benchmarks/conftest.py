"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one artifact of the paper's evaluation (see
DESIGN.md §3 for the experiment index).  Shape claims are asserted; timings
go through pytest-benchmark; the printed tables (run with ``-s`` to see
them live) are the rows recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.sched import FixedScheduler, run_program
from repro.workloads import (
    LANDING_OBSERVED_SCHEDULE,
    XYZ_OBSERVED_SCHEDULE,
    landing_controller,
    xyz_program,
)


@pytest.fixture(scope="session")
def landing_execution():
    return run_program(landing_controller(), FixedScheduler(LANDING_OBSERVED_SCHEDULE))


@pytest.fixture(scope="session")
def xyz_execution():
    return run_program(xyz_program(), FixedScheduler(XYZ_OBSERVED_SCHEDULE))


def table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Print an aligned table (visible with ``pytest -s``)."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
              for i, h in enumerate(headers)]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
