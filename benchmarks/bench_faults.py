"""E12 — cost of fault tolerance and the indexed causal-delivery buffer.

Two claims backed by timings:

* the fault-tolerant ingestion path (envelopes, checksums, duplicate
  suppression, gap tracking) costs only a modest constant factor over the
  strict path on a clean wire;
* the indexed release in ``CausalDelivery`` (waiters keyed by their first
  blocking slot) keeps ingestion fast even under heavy reordering, where a
  scan-all-waiters design would go quadratic.

The shape claims assert the fault-injection accounting exactly: health ==
injected plan, verdicts on the analyzed region == fault-free verdicts.
"""

import random

from conftest import table

from repro.observer import (
    FaultPlan,
    FaultyChannel,
    FifoChannel,
    Observer,
    ReorderingChannel,
    deliver_all,
)
from repro.sched import RandomScheduler, run_program
from repro.workloads import random_program

SPEC = "v0 <= 6"


def big_execution(seed=0, ops=60):
    program = random_program(random.Random(seed), n_threads=3, n_vars=4,
                             ops_per_thread=ops, write_ratio=0.5)
    return program, run_program(program, RandomScheduler(seed))


def faulty_delivery(execution, plan):
    channel = FaultyChannel(plan)
    for m in execution.messages:
        channel.put(m)
    channel.close()
    return list(channel.drain()), channel.log


def run_tolerant(execution, variables, delivery, totals, spec=SPEC):
    initial = {v: execution.initial_store[v] for v in variables}
    obs = Observer(execution.n_threads, initial, spec=spec,
                   fault_tolerant=True)
    obs.receive_many(delivery)
    obs.finish(expected_totals=totals)
    return obs


def test_fault_accounting_is_exact():
    program, ex = big_execution()
    variables = sorted(program.default_relevance_vars())
    totals = [0] * ex.n_threads
    for m in ex.messages:
        totals[m.thread] += 1
    rows = []
    for seed in range(4):
        plan = FaultPlan(drop=0.05, dup=0.05, corrupt=0.03, delay=0.05,
                         seed=seed)
        delivery, log = faulty_delivery(ex, plan)
        obs = run_tolerant(ex, variables, delivery, totals)
        h = obs.health
        assert set(h.losses) == log.lost_slots
        assert h.duplicates_dropped == len(log.duplicated)
        assert h.corrupted == len(log.corrupted)
        assert h.pending == 0
        rows.append((seed, len(ex.messages), len(log.dropped),
                     len(log.duplicated), len(log.corrupted),
                     h.quarantined, h.delivered))
    table("E12 — injected faults vs health report",
          ["seed", "messages", "dropped", "dup", "corrupt", "quarantined",
           "delivered"], rows)


def test_degraded_verdicts_match_clean_prefix():
    program, ex = big_execution(seed=3)
    variables = sorted(program.default_relevance_vars())
    totals = [0] * ex.n_threads
    for m in ex.messages:
        totals[m.thread] += 1
    clean = run_tolerant(ex, variables, list(ex.messages), totals)
    plan = FaultPlan(drop=0.08, seed=5)
    delivery, log = faulty_delivery(ex, plan)
    obs = run_tolerant(ex, variables, delivery, totals)
    delivered = [0] * ex.n_threads
    for m in obs.causal_log:
        delivered[m.thread] += 1
    clean_restricted = {
        (v.cut, v.monitor_state) for v in clean.violations
        if all(v.cut[i] <= delivered[i] for i in range(ex.n_threads))
    }
    assert {(v.cut, v.monitor_state) for v in obs.violations} \
        == clean_restricted


def test_strict_ingestion_benchmark(benchmark):
    program, ex = big_execution()
    variables = sorted(program.default_relevance_vars())
    initial = {v: ex.initial_store[v] for v in variables}
    delivery = deliver_all(FifoChannel(), ex.messages)

    def run():
        obs = Observer(ex.n_threads, initial, spec=SPEC)
        obs.receive_many(delivery)
        obs.finish()
        return obs

    benchmark(run)


def test_tolerant_clean_wire_benchmark(benchmark):
    """Fault-tolerant path on a fault-free wire: the overhead you pay for
    the ability to degrade."""
    program, ex = big_execution()
    variables = sorted(program.default_relevance_vars())
    totals = [0] * ex.n_threads
    for m in ex.messages:
        totals[m.thread] += 1
    delivery, _log = faulty_delivery(ex, FaultPlan())
    benchmark(lambda: run_tolerant(ex, variables, delivery, totals))


def test_tolerant_faulty_wire_benchmark(benchmark):
    program, ex = big_execution()
    variables = sorted(program.default_relevance_vars())
    totals = [0] * ex.n_threads
    for m in ex.messages:
        totals[m.thread] += 1
    delivery, _log = faulty_delivery(
        ex, FaultPlan(drop=0.05, dup=0.05, corrupt=0.03, seed=2))
    benchmark(lambda: run_tolerant(ex, variables, delivery, totals))


def test_delivery_buffer_reordered_benchmark(benchmark):
    """Heavy reordering stresses the indexed release: many messages park
    and cascade out when their blocking slot fills."""
    program, ex = big_execution(ops=120)
    variables = sorted(program.default_relevance_vars())
    initial = {v: ex.initial_store[v] for v in variables}
    delivery = deliver_all(ReorderingChannel(seed=9, window=32), ex.messages)

    def run():
        obs = Observer(ex.n_threads, initial, causal_log=True)
        obs.receive_many(delivery)
        return obs

    obs = run()
    assert len(obs.causal_log) == len(ex.messages)
    benchmark(run)
