"""Fleet scaling: N shard daemons behind one router vs one daemon.

The deployment question ``repro.fleet`` answers: once a single daemon's
worker pool saturates a core, does adding shard *processes* behind the
router buy session throughput roughly linearly?  Both sides of the
comparison run in-process here — same machine, same workload (the
paper's xyz program through the full predictive pipeline), same client
count — so the ratio isolates the router + sharding layer.

Quick mode (``--quick``, the CI perf-smoke and the committed
``BENCH_fleet.json``) runs 12 clients over 2 shards; the full
configuration runs 100 clients over 4 shards.  The >= 2.5x scaling
floor from the issue is only asserted in the full configuration on a
machine with at least 4 cores — on fewer cores there is no parallelism
for the shards to harvest and the ratio measures scheduler noise.
"""

import os
import threading
import time

from conftest import table

from repro.fleet import AnalysisFleet, FleetConfig
from repro.sched import FixedScheduler, run_program
from repro.server import AnalysisServer, ServerConfig, attach
from repro.workloads import XYZ_OBSERVED_SCHEDULE, XYZ_PROPERTY, xyz_program


def _xyz_run():
    execution = run_program(xyz_program(),
                            FixedScheduler(XYZ_OBSERVED_SCHEDULE))
    initial = {v: execution.initial_store[v] for v in ("x", "y", "z")}
    return execution, initial


def _client_batch(host, port, execution, initial, n_clients):
    """n_clients concurrent attach→stream→verdict round-trips; returns
    the batch's wall-clock seconds."""
    verdicts = [None] * n_clients

    def client(i):
        session = attach(host, port, n_threads=execution.n_threads,
                         initial=initial, spec=XYZ_PROPERTY, program="xyz")
        for m in execution.messages:
            session.send(m)
        verdicts[i] = session.close()

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(n_clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    assert all(v is not None and v.state == "finished" for v in verdicts)
    return elapsed


def test_fleet_scaling_benchmark(benchmark, quick):
    execution, initial = _xyz_run()
    n_clients = 12 if quick else 100
    shards = 2 if quick else 4
    per_shard = max(4, (n_clients + shards - 1) // shards)

    # reference: ONE daemon with one shard's worth of workers, so the
    # ratio reports what the extra shard processes buy
    with AnalysisServer(ServerConfig(port=0, workers=2,
                                     max_sessions=n_clients)) as srv:
        single_s = _client_batch(srv.host, srv.port, execution, initial,
                                 n_clients)

    config = FleetConfig(shards=shards, workers=2, max_sessions=per_shard)
    with AnalysisFleet(config) as fleet:
        timings = []

        def fleet_batch():
            timings.append(_client_batch(fleet.host, fleet.port, execution,
                                         initial, n_clients))
            return n_clients

        benchmark(fleet_batch)
        status = fleet.status()

    fleet_s = min(timings)
    speedup = single_s / fleet_s
    mode = "quick" if quick else "full"
    table(f"fleet scaling ({mode}: {n_clients} concurrent clients)",
          ["mode", "clients", "shards", "single-daemon s", "fleet s",
           "speedup", "spills"],
          [(mode, n_clients, shards, f"{single_s:.3f}", f"{fleet_s:.3f}",
            f"{speedup:.2f}x",
            status["fleet"]["router"]["spills"])])
    assert status["fleet"]["router"]["routed_sessions"] >= n_clients
    # scaling floor: only meaningful with real cores to spread over
    if not quick and (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.5, (
            f"4-shard fleet only {speedup:.2f}x a single daemon at "
            f"{n_clients} clients")


def test_fleet_shard_kill_zero_session_loss(tmp_path):
    """Kill a shard mid-stream under load: every session still finishes
    (the crash is absorbed by supervisor respawn + client re-attach)."""
    from repro.fleet import shard_of_session
    from repro.observer.reliable import RetransmitConfig
    from repro.server import ReconnectPolicy

    execution, initial = _xyz_run()
    n_clients = 4
    config = FleetConfig(
        shards=2, workers=1, supervised=True,
        checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_every=2,
        resume_timeout=15.0, heartbeat_interval=0.1, heartbeat_timeout=1.0,
        restart_backoff=0.05, restart_backoff_cap=0.2)
    with AnalysisFleet(config) as fleet:
        verdicts = [None] * n_clients
        barrier = threading.Barrier(n_clients + 1)

        def client(i):
            session = attach(
                fleet.host, fleet.port, n_threads=execution.n_threads,
                initial=initial, spec=XYZ_PROPERTY, fault_tolerant=True,
                config=RetransmitConfig(window=64),
                reconnect=ReconnectPolicy(max_attempts=10, backoff=0.1))
            half = len(execution.messages) // 2
            for m in execution.messages[:half]:
                session.send(m)
            barrier.wait(timeout=30.0)   # everyone mid-stream
            barrier.wait(timeout=30.0)   # shard killed
            for m in execution.messages[half:]:
                session.send(m)
            verdicts[i] = (shard_of_session(session.session_id),
                           session.close(timeout=60.0))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        barrier.wait(timeout=30.0)
        assert fleet.supervisor.kill_shard(0) is not None
        barrier.wait(timeout=30.0)
        for t in threads:
            t.join()
        status = fleet.status()

    finished = sum(1 for v in verdicts if v and v[1].state == "finished")
    on_killed = sum(1 for v in verdicts if v and v[0] == 0)
    table("fleet shard-kill survival (SIGKILL shard 0 mid-stream)",
          ["clients", "on killed shard", "finished", "lost",
           "shard restarts"],
          [(n_clients, on_killed, finished, n_clients - finished,
            status["fleet"]["router"]["shard_restarts"])])
    assert finished == n_clients, "a session was lost to the shard kill"
    assert status["fleet"]["router"]["shard_restarts"] >= 1
    for v in verdicts:
        assert v[1].analyzed == len(execution.messages)
