"""E15 (extension) — dynamic thread creation (§2: variable thread counts).

Measures the cost of Spawn/Join (clock growth, dummy-variable edges) and
asserts the structural artifact: a fork/join fan-out of k children yields a
lattice whose node count matches the independent-writer closed form, and
every child write is bracketed by the spawn and the join in every run.
"""

from conftest import table

from repro.core import CausalityIndex
from repro.lattice import ComputationLattice
from repro.sched import FixedScheduler, Join, Program, Spawn, Write, run_program


def fanout_program(k):
    def child(i):
        def body():
            yield Write(f"c{i}", 1)

        return body

    def parent():
        yield Write("started", 1)
        handles = []
        for i in range(k):
            h = yield Spawn(child(i))
            handles.append(h)
        for h in handles:
            yield Join(h)
        yield Write("finished", 1)

    initial = {"started": 0, "finished": 0}
    initial.update({f"c{i}": 0 for i in range(k)})
    return Program(initial=initial, threads=[parent],
                   relevant_vars=frozenset(initial), name=f"fanout-{k}")


def run_fanout(k):
    return run_program(fanout_program(k), FixedScheduler([], strict=False))


def test_fanout_artifact():
    rows = []
    for k in (2, 3, 4):
        ex = run_fanout(k)
        assert ex.n_threads == k + 1
        idx = CausalityIndex(ex.n_threads, ex.messages)
        by = {m.event.label or str(m.event.var): m for m in ex.messages}
        started = next(m for m in ex.messages if m.event.var == "started")
        finished = next(m for m in ex.messages if m.event.var == "finished")
        for i in range(k):
            child = next(m for m in ex.messages if m.event.var == f"c{i}")
            assert idx.precedes(started, child)
            assert idx.precedes(child, finished)
        # children mutually concurrent
        kids = [m for m in ex.messages if str(m.event.var).startswith("c")]
        for a in kids:
            for b in kids:
                if a is not b:
                    assert idx.concurrent(a, b)
        variables = sorted(ex.initial_store)
        lat = ComputationLattice(ex.n_threads,
                                 {v: 0 for v in variables}, ex.messages)
        rows.append((k, ex.n_threads, len(lat), lat.count_runs()))
        # k independent single-write children between two fixed writes:
        # nodes = 2^k + 2, runs = k!
        import math

        assert len(lat) == 2 ** k + 2
        assert lat.count_runs() == math.factorial(k)
    table("E15 — fork/join fan-out lattices",
          ["children", "threads", "lattice nodes", "runs"], rows)


def test_spawn_execution_benchmark(benchmark):
    benchmark(lambda: run_fanout(8))


def test_static_equivalent_benchmark(benchmark):
    """The same shape with static threads, for the spawn-overhead ratio."""
    from repro.sched.program import straightline

    def make():
        threads = [straightline([Write(f"c{i}", 1)]) for i in range(8)]
        initial = {f"c{i}": 0 for i in range(8)}
        return Program(initial=initial, threads=threads,
                       relevant_vars=frozenset(initial))

    p = make()
    benchmark(lambda: run_program(p, FixedScheduler([], strict=False)))
