"""End-to-end integration fuzzing: the full Fig. 4 pipeline over random
programs, schedules, delivery orders, and specifications.

Each case runs: program → Algorithm A → channel → observer → lattice →
monitor, and cross-checks every layer against its independent counterpart
(oracle causality, full-lattice engine, single-trace monitor).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import detect, predict
from repro.core import Computation
from repro.core.vectorclock import lt
from repro.lattice import ComputationLattice, LevelByLevelBuilder
from repro.logic import Monitor, evaluate_trace
from repro.observer import Observer, ReorderingChannel, deliver_all
from repro.sched import RandomScheduler, run_program
from repro.workloads import random_program

SPECS = [
    "historically(v0 >= 0)",
    "start(v0 > 0) -> once(v1 > 0)",
    "[v0 > 0, v1 > 0) or v1 <= 0 or true",
    "(v0 > 1) -> prev(v0 >= 0)",
]


def pipeline_case(seed: int, spec: str):
    rng = random.Random(seed)
    program = random_program(rng, n_threads=3, n_vars=2, ops_per_thread=4,
                             write_ratio=0.7)
    execution = run_program(program, RandomScheduler(seed))
    return program, execution


@given(st.integers(0, 2_000), st.sampled_from(SPECS))
@settings(max_examples=60, deadline=None)
def test_full_pipeline_consistency(seed, spec):
    program, execution = pipeline_case(seed, spec)

    # 1. Theorem 3 against the oracle.
    comp = Computation(execution.events)
    by_eid = {m.event.eid: m for m in execution.messages}
    for a, b, truth in comp.relevant_pairs():
        assert by_eid[a.eid].causally_precedes(by_eid[b.eid]) == truth
        assert lt(tuple(by_eid[a.eid].clock), tuple(by_eid[b.eid].clock)) == truth

    # 2. Observed-run verdict: monitor == brute-force semantics.
    monitor = Monitor(spec)
    variables = sorted(monitor.variables)
    states = [dict(zip(variables, t))
              for t in execution.relevant_state_sequence(variables)]
    flat = evaluate_trace(monitor.formula, states)
    ok, idx = monitor.check_trace(states)
    assert ok == all(flat)
    if not ok:
        assert idx == flat.index(False)

    # 3. Engines agree (existence of violations).
    full = predict(execution, spec, mode="full")
    levels = predict(execution, spec, mode="levels")
    assert bool(full.violations) == bool(levels.violations)
    assert full.observed_ok == levels.observed_ok == ok

    # 4. Delivery reordering changes nothing.
    delivery = deliver_all(ReorderingChannel(seed=seed, window=4),
                           execution.messages)
    initial = {v: execution.initial_store[v] for v in variables}
    obs = Observer(execution.n_threads, initial, spec=spec)
    obs.receive_many(delivery)
    obs.finish()
    assert bool(obs.violations) == bool(levels.violations)


@given(st.integers(0, 2_000))
@settings(max_examples=40, deadline=None)
def test_lattice_counts_consistent(seed):
    """Full lattice size == level-by-level node count == number of
    consistent cuts by brute force."""
    rng = random.Random(seed)
    program = random_program(rng, n_threads=2, n_vars=2, ops_per_thread=4,
                             write_ratio=0.6)
    execution = run_program(program, RandomScheduler(seed))
    variables = sorted(program.default_relevance_vars())
    initial = {v: execution.initial_store[v] for v in variables}

    full = ComputationLattice(2, initial, execution.messages)
    builder = LevelByLevelBuilder(2, initial)
    builder.feed_many(execution.messages)
    builder.finish()
    assert builder.stats.nodes_expanded == len(full)

    # brute force: every (k0, k1) pair checked for downward closure
    from repro.lattice.cut import MessageChains

    chains = MessageChains(2)
    for m in execution.messages:
        chains.insert(m)
    totals = chains.totals()
    brute = sum(
        1
        for k0 in range(totals[0] + 1)
        for k1 in range(totals[1] + 1)
        if chains.is_consistent((k0, k1))
    )
    assert brute == len(full)


@given(st.integers(0, 1_000))
@settings(max_examples=20, deadline=None)
def test_observed_run_is_in_lattice(seed):
    """The observed execution is one of the lattice's runs (the paper: 'the
    observed sequence of events is just one such run')."""
    rng = random.Random(seed)
    program = random_program(rng, n_threads=2, n_vars=2, ops_per_thread=4,
                             write_ratio=0.8)
    execution = run_program(program, RandomScheduler(seed))
    variables = sorted(program.default_relevance_vars())
    initial = {v: execution.initial_store[v] for v in variables}
    lat = ComputationLattice(2, initial, execution.messages)
    observed = tuple(m.event.eid for m in execution.messages)
    runs = {tuple(m.event.eid for m in run.messages) for run in lat.runs()}
    assert observed in runs


class TestSocketEndToEnd:
    def test_trace_socket_observer_agree(self, tmp_path):
        """record → socket → observer and record → file → builder agree."""
        from repro.observer import SocketTransport
        from repro.observer.trace import read_trace, write_trace
        from repro.sched import FixedScheduler
        from repro.workloads import (
            XYZ_OBSERVED_SCHEDULE,
            XYZ_PROPERTY,
            xyz_program,
        )

        execution = run_program(xyz_program(),
                                FixedScheduler(XYZ_OBSERVED_SCHEDULE))
        # via socket
        transport = SocketTransport()
        transport.start_receiver()
        sender = transport.sender()
        for m in execution.messages:
            sender.send(m)
        sender.close()
        received = transport.wait()
        obs = Observer(2, {"x": -1, "y": 0, "z": 0}, spec=XYZ_PROPERTY)
        obs.receive_many(received)
        obs.finish()
        # via trace file
        path = tmp_path / "t.trace"
        write_trace(path, 2, execution.initial_store, execution.messages)
        trace = read_trace(path)
        b = LevelByLevelBuilder(2, {"x": -1, "y": 0, "z": 0},
                                Monitor(XYZ_PROPERTY))
        b.feed_many(trace.messages)
        b.finish()
        assert len(obs.violations) == len(b.violations) == 1
