"""Golden-file tests: the figure renderings are byte-stable.

Any change to clock values, lattice construction order, state labeling, or
the renderers shows up here as a diff against the stored Fig. 5/6 artifacts
(regenerate deliberately with tests/golden/regenerate — see test docstrings).
"""

from pathlib import Path

from repro.lattice import (
    ComputationLattice,
    render_computation,
    render_lattice,
    to_dot,
)
from repro.workloads import LANDING_VARS, XYZ_VARS

GOLDEN = Path(__file__).resolve().parent.parent / "golden"


def lattice_of(execution, variables):
    initial = {v: execution.initial_store[v] for v in variables}
    return ComputationLattice(2, initial, execution.messages)


def test_fig5_lattice_rendering_stable(landing_execution):
    got = render_lattice(lattice_of(landing_execution, LANDING_VARS),
                         LANDING_VARS) + "\n"
    assert got == (GOLDEN / "fig5_lattice.txt").read_text()


def test_fig5_dot_stable(landing_execution):
    got = to_dot(lattice_of(landing_execution, LANDING_VARS),
                 LANDING_VARS, title="fig5") + "\n"
    assert got == (GOLDEN / "fig5.dot").read_text()


def test_fig6_lattice_rendering_stable(xyz_execution):
    got = render_lattice(lattice_of(xyz_execution, XYZ_VARS), XYZ_VARS) + "\n"
    assert got == (GOLDEN / "fig6_lattice.txt").read_text()


def test_fig6_computation_rendering_stable(xyz_execution):
    got = render_computation(xyz_execution.messages, 2) + "\n"
    assert got == (GOLDEN / "fig6_computation.txt").read_text()
