"""Tests for consistent cuts and message chains."""

import pytest

from repro.core.events import Event, EventKind, Message
from repro.core.vectorclock import VectorClock
from repro.lattice.cut import MessageChains, apply_message


def msg(thread, seq, clock, var="x", value=1, kind=EventKind.WRITE):
    return Message(
        event=Event(thread=thread, seq=seq, kind=kind, var=var, value=value,
                    relevant=True),
        thread=thread,
        clock=VectorClock(clock),
    )


@pytest.fixture
def fig6_chains(xyz_execution):
    c = MessageChains(2)
    for m in xyz_execution.messages:
        c.insert(m)
    return c


class TestInsertion:
    def test_relevant_index_is_clock_component(self):
        c = MessageChains(2)
        m = msg(0, 5, (2, 1))  # 2nd relevant event of thread 0
        c.insert(m)
        assert c.get(0, 2) is m
        assert c.get(0, 1) is None

    def test_duplicate_index_rejected(self):
        c = MessageChains(2)
        c.insert(msg(0, 1, (1, 0)))
        with pytest.raises(ValueError, match="duplicate"):
            c.insert(msg(0, 2, (1, 0)))

    def test_out_of_range_thread(self):
        c = MessageChains(1)
        with pytest.raises(ValueError):
            c.insert(msg(1, 1, (0, 1)))

    def test_zero_clock_component_rejected(self):
        c = MessageChains(2)
        bad = msg(0, 1, (0, 1))
        with pytest.raises(ValueError):
            c.insert(bad)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            MessageChains(0)


class TestCountsAndGaps:
    def test_counts_stop_at_gap(self):
        c = MessageChains(1)
        c.insert(msg(0, 1, (1,)))
        c.insert(msg(0, 5, (3,)))  # index 2 missing
        assert c.counts() == (1,)
        assert c.totals() == (2,)
        assert c.has_gap(0)

    def test_no_gap_when_contiguous(self):
        c = MessageChains(1)
        c.insert(msg(0, 1, (1,)))
        c.insert(msg(0, 2, (2,)))
        assert not c.has_gap(0)
        assert c.counts() == (2,)

    def test_all_messages_sorted_per_thread(self, fig6_chains):
        msgs = list(fig6_chains.all_messages())
        assert [m.clock[m.thread] for m in msgs] == [1, 2, 1, 2]


class TestEnabled:
    def test_enabled_at_bottom_only_minimal(self, fig6_chains):
        # Fig. 6: only e1 (thread 0, clock (1,0)) is enabled at (0, 0)
        assert fig6_chains.enabled_at((0, 0), 0) is not None
        assert fig6_chains.enabled_at((0, 0), 1) is None  # e2 needs e1

    def test_enabled_after_dependency(self, fig6_chains):
        m = fig6_chains.enabled_at((1, 0), 1)
        assert m is not None and tuple(m.clock) == (1, 1)

    def test_absent_message_not_enabled(self, fig6_chains):
        assert fig6_chains.enabled_at((2, 2), 0) is None  # chain exhausted


class TestConsistency:
    def test_fig6_consistent_cuts(self, fig6_chains):
        consistent = {(k1, k2)
                      for k1 in range(3) for k2 in range(3)
                      if fig6_chains.is_consistent((k1, k2))}
        # the 7 nodes of Fig. 6 (S00..S22; (0,1) and (0,2) are inconsistent)
        assert consistent == {(0, 0), (1, 0), (2, 0), (1, 1),
                              (2, 1), (1, 2), (2, 2)}

    def test_negative_or_overflow_cut(self, fig6_chains):
        assert not fig6_chains.is_consistent((-1, 0))
        assert not fig6_chains.is_consistent((3, 0))

    def test_width_mismatch(self, fig6_chains):
        with pytest.raises(ValueError):
            fig6_chains.is_consistent((0,))


class TestApplyMessage:
    def test_write_updates_variable(self):
        s = apply_message({"x": 0, "y": 5}, msg(0, 1, (1, 0), var="x", value=9))
        assert s == {"x": 9, "y": 5}

    def test_original_state_untouched(self):
        base = {"x": 0}
        apply_message(base, msg(0, 1, (1, 0), var="x", value=9))
        assert base == {"x": 0}

    def test_read_event_leaves_state(self):
        s = apply_message({"x": 3}, msg(0, 1, (1, 0), var="x", kind=EventKind.READ))
        assert s == {"x": 3}

    def test_sync_write_updates_lock_var(self):
        s = apply_message({"L": 0}, msg(0, 1, (1, 0), var="L",
                                        kind=EventKind.ACQUIRE, value=None))
        # acquire is write-weight; value None is written as-is
        assert "L" in s
