"""Tests for the fully-materialized computation lattice (Figs. 5 and 6)."""

import random

import pytest

from repro.lattice.full import ComputationLattice
from repro.sched import FixedScheduler, RandomScheduler, run_program
from repro.workloads import (
    LANDING_VARS,
    XYZ_VARS,
    random_program,
    xyz_program,
)


@pytest.fixture
def fig6(xyz_execution):
    initial = {v: xyz_execution.initial_store[v] for v in XYZ_VARS}
    return ComputationLattice(2, initial, xyz_execution.messages)


@pytest.fixture
def fig5(landing_execution):
    initial = {v: landing_execution.initial_store[v] for v in LANDING_VARS}
    return ComputationLattice(2, initial, landing_execution.messages)


class TestFig5:
    def test_six_states(self, fig5):
        assert len(fig5) == 6

    def test_exact_state_set(self, fig5):
        states = {fig5.state_tuple(c, LANDING_VARS) for c in fig5.cuts}
        assert states == {
            (0, 0, 1), (0, 1, 1), (1, 1, 1),
            (0, 0, 0), (0, 1, 0), (1, 1, 0),
        }

    def test_three_runs(self, fig5):
        assert fig5.count_runs() == 3
        assert len(list(fig5.runs())) == 3

    def test_all_runs_end_in_same_final_state(self, fig5):
        finals = {run.state_tuples(LANDING_VARS)[-1] for run in fig5.runs()}
        assert finals == {(1, 1, 0)}


class TestFig6:
    def test_seven_states(self, fig6):
        assert len(fig6) == 7

    def test_cut_set(self, fig6):
        assert fig6.cuts == {(0, 0), (1, 0), (2, 0), (1, 1),
                             (2, 1), (1, 2), (2, 2)}

    def test_state_labels_match_figure(self, fig6):
        expected = {
            (0, 0): (-1, 0, 0),  # S0,0
            (1, 0): (0, 0, 0),   # S1,0
            (2, 0): (0, 1, 0),   # S2,0
            (1, 1): (0, 0, 1),   # S1,1
            (2, 1): (0, 1, 1),   # S2,1
            (1, 2): (1, 0, 1),   # S1,2
            (2, 2): (1, 1, 1),   # S2,2
        }
        for cut, state in expected.items():
            assert fig6.state_tuple(cut, XYZ_VARS) == state, cut

    def test_three_runs(self, fig6):
        assert fig6.count_runs() == 3

    def test_runs_are_the_papers_three(self, fig6):
        run_labels = {tuple(m.event.label for m in run.messages)
                      for run in fig6.runs()}
        assert run_labels == {
            ("x=0", "y=1", "z=1", "x=1"),
            ("x=0", "z=1", "y=1", "x=1"),
            ("x=0", "z=1", "x=1", "y=1"),
        }

    def test_levels_group_by_event_count(self, fig6):
        levels = fig6.levels()
        assert [len(lv) for lv in levels] == [1, 1, 2, 2, 1]

    def test_observed_run_uses_emission_order(self, fig6):
        run = fig6.observed_run()
        assert [m.event.label for m in run.messages] == ["x=0", "z=1", "x=1", "y=1"]
        assert run.state_tuples(XYZ_VARS) == [
            (-1, 0, 0), (0, 0, 0), (0, 0, 1), (1, 0, 1), (1, 1, 1)]


class TestGenericProperties:
    def test_gapped_chains_rejected(self, xyz_execution):
        msgs = [m for m in xyz_execution.messages if tuple(m.clock) != (1, 0)]
        with pytest.raises(ValueError, match="missing"):
            ComputationLattice(2, {"x": -1, "y": 0, "z": 0}, msgs)

    def test_empty_computation(self):
        lat = ComputationLattice(2, {"x": 0}, [])
        assert len(lat) == 1
        assert lat.count_runs() == 1
        assert list(lat.runs())[0].messages == ()

    def test_delivery_order_invariance(self, xyz_execution):
        initial = {v: xyz_execution.initial_store[v] for v in XYZ_VARS}
        ref = ComputationLattice(2, initial, xyz_execution.messages)
        msgs = list(xyz_execution.messages)
        rng = random.Random(11)
        for _ in range(5):
            rng.shuffle(msgs)
            lat = ComputationLattice(2, initial, msgs)
            assert lat.cuts == ref.cuts
            assert lat.count_runs() == ref.count_runs()

    def test_run_limit(self, fig5):
        assert len(list(fig5.runs(limit=2))) == 2

    def test_runs_count_equals_relevant_linearizations(self):
        """Lattice maximal paths == linear extensions of the *relevant*
        causality (cross-check against the §2.2 oracle)."""
        for seed in range(6):
            program = random_program(random.Random(seed), n_threads=2,
                                     n_vars=2, ops_per_thread=4,
                                     write_ratio=0.6)
            result = run_program(program, RandomScheduler(seed))
            initial = {v: result.initial_store[v]
                       for v in program.default_relevance_vars()}
            lat = ComputationLattice(2, initial, result.messages)
            # independently count linear extensions of ⊳ with a downset DP
            # over the Theorem-3 relation of the messages
            from repro.core.causality import CausalityIndex

            idx = CausalityIndex(2, result.messages)
            n = len(idx)
            rel = idx.relation_matrix()
            preds = [0] * n
            for a in range(n):
                for b in range(n):
                    if rel[a, b]:
                        preds[b] |= 1 << a
            from functools import lru_cache

            full = (1 << n) - 1

            @lru_cache(maxsize=None)
            def count(down):
                if down == full:
                    return 1
                total = 0
                for i in range(n):
                    if not (down >> i & 1) and not (preds[i] & ~down):
                        total += count(down | (1 << i))
                return total

            assert lat.count_runs() == count(0), seed

    def test_every_run_is_linear_extension(self, fig6):
        from repro.core.causality import is_linear_extension

        for run in fig6.runs():
            assert is_linear_extension(list(run.messages))

    def test_state_reconstruction_along_runs(self, fig6):
        """Each run's states replay its writes from the initial state."""
        for run in fig6.runs():
            store = dict(run.states[0])
            for m, s in zip(run.messages, run.states[1:]):
                store[m.event.var] = m.event.value
                assert dict(s) == store

    def test_successors_shape(self, fig6):
        bottom = fig6.bottom
        succs = fig6.successors(bottom)
        assert len(succs) == 1  # only e1 enabled
        assert fig6.successors(fig6.top) == ()

    def test_run_pretty_contains_labels(self, fig6):
        run = next(iter(fig6.runs()))
        text = run.pretty(XYZ_VARS)
        assert "x=0" in text and "-->" in text
