"""Rendering tests (text + DOT reproductions of the paper's figures)."""

from repro.lattice import ComputationLattice, render_computation, render_lattice, to_dot
from repro.workloads import LANDING_VARS, XYZ_VARS


def lattice_for(execution, variables):
    initial = {v: execution.initial_store[v] for v in variables}
    return ComputationLattice(2, initial, execution.messages)


class TestRenderLattice:
    def test_fig5_levels_and_states(self, landing_execution):
        text = render_lattice(lattice_for(landing_execution, LANDING_VARS),
                              LANDING_VARS)
        assert "Level 0:" in text and "Level 3:" in text
        assert "<0,0,1>" in text  # initial state
        assert "<1,1,0>" in text  # top state
        assert "--landing=1-->" in text

    def test_fig6_has_seven_nodes(self, xyz_execution):
        text = render_lattice(lattice_for(xyz_execution, XYZ_VARS), XYZ_VARS)
        assert text.count("(") >= 7
        assert "<-1,0,0>" in text
        assert "<1,1,1>" in text

    def test_edges_can_be_suppressed(self, xyz_execution):
        text = render_lattice(lattice_for(xyz_execution, XYZ_VARS), XYZ_VARS,
                              show_edges=False)
        assert "-->" not in text

    def test_default_variable_order(self, xyz_execution):
        text = render_lattice(lattice_for(xyz_execution, XYZ_VARS))
        assert "Level 0:" in text


class TestRenderComputation:
    def test_fig6_lanes_and_cross_edges(self, xyz_execution):
        text = render_computation(xyz_execution.messages, 2)
        assert "T1: x=0(1, 0)  ->  y=1(2, 0)" in text
        assert "T2: z=1(1, 1)  ->  x=1(1, 2)" in text
        assert "cross-thread causality:" in text
        assert "x=0 ≺ z=1" in text

    def test_empty_thread_lane(self, landing_execution):
        # landing has messages on both threads; craft a 3-thread view
        text = render_computation(landing_execution.messages, 2)
        assert text.startswith("T1:")


class TestDot:
    def test_dot_structure(self, landing_execution):
        dot = to_dot(lattice_for(landing_execution, LANDING_VARS),
                     LANDING_VARS, title="fig5")
        assert dot.startswith('digraph "fig5"')
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == 7  # Fig. 5 has 7 edges
        assert "rank=same" in dot

    def test_dot_node_count(self, xyz_execution):
        dot = to_dot(lattice_for(xyz_execution, XYZ_VARS), XYZ_VARS)
        assert dot.count("[label=\"S(") == 7

    def test_dot_escapes_quotes(self, xyz_execution):
        dot = to_dot(lattice_for(xyz_execution, XYZ_VARS), XYZ_VARS)
        # all edge labels are single-quoted safe
        assert '\\"' not in dot
