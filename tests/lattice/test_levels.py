"""Tests for the online level-by-level builder: equivalence with the full
lattice, out-of-order feeding, end-of-thread markers, GC accounting, and
monitor-state semantics."""

import random

import pytest

from repro.lattice.full import ComputationLattice
from repro.lattice.levels import LevelByLevelBuilder
from repro.logic.monitor import Monitor
from repro.sched import RandomScheduler, run_program
from repro.workloads import (
    LANDING_PROPERTY,
    LANDING_VARS,
    XYZ_PROPERTY,
    XYZ_VARS,
    random_program,
)


def build(execution, variables, spec=None, order=None, **kw):
    initial = {v: execution.initial_store[v] for v in variables}
    monitor = Monitor(spec) if spec else None
    b = LevelByLevelBuilder(execution.n_threads, initial, monitor, **kw)
    msgs = list(execution.messages) if order is None else order
    b.feed_many(msgs)
    b.finish()
    return b


class TestConstructionEquivalence:
    def test_fig6_expands_all_nodes(self, xyz_execution):
        b = build(xyz_execution, XYZ_VARS)
        assert b.complete
        assert b.stats.nodes_expanded == 7  # all Fig. 6 nodes

    def test_fig5_expands_all_nodes(self, landing_execution):
        b = build(landing_execution, LANDING_VARS)
        assert b.stats.nodes_expanded == 6

    def test_random_programs_match_full_lattice(self):
        for seed in range(8):
            program = random_program(random.Random(seed), n_threads=3,
                                     n_vars=2, ops_per_thread=3,
                                     write_ratio=0.7)
            ex = run_program(program, RandomScheduler(seed))
            variables = sorted(program.default_relevance_vars())
            initial = {v: ex.initial_store[v] for v in variables}
            full = ComputationLattice(3, initial, ex.messages)
            b = build(ex, variables)
            assert b.stats.nodes_expanded == len(full), seed

    def test_feeding_order_does_not_matter(self, xyz_execution):
        ref = build(xyz_execution, XYZ_VARS, spec=XYZ_PROPERTY)
        msgs = list(xyz_execution.messages)
        rng = random.Random(2)
        for _ in range(6):
            rng.shuffle(msgs)
            b = build(xyz_execution, XYZ_VARS, spec=XYZ_PROPERTY, order=msgs)
            assert b.stats.nodes_expanded == ref.stats.nodes_expanded
            assert len(b.violations) == len(ref.violations)

    def test_empty_stream(self):
        b = LevelByLevelBuilder(2, {"x": 0})
        b.finish()
        assert b.complete
        assert b.stats.nodes_expanded == 0 or b.stats.levels_completed >= 0


class TestOnlineBehavior:
    def test_stalls_until_messages_available(self, xyz_execution):
        msgs = list(xyz_execution.messages)
        initial = {v: xyz_execution.initial_store[v] for v in XYZ_VARS}
        b = LevelByLevelBuilder(2, initial)
        # feed only thread 1's messages: thread 0's first is missing, and
        # without end-of-stream the builder cannot advance past level 0
        for m in msgs:
            if m.thread == 1:
                b.feed(m)
        assert b.level == 0
        for m in msgs:
            if m.thread == 0:
                b.feed(m)
        b.finish()
        assert b.complete

    def test_mark_thread_done_unblocks_online(self, xyz_execution):
        """End-of-thread markers let levels advance before close."""
        msgs = sorted(xyz_execution.messages, key=lambda m: m.emit_index)
        initial = {v: xyz_execution.initial_store[v] for v in XYZ_VARS}
        b = LevelByLevelBuilder(2, initial)
        for m in msgs:
            b.feed(m)
        # all messages fed but stream not closed: builder waits (a thread
        # might still emit)
        assert not b.complete
        b.mark_thread_done(0, 2)
        b.mark_thread_done(1, 2)
        assert b.complete  # no finish() needed

    def test_mark_thread_done_validation(self):
        b = LevelByLevelBuilder(2, {"x": 0})
        with pytest.raises(IndexError):
            b.mark_thread_done(5, 1)
        with pytest.raises(ValueError):
            b.mark_thread_done(0, -1)
        b.mark_thread_done(0, 2)
        with pytest.raises(ValueError, match="conflicting"):
            b.mark_thread_done(0, 3)

    def test_feed_after_finish_rejected(self, xyz_execution):
        b = build(xyz_execution, XYZ_VARS)
        with pytest.raises(RuntimeError):
            b.feed(xyz_execution.messages[0])

    def test_finish_with_gap_raises(self, xyz_execution):
        initial = {v: xyz_execution.initial_store[v] for v in XYZ_VARS}
        b = LevelByLevelBuilder(2, initial)
        # skip thread 0's first message -> permanent gap
        for m in xyz_execution.messages:
            if tuple(m.clock) != (1, 0):
                b.feed(m)
        with pytest.raises(RuntimeError, match="missing"):
            b.finish()


class TestMonitoring:
    def test_fig6_predicts_one_violation(self, xyz_execution):
        b = build(xyz_execution, XYZ_VARS, spec=XYZ_PROPERTY)
        assert len(b.violations) == 1
        v = b.violations[0]
        assert [m.event.label for m in v.messages] == ["x=0", "y=1", "z=1", "x=1"]

    def test_fig5_predicts_violation_with_counterexample(self, landing_execution):
        b = build(landing_execution, LANDING_VARS, spec=LANDING_PROPERTY)
        assert len(b.violations) >= 1
        v = b.violations[0]
        states = [tuple(s[x] for x in LANDING_VARS) for s in v.states]
        assert states[-1] == (1, 1, 0)  # landing started with radio down

    def test_counterexample_states_replay_messages(self, landing_execution):
        b = build(landing_execution, LANDING_VARS, spec=LANDING_PROPERTY)
        for v in b.violations:
            store = dict(v.states[0])
            for m, s in zip(v.messages, v.states[1:]):
                store[m.event.var] = m.event.value
                assert dict(s) == store

    def test_track_paths_false_still_counts_violations(self, landing_execution):
        b = build(landing_execution, LANDING_VARS, spec=LANDING_PROPERTY,
                  track_paths=False)
        assert len(b.violations) >= 1
        assert b.violations[0].messages == ()

    def test_violation_at_initial_state(self):
        b = LevelByLevelBuilder(1, {"x": 5}, Monitor("x == 0"))
        assert len(b.violations) == 1
        assert b.violations[0].cut == (0,)

    def test_monitor_state_sets_deduplicate(self, landing_execution):
        """Different paths reaching a cut with the same monitor state merge
        (the paper's 'all runs in parallel' trick)."""
        b = build(landing_execution, LANDING_VARS, spec=LANDING_PROPERTY)
        # peak resident (cut, mstate) pairs stays small
        assert b.stats.peak_resident_states <= 2 * b.stats.peak_resident_cuts


class TestMemoryBound:
    def test_at_most_two_levels_resident(self):
        """E5: peak resident cuts <= the two widest consecutive levels."""
        for seed in range(5):
            program = random_program(random.Random(seed), n_threads=3,
                                     n_vars=3, ops_per_thread=4,
                                     write_ratio=0.6)
            ex = run_program(program, RandomScheduler(seed))
            variables = sorted(program.default_relevance_vars())
            initial = {v: ex.initial_store[v] for v in variables}
            full = ComputationLattice(3, initial, ex.messages)
            widths = [len(lv) for lv in full.levels()]
            two_level_max = max(
                (widths[i] + widths[i + 1] for i in range(len(widths) - 1)),
                default=widths[0] if widths else 0,
            )
            b = build(ex, variables, track_paths=False)
            assert b.stats.peak_resident_cuts <= two_level_max, seed

    def test_peak_smaller_than_full_lattice_when_deep(self):
        program = random_program(random.Random(42), n_threads=2, n_vars=2,
                                 ops_per_thread=8, write_ratio=0.8)
        ex = run_program(program, RandomScheduler(1))
        variables = sorted(program.default_relevance_vars())
        initial = {v: ex.initial_store[v] for v in variables}
        full = ComputationLattice(2, initial, ex.messages)
        b = build(ex, variables, track_paths=False)
        assert b.stats.peak_resident_cuts <= len(full)

    def test_max_frontier_guard(self, xyz_execution):
        initial = {v: xyz_execution.initial_store[v] for v in XYZ_VARS}
        b = LevelByLevelBuilder(2, initial, max_frontier=1)
        with pytest.raises(MemoryError):
            b.feed_many(xyz_execution.messages)
            b.finish()
