"""Checkpoint/restore of the level-by-level builder, and state projection."""

import random

import pytest

from repro.lattice import LevelByLevelBuilder
from repro.logic import Monitor
from repro.sched import RandomScheduler, run_program
from repro.workloads import (
    XYZ_PROPERTY,
    XYZ_VARS,
    random_program,
    xyz_program,
)


def fresh_builder(execution, variables, spec=None, **kw):
    initial = {v: execution.initial_store[v] for v in variables}
    monitor = Monitor(spec) if spec else None
    return LevelByLevelBuilder(execution.n_threads, initial, monitor,
                               track_paths=False, **kw)


class TestCheckpoint:
    def test_round_trip_mid_stream(self, xyz_execution):
        msgs = list(xyz_execution.messages)
        b = fresh_builder(xyz_execution, XYZ_VARS, spec=XYZ_PROPERTY)
        b.feed_many(msgs[:2])
        snap = b.checkpoint()
        restored = LevelByLevelBuilder.restore(snap, monitor=Monitor(XYZ_PROPERTY))
        restored.feed_many(msgs[2:])
        restored.finish()
        assert restored.complete
        assert len(restored.violations) == 1

    def test_restored_equals_uninterrupted(self):
        for seed in range(5):
            program = random_program(random.Random(seed), n_threads=2,
                                     n_vars=2, ops_per_thread=5,
                                     write_ratio=0.8)
            ex = run_program(program, RandomScheduler(seed))
            variables = sorted(program.default_relevance_vars())
            spec = "historically(v0 >= 0)"
            straight = fresh_builder(ex, variables, spec=spec)
            straight.feed_many(ex.messages)
            straight.finish()

            cut_at = len(ex.messages) // 2
            part = fresh_builder(ex, variables, spec=spec)
            part.feed_many(ex.messages[:cut_at])
            snap = part.checkpoint()
            resumed = LevelByLevelBuilder.restore(snap, monitor=Monitor(spec))
            resumed.feed_many(ex.messages[cut_at:])
            resumed.finish()

            assert resumed.complete
            assert (len(resumed.violations) > 0) == (len(straight.violations) > 0), seed

    def test_checkpoint_requires_untracked_paths(self, xyz_execution):
        initial = {v: xyz_execution.initial_store[v] for v in XYZ_VARS}
        b = LevelByLevelBuilder(2, initial, track_paths=True)
        with pytest.raises(RuntimeError, match="track_paths"):
            b.checkpoint()

    def test_checkpoint_after_finish_rejected(self, xyz_execution):
        b = fresh_builder(xyz_execution, XYZ_VARS)
        b.feed_many(xyz_execution.messages)
        b.finish()
        with pytest.raises(RuntimeError, match="finished"):
            b.checkpoint()

    def test_checkpoint_at_stream_start(self, xyz_execution):
        b = fresh_builder(xyz_execution, XYZ_VARS, spec=XYZ_PROPERTY)
        snap = b.checkpoint()
        restored = LevelByLevelBuilder.restore(snap, monitor=Monitor(XYZ_PROPERTY))
        restored.feed_many(xyz_execution.messages)
        restored.finish()
        assert len(restored.violations) == 1


class TestProjection:
    def test_states_restricted_to_monitor_vars(self, xyz_execution):
        """With a monitor for x only, node states do not carry y/z."""
        initial = dict(xyz_execution.initial_store)
        b = LevelByLevelBuilder(2, initial, Monitor("x >= -1"),
                                track_paths=False)
        b.feed_many(xyz_execution.messages)
        b.finish()
        for state in b.frontier.values():
            assert set(state) <= {"x"}

    def test_projection_override(self, xyz_execution):
        initial = dict(xyz_execution.initial_store)
        b = LevelByLevelBuilder(2, initial, project={"y"})
        b.feed_many(xyz_execution.messages)
        b.finish()
        for state in b.frontier.values():
            assert set(state) <= {"y"}

    def test_projection_does_not_change_verdicts(self, xyz_execution):
        initial = dict(xyz_execution.initial_store)
        wide = LevelByLevelBuilder(2, initial, Monitor(XYZ_PROPERTY),
                                   project=initial.keys())
        wide.feed_many(xyz_execution.messages)
        wide.finish()
        narrow = LevelByLevelBuilder(2, initial, Monitor(XYZ_PROPERTY))
        narrow.feed_many(xyz_execution.messages)
        narrow.finish()
        assert len(wide.violations) == len(narrow.violations) == 1
