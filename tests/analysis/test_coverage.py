"""Prediction-coverage analysis tests."""

from repro.analysis import (
    detect,
    observations_to_cover,
    prediction_coverage,
)
from repro.sched import FixedScheduler, Program, run_program
from repro.sched.program import Write, straightline
from repro.workloads import (
    LANDING_OBSERVED_SCHEDULE,
    LANDING_PROPERTY,
    XYZ_OBSERVED_SCHEDULE,
    XYZ_PROPERTY,
    landing_controller,
    xyz_program,
)


class TestPredictionCoverage:
    def test_landing_one_run_covers_both_bugs(self, landing_execution):
        """From the single clean observation, the lattice covers 3 of the 4
        behavior classes — including *both* violating ones."""
        rep = prediction_coverage(landing_controller(), landing_execution,
                                  LANDING_PROPERTY)
        assert rep.total_classes == 4
        assert rep.covered_classes == 3
        assert rep.violating_classes == 2
        assert rep.covered_violating == 2
        assert rep.violating_fraction == 1.0

    def test_uncovered_class_is_data_variation(self, landing_execution):
        """The one uncovered class is the denied-landing run — different
        *data* (approved=0), which permuting observed writes cannot reach.
        Honest scope: prediction covers ordering variation, not data
        variation."""
        rep = prediction_coverage(landing_controller(), landing_execution)
        assert rep.total_classes - rep.covered_classes == 1

    def test_xyz_coverage_fractions(self, xyz_execution):
        rep = prediction_coverage(xyz_program(), xyz_execution, XYZ_PROPERTY)
        assert rep.covered_classes == 3  # the lattice's three runs
        assert rep.total_classes > rep.covered_classes
        assert 0 < rep.fraction < 1
        assert rep.covered_violating >= 1  # the predicted bug class

    def test_independent_writers_fully_covered(self):
        """Pure ordering variation (no data dependence): one observation's
        lattice covers every class."""
        p = Program(
            initial={"p": 0, "q": 0},
            threads=[straightline([Write("p", 1)]),
                     straightline([Write("q", 1)])],
        )
        ex = run_program(p, FixedScheduler([], strict=False))
        rep = prediction_coverage(p, ex)
        assert rep.total_classes == 2
        assert rep.covered_classes == 2
        assert rep.fraction == 1.0

    def test_no_spec_leaves_violation_fields_none(self, xyz_execution):
        rep = prediction_coverage(xyz_program(), xyz_execution)
        assert rep.violating_classes is None
        assert rep.violating_fraction is None


class TestObservationsToCover:
    def test_predictive_needs_no_more_than_flat(self):
        flat = observations_to_cover(xyz_program(), predictive=False,
                                     max_observations=400)
        pred = observations_to_cover(xyz_program(), predictive=True,
                                     max_observations=400)
        assert flat is not None and pred is not None
        assert pred <= flat

    def test_pure_ordering_program_covered_in_one(self):
        p = Program(
            initial={"p": 0, "q": 0},
            threads=[straightline([Write("p", 1)]),
                     straightline([Write("q", 1)])],
        )
        assert observations_to_cover(p, predictive=True) == 1
        flat = observations_to_cover(p, predictive=False)
        assert flat >= 2  # must get lucky twice

    def test_budget_exhaustion_returns_none(self):
        assert observations_to_cover(xyz_program(), predictive=False,
                                     max_observations=1) is None
