"""Exhaustive model checking and the PCT scheduler."""

import pytest

from repro.analysis import detect, model_check, predict
from repro.sched import FixedScheduler, PCTScheduler, run_program
from repro.workloads import (
    AUDIT_PROPERTY,
    LANDING_PROPERTY,
    landing_controller,
    transfer_program,
    xyz_program,
    XYZ_PROPERTY,
)


class TestModelCheck:
    def test_landing_violations_found(self):
        result = model_check(landing_controller(), LANDING_PROPERTY)
        assert result.total_runs > 0
        assert result.violating_runs > 0
        assert not result.ok
        assert 0 < result.violation_rate < 1
        assert result.witness is not None

    def test_witness_is_replayable(self):
        result = model_check(landing_controller(), LANDING_PROPERTY)
        replay = run_program(landing_controller(),
                             FixedScheduler(result.witness.schedule))
        assert not detect(replay, LANDING_PROPERTY).ok

    def test_clean_program(self):
        result = model_check(transfer_program(amounts=(30,), locked=True),
                             AUDIT_PROPERTY)
        assert result.ok
        assert result.violating_runs == 0
        assert result.witness is None

    def test_truncation_flag(self):
        result = model_check(landing_controller(), LANDING_PROPERTY,
                             max_executions=3)
        assert result.truncated
        assert result.total_runs == 3
        assert not result.ok  # truncated exploration cannot certify

    def test_prediction_soundness_against_model_check(self):
        """Every violation predicted from ONE run corresponds to real
        violating interleavings found by exhaustive exploration."""
        mc = model_check(xyz_program(), XYZ_PROPERTY)
        assert mc.violating_runs > 0
        # one successful observed run predicts the same bug
        from repro.workloads import XYZ_OBSERVED_SCHEDULE

        ex = run_program(xyz_program(), FixedScheduler(XYZ_OBSERVED_SCHEDULE))
        report = predict(ex, XYZ_PROPERTY)
        assert bool(report.violations) == (mc.violating_runs > 0)

    def test_violation_rate_zero_denominator(self):
        from repro.analysis.modelcheck import ModelCheckResult

        r = ModelCheckResult("p", "s", total_runs=0, violating_runs=0)
        assert r.violation_rate == 0.0


class TestPCTScheduler:
    def test_deterministic_per_seed(self):
        p = landing_controller()
        a = run_program(p, PCTScheduler(seed=5, depth=2))
        b = run_program(p, PCTScheduler(seed=5, depth=2))
        assert a.schedule == b.schedule

    def test_depth_one_is_priority_only(self):
        """depth=1 means no change points: pure priority scheduling, so the
        highest-priority thread runs to completion first."""
        p = landing_controller()
        ex = run_program(p, PCTScheduler(seed=1, depth=1))
        # the schedule is a sequence of maximal same-thread blocks bounded
        # by blocking only; with no locks here it's two contiguous blocks
        changes = sum(1 for i in range(1, len(ex.schedule))
                      if ex.schedule[i] != ex.schedule[i - 1])
        assert changes <= 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PCTScheduler(depth=0)
        with pytest.raises(ValueError):
            PCTScheduler(expected_steps=0)

    def test_seeds_explore_different_schedules(self):
        p = landing_controller()
        schedules = {tuple(run_program(p, PCTScheduler(seed=s, depth=3)).schedule)
                     for s in range(12)}
        assert len(schedules) > 1

    def test_pct_finds_the_landing_bug(self):
        """Some PCT seed at depth 2 exposes the radio-drop window."""
        found = 0
        for seed in range(60):
            ex = run_program(landing_controller(),
                             PCTScheduler(seed=seed, depth=2,
                                          expected_steps=12))
            if not detect(ex, LANDING_PROPERTY).ok:
                found += 1
        assert found > 0
