"""E2: exact reproduction of paper Fig. 6 / Example 2 (x/y/z program).

Paper claims reproduced here:

* the observed execution passes through the states
  ``(-1,0,0), (0,0,0), (0,0,1), (1,0,1), (1,1,1)``;
* Algorithm A emits ``e1:⟨x=0,T1,(1,0)⟩ e2:⟨z=1,T2,(1,1)⟩
  e3:⟨y=1,T1,(2,0)⟩ e4:⟨x=1,T2,(1,2)⟩``;
* the lattice has the seven states S0,0 … S2,2 and three runs;
* exactly one (unobserved) run violates ``(x>0) -> [y==0, y>z)``;
* JPaX-style single-trace analysis "fails to detect this violation".
"""

from repro.analysis import detect, predict
from repro.sched import FixedScheduler, run_program
from repro.workloads import (
    XYZ_OBSERVED_SCHEDULE,
    XYZ_PROPERTY,
    XYZ_VARS,
    xyz_program,
)


class TestObservedExecution:
    def test_state_sequence(self, xyz_execution):
        assert xyz_execution.state_sequence(XYZ_VARS) == [
            (-1, 0, 0), (0, 0, 0), (0, 0, 1), (1, 0, 1), (1, 1, 1)]

    def test_exact_message_clocks(self, xyz_execution):
        by_label = {m.event.label: tuple(m.clock) for m in xyz_execution.messages}
        assert by_label == {
            "x=0": (1, 0),   # e1
            "z=1": (1, 1),   # e2
            "y=1": (2, 0),   # e3
            "x=1": (1, 2),   # e4
        }

    def test_baseline_misses_the_bug(self, xyz_execution):
        """JPaX and Java-MaC 'fail to detect this violation'."""
        assert detect(xyz_execution, XYZ_PROPERTY).ok


class TestPrediction:
    def test_full_mode_one_violating_run_of_three(self, xyz_execution):
        report = predict(xyz_execution, XYZ_PROPERTY, mode="full")
        assert report.n_runs == 3
        assert report.nodes == 7
        assert len(report.violations) == 1
        assert report.predicted

    def test_violating_run_is_e1_e3_e2_e4(self, xyz_execution):
        report = predict(xyz_execution, XYZ_PROPERTY, mode="full")
        v = report.violations[0]
        assert [m.event.label for m in v.messages] == ["x=0", "y=1", "z=1", "x=1"]
        states = [tuple(s[x] for x in XYZ_VARS) for s in v.states]
        assert states == [(-1, 0, 0), (0, 0, 0), (0, 1, 0), (0, 1, 1), (1, 1, 1)]

    def test_levels_mode_agrees(self, xyz_execution):
        report = predict(xyz_execution, XYZ_PROPERTY, mode="levels")
        assert len(report.violations) == 1
        v = report.violations[0]
        assert [m.event.label for m in v.messages] == ["x=0", "y=1", "z=1", "x=1"]

    def test_prediction_under_alternative_successful_schedules(self):
        """Other successful observed executions with the same causal order
        predict the same violation."""
        # schedule where T2's z=1 comes after T1's full execution except the
        # final write of y (still 4 messages, same computation)
        program = xyz_program()
        alt = [0, 0, 1, 1, 0, 0, 0, 1, 1, 1]
        ex = run_program(program, FixedScheduler(alt, strict=False))
        if detect(ex, XYZ_PROPERTY).ok:
            report = predict(ex, XYZ_PROPERTY)
            # the causal order may differ; if y=1 read x before x++, the
            # violating permutation exists
            assert report.ok or report.violations
