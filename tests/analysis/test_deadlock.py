"""Predictive deadlock detection (lock-order cycles, gate-lock refinement)."""

import pytest

from repro.analysis import find_potential_deadlocks, lock_order_graph
from repro.analysis.deadlock import LockEdge
from repro.sched import (
    DeadlockError,
    FixedScheduler,
    Program,
    explore_all,
    run_program,
)
from repro.sched.program import Acquire, Internal, Release, straightline


def nested(pairs):
    """Thread body acquiring/releasing nested lock pairs in order."""
    ops = []
    for outer, inner in pairs:
        ops += [Acquire(outer), Acquire(inner), Release(inner), Release(outer)]
    return straightline(ops)


def ab_ba_program(gated=False):
    g = [Acquire("G")] if gated else []
    gr = [Release("G")] if gated else []
    t1 = straightline(g + [Acquire("A"), Acquire("B"),
                           Release("B"), Release("A")] + gr)
    t2 = straightline(g + [Acquire("B"), Acquire("A"),
                           Release("A"), Release("B")] + gr)
    initial = {"A": 0, "B": 0}
    if gated:
        initial["G"] = 0
    return Program(initial=initial, threads=[t1, t2], name="ab-ba")


class TestLockOrderGraph:
    def test_nested_acquisition_edge(self):
        p = Program(initial={"A": 0, "B": 0}, threads=[nested([("A", "B")])])
        ex = run_program(p, FixedScheduler([], strict=False))
        edges = lock_order_graph(ex.events)
        assert len(edges) == 1
        assert edges[0].outer == "A" and edges[0].inner == "B"
        assert edges[0].gates == frozenset()

    def test_gate_lock_recorded(self):
        t = straightline([Acquire("G"), Acquire("A"), Acquire("B"),
                          Release("B"), Release("A"), Release("G")])
        p = Program(initial={"A": 0, "B": 0, "G": 0}, threads=[t])
        ex = run_program(p, FixedScheduler([], strict=False))
        edges = {(e.outer, e.inner): e for e in lock_order_graph(ex.events)}
        assert edges[("A", "B")].gates == frozenset({"G"})
        assert edges[("G", "B")].gates == frozenset({"A"})

    def test_no_nesting_no_edges(self):
        t = straightline([Acquire("A"), Release("A"), Acquire("B"), Release("B")])
        p = Program(initial={"A": 0, "B": 0}, threads=[t])
        ex = run_program(p, FixedScheduler([], strict=False))
        assert lock_order_graph(ex.events) == []

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            LockEdge(0, "A", "A", frozenset())


class TestPrediction:
    def test_ab_ba_predicted_from_serial_run(self):
        """The deadlock never happens serially, yet it is predicted."""
        ex = run_program(ab_ba_program(), FixedScheduler([0] * 4 + [1] * 4))
        dl = find_potential_deadlocks(ex)
        assert len(dl) == 1
        assert set(dl[0].cycle) == {"A", "B"}
        assert dl[0].threads == {0, 1}

    def test_prediction_is_feasible(self):
        """Ground truth: some interleaving of ab-ba actually deadlocks."""
        completed = sum(1 for _ in explore_all(ab_ba_program()))
        assert completed > 0  # non-deadlocking interleavings exist...
        # ...and the targeted one deadlocks: T1 takes A, T2 takes B.
        with pytest.raises(DeadlockError):
            run_program(ab_ba_program(), FixedScheduler([0, 1, 0], strict=False))

    def test_gate_lock_suppresses_report(self):
        ex = run_program(ab_ba_program(gated=True),
                         FixedScheduler([], strict=False))
        assert find_potential_deadlocks(ex) == []

    def test_consistent_order_is_clean(self):
        """Both threads acquire A before B: no cycle."""
        p = Program(initial={"A": 0, "B": 0},
                    threads=[nested([("A", "B")]), nested([("A", "B")])])
        ex = run_program(p, FixedScheduler([], strict=False))
        assert find_potential_deadlocks(ex) == []

    def test_single_thread_cycle_not_reported(self):
        """One thread using both orders cannot deadlock with itself."""
        p = Program(initial={"A": 0, "B": 0},
                    threads=[nested([("A", "B"), ("B", "A")])])
        ex = run_program(p, FixedScheduler([], strict=False))
        assert find_potential_deadlocks(ex) == []

    def test_three_lock_cycle(self):
        p = Program(
            initial={"A": 0, "B": 0, "C": 0},
            threads=[nested([("A", "B")]), nested([("B", "C")]),
                     nested([("C", "A")])],
            name="abc-cycle",
        )
        ex = run_program(p, FixedScheduler([], strict=False))
        dl = find_potential_deadlocks(ex)
        assert len(dl) == 1
        assert set(dl[0].cycle) == {"A", "B", "C"}
        assert len(dl[0].threads) == 3

    def test_accepts_raw_events(self):
        ex = run_program(ab_ba_program(), FixedScheduler([0] * 4 + [1] * 4))
        assert find_potential_deadlocks(ex.events)

    def test_dining_philosophers(self):
        """N philosophers, each taking left then right fork: the classic
        cycle is predicted from a serial (successful) run."""
        n = 4
        threads = [
            nested([(f"fork{i}", f"fork{(i + 1) % n}")]) for i in range(n)
        ]
        p = Program(initial={f"fork{i}": 0 for i in range(n)},
                    threads=threads, name="philosophers")
        ex = run_program(p, FixedScheduler([], strict=False))
        dl = find_potential_deadlocks(ex)
        assert len(dl) == 1
        assert len(dl[0].cycle) == n

    def test_asymmetric_philosopher_fix(self):
        """One left-handed philosopher breaks the cycle — no report."""
        n = 4
        threads = []
        for i in range(n):
            left, right = f"fork{i}", f"fork{(i + 1) % n}"
            if i == n - 1:
                left, right = right, left  # the fix
            threads.append(nested([(left, right)]))
        p = Program(initial={f"fork{i}": 0 for i in range(n)},
                    threads=threads)
        ex = run_program(p, FixedScheduler([], strict=False))
        assert find_potential_deadlocks(ex) == []
