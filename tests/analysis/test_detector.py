"""Observed-run-only baseline (JPaX style)."""

import pytest

from repro.analysis import detect
from repro.sched import FixedScheduler, run_program
from repro.workloads import (
    LANDING_PROPERTY,
    XYZ_PROPERTY,
    landing_controller,
    xyz_program,
)


class TestDetect:
    def test_successful_run(self, xyz_execution):
        d = detect(xyz_execution, XYZ_PROPERTY)
        assert d.ok
        assert d.violation_index is None
        assert d.violating_state() is None
        assert d.variables == ("x", "y", "z")

    def test_states_are_relevant_write_snapshots(self, xyz_execution):
        d = detect(xyz_execution, XYZ_PROPERTY)
        assert list(d.states) == [
            (-1, 0, 0), (0, 0, 0), (0, 0, 1), (1, 0, 1), (1, 1, 1)]

    def test_violating_run_detected(self):
        """A schedule in which the radio goes down before approval: even the
        flat-trace baseline sees it."""
        # thread 2 clears the radio first; thread 1 then denies approval —
        # property never violated because landing never starts!
        ex = run_program(landing_controller(),
                         FixedScheduler([1, 1, 1, 1], strict=False))
        d = detect(ex, LANDING_PROPERTY)
        assert d.ok  # landing was aborted: no 'start(landing)' edge

    def test_violation_indexing(self):
        """Force the bad interleaving: radio drops between T1's approval
        read and the landing write."""
        # T1 reads radio (up), writes approved=1; T2 clears the radio; T1
        # proceeds to land.
        sched = [0, 0, 1, 1, 1, 0, 0]
        ex = run_program(landing_controller(radio_down_iteration=0),
                         FixedScheduler(sched, strict=False))
        d = detect(ex, LANDING_PROPERTY)
        assert not d.ok
        assert d.states[d.violation_index][0] == 1  # landing started
        assert d.violating_state()["radio"] == 0

    def test_missing_variable_rejected(self, xyz_execution):
        with pytest.raises(KeyError):
            detect(xyz_execution, "ghost == 1")

    def test_accepts_monitor_instance(self, xyz_execution):
        from repro.logic import Monitor

        d = detect(xyz_execution, Monitor(XYZ_PROPERTY))
        assert d.ok
