"""Liveness prediction via u·vω lassos (paper §4)."""

from typing import Any, Generator

from repro.analysis import find_lassos, predict_liveness_violations
from repro.lattice import ComputationLattice
from repro.sched import FixedScheduler, run_program
from repro.sched.program import Internal, Op, Program, Read, Write


def toggler_program(cycles=2, with_signal=True):
    def toggler() -> Generator[Op, Any, None]:
        for _ in range(cycles):
            yield Write("busy", 1)
            yield Internal()
            yield Write("busy", 0)

    def signaler() -> Generator[Op, Any, None]:
        yield Internal()
        yield Write("go", 1)

    threads = [toggler] + ([signaler] if with_signal else [])
    return Program(
        initial={"busy": 0, "go": 0},
        threads=threads,
        relevant_vars=frozenset({"busy", "go"}),
        name="toggler",
    )


def lattice_of(program, sched=None):
    ex = run_program(program, FixedScheduler(sched or [], strict=False))
    initial = {v: ex.initial_store[v] for v in program.default_relevance_vars()}
    return ComputationLattice(ex.n_threads, initial, ex.messages)


class TestFindLassos:
    def test_toggle_loop_found(self):
        lat = lattice_of(toggler_program(cycles=2))
        lassos = list(find_lassos(lat))
        assert lassos
        # some lasso loops through busy 1 -> 0 with go still 0
        loops = [tuple((s["busy"], s["go"]) for s in l.v_states) for l in lassos]
        assert any((1, 0) in loop and (0, 0) in loop for loop in loops)

    def test_loop_closes_on_repeated_state(self):
        lat = lattice_of(toggler_program(cycles=2))
        for lasso in find_lassos(lat, limit=20):
            first = lasso.u_states[-1]
            last = lasso.v_states[-1]
            assert dict(first) == dict(last)

    def test_no_lasso_without_state_repetition(self):
        # monotone counter: states never repeat
        def counter() -> Generator[Op, Any, None]:
            for i in range(3):
                yield Write("n", i + 1)

        p = Program(initial={"n": 0}, threads=[counter],
                    relevant_vars=frozenset({"n"}))
        ex = run_program(p, FixedScheduler([], strict=False))
        lat = ComputationLattice(1, {"n": 0}, ex.messages)
        assert list(find_lassos(lat)) == []

    def test_limit_respected(self):
        lat = lattice_of(toggler_program(cycles=3))
        assert len(list(find_lassos(lat, limit=2))) <= 2


class TestLivenessPrediction:
    def test_eventually_go_violated_on_toggle_loop(self):
        lat = lattice_of(toggler_program(cycles=2))
        violations = predict_liveness_violations(lat, "eventually(go == 1)")
        assert violations
        for v in violations:
            # every reported loop never sets go
            assert all(s["go"] == 0 for s in v.lasso.v_states)

    def test_eventually_idle_holds(self):
        lat = lattice_of(toggler_program(cycles=2))
        assert predict_liveness_violations(lat, "eventually(busy == 0)") == []

    def test_always_eventually_on_loop(self):
        lat = lattice_of(toggler_program(cycles=2))
        # the toggle loop itself satisfies GF(busy==1) and GF(busy==0)
        bad = predict_liveness_violations(
            lat, "always(eventually(busy == 0))")
        # loops that end busy=0 and repeat satisfy it; loops stuck busy=1
        # don't exist in this program
        for v in bad:
            assert all(s["busy"] == 1 for s in v.lasso.v_states)

    def test_spec_accepts_formula_object(self):
        from repro.logic import parse

        lat = lattice_of(toggler_program(cycles=2))
        violations = predict_liveness_violations(lat, parse("eventually(go == 1)"))
        assert violations
