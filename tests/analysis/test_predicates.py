"""Possibly/Definitely modalities over the computation lattice (§4)."""

import pytest

from repro.analysis import as_predicate, definitely, possibly
from repro.lattice import ComputationLattice
from repro.sched import FixedScheduler, run_program
from repro.sched.program import Acquire, Program, Release, Write, straightline
from repro.workloads import (
    LANDING_VARS,
    XYZ_VARS,
    peterson_like,
)


def lattice_for(execution, variables):
    initial = {v: execution.initial_store[v] for v in variables}
    return ComputationLattice(execution.n_threads, initial, execution.messages)


class TestAsPredicate:
    def test_formula_string(self):
        pred = as_predicate("x + y == 3")
        assert pred({"x": 1, "y": 2})
        assert not pred({"x": 0, "y": 0})

    def test_callable_passthrough(self):
        pred = as_predicate(lambda s: s["x"] > 0)
        assert pred({"x": 1})

    def test_temporal_rejected(self):
        with pytest.raises(ValueError, match="temporal"):
            as_predicate("once(x == 1)")
        with pytest.raises(ValueError, match="temporal"):
            as_predicate("eventually(x == 1)")


class TestPossibly:
    def test_landing_bad_state_possible(self, landing_execution):
        """Possibly(landing && !radio): the dangerous global state is
        reachable in some run even though the observed run never showed it
        at the critical moment."""
        lat = lattice_for(landing_execution, LANDING_VARS)
        rep = possibly(lat, "landing == 1 and radio == 0")
        assert rep.holds
        assert rep.witness_state["landing"] == 1
        assert rep.witness_state["radio"] == 0

    def test_witness_run_replays_to_witness_state(self, landing_execution):
        lat = lattice_for(landing_execution, LANDING_VARS)
        rep = possibly(lat, "approved == 1 and radio == 0 and landing == 0")
        assert rep.holds
        store = dict(lat.state(lat.bottom))
        for m in rep.witness_run:
            store[m.event.var] = m.event.value
        assert store == dict(rep.witness_state)

    def test_impossible_state(self, landing_execution):
        lat = lattice_for(landing_execution, LANDING_VARS)
        rep = possibly(lat, "landing == 1 and approved == 0")
        assert not rep.holds
        assert rep.witness_cut is None

    def test_initial_state_witness(self, xyz_execution):
        lat = lattice_for(xyz_execution, XYZ_VARS)
        rep = possibly(lat, "x == -1")
        assert rep.holds
        assert rep.witness_cut == (0, 0)
        assert rep.witness_run == ()

    def test_mutual_exclusion_breach_possible(self):
        """Peterson-like handshake: Possibly(both flags up) is true —
        the classic check-then-act overlap."""
        ex = run_program(peterson_like(), FixedScheduler([], strict=False))
        lat = lattice_for(ex, ("flag0", "flag1", "in_cs"))
        rep = possibly(lat, "flag0 == 1 and flag1 == 1")
        assert rep.holds


class TestDefinitely:
    def test_final_state_is_definite(self, xyz_execution):
        """x==1 holds at the top of every run (it is the final state)."""
        lat = lattice_for(xyz_execution, XYZ_VARS)
        assert definitely(lat, "x == 1 and y == 1 and z == 1").holds

    def test_transient_state_is_not_definite(self, landing_execution):
        lat = lattice_for(landing_execution, LANDING_VARS)
        rep = definitely(lat, "approved == 1 and radio == 0 and landing == 0")
        assert not rep.holds
        assert rep.witness_cut == lat.top  # certificate: an avoiding path

    def test_initially_true_is_definite(self, landing_execution):
        lat = lattice_for(landing_execution, LANDING_VARS)
        assert definitely(lat, "radio == 1").holds  # holds at the bottom

    def test_unavoidable_intermediate(self):
        """Two sequential writes through a lock: the intermediate state
        p=1,q=0 is on every path."""
        p = Program(
            initial={"p": 0, "q": 0},
            threads=[straightline([Write("p", 1), Write("q", 1)])],
        )
        ex = run_program(p, FixedScheduler([], strict=False))
        lat = lattice_for(ex, ("p", "q"))
        assert definitely(lat, "p == 1 and q == 0").holds

    def test_avoidable_with_concurrency(self):
        """Two concurrent writers: p=1,q=0 can be skipped by doing q first."""
        p = Program(
            initial={"p": 0, "q": 0},
            threads=[straightline([Write("p", 1)]),
                     straightline([Write("q", 1)])],
        )
        ex = run_program(p, FixedScheduler([], strict=False))
        lat = lattice_for(ex, ("p", "q"))
        assert possibly(lat, "p == 1 and q == 0").holds
        assert not definitely(lat, "p == 1 and q == 0").holds

    def test_definitely_implies_possibly(self, landing_execution):
        lat = lattice_for(landing_execution, LANDING_VARS)
        for spec in ("approved == 1", "radio == 0", "landing == 1",
                     "landing == 1 and radio == 0",
                     "approved == 0 and landing == 1"):
            d = definitely(lat, spec)
            p = possibly(lat, spec)
            if d.holds:
                assert p.holds, spec
