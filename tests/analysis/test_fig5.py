"""E1: exact reproduction of paper Fig. 5 / Example 1 (landing controller).

Paper claims reproduced here:

* the instrumented observed execution emits exactly three messages —
  ``approved=1``, ``landing=1``, ``radio=0`` — in this order;
* the computation lattice has 6 global states ("there are only 6 states to
  analyze and three corresponding runs");
* the property is violated in exactly the two unobserved runs — radio down
  *between approval and landing* and radio down *before approval*;
* the observed run itself is successful, so the violations are predictions.
"""

import pytest

from repro.analysis import detect, predict
from repro.lattice import ComputationLattice
from repro.logic import Monitor
from repro.sched import FixedScheduler, explore_all, run_program
from repro.workloads import (
    LANDING_OBSERVED_SCHEDULE,
    LANDING_PROPERTY,
    LANDING_VARS,
    landing_controller,
)


@pytest.fixture
def lattice(landing_execution):
    initial = {v: landing_execution.initial_store[v] for v in LANDING_VARS}
    return ComputationLattice(2, initial, landing_execution.messages)


class TestObservedExecution:
    def test_emits_exactly_three_messages(self, landing_execution):
        labels = [m.event.label for m in landing_execution.messages]
        assert labels == ["approved=1", "landing=1", "radio=0"]

    def test_message_clocks(self, landing_execution):
        clocks = [tuple(m.clock) for m in landing_execution.messages]
        # approved=1 and landing=1 are T1's events; radio=0 is concurrent
        # with both (its clock has no T1 component).
        assert clocks == [(1, 0), (2, 0), (0, 1)]

    def test_observed_run_is_successful(self, landing_execution):
        assert detect(landing_execution, LANDING_PROPERTY).ok


class TestLattice:
    def test_six_states_three_runs(self, lattice):
        assert len(lattice) == 6
        assert lattice.count_runs() == 3

    def test_paper_state_triples(self, lattice):
        states = {lattice.state_tuple(c, LANDING_VARS) for c in lattice.cuts}
        assert states == {(0, 0, 1), (0, 1, 1), (1, 1, 1),
                          (0, 0, 0), (0, 1, 0), (1, 1, 0)}


class TestPrediction:
    def test_exactly_two_violating_runs(self, landing_execution):
        report = predict(landing_execution, LANDING_PROPERTY, mode="full")
        assert report.observed_ok
        assert report.n_runs == 3
        assert len(report.violations) == 2
        assert report.predicted

    def test_counterexamples_match_papers_scenarios(self, landing_execution):
        report = predict(landing_execution, LANDING_PROPERTY, mode="full")
        orders = set()
        for v in report.violations:
            orders.add(tuple(m.event.label for m in v.messages))
        assert orders == {
            # inner path: radio goes down between approval and landing
            ("approved=1", "radio=0", "landing=1"),
            # rightmost path: radio goes down before approval
            ("radio=0", "approved=1", "landing=1"),
        }

    def test_levels_mode_predicts_too(self, landing_execution):
        report = predict(landing_execution, LANDING_PROPERTY, mode="levels")
        assert report.observed_ok
        assert report.violations
        assert report.stats is not None

    def test_predicted_violation_is_feasible(self):
        """Ground truth: some real interleaving of the program does violate
        the property on its own observed trace."""
        program = landing_controller()
        bad = 0
        total = 0
        for ex in explore_all(program):
            total += 1
            if not detect(ex, LANDING_PROPERTY).ok:
                bad += 1
        assert bad > 0
        # ... and it is rare ("the chance of detecting this safety violation
        # by monitoring only the actual run is very low") — E4 quantifies.
        assert bad < total

    def test_prediction_from_any_successful_run_with_causality(self):
        """Every successful execution whose causal order leaves radio
        unordered w.r.t. approval/landing predicts the violation."""
        program = landing_controller()
        predicted_from = 0
        successful = 0
        for ex in explore_all(program):
            if not detect(ex, LANDING_PROPERTY).ok:
                continue
            successful += 1
            report = predict(ex, LANDING_PROPERTY)
            if report.violations:
                predicted_from += 1
        assert successful > 0
        assert predicted_from > 0
