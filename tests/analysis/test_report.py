"""Aggregated analysis reports (analysis.report + CLI analyze)."""

from repro.analysis import analyze
from repro.cli import main as cli_main
from repro.core import all_accesses
from repro.sched import FixedScheduler, run_program
from repro.workloads import (
    LANDING_OBSERVED_SCHEDULE,
    LANDING_PROPERTY,
    landing_controller,
    locked_counter,
    racy_counter,
)


def run_cli(*argv):
    lines = []
    code = cli_main(list(argv), out=lines.append)
    return code, "\n".join(lines)


class TestAnalyze:
    def test_prediction_included(self, landing_execution):
        report = analyze(landing_execution, specs=[LANDING_PROPERTY])
        assert len(report.predictions) == 1
        rep = next(iter(report.predictions.values()))
        assert rep.predicted
        assert not report.clean

    def test_races_skipped_without_reads(self, landing_execution):
        report = analyze(landing_execution, specs=())
        assert not report.races_checked
        assert "not checked" in report.summary()

    def test_races_run_with_all_accesses(self):
        ex = run_program(racy_counter(2, 1), FixedScheduler([], strict=False),
                         relevance=all_accesses(), sync_only_clocks=True)
        report = analyze(ex)
        assert report.races_checked
        assert len(report.races) == 3
        assert not report.clean

    def test_clean_report(self):
        ex = run_program(locked_counter(2, 1), FixedScheduler([], strict=False),
                         relevance=all_accesses(), sync_only_clocks=True)
        report = analyze(ex, specs=["c >= 0"])
        assert report.clean
        assert "CLEAN" in report.summary()

    def test_deadlocks_included(self):
        from repro.sched.program import Acquire, Program, Release, straightline

        p = Program(
            initial={"A": 0, "B": 0},
            threads=[
                straightline([Acquire("A"), Acquire("B"),
                              Release("B"), Release("A")]),
                straightline([Acquire("B"), Acquire("A"),
                              Release("A"), Release("B")]),
            ],
        )
        ex = run_program(p, FixedScheduler([0] * 4 + [1] * 4))
        report = analyze(ex)
        assert len(report.deadlocks) == 1
        assert "potential deadlock" in report.summary()

    def test_summary_counts(self, landing_execution):
        report = analyze(landing_execution, specs=[LANDING_PROPERTY])
        s = report.summary()
        assert "2 threads" in s
        assert "3 relevant messages" in s


class TestCliAnalyze:
    def test_landing_report(self):
        code, out = run_cli("analyze", "landing")
        assert code == 1
        assert "VIOLATED" in out and "predicted" in out
        assert "data races:" in out
        assert "verdict: FINDINGS" in out

    def test_custom_spec(self):
        code, out = run_cli("analyze", "xyz", "--spec", "x >= -1")
        assert "holds on every consistent run" in out
