"""Atomicity-violation detection tests (unserializable patterns)."""

import pytest

from repro.analysis.atomicity import (
    AtomicityViolation,
    find_atomicity_violations,
)
from repro.sched import FixedScheduler, Program, run_program
from repro.sched.program import Acquire, Internal, Read, Release, Write, straightline


def run(threads, initial, schedule=None):
    p = Program(initial=initial, threads=threads)
    return run_program(p, FixedScheduler(schedule or [], strict=False))


def region_reader(var="x", n_reads=2):
    ops = [Acquire("L")]
    for _ in range(n_reads):
        ops.append(Read(var))
        ops.append(Internal())
    ops = ops[:-1] + [Release("L")]
    return straightline(ops)


class TestUnserializablePatterns:
    def test_rwr_non_repeatable_read(self):
        """Remote unlocked write between two lock-held reads."""
        ex = run(
            [region_reader(), straightline([Write("x", 1)])],
            {"x": 0, "L": 0},
        )
        violations = find_atomicity_violations(ex)
        assert len(violations) == 1
        v = violations[0]
        assert v.pattern == ("R", "W", "R")
        assert v.var == "x"
        assert v.region.lock == "L"

    def test_wrw_intermediate_read(self):
        writer = straightline([Acquire("L"), Write("x", 1), Internal(),
                               Write("x", 2), Release("L")])
        ex = run([writer, straightline([Read("x")])], {"x": 0, "L": 0})
        violations = find_atomicity_violations(ex)
        assert {v.pattern for v in violations} == {("W", "R", "W")}

    def test_rww_lost_remote_write(self):
        local = straightline([Acquire("L"), Read("x"), Internal(),
                              Write("x", 9), Release("L")])
        ex = run([local, straightline([Write("x", 1)])], {"x": 0, "L": 0})
        patterns = {v.pattern for v in find_atomicity_violations(ex)}
        assert ("R", "W", "W") in patterns

    def test_wwr_lost_local_write(self):
        local = straightline([Acquire("L"), Write("x", 1), Internal(),
                              Read("x"), Release("L")])
        ex = run([local, straightline([Write("x", 2)])], {"x": 0, "L": 0})
        patterns = {v.pattern for v in find_atomicity_violations(ex)}
        assert ("W", "W", "R") in patterns


class TestSerializablePatterns:
    def test_remote_read_between_reads_not_reported(self):
        """R-R-R is serializable."""
        ex = run([region_reader(), straightline([Read("x")])],
                 {"x": 0, "L": 0})
        assert find_atomicity_violations(ex) == []

    def test_wrr_serializable(self):
        local = straightline([Acquire("L"), Write("x", 1), Internal(),
                              Read("x"), Release("L")])
        ex = run([local, straightline([Read("x")])], {"x": 0, "L": 0})
        assert find_atomicity_violations(ex) == []

    def test_rrw_serializable(self):
        local = straightline([Acquire("L"), Read("x"), Internal(),
                              Write("x", 1), Release("L")])
        ex = run([local, straightline([Read("x")])], {"x": 0, "L": 0})
        assert find_atomicity_violations(ex) == []


class TestSynchronizationSuppression:
    def test_remote_under_same_lock_not_reported(self):
        """A remote write inside the same lock cannot interleave."""
        remote = straightline([Acquire("L"), Write("x", 1), Release("L")])
        ex = run([region_reader(), remote], {"x": 0, "L": 0})
        assert find_atomicity_violations(ex) == []

    def test_remote_under_different_lock_reported(self):
        remote = straightline([Acquire("M"), Write("x", 1), Release("M")])
        ex = run([region_reader(), remote], {"x": 0, "L": 0, "M": 0})
        assert len(find_atomicity_violations(ex)) == 1

    def test_same_thread_never_reported(self):
        body = straightline([Acquire("L"), Read("x"), Write("x", 1),
                             Read("x"), Release("L"), Write("x", 2)])
        ex = run([body], {"x": 0, "L": 0})
        assert find_atomicity_violations(ex) == []

    def test_different_variables_not_reported(self):
        ex = run([region_reader("x"), straightline([Write("y", 1)])],
                 {"x": 0, "y": 0, "L": 0})
        assert find_atomicity_violations(ex) == []


class TestReporting:
    def test_detection_is_schedule_independent(self):
        threads = [region_reader(), straightline([Write("x", 1)])]
        counts = set()
        for schedule in ([0] * 8 + [1], [1] + [0] * 8):
            ex = run(threads, {"x": 0, "L": 0}, schedule)
            counts.add(len(find_atomicity_violations(ex)))
        assert counts == {1}

    def test_pretty_mentions_pattern(self):
        ex = run([region_reader(), straightline([Write("x", 1)])],
                 {"x": 0, "L": 0})
        v = find_atomicity_violations(ex)[0]
        assert "R-W-R" in v.pretty()
        assert "atomicity violation" in v.pretty()

    def test_accepts_raw_events(self):
        ex = run([region_reader(), straightline([Write("x", 1)])],
                 {"x": 0, "L": 0})
        assert find_atomicity_violations(ex.events)
