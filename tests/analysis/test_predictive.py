"""Predictive analyzer: soundness/completeness against ground truth, engine
agreement (levels vs full), and the online streaming façade."""

import random

import pytest

from repro.analysis import OnlinePredictor, detect, predict
from repro.logic import Monitor
from repro.sched import FixedScheduler, RandomScheduler, explore_all, run_program
from repro.workloads import (
    AUDIT_PROPERTY,
    LANDING_PROPERTY,
    XYZ_PROPERTY,
    landing_controller,
    random_program,
    transfer_program,
    xyz_program,
)


class TestEngineAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_levels_and_full_agree_on_violation_existence(self, seed):
        program = random_program(random.Random(seed), n_threads=2, n_vars=3,
                                 ops_per_thread=4, write_ratio=0.6)
        ex = run_program(program, RandomScheduler(seed))
        # a simple generic safety property over the generated variables
        spec = "historically(v0 <= v1 + v2 + 100)"
        full = predict(ex, spec, mode="full")
        levels = predict(ex, spec, mode="levels")
        assert bool(full.violations) == bool(levels.violations), seed

    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_on_tighter_property(self, seed):
        program = random_program(random.Random(seed), n_threads=3, n_vars=2,
                                 ops_per_thread=3, write_ratio=0.8)
        ex = run_program(program, RandomScheduler(seed + 100))
        spec = "v0 <= v1 or v1 <= v0"  # tautology: never violated
        full = predict(ex, spec, mode="full")
        levels = predict(ex, spec, mode="levels")
        assert full.ok and levels.ok

    def test_unknown_mode_rejected(self, xyz_execution):
        with pytest.raises(ValueError):
            predict(xyz_execution, XYZ_PROPERTY, mode="quantum")

    def test_missing_spec_variable_rejected(self, xyz_execution):
        with pytest.raises(KeyError):
            predict(xyz_execution, "nonexistent == 1")


class TestSoundness:
    """Every predicted violating run must be *feasible*: some real
    interleaving realizes exactly that relevant-event order (straightline
    programs make this exact)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_predicted_runs_are_feasible(self, seed):
        program = random_program(random.Random(seed), n_threads=2, n_vars=2,
                                 ops_per_thread=3, write_ratio=0.7)
        ex = run_program(program, RandomScheduler(seed))
        spec = "historically(v0 + v1 >= 0)"  # won't trigger; use lattice runs
        report = predict(ex, spec, mode="full")
        # collect the relevant-event orders of all real interleavings
        feasible_orders = set()
        for ground in explore_all(program, max_executions=20_000):
            feasible_orders.add(tuple(m.event.eid for m in ground.messages))
        # every lattice run must be among them
        from repro.lattice import ComputationLattice

        variables = sorted(program.default_relevance_vars())
        initial = {v: ex.initial_store[v] for v in variables}
        lat = ComputationLattice(2, initial, ex.messages)
        for run in lat.runs():
            order = tuple(m.event.eid for m in run.messages)
            assert order in feasible_orders, order

    def test_landing_prediction_feasible(self, landing_execution):
        report = predict(landing_execution, LANDING_PROPERTY, mode="full")
        predicted_orders = {
            tuple(m.event.label for m in v.messages) for v in report.violations
        }
        # ground truth: violating observed traces of real interleavings
        real_bad_prefixes = set()
        for ex in explore_all(landing_controller()):
            d = detect(ex, LANDING_PROPERTY)
            if not d.ok:
                labels = tuple(m.event.label for m in ex.messages)
                real_bad_prefixes.add(labels[: d.violation_index])
        # each predicted counterexample order occurs as a real bad prefix
        for order in predicted_orders:
            assert order in real_bad_prefixes, order


class TestCompleteness:
    """If some interleaving with the same causal order violates, the
    analyzer must predict it (the lattice contains all consistent runs)."""

    def test_audit_violation_predicted_from_clean_run(self):
        program = transfer_program()
        ex = run_program(program, FixedScheduler([1, 1, 1] + [0] * 6,
                                                 strict=False))
        assert detect(ex, AUDIT_PROPERTY).ok
        report = predict(ex, AUDIT_PROPERTY)
        assert report.predicted

    def test_no_false_negatives_vs_exhaustive_same_computation(self):
        """For the xyz program: every interleaving that (a) violates on its
        own trace and (b) has the same relevant causal order as the observed
        run, appears among the predicted violations."""
        program = xyz_program()
        observed = run_program(program, FixedScheduler(
            [0, 0, 1, 1, 0, 0, 1, 1, 1, 0]))
        report = predict(observed, XYZ_PROPERTY, mode="full")
        predicted = {tuple(m.event.label for m in v.messages)
                     for v in report.violations}
        obs_clocks = sorted(tuple(m.clock) for m in observed.messages)
        for ex in explore_all(program):
            same_comp = sorted(tuple(m.clock) for m in ex.messages) == obs_clocks
            d = detect(ex, XYZ_PROPERTY)
            if same_comp and not d.ok:
                labels = tuple(m.event.label for m in ex.messages)
                assert labels[: d.violation_index] in predicted


class TestReportFields:
    def test_report_metadata(self, xyz_execution):
        report = predict(xyz_execution, XYZ_PROPERTY, mode="full")
        assert report.program_name == "xyz"
        assert "x > 0" in report.spec
        assert report.observed_violation_index is None
        assert report.nodes == 7

    def test_run_limit_bounds_full_mode(self, xyz_execution):
        report = predict(xyz_execution, XYZ_PROPERTY, mode="full", run_limit=1)
        assert report.n_runs == 1

    def test_ok_and_predicted_flags(self, xyz_execution):
        report = predict(xyz_execution, XYZ_PROPERTY)
        assert not report.ok and report.predicted
        clean = predict(xyz_execution, "x >= -1")
        assert clean.ok and not clean.predicted


class TestOnlinePredictor:
    def test_streaming_violation_discovery(self, xyz_execution):
        pred = OnlinePredictor(2, xyz_execution.initial_store, XYZ_PROPERTY)
        seen = []
        for m in xyz_execution.messages:
            seen.extend(pred.feed(m))
        seen.extend(pred.finish())
        assert len(seen) == 1
        assert pred.violations == seen

    def test_thread_done_markers_enable_early_results(self, xyz_execution):
        pred = OnlinePredictor(2, xyz_execution.initial_store, XYZ_PROPERTY)
        for m in xyz_execution.messages:
            pred.feed(m)
        new = pred.mark_thread_done(0, 2) + pred.mark_thread_done(1, 2)
        assert len(new) == 1  # violation surfaced without finish()

    def test_stats_exposed(self, xyz_execution):
        pred = OnlinePredictor(2, xyz_execution.initial_store, XYZ_PROPERTY)
        for m in xyz_execution.messages:
            pred.feed(m)
        pred.finish()
        assert pred.stats.nodes_expanded == 7
