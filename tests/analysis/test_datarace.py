"""Data-race detection: oracle vs observer-side engines, lock discipline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import find_races, find_races_from_messages
from repro.analysis.datarace import Race
from repro.core import all_accesses
from repro.core.events import Event, EventKind
from repro.sched import FixedScheduler, RandomScheduler, run_program
from repro.sched.program import (
    Acquire,
    Internal,
    Program,
    Read,
    Release,
    Write,
    straightline,
)
from repro.workloads import locked_counter, racy_counter


def race_run(program, seed=0):
    return run_program(program, RandomScheduler(seed),
                       relevance=all_accesses(), sync_only_clocks=True)


class TestRaceDataclass:
    def test_key_is_unordered(self):
        a = Event(thread=0, seq=1, kind=EventKind.WRITE, var="x", value=1)
        b = Event(thread=1, seq=1, kind=EventKind.READ, var="x", value=1)
        assert Race("x", a, b).key == Race("x", b, a).key

    def test_identical_events_rejected(self):
        a = Event(thread=0, seq=1, kind=EventKind.WRITE, var="x", value=1)
        with pytest.raises(ValueError):
            Race("x", a, a)

    def test_pretty(self):
        a = Event(thread=0, seq=1, kind=EventKind.WRITE, var="x", value=1)
        b = Event(thread=1, seq=1, kind=EventKind.READ, var="x", value=1)
        assert "race on 'x'" in Race("x", a, b).pretty()


class TestDetection:
    def test_racy_counter_has_races(self):
        ex = race_run(racy_counter(2, 1))
        races = find_races(ex)
        # R0||W1, W0||R1, W0||W1 — 3 conflicting concurrent pairs
        assert len(races) == 3
        assert all(r.var == "c" for r in races)

    def test_locked_counter_clean(self):
        ex = race_run(locked_counter(2, 2))
        assert find_races(ex) == []

    def test_read_read_is_not_a_race(self):
        p = Program(
            initial={"x": 0},
            threads=[straightline([Read("x")]), straightline([Read("x")])],
        )
        ex = race_run(p)
        assert find_races(ex) == []

    def test_same_thread_accesses_never_race(self):
        p = Program(
            initial={"x": 0},
            threads=[straightline([Write("x", 1), Write("x", 2)])],
        )
        ex = race_run(p)
        assert find_races(ex) == []

    def test_different_variables_never_race(self):
        p = Program(
            initial={"x": 0, "y": 0},
            threads=[straightline([Write("x", 1)]),
                     straightline([Write("y", 1)])],
        )
        ex = race_run(p)
        assert find_races(ex) == []

    def test_partial_locking_still_races(self):
        """One thread locked, the other not: still a race."""
        p = Program(
            initial={"x": 0, "L": 0},
            threads=[
                straightline([Acquire("L"), Write("x", 1), Release("L")]),
                straightline([Write("x", 2)]),
            ],
        )
        ex = race_run(p)
        assert len(find_races(ex)) == 1

    def test_disjoint_locks_race(self):
        p = Program(
            initial={"x": 0, "L1": 0, "L2": 0},
            threads=[
                straightline([Acquire("L1"), Write("x", 1), Release("L1")]),
                straightline([Acquire("L2"), Write("x", 2), Release("L2")]),
            ],
        )
        ex = race_run(p)
        assert len(find_races(ex)) == 1

    def test_race_count_independent_of_schedule(self):
        """Happens-before races depend on the sync structure, not on which
        interleaving was observed."""
        counts = set()
        for seed in range(6):
            ex = race_run(racy_counter(2, 1), seed=seed)
            counts.add(len(find_races(ex)))
        assert counts == {3}


class TestObserverSideAgreement:
    @pytest.mark.parametrize("n_threads,increments", [(2, 1), (2, 2), (3, 1)])
    def test_engines_agree_on_counters(self, n_threads, increments):
        ex = race_run(racy_counter(n_threads, increments))
        oracle = {r.key for r in find_races(ex)}
        observer = {r.key for r in find_races_from_messages(ex.messages,
                                                            n_threads)}
        assert oracle == observer

    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_engines_agree_on_random_sync_programs(self, seed):
        rng = random.Random(seed)
        ops_pool = ["r", "w", "lock", "i"]
        threads = []
        for _t in range(2):
            ops = []
            for _k in range(rng.randrange(1, 5)):
                kind = rng.choice(ops_pool)
                if kind == "r":
                    ops.append(Read("x"))
                elif kind == "w":
                    ops.append(Write("x", rng.randrange(5)))
                elif kind == "lock":
                    ops.extend([Acquire("L"),
                                Write("x", rng.randrange(5)),
                                Release("L")])
                else:
                    ops.append(Internal())
            threads.append(straightline(ops))
        p = Program(initial={"x": 0, "L": 0}, threads=threads)
        ex = race_run(p, seed=seed)
        oracle = {r.key for r in find_races(ex)}
        observer = {r.key for r in find_races_from_messages(ex.messages, 2)}
        assert oracle == observer
