"""Catalog: entry serialization, queries, atomic persistence."""

import json

import pytest

from repro.store.catalog import (
    Catalog,
    CatalogEntry,
    CatalogError,
    CatalogQuery,
)


def entry(eid="s000001-xyz", **kw):
    base = dict(
        id=eid, program="xyz", n_threads=2, events=4,
        verdict="violation", violations=1,
        counterexamples=("(-1, 0) --x=0--> (0, 0)",),
        final_clocks=((2, 0), (1, 2)), sound=True,
        wall_time_s=0.01, created_at=1000.0, bytes=300,
        path=f"traces/{eid}.rpt", spec="x >= 0")
    base.update(kw)
    return CatalogEntry(**base)


class TestEntry:
    def test_json_round_trip(self):
        e = entry()
        doc = json.loads(json.dumps(e.to_json()))
        assert CatalogEntry.from_json(doc) == e

    def test_malformed_doc_rejected(self):
        with pytest.raises(CatalogError, match="malformed"):
            CatalogEntry.from_json({"id": "s1"})


class TestQuery:
    def test_all_none_matches_everything(self):
        assert CatalogQuery().matches(entry())

    def test_program_exact(self):
        assert CatalogQuery(program="xyz").matches(entry())
        assert not CatalogQuery(program="xy").matches(entry())

    def test_spec_substring(self):
        assert CatalogQuery(spec_contains="x >=").matches(entry())
        assert not CatalogQuery(spec_contains="y").matches(entry())
        assert not CatalogQuery(spec_contains="x").matches(
            entry(spec=None))

    def test_verdict(self):
        assert CatalogQuery(verdict="violation").matches(entry())
        assert not CatalogQuery(verdict="clean").matches(entry())

    def test_verdict_validated(self):
        with pytest.raises(ValueError, match="verdict"):
            CatalogQuery(verdict="maybe")

    def test_event_bounds(self):
        assert CatalogQuery(min_events=4, max_events=4).matches(entry())
        assert not CatalogQuery(min_events=5).matches(entry())
        assert not CatalogQuery(max_events=3).matches(entry())

    def test_time_bounds(self):
        assert CatalogQuery(since=1000.0, before=1001.0).matches(entry())
        assert not CatalogQuery(since=1000.5).matches(entry())
        assert not CatalogQuery(before=1000.0).matches(entry())


class TestCatalog:
    def test_missing_file_is_empty(self, tmp_path):
        cat = Catalog.load(tmp_path / "catalog.json")
        assert len(cat) == 0
        assert cat.next_seq == 1

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "catalog.json"
        cat = Catalog(path)
        cat.add(entry("s000001-xyz", created_at=5.0))
        cat.add(entry("s000002-bank", program="bank", created_at=2.0))
        cat.next_seq = 3
        cat.save()
        loaded = Catalog.load(path)
        assert loaded.next_seq == 3
        # oldest first
        assert [e.id for e in loaded.entries()] == [
            "s000002-bank", "s000001-xyz"]
        assert "s000001-xyz" in loaded
        assert loaded.total_bytes() == 600

    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "catalog.json"
        cat = Catalog(path)
        cat.add(entry())
        cat.save()
        assert not path.with_suffix(".json.tmp").exists()

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "catalog.json"
        path.write_text("{truncated")
        with pytest.raises(CatalogError, match="cannot read"):
            Catalog.load(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "catalog.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(CatalogError, match="version"):
            Catalog.load(path)

    def test_allocate_id_monotone_and_safe(self, tmp_path):
        cat = Catalog(tmp_path / "catalog.json")
        assert cat.allocate_id("xyz") == "s000001-xyz"
        assert cat.allocate_id("a b/c") == "s000002-a-b-c"
        assert cat.allocate_id("") == "s000003-unknown"

    def test_duplicate_id_rejected(self, tmp_path):
        cat = Catalog(tmp_path / "catalog.json")
        cat.add(entry())
        with pytest.raises(CatalogError, match="duplicate"):
            cat.add(entry())

    def test_get_and_remove_unknown(self, tmp_path):
        cat = Catalog(tmp_path / "catalog.json")
        with pytest.raises(CatalogError, match="no catalog entry"):
            cat.get("s999999-x")
        with pytest.raises(CatalogError, match="no catalog entry"):
            cat.remove("s999999-x")

    def test_query_filters_entries(self, tmp_path):
        cat = Catalog(tmp_path / "catalog.json")
        cat.add(entry("s000001-xyz"))
        cat.add(entry("s000002-bank", program="bank", verdict="clean",
                      violations=0, counterexamples=()))
        assert [e.id for e in cat.entries(CatalogQuery(verdict="clean"))] \
            == ["s000002-bank"]
