"""Catalog corruption recovery: quarantine and rebuild from trace footers.

A truncated, garbled or non-JSON ``catalog.json`` must never brick the
archive: opening quarantines the damaged document (renamed, never
deleted) and re-indexes every sealed trace from the verdict embedded in
its footer, reporting what was rebuilt and what had to be skipped.
"""

import json

import pytest

from repro.obs import metrics as _metrics
from repro.store import TraceArchive

from .conftest import run_workload


def _populate(root, n=3):
    """Record ``n`` xyz runs into a fresh archive; return their entries."""
    archive = TraceArchive(root)
    entries = []
    for seed in range(n):
        execution, _ = run_workload("xyz", seed=seed)
        pending = archive.begin("xyz", execution.n_threads,
                                execution.initial_store)
        for m in execution.messages:
            pending.write(m)
        entries.append(pending.commit([f"cx-{seed}"], True, 0.5))
    return archive, entries


def _corrupt(root, damage):
    path = root / TraceArchive.CATALOG_NAME
    if damage == "truncated":
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    elif damage == "garbage":
        path.write_text("{this is not json", encoding="utf-8")
    elif damage == "empty":
        path.write_text("", encoding="utf-8")
    return path


class TestCatalogRecovery:
    @pytest.mark.parametrize("damage", ["truncated", "garbage", "empty"])
    def test_corrupt_catalog_is_quarantined_and_rebuilt(self, tmp_path,
                                                        damage):
        root = tmp_path / "archive"
        _, entries = _populate(root)
        corrupt_bytes = _corrupt(root, damage).read_bytes()

        reopened = TraceArchive(root)
        report = reopened.last_rebuild
        assert report is not None
        assert report.rebuilt == len(entries)
        assert report.skipped == []
        # the damaged document is preserved verbatim, next to the rebuilt one
        quarantined = root / (TraceArchive.CATALOG_NAME + ".quarantined")
        assert str(quarantined) == report.quarantined_to
        assert quarantined.read_bytes() == corrupt_bytes

        # rebuilt entries match the originals where the footer is
        # authoritative (verdict, counterexamples, events)
        by_id = {e.id: e for e in reopened.entries()}
        assert set(by_id) == {e.id for e in entries}
        for orig in entries:
            got = by_id[orig.id]
            assert got.verdict == orig.verdict
            assert got.counterexamples == orig.counterexamples
            assert got.events == orig.events
            assert got.n_threads == orig.n_threads
            assert got.path == orig.path

    def test_rebuild_does_not_reuse_trace_ids(self, tmp_path):
        root = tmp_path / "archive"
        _, entries = _populate(root)
        _corrupt(root, "garbage")
        reopened = TraceArchive(root)
        execution, _ = run_workload("xyz", seed=99)
        pending = reopened.begin("xyz", execution.n_threads,
                                 execution.initial_store)
        assert pending.id not in {e.id for e in entries}
        pending.abort()

    def test_damaged_trace_is_skipped_with_reason(self, tmp_path):
        root = tmp_path / "archive"
        archive, entries = _populate(root, n=2)
        victim = archive.path_of(entries[0])
        victim.write_bytes(victim.read_bytes()[:40])   # tear the trace too
        _corrupt(root, "truncated")

        reopened = TraceArchive(root)
        report = reopened.last_rebuild
        assert report.rebuilt == 1
        assert [name for name, _ in report.skipped] == [victim.name]
        assert {e.id for e in reopened.entries()} == {entries[1].id}

    def test_repeated_corruption_numbers_quarantines(self, tmp_path):
        root = tmp_path / "archive"
        _populate(root, n=1)
        _corrupt(root, "garbage")
        TraceArchive(root)
        _corrupt(root, "garbage")
        second = TraceArchive(root)
        assert second.last_rebuild.quarantined_to.endswith(".quarantined.1")

    def test_clean_open_reports_no_rebuild_and_metric_counts(self, tmp_path):
        root = tmp_path / "archive"
        _populate(root, n=1)
        assert TraceArchive(root).last_rebuild is None

        _metrics.enable(reset=True)
        try:
            before = _metrics.REGISTRY.get("store.catalog_rebuilds").value
            _corrupt(root, "garbage")
            TraceArchive(root)
            after = _metrics.REGISTRY.get("store.catalog_rebuilds").value
        finally:
            _metrics.disable()
        assert after == before + 1

    def test_rebuilt_catalog_is_valid_json_on_disk(self, tmp_path):
        root = tmp_path / "archive"
        _populate(root)
        _corrupt(root, "truncated")
        TraceArchive(root)
        with open(root / TraceArchive.CATALOG_NAME, encoding="utf-8") as fh:
            json.load(fh)   # must not raise
