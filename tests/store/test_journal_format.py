"""Incremental-journal primitives of the v2 format.

The crash-resilient server journals every session through
:meth:`SegmentWriter.checkpoint` and reads it back with
:func:`read_trace_prefix` / :func:`read_trace_meta`.  These tests pin the
contract those layers depend on: checkpointed events survive a torn tail,
footers carry the catalog extras, and prefix reading never trusts an
unverified frame.
"""

import struct

import pytest

from repro.observer.trace import TraceFormatError
from repro.store.format import (
    MAGIC,
    SegmentWriter,
    read_trace_meta,
    read_trace_prefix,
    read_trace_v2,
)

from .conftest import run_workload

_FRAME_HEAD = struct.Struct("<BI")
_FRAME_CRC = struct.Struct("<I")


def _open_writer(tmp_path, execution, **kw):
    return SegmentWriter(tmp_path / "j.rpt", execution.n_threads,
                         execution.initial_store, program="xyz", **kw)


class TestCheckpoint:
    def test_checkpointed_prefix_is_readable_without_footer(self, tmp_path):
        execution, _ = run_workload("xyz")
        w = _open_writer(tmp_path, execution, events_per_segment=1000)
        durable = 0
        for i, m in enumerate(execution.messages):
            w.write(m)
            if i == 1:
                durable = w.checkpoint()
        assert durable == 2
        # the writer never closed: no footer, but the checkpointed prefix
        # (plus anything flushed since) must read back intact
        prefix = read_trace_prefix(w.path)
        assert not prefix.complete
        assert prefix.footer is None
        assert len(prefix.messages) >= durable
        assert [m.to_json() for m in prefix.messages] == [
            m.to_json() for m in execution.messages[:len(prefix.messages)]]
        w._abandon()

    def test_checkpoint_counts_and_keeps_writer_open(self, tmp_path):
        execution, _ = run_workload("xyz")
        w = _open_writer(tmp_path, execution)
        for m in execution.messages:
            w.write(m)
            assert w.checkpoint(fsync=False) == w.count
        w.close()
        trace = read_trace_v2(w.path)
        assert len(trace.messages) == len(execution.messages)

    def test_checkpoint_after_close_raises(self, tmp_path):
        execution, _ = run_workload("xyz")
        w = _open_writer(tmp_path, execution)
        w.close()
        with pytest.raises(RuntimeError):
            w.checkpoint()


class TestTornTail:
    def _journal(self, tmp_path, execution, keep):
        """Checkpoint after every event, then keep only ``keep`` bytes."""
        w = _open_writer(tmp_path, execution, events_per_segment=1000)
        for m in execution.messages:
            w.write(m)
            w.checkpoint(fsync=False)
        w._abandon()   # simulate a kill: no footer
        data = w.path.read_bytes()
        w.path.write_bytes(data[:keep])
        return w.path, data

    def test_mid_frame_kill_drops_only_the_torn_frame(self, tmp_path):
        execution, _ = run_workload("xyz")
        path, data = self._journal(tmp_path, execution, keep=len(MAGIC))
        # a torn *header* is unrecoverable by design; start chopping after
        # the first full frame and walk progressively longer prefixes: the
        # reader must never raise, never reorder, never go backwards
        _, header_len = _FRAME_HEAD.unpack_from(data, len(MAGIC))
        header_end = (len(MAGIC) + _FRAME_HEAD.size + header_len
                      + _FRAME_CRC.size)
        last = -1
        for keep in range(header_end, len(data) + 1,
                          max(1, len(data) // 40)):
            path.write_bytes(data[:keep])
            prefix = read_trace_prefix(path)
            got = [m.to_json() for m in prefix.messages]
            want = [m.to_json() for m in execution.messages[:len(got)]]
            assert got == want
            assert len(got) >= last   # monotone in the kept prefix
            last = len(got)
        path.write_bytes(data)
        assert (len(read_trace_prefix(path).messages)
                == len(execution.messages))

    def test_corrupt_byte_stops_at_crc(self, tmp_path):
        execution, _ = run_workload("xyz")
        w = _open_writer(tmp_path, execution, events_per_segment=2)
        for m in execution.messages:
            w.write(m)
        w._abandon()
        data = bytearray(w.path.read_bytes())
        data[-3] ^= 0xFF   # flip a bit inside the last frame
        w.path.write_bytes(bytes(data))
        prefix = read_trace_prefix(w.path)
        assert not prefix.complete
        assert prefix.truncated_at is not None
        assert len(prefix.messages) < len(execution.messages)

    def test_not_a_trace_raises(self, tmp_path):
        path = tmp_path / "nope.rpt"
        path.write_bytes(b"definitely not a trace")
        with pytest.raises(TraceFormatError):
            read_trace_prefix(path)


class TestFooterCatalog:
    def test_close_extra_lands_in_footer_and_meta(self, tmp_path):
        execution, _ = run_workload("xyz")
        w = _open_writer(tmp_path, execution)
        for m in execution.messages:
            w.write(m)
        extra = {"verdict": "violation", "violations": 2,
                 "program": "xyz", "counterexamples": ["x=1, y=0, z=1"]}
        w.close(extra=extra)

        prefix = read_trace_prefix(w.path)
        assert prefix.complete
        assert prefix.footer["catalog"] == extra

        meta = read_trace_meta(w.path)
        assert meta.catalog == extra
        assert meta.events == len(execution.messages)
        assert meta.header.program == "xyz"
        assert meta.segments >= 1

    def test_meta_requires_a_footer(self, tmp_path):
        execution, _ = run_workload("xyz")
        w = _open_writer(tmp_path, execution)
        for m in execution.messages:
            w.write(m)
        w._abandon()
        with pytest.raises(TraceFormatError):
            read_trace_meta(w.path)

    def test_close_without_extra_has_no_catalog(self, tmp_path):
        execution, _ = run_workload("xyz")
        w = _open_writer(tmp_path, execution)
        w.close()
        assert read_trace_meta(w.path).catalog is None
