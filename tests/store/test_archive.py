"""TraceArchive lifecycle: two-phase commit, GC, and server integration."""

import threading

import pytest

from repro.store import (
    CatalogQuery,
    GCReport,
    RetentionPolicy,
    TraceArchive,
)
from repro.store.gc import plan

from .conftest import run_workload


def record(archive, name="xyz", seed=None, spec=None):
    execution, bundled = run_workload(name, seed)
    return archive.record_messages(
        name, execution.n_threads, execution.initial_store,
        execution.messages, spec=spec if spec is not None else bundled)


class TestTwoPhaseCommit:
    def test_commit_publishes(self, archive):
        entry = record(archive, "xyz")
        assert entry.id == "s000001-xyz"
        assert entry.verdict == "violation"
        assert entry.events == 4
        assert archive.path_of(entry).exists()
        assert archive.get(entry.id) == entry
        assert len(archive) == 1
        # no partial files remain
        assert not list(archive.traces_dir.glob("*.part"))

    def test_abort_leaves_nothing(self, archive):
        pending = archive.begin("xyz", 2, {"x": 0})
        part = archive.traces_dir / f"{pending.id}.rpt.part"
        assert part.exists()
        pending.abort()
        assert not part.exists()
        assert len(archive) == 0

    def test_commit_abort_race_is_idempotent(self, archive):
        execution, _ = run_workload("xyz")
        pending = archive.begin("xyz", execution.n_threads,
                                execution.initial_store)
        for m in execution.messages:
            pending.write(m)
        assert pending.commit([], True, 0.0) is not None
        pending.abort()  # loses the race: no-op
        assert len(archive) == 1
        assert archive.path_of(archive.get(pending.id)).exists()

    def test_abort_then_commit_returns_none(self, archive):
        pending = archive.begin("xyz", 2, {"x": 0})
        pending.abort()
        assert pending.commit([], True, 0.0) is None
        assert len(archive) == 0

    def test_write_after_resolve_raises(self, archive):
        execution, _ = run_workload("xyz")
        pending = archive.begin("xyz", execution.n_threads,
                                execution.initial_store)
        pending.abort()
        with pytest.raises(RuntimeError, match="resolved"):
            pending.write(execution.messages[0])

    def test_record_messages_aborts_on_bad_stream(self, archive):
        def broken():
            execution, _ = run_workload("xyz")
            yield execution.messages[0]
            raise OSError("stream died")

        with pytest.raises(OSError):
            archive.record_messages("xyz", 2, {"x": -1, "y": 0, "z": 0},
                                    broken())
        assert len(archive) == 0
        assert not list(archive.traces_dir.glob("*"))

    def test_ids_survive_reopen(self, archive):
        record(archive, "xyz")
        reopened = TraceArchive(archive.root)
        entry = record(reopened, "xyz")
        assert entry.id == "s000002-xyz"

    def test_final_clocks_recorded(self, archive):
        entry = record(archive, "xyz")
        assert len(entry.final_clocks) == entry.n_threads
        assert all(len(c) == entry.n_threads for c in entry.final_clocks)
        assert any(any(c) for c in entry.final_clocks)

    def test_concurrent_commits(self, archive):
        errors = []

        def worker(seed):
            try:
                record(archive, "counter", seed=seed)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(archive) == 6
        assert len({e.id for e in archive.entries()}) == 6


class TestQueries:
    def test_entries_filtered(self, archive):
        record(archive, "xyz")
        record(archive, "bank")
        assert len(archive.entries()) == 2
        only = archive.entries(CatalogQuery(program="bank"))
        assert [e.program for e in only] == ["bank"]

    def test_remove(self, archive):
        entry = record(archive, "xyz")
        path = archive.path_of(entry)
        archive.remove(entry.id)
        assert len(archive) == 0
        assert not path.exists()


class TestGC:
    def test_unbounded_policy_removes_nothing(self, archive):
        record(archive, "xyz")
        report = archive.gc(RetentionPolicy())
        assert isinstance(report, GCReport)
        assert not report.removed
        assert len(archive) == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetentionPolicy(max_age_s=-1)
        with pytest.raises(ValueError):
            RetentionPolicy(max_total_bytes=-1)
        with pytest.raises(ValueError):
            RetentionPolicy(max_entries=-1)
        assert not RetentionPolicy().bounded
        assert RetentionPolicy(max_entries=1).bounded

    def test_age_pass(self, archive):
        old = record(archive, "xyz")
        new = record(archive, "bank")
        now = new.created_at + 100.0
        report = archive.gc(RetentionPolicy(max_age_s=100.0 +
                                            (new.created_at -
                                             old.created_at) / 2), now=now)
        assert [e.id for e in report.removed] == [old.id]
        assert len(archive) == 1

    def test_count_pass_keeps_newest(self, archive):
        ids = [record(archive, "counter", seed=s).id for s in range(4)]
        report = archive.gc(RetentionPolicy(max_entries=2))
        assert [e.id for e in report.removed] == ids[:2]
        assert [e.id for e in archive.entries()] == ids[2:]

    def test_size_pass_oldest_first(self, archive):
        entries = [record(archive, "counter", seed=s) for s in range(3)]
        keep = entries[-1].bytes
        report = archive.gc(RetentionPolicy(max_total_bytes=keep))
        assert [e.id for e in report.removed] == [e.id for e in entries[:2]]
        assert archive.total_bytes() <= keep

    def test_dry_run_touches_nothing(self, archive):
        entry = record(archive, "xyz")
        report = archive.gc(RetentionPolicy(max_entries=0), dry_run=True)
        assert [e.id for e in report.removed] == [entry.id]
        assert report.dry_run
        assert "would remove" in report.summary()
        assert len(archive) == 1
        assert archive.path_of(entry).exists()

    def test_plan_is_pure(self, archive):
        entries = [record(archive, "counter", seed=s) for s in range(3)]
        removed = plan(entries, RetentionPolicy(max_entries=1),
                       now=entries[-1].created_at)
        assert [e.id for e in removed] == [e.id for e in entries[:2]]
        assert len(archive) == 3


class TestServerIntegration:
    """ServerConfig(archive_dir=...) records every finished session."""

    def _serve_and_attach(self, archive_dir, workloads):
        from repro.server import AnalysisServer, ServerConfig, attach

        config = ServerConfig(port=0, archive_dir=str(archive_dir))
        server = AnalysisServer(config).start()
        try:
            for name in workloads:
                execution, spec = run_workload(name)
                initial = dict(execution.initial_store)
                with attach(server.host, server.port,
                            n_threads=execution.n_threads, initial=initial,
                            spec=spec, program=name) as session:
                    for m in execution.messages:
                        session.send(m)
                assert session.verdict.state == "finished"
        finally:
            server.shutdown(drain=True)

    def test_finished_sessions_archived_and_reproducible(self, tmp_path):
        from repro.store import verify_all

        self._serve_and_attach(tmp_path / "arch", ["xyz", "bank"])
        archive = TraceArchive(tmp_path / "arch")
        assert len(archive) == 2
        assert {e.program for e in archive.entries()} == {"xyz", "bank"}
        report = verify_all(archive)
        assert report.clean
        assert report.checked == 2

    def test_session_record_names_archive_id(self, tmp_path):
        from repro.server import AnalysisServer, ServerConfig, attach

        config = ServerConfig(port=0, archive_dir=str(tmp_path / "arch"))
        server = AnalysisServer(config).start()
        try:
            execution, spec = run_workload("xyz")
            with attach(server.host, server.port,
                        n_threads=execution.n_threads,
                        initial=dict(execution.initial_store),
                        spec=spec, program="xyz") as session:
                for m in execution.messages:
                    session.send(m)
            assert session.verdict.state == "finished"
        finally:
            records = server.shutdown(drain=True)
        archive = TraceArchive(tmp_path / "arch")
        assert [r["archive"] for r in records] == [
            e.id for e in archive.entries()]
