"""Trace format v2: round-trips, streaming, and corruption rejection."""

import gzip
import json
import struct
import zlib

import pytest

from repro.core.events import Message
from repro.observer.trace import (
    TraceFormatError,
    TraceHeader,
    iter_trace,
    read_trace,
    trace_version,
    write_trace,
)
from repro.store.format import (
    MAGIC,
    MAX_FRAME_PAYLOAD,
    SegmentWriter,
    iter_trace_v2,
    read_trace_v2,
)

from .conftest import run_workload

_FRAME_HEAD = struct.Struct("<BI")
_FRAME_CRC = struct.Struct("<I")


def write_v2(path, execution, program="xyz", **kw):
    with SegmentWriter(path, execution.n_threads, execution.initial_store,
                       program=program, **kw) as w:
        for m in execution.messages:
            w.write(m)
    return w


def frame_offsets(path):
    """Byte offset of every frame in a v2 file, in order."""
    data = path.read_bytes()
    offsets = []
    pos = len(MAGIC)
    while pos < len(data):
        offsets.append(pos)
        _, length = _FRAME_HEAD.unpack_from(data, pos)
        pos += _FRAME_HEAD.size + length + _FRAME_CRC.size
    return offsets


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        execution, _ = run_workload("xyz")
        path = tmp_path / "t.rpt"
        w = write_v2(path, execution)
        assert w.count == len(execution.messages)
        trace = read_trace_v2(path)
        assert trace.n_threads == execution.n_threads
        assert trace.program == "xyz"
        assert trace.initial == dict(execution.initial_store)
        assert [m.to_json() for m in trace.messages] == [
            m.to_json() for m in execution.messages]

    def test_multi_segment(self, tmp_path):
        execution, _ = run_workload("xyz")
        path = tmp_path / "t.rpt"
        w = write_v2(path, execution, events_per_segment=2)
        assert w.segments >= 2
        trace = read_trace_v2(path)
        assert len(trace.messages) == len(execution.messages)

    def test_streaming_yields_header_first(self, tmp_path):
        execution, _ = run_workload("xyz")
        path = tmp_path / "t.rpt"
        write_v2(path, execution)
        stream = iter_trace_v2(path)
        header = next(stream)
        assert isinstance(header, TraceHeader)
        assert header.version == 2
        messages = list(stream)
        assert all(isinstance(m, Message) for m in messages)
        assert len(messages) == len(execution.messages)

    def test_compresses_relative_to_v1(self, tmp_path):
        execution, _ = run_workload("counter", seed=1)
        v1 = tmp_path / "t.trace"
        v2 = tmp_path / "t.rpt"
        write_trace(v1, execution.n_threads, execution.initial_store,
                    execution.messages)
        write_v2(v2, execution)
        # tiny traces may not win, but the writer must account its bytes
        w = write_v2(tmp_path / "t2.rpt", execution)
        assert w.bytes_written == (tmp_path / "t2.rpt").stat().st_size
        assert w.bytes_raw > 0


class TestDispatch:
    """iter_trace/read_trace sniff the magic and route v1 vs v2."""

    def test_trace_version(self, tmp_path):
        execution, _ = run_workload("xyz")
        v1 = tmp_path / "t.trace"
        v2 = tmp_path / "t.rpt"
        write_trace(v1, execution.n_threads, execution.initial_store,
                    execution.messages)
        write_v2(v2, execution)
        assert trace_version(v1) == 1
        assert trace_version(v2) == 2

    def test_read_trace_reads_both(self, tmp_path):
        execution, _ = run_workload("xyz")
        v1 = tmp_path / "t.trace"
        v2 = tmp_path / "t.rpt"
        write_trace(v1, execution.n_threads, execution.initial_store,
                    execution.messages, program="xyz")
        write_v2(v2, execution)
        t1, t2 = read_trace(v1), read_trace(v2)
        assert [m.to_json() for m in t1.messages] == [
            m.to_json() for m in t2.messages]
        assert t1.initial == t2.initial

    def test_iter_trace_streams_v2(self, tmp_path):
        execution, _ = run_workload("xyz")
        path = tmp_path / "t.rpt"
        write_v2(path, execution)
        items = list(iter_trace(path))
        assert isinstance(items[0], TraceHeader)
        assert len(items) == 1 + len(execution.messages)


class TestWriterLifecycle:
    def test_write_after_close(self, tmp_path):
        execution, _ = run_workload("xyz")
        w = SegmentWriter(tmp_path / "t.rpt", 2, {})
        w.close()
        with pytest.raises(RuntimeError):
            w.write(execution.messages[0])

    def test_close_idempotent(self, tmp_path):
        w = SegmentWriter(tmp_path / "t.rpt", 2, {})
        w.close()
        w.close()

    def test_abort_removes_file(self, tmp_path):
        execution, _ = run_workload("xyz")
        path = tmp_path / "t.rpt"
        w = SegmentWriter(path, 2, execution.initial_store)
        w.write(execution.messages[0])
        w.abort()
        assert not path.exists()
        w.abort()  # idempotent

    def test_abort_after_close_keeps_file(self, tmp_path):
        path = tmp_path / "t.rpt"
        w = SegmentWriter(path, 2, {})
        w.close()
        w.abort()
        assert path.exists()

    def test_exit_on_error_closes_without_sealing(self, tmp_path):
        path = tmp_path / "t.rpt"
        with pytest.raises(RuntimeError, match="boom"):
            with SegmentWriter(path, 2, {}) as w:
                raise RuntimeError("boom")
        assert w._fh is None
        # the unsealed partial file has no footer, so reading it fails
        with pytest.raises(TraceFormatError, match="footer"):
            read_trace_v2(path)

    def test_rejects_bad_segment_size(self, tmp_path):
        with pytest.raises(ValueError):
            SegmentWriter(tmp_path / "t.rpt", 2, {}, events_per_segment=0)


class TestCorruption:
    """Every damage mode is a TraceFormatError naming the byte offset."""

    @pytest.fixture
    def good(self, tmp_path):
        execution, _ = run_workload("xyz")   # 4 messages -> 2 segments
        path = tmp_path / "t.rpt"
        write_v2(path, execution, events_per_segment=2)
        return path

    def test_wrong_magic(self, tmp_path, good):
        bad = tmp_path / "bad.rpt"
        bad.write_bytes(b"NOTMAGIC" + good.read_bytes()[8:])
        with pytest.raises(TraceFormatError) as exc:
            list(iter_trace_v2(bad))
        assert exc.value.lineno == 0
        assert "magic" in exc.value.problem
        # offset is an alias for the position field on v2 errors
        assert exc.value.offset == 0

    def test_bit_flip_is_checksum_mismatch_at_frame_offset(self, good):
        offsets = frame_offsets(good)
        target = offsets[1]  # first segment frame
        data = bytearray(good.read_bytes())
        data[target + _FRAME_HEAD.size] ^= 0xFF  # flip payload bits
        good.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError) as exc:
            list(iter_trace_v2(good))
        assert "checksum mismatch" in exc.value.problem
        assert exc.value.offset == target
        assert f"byte offset {target}" in exc.value.problem

    def test_truncated_file(self, good):
        offsets = frame_offsets(good)
        data = good.read_bytes()
        good.write_bytes(data[:offsets[-1] + 3])  # cut inside last frame
        with pytest.raises(TraceFormatError) as exc:
            list(iter_trace_v2(good))
        assert "truncated" in exc.value.problem
        assert exc.value.offset == offsets[-1]

    def test_missing_footer(self, good):
        offsets = frame_offsets(good)
        good.write_bytes(good.read_bytes()[:offsets[-1]])  # drop the footer
        with pytest.raises(TraceFormatError, match="no footer"):
            list(iter_trace_v2(good))

    def test_dropped_segment_caught_by_footer_count(self, good):
        offsets = frame_offsets(good)
        data = good.read_bytes()
        # splice out one middle segment frame (header=0, segments..., footer)
        start, end = offsets[1], offsets[2]
        good.write_bytes(data[:start] + data[end:])
        with pytest.raises(TraceFormatError, match="events"):
            list(iter_trace_v2(good))

    def test_implausible_length_field(self, tmp_path):
        path = tmp_path / "t.rpt"
        path.write_bytes(
            MAGIC + _FRAME_HEAD.pack(0x01, MAX_FRAME_PAYLOAD + 1))
        with pytest.raises(TraceFormatError, match="implausible"):
            list(iter_trace_v2(path))

    def test_unknown_frame_type(self, good):
        data = good.read_bytes()
        payload = b"{}"
        extra = (_FRAME_HEAD.pack(0x7F, len(payload)) + payload
                 + _FRAME_CRC.pack(zlib.crc32(payload)))
        offsets = frame_offsets(good)
        # insert before the footer so the footer-is-last rule isn't hit first
        good.write_bytes(data[:offsets[-1]] + extra + data[offsets[-1]:])
        with pytest.raises(TraceFormatError, match="unknown frame type"):
            list(iter_trace_v2(good))

    def test_frame_after_footer(self, good):
        data = good.read_bytes()
        payload = gzip.compress(b"")
        extra = (_FRAME_HEAD.pack(0x02, len(payload)) + payload
                 + _FRAME_CRC.pack(zlib.crc32(payload)))
        good.write_bytes(data + extra)
        with pytest.raises(TraceFormatError, match="after the footer"):
            list(iter_trace_v2(good))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.rpt"
        path.write_bytes(MAGIC)
        with pytest.raises(TraceFormatError, match="empty"):
            list(iter_trace_v2(path))

    def test_header_must_come_first(self, tmp_path):
        payload = gzip.compress(b"")
        path = tmp_path / "t.rpt"
        path.write_bytes(MAGIC + _FRAME_HEAD.pack(0x02, len(payload))
                         + payload + _FRAME_CRC.pack(zlib.crc32(payload)))
        with pytest.raises(TraceFormatError, match="first frame"):
            list(iter_trace_v2(path))

    def test_wrong_version_in_header(self, tmp_path):
        payload = json.dumps({"version": 99, "n_threads": 1,
                              "initial": {}}).encode()
        path = tmp_path / "t.rpt"
        path.write_bytes(MAGIC + _FRAME_HEAD.pack(0x01, len(payload))
                         + payload + _FRAME_CRC.pack(zlib.crc32(payload)))
        with pytest.raises(TraceFormatError, match="version"):
            list(iter_trace_v2(path))

    def test_malformed_message_in_segment(self, tmp_path):
        header = json.dumps({"version": 2, "n_threads": 2,
                             "initial": {}}).encode()
        seg = gzip.compress(b'{"thread": 0}')  # missing clock/event
        blob = MAGIC
        for ftype, payload in ((0x01, header), (0x02, seg)):
            blob += (_FRAME_HEAD.pack(ftype, len(payload)) + payload
                     + _FRAME_CRC.pack(zlib.crc32(payload)))
        path = tmp_path / "t.rpt"
        path.write_bytes(blob)
        with pytest.raises(TraceFormatError, match="malformed message"):
            list(iter_trace_v2(path))

    def test_v1_error_spans_still_line_based(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("not json at all\n")
        with pytest.raises(TraceFormatError) as exc:
            list(iter_trace(path))
        assert exc.value.lineno == 1
