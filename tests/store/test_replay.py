"""Replay determinism: archived traces reproduce the live verdict.

The property under test is the paper's "online or offline" claim made
executable: the analysis is a pure function of the message stream, so
feeding an archived stream back through the pipeline must reproduce the
live verdict bit-for-bit — violation count, counterexample texts, final
per-thread vector clocks, soundness — on every workload and seed.
"""

import dataclasses
import json

import pytest

from repro.logic import Monitor
from repro.observer.observer import Observer
from repro.store import (
    TraceArchive,
    replay_entry,
    replay_trace,
    verify_all,
    verify_entry,
)

from .conftest import SEEDS, WORKLOADS, run_workload


def record_live(archive, name, seed):
    """Run a workload live and archive it, returning (entry, observer)."""
    execution, spec = run_workload(name, seed)
    entry = archive.record_messages(
        name, execution.n_threads, execution.initial_store,
        execution.messages, spec=spec)
    monitor = Monitor(spec)
    observer = Observer(execution.n_threads, execution.initial_store,
                        spec=monitor, causal_log=True)
    for m in execution.messages:
        observer.receive(m)
    observer.finish()
    return entry, observer, sorted(monitor.variables)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_replay_reproduces_live_verdict(self, archive, name, seed):
        entry, observer, variables = record_live(archive, name, seed)
        result = replay_entry(archive, entry)
        # the replay agrees with an independent live run of the pipeline
        live = [v.pretty(variables) for v in observer.violations]
        assert result.counterexamples == tuple(live)
        assert result.sound == observer.health.sound_everywhere
        # and with everything the catalog pinned at commit time
        assert verify_entry(archive, entry) == []

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_replay_reproduces_vector_clocks(self, archive, name, seed):
        entry, _, _ = record_live(archive, name, seed)
        result = replay_entry(archive, entry)
        assert result.final_clocks == entry.final_clocks
        assert result.events == entry.events

    def test_replay_twice_is_identical(self, archive):
        entry, _, _ = record_live(archive, "xyz", 7)
        a = replay_entry(archive, entry)
        b = replay_entry(archive, entry)
        assert (a.counterexamples, a.final_clocks, a.violations) == \
            (b.counterexamples, b.final_clocks, b.violations)


class TestReAnalysis:
    def test_different_spec_without_rerunning(self, archive):
        entry, _, _ = record_live(archive, "xyz", None)
        assert entry.verdict == "violation"
        relaxed = replay_entry(archive, entry, spec="x >= -1")
        assert relaxed.violations == 0
        assert relaxed.verdict == "clean"
        assert relaxed.spec == "x >= -1"
        # the archived entry is untouched
        assert archive.get(entry.id).verdict == "violation"

    def test_replay_by_id(self, archive):
        entry, _, _ = record_live(archive, "bank", 0)
        result = replay_entry(archive, entry.id)
        assert result.program == "bank"
        assert result.events == entry.events

    def test_replay_plain_trace_file(self, tmp_path):
        from repro.observer.trace import write_trace

        execution, spec = run_workload("xyz")
        path = tmp_path / "t.trace"   # v1 file: replay handles both formats
        write_trace(path, execution.n_threads, execution.initial_store,
                    execution.messages, program="xyz")
        result = replay_trace(path, spec=spec)
        assert result.violations == 1
        assert result.events == len(execution.messages)


class TestRegressionCorpus:
    def test_verify_all_clean(self, archive):
        for name in sorted(WORKLOADS):
            record_live(archive, name, 0)
        report = verify_all(archive)
        assert report.clean
        assert report.checked == len(WORKLOADS)
        assert report.ok == report.checked
        assert "reproduced exactly" in report.summary()

    def test_verify_all_detects_drift(self, archive, tmp_path):
        entry, _, _ = record_live(archive, "xyz", None)
        # tamper with the pinned expectation: pretend the live run was clean
        doc = json.loads((archive.root / "catalog.json").read_text())
        doc["entries"][0]["violations"] = 0
        doc["entries"][0]["counterexamples"] = []
        (archive.root / "catalog.json").write_text(json.dumps(doc))
        tampered = TraceArchive(archive.root)
        report = verify_all(tampered)
        assert not report.clean
        assert entry.id in report.drifted
        problems = report.drifted[entry.id]
        assert any("violation count drifted" in p for p in problems)
        assert "DRIFTED" in report.summary()

    def test_verify_entry_reports_every_drift_axis(self, archive):
        entry, _, _ = record_live(archive, "xyz", None)
        wrong = dataclasses.replace(
            entry, events=entry.events + 1, violations=entry.violations + 1,
            counterexamples=("nope",),
            final_clocks=tuple((99,) * entry.n_threads
                               for _ in range(entry.n_threads)),
            sound=not entry.sound)
        problems = verify_entry(archive, wrong)
        text = "\n".join(problems)
        for axis in ("event count", "violation count", "counterexamples",
                     "final vector clocks", "soundness"):
            assert axis in text
