"""Shared store fixtures: workload executions and a populated archive."""

from __future__ import annotations

import pytest

from repro.sched import FixedScheduler, RandomScheduler, run_program
from repro.workloads import (
    AUDIT_PROPERTY,
    XYZ_PROPERTY,
    racy_counter,
    transfer_program,
    xyz_program,
)

#: name -> (program factory, bundled spec) — the replay determinism matrix.
WORKLOADS = {
    "xyz": (xyz_program, XYZ_PROPERTY),
    "bank": (transfer_program, AUDIT_PROPERTY),
    "counter": (lambda: racy_counter(2, 1), "c >= 0"),
}

SEEDS = (0, 7, 1234)


def run_workload(name, seed=None):
    """Run a named workload under a seeded (or default) schedule."""
    factory, spec = WORKLOADS[name]
    scheduler = (RandomScheduler(seed) if seed is not None
                 else FixedScheduler([], strict=False))
    return run_program(factory(), scheduler), spec


@pytest.fixture
def archive(tmp_path):
    from repro.store import TraceArchive

    return TraceArchive(tmp_path / "archive")
