"""Causal-order delivery buffer tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.causality import is_linear_extension
from repro.observer.delivery import CausalDelivery
from repro.sched import RandomScheduler, run_program
from repro.workloads import random_program


def deliver_scrambled(messages, n_threads, seed):
    msgs = list(messages)
    random.Random(seed).shuffle(msgs)
    d = CausalDelivery(n_threads)
    out = []
    for m in msgs:
        out.extend(d.offer(m))
    return d, out


class TestBasics:
    def test_invalid_width(self):
        with pytest.raises(ValueError):
            CausalDelivery(0)

    def test_width_mismatch_rejected(self, xyz_execution):
        d = CausalDelivery(3)
        with pytest.raises(ValueError, match="width"):
            d.offer(xyz_execution.messages[0])

    def test_duplicate_suppressed_and_counted(self, xyz_execution):
        """Duplication is a normal fault-model event, not a caller bug: the
        second copy is dropped and counted, never re-delivered."""
        d = CausalDelivery(2)
        assert d.offer(xyz_execution.messages[0]) != []
        assert d.offer(xyz_execution.messages[0]) == []
        assert d.duplicates_dropped == 1
        # a duplicate of a still-buffered message is suppressed too
        e1, e2, e4, e3 = xyz_execution.messages
        d2 = CausalDelivery(2)
        d2.offer(e4)
        assert d2.offer(e4) == []
        assert d2.duplicates_dropped == 1
        assert d2.pending == 1

    def test_fifo_input_passes_through(self, xyz_execution):
        d = CausalDelivery(2)
        out = list(d.offer_many(xyz_execution.messages))
        assert [m.event.eid for m in out] == [
            m.event.eid for m in xyz_execution.messages]
        assert d.pending == 0

    def test_held_until_gap_fills(self, xyz_execution):
        e1, e2, e4, e3 = xyz_execution.messages
        d = CausalDelivery(2)
        assert d.offer(e4) == []        # needs e1 and e2
        assert d.offer(e2) == []        # needs e1
        assert d.pending == 2
        released = d.offer(e1)
        assert [m.event.eid for m in released] == [
            e1.event.eid, e2.event.eid, e4.event.eid]
        assert d.offer(e3) == [e3]
        assert d.pending == 0

    def test_missing_for_diagnostic(self, xyz_execution):
        e1, e2, e4, e3 = xyz_execution.messages
        d = CausalDelivery(2)
        missing = d.missing_for(e4)
        assert set(missing) == {(0, 1), (1, 1)}  # e1 and e2
        d.offer(e1)
        assert d.missing_for(e2) is None

    def test_delivered_counts(self, xyz_execution):
        d = CausalDelivery(2)
        list(d.offer_many(xyz_execution.messages))
        assert d.delivered_counts == (2, 2)


class TestProperties:
    @given(st.integers(0, 500), st.integers(0, 20))
    @settings(max_examples=60, deadline=None)
    def test_output_is_linear_extension(self, seed, shuffle_seed):
        program = random_program(random.Random(seed), n_threads=3,
                                 n_vars=3, ops_per_thread=5,
                                 write_ratio=0.7)
        ex = run_program(program, RandomScheduler(seed))
        d, out = deliver_scrambled(ex.messages, 3, shuffle_seed)
        assert d.pending == 0
        assert len(out) == len(ex.messages)
        assert is_linear_extension(out)

    @given(st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_per_thread_order_preserved(self, seed):
        program = random_program(random.Random(seed), n_threads=2,
                                 n_vars=2, ops_per_thread=6,
                                 write_ratio=0.8)
        ex = run_program(program, RandomScheduler(seed))
        _d, out = deliver_scrambled(ex.messages, 2, seed + 1)
        for t in (0, 1):
            seqs = [m.event.seq for m in out if m.thread == t]
            assert seqs == sorted(seqs)
