"""Tests for message transports: FIFO, bounded reordering, multi-channel."""

import pytest

from repro.observer.channel import (
    FifoChannel,
    MultiChannel,
    ReorderingChannel,
    deliver_all,
)


def fake_messages(n, n_threads=2):
    from repro.core.algorithm_a import AlgorithmA

    algo = AlgorithmA(n_threads)
    for k in range(n):
        algo.on_write(k % n_threads, f"v{k % 3}", k)
    return algo.emitted[:n]


class TestFifo:
    def test_order_preserved(self):
        msgs = fake_messages(6)
        out = deliver_all(FifoChannel(), msgs)
        assert out == msgs

    def test_put_after_close_rejected(self):
        ch = FifoChannel()
        ch.close()
        with pytest.raises(RuntimeError):
            ch.put(fake_messages(1)[0])


class TestReordering:
    def test_delivers_everything_exactly_once(self):
        msgs = fake_messages(20)
        out = deliver_all(ReorderingChannel(seed=3, window=4), msgs)
        assert sorted(m.emit_index for m in out) == list(range(20))

    def test_actually_reorders(self):
        msgs = fake_messages(20)
        out = deliver_all(ReorderingChannel(seed=3, window=4), msgs)
        assert [m.emit_index for m in out] != list(range(20))

    def test_window_bounds_overtaking(self):
        """A message can be overtaken by at most window-1 later messages."""
        msgs = fake_messages(30)
        window = 4
        for seed in range(5):
            out = deliver_all(ReorderingChannel(seed=seed, window=window), msgs)
            pos = {m.emit_index: i for i, m in enumerate(out)}
            for k in range(30):
                assert pos[k] >= k - (window - 1), (seed, k)

    def test_unbounded_window(self):
        msgs = fake_messages(10)
        out = deliver_all(ReorderingChannel(seed=1, window=None), msgs)
        assert sorted(m.emit_index for m in out) == list(range(10))

    def test_seed_determinism(self):
        msgs = fake_messages(15)
        a = deliver_all(ReorderingChannel(seed=9, window=3), msgs)
        b = deliver_all(ReorderingChannel(seed=9, window=3), msgs)
        assert [m.emit_index for m in a] == [m.emit_index for m in b]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ReorderingChannel(window=0)


class TestMultiChannel:
    def test_everything_delivered(self):
        msgs = fake_messages(12, n_threads=3)
        out = deliver_all(MultiChannel(k=3, seed=0), msgs)
        assert sorted(m.emit_index for m in out) == list(range(12))

    def test_per_thread_fifo_preserved(self):
        """Messages of one thread ride one FIFO sub-channel: their relative
        order survives."""
        msgs = fake_messages(20, n_threads=2)
        for seed in range(5):
            out = deliver_all(MultiChannel(k=2, seed=seed), msgs)
            for t in (0, 1):
                mine = [m.emit_index for m in out if m.thread == t]
                assert mine == sorted(mine), (seed, t)

    def test_round_robin_routing(self):
        msgs = fake_messages(9, n_threads=3)
        out = deliver_all(MultiChannel(k=2, seed=4, route_by_thread=False), msgs)
        assert len(out) == 9

    def test_needs_at_least_one_queue(self):
        with pytest.raises(ValueError):
            MultiChannel(k=0)


class TestSocketHardening:
    """The transport must fail loudly and release its socket on every path."""

    def test_never_connected_raises_and_frees_port(self):
        import socket as socketlib

        from repro.observer.channel import SocketTransport

        transport = SocketTransport(accept_timeout=0.2)
        transport.start_receiver()
        with pytest.raises(ConnectionError, match="no sender connected"):
            transport.wait(timeout=5.0)
        assert transport.sender_never_connected
        # the port must be reusable immediately — no leaked server socket
        srv = socketlib.create_server((transport.host, transport.port))
        srv.close()

    def test_wait_without_start_rejected(self):
        from repro.observer.channel import SocketTransport

        transport = SocketTransport(accept_timeout=0.2)
        with pytest.raises(RuntimeError, match="start_receiver"):
            transport.wait()
        transport.close()

    def test_mid_stream_silence_times_out(self):
        import socket as socketlib

        from repro.observer.channel import SocketTransport

        transport = SocketTransport(accept_timeout=5.0, recv_timeout=0.2)
        transport.start_receiver()
        # connect but never send or close: a crashed sender
        sock = socketlib.create_connection((transport.host, transport.port))
        try:
            with pytest.raises(TimeoutError, match="silent"):
                transport.wait(timeout=5.0)
            assert transport.receive_timed_out
        finally:
            sock.close()

    def test_lenient_mode_returns_partial_on_timeout(self):
        from repro.observer.channel import SocketTransport

        msgs = fake_messages(3)
        transport = SocketTransport(accept_timeout=5.0, recv_timeout=0.2,
                                    strict=False)
        transport.start_receiver()
        sender = transport.sender()
        for m in msgs:
            sender.send(m)
        sender._file.flush()  # deliver without closing: then go silent
        received = transport.wait(timeout=5.0)
        assert transport.receive_timed_out
        assert [m.event.eid for m in received] == [m.event.eid for m in msgs]
        sender.close()

    def test_malformed_line_recorded_and_raised_when_strict(self):
        import socket as socketlib

        from repro.observer.channel import SocketTransport

        transport = SocketTransport(accept_timeout=5.0)
        transport.start_receiver()
        sock = socketlib.create_connection((transport.host, transport.port))
        sock.sendall(b"this is not json\n")
        sock.close()
        with pytest.raises(ValueError, match="malformed"):
            transport.wait(timeout=5.0)
        assert transport.errors

    def test_context_managers_close_both_ends(self):
        from repro.observer.channel import SocketTransport

        msgs = fake_messages(4)
        with SocketTransport(accept_timeout=5.0) as transport:
            transport.start_receiver()
            with transport.sender() as sender:
                for m in msgs:
                    sender.send(m)
            received = transport.wait(timeout=5.0)
        assert len(received) == 4
        transport.close()  # idempotent
