"""Trace file round-trips and streaming writes."""

import json

import pytest

from repro.observer.trace import (
    Trace,
    TraceFormatError,
    TraceWriter,
    read_trace,
    write_trace,
)
from repro.sched import FixedScheduler, run_program
from repro.workloads import XYZ_OBSERVED_SCHEDULE, xyz_program


class TestRoundTrip:
    def test_write_read(self, xyz_execution, tmp_path):
        path = tmp_path / "xyz.trace"
        n = write_trace(path, 2, xyz_execution.initial_store,
                        xyz_execution.messages, program="xyz")
        assert n == 4
        trace = read_trace(path)
        assert trace.n_threads == 2
        assert trace.program == "xyz"
        assert trace.initial == dict(xyz_execution.initial_store)
        assert [m.event.eid for m in trace.messages] == [
            m.event.eid for m in xyz_execution.messages]
        assert [tuple(m.clock) for m in trace.messages] == [
            tuple(m.clock) for m in xyz_execution.messages]

    def test_streaming_writer_as_sink(self, tmp_path):
        path = tmp_path / "stream.trace"
        with TraceWriter(path, 2, {"x": -1, "y": 0, "z": 0},
                         program="xyz") as w:
            run_program(xyz_program(), FixedScheduler(XYZ_OBSERVED_SCHEDULE),
                        sink=w.write)
        trace = read_trace(path)
        assert len(trace.messages) == 4

    def test_analysis_from_trace(self, xyz_execution, tmp_path):
        from repro.lattice import LevelByLevelBuilder
        from repro.logic import Monitor
        from repro.workloads import XYZ_PROPERTY

        path = tmp_path / "t.trace"
        write_trace(path, 2, xyz_execution.initial_store,
                    xyz_execution.messages)
        trace = read_trace(path)
        monitor = Monitor(XYZ_PROPERTY)
        initial = {v: trace.initial[v] for v in sorted(monitor.variables)}
        b = LevelByLevelBuilder(trace.n_threads, initial, monitor)
        b.feed_many(trace.messages)
        b.finish()
        assert len(b.violations) == 1


class TestValidation:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"thread": 0}\n')
        with pytest.raises(ValueError, match="header"):
            read_trace(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "v99.trace"
        path.write_text(json.dumps({"type": "header", "version": 99,
                                    "n_threads": 1, "initial": {}}) + "\n")
        with pytest.raises(ValueError, match="version"):
            read_trace(path)

    def test_write_after_close(self, tmp_path, xyz_execution):
        w = TraceWriter(tmp_path / "t.trace", 2, {})
        w.close()
        with pytest.raises(RuntimeError):
            w.write(xyz_execution.messages[0])

    def test_trace_dataclass_validation(self):
        with pytest.raises(ValueError):
            Trace(n_threads=0, initial={}, messages=[])


class TestTraceFormatError:
    """Malformed files raise TraceFormatError naming file and line."""

    @staticmethod
    def _good_header():
        return json.dumps({"type": "header", "version": 1, "n_threads": 2,
                           "initial": {"x": 0}}) + "\n"

    def test_is_a_value_error(self):
        assert issubclass(TraceFormatError, ValueError)

    def test_header_not_json(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("not json at all\n")
        with pytest.raises(TraceFormatError) as exc:
            read_trace(path)
        assert exc.value.lineno == 1
        assert exc.value.path == str(path)
        assert "not valid JSON" in exc.value.problem
        assert str(path) + ":1:" in str(exc.value)

    def test_bad_n_threads_type(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(json.dumps({"type": "header", "version": 1,
                                    "n_threads": "two", "initial": {}}) + "\n")
        with pytest.raises(TraceFormatError, match="n_threads"):
            read_trace(path)

    def test_header_missing_initial(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(json.dumps({"type": "header", "version": 1,
                                    "n_threads": 2}) + "\n")
        with pytest.raises(TraceFormatError, match="'initial'"):
            read_trace(path)

    def test_message_line_not_json(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(self._good_header() + "{truncated\n")
        with pytest.raises(TraceFormatError) as exc:
            read_trace(path)
        assert exc.value.lineno == 2

    def test_message_line_missing_field(self, tmp_path, xyz_execution):
        path = tmp_path / "t.trace"
        good = json.loads(xyz_execution.messages[0].to_json())
        del good["clock"]
        path.write_text(self._good_header() + json.dumps(good) + "\n")
        with pytest.raises(TraceFormatError) as exc:
            read_trace(path)
        assert exc.value.lineno == 2
        assert "clock" in exc.value.problem

    def test_line_number_counts_from_header(self, tmp_path, xyz_execution):
        path = tmp_path / "t.trace"
        lines = [self._good_header()]
        lines += [m.to_json() + "\n" for m in xyz_execution.messages[:2]]
        lines.append("broken\n")
        path.write_text("".join(lines))
        with pytest.raises(TraceFormatError) as exc:
            read_trace(path)
        assert exc.value.lineno == 4
