"""Trace file round-trips, streaming reads, and writer durability."""

import json

import pytest

from repro.core.events import Message
from repro.observer.trace import (
    Trace,
    TraceFormatError,
    TraceHeader,
    TraceWriter,
    iter_trace,
    read_trace,
    trace_version,
    write_trace,
)
from repro.sched import FixedScheduler, run_program
from repro.workloads import XYZ_OBSERVED_SCHEDULE, xyz_program


class TestRoundTrip:
    def test_write_read(self, xyz_execution, tmp_path):
        path = tmp_path / "xyz.trace"
        n = write_trace(path, 2, xyz_execution.initial_store,
                        xyz_execution.messages, program="xyz")
        assert n == 4
        trace = read_trace(path)
        assert trace.n_threads == 2
        assert trace.program == "xyz"
        assert trace.initial == dict(xyz_execution.initial_store)
        assert [m.event.eid for m in trace.messages] == [
            m.event.eid for m in xyz_execution.messages]
        assert [tuple(m.clock) for m in trace.messages] == [
            tuple(m.clock) for m in xyz_execution.messages]

    def test_streaming_writer_as_sink(self, tmp_path):
        path = tmp_path / "stream.trace"
        with TraceWriter(path, 2, {"x": -1, "y": 0, "z": 0},
                         program="xyz") as w:
            run_program(xyz_program(), FixedScheduler(XYZ_OBSERVED_SCHEDULE),
                        sink=w.write)
        trace = read_trace(path)
        assert len(trace.messages) == 4

    def test_analysis_from_trace(self, xyz_execution, tmp_path):
        from repro.lattice import LevelByLevelBuilder
        from repro.logic import Monitor
        from repro.workloads import XYZ_PROPERTY

        path = tmp_path / "t.trace"
        write_trace(path, 2, xyz_execution.initial_store,
                    xyz_execution.messages)
        trace = read_trace(path)
        monitor = Monitor(XYZ_PROPERTY)
        initial = {v: trace.initial[v] for v in sorted(monitor.variables)}
        b = LevelByLevelBuilder(trace.n_threads, initial, monitor)
        b.feed_many(trace.messages)
        b.finish()
        assert len(b.violations) == 1


class TestIterTrace:
    """Streaming reads: header first, then messages, incrementally."""

    def test_yields_header_then_messages(self, xyz_execution, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(path, 2, xyz_execution.initial_store,
                    xyz_execution.messages, program="xyz")
        stream = iter_trace(path)
        header = next(stream)
        assert isinstance(header, TraceHeader)
        assert header.n_threads == 2
        assert header.program == "xyz"
        assert header.version == 1
        messages = list(stream)
        assert all(isinstance(m, Message) for m in messages)
        assert [m.to_json() for m in messages] == [
            m.to_json() for m in xyz_execution.messages]

    def test_is_lazy(self, xyz_execution, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(path, 2, xyz_execution.initial_store,
                    xyz_execution.messages)
        stream = iter_trace(path)
        next(stream)                       # header parsed...
        next(stream)                       # ...one message parsed...
        path.write_text("")                # generator holds its own handle
        stream.close()                     # no error: nothing read eagerly

    def test_bad_file_raises_on_first_next(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("broken\n")
        with pytest.raises(TraceFormatError):
            next(iter_trace(path))

    def test_skips_blank_lines(self, xyz_execution, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(path, 2, xyz_execution.initial_store,
                    xyz_execution.messages)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n\n")
        assert sum(isinstance(i, Message) for i in iter_trace(path)) == 4

    def test_trace_version_sniffs_v1(self, xyz_execution, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(path, 2, xyz_execution.initial_store,
                    xyz_execution.messages)
        assert trace_version(path) == 1

    def test_header_validation(self):
        with pytest.raises(ValueError):
            TraceHeader(n_threads=0)


class TestWriterDurability:
    """close() flushes and fsyncs; error exits still close the handle."""

    def test_close_fsyncs(self, tmp_path, xyz_execution, monkeypatch):
        import repro.observer.trace as trace_mod

        synced = []
        real_fsync = trace_mod.os.fsync
        monkeypatch.setattr(trace_mod.os, "fsync",
                            lambda fd: (synced.append(fd), real_fsync(fd)))
        w = TraceWriter(tmp_path / "t.trace", 2, {})
        w.write(xyz_execution.messages[0])
        w.close()
        assert len(synced) == 1

    def test_close_idempotent(self, tmp_path):
        w = TraceWriter(tmp_path / "t.trace", 2, {})
        w.close()
        w.close()

    def test_exit_closes_handle_on_error(self, tmp_path, xyz_execution):
        with pytest.raises(RuntimeError, match="boom"):
            with TraceWriter(tmp_path / "t.trace", 2, {}) as w:
                w.write(xyz_execution.messages[0])
                raise RuntimeError("boom")
        assert w._fh is None
        with pytest.raises(RuntimeError, match="closed"):
            w.write(xyz_execution.messages[0])

    def test_exit_on_error_skips_fsync(self, tmp_path, monkeypatch):
        import repro.observer.trace as trace_mod

        monkeypatch.setattr(
            trace_mod.os, "fsync",
            lambda fd: (_ for _ in ()).throw(AssertionError("fsync called")))
        with pytest.raises(RuntimeError, match="boom"):
            with TraceWriter(tmp_path / "t.trace", 2, {}):
                raise RuntimeError("boom")

    def test_failed_write_abandons_writer(self, tmp_path):
        w = TraceWriter(tmp_path / "t.trace", 2, {})
        with pytest.raises(AttributeError):
            w.write(object())   # not a Message: to_json missing
        assert w._fh is None    # handle closed, not leaked

    def test_unserializable_initial_closes_handle(self, tmp_path):
        with pytest.raises(TypeError):
            TraceWriter(tmp_path / "t.trace", 2, {"x": object()})


class TestValidation:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"thread": 0}\n')
        with pytest.raises(ValueError, match="header"):
            read_trace(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "v99.trace"
        path.write_text(json.dumps({"type": "header", "version": 99,
                                    "n_threads": 1, "initial": {}}) + "\n")
        with pytest.raises(ValueError, match="version"):
            read_trace(path)

    def test_write_after_close(self, tmp_path, xyz_execution):
        w = TraceWriter(tmp_path / "t.trace", 2, {})
        w.close()
        with pytest.raises(RuntimeError):
            w.write(xyz_execution.messages[0])

    def test_trace_dataclass_validation(self):
        with pytest.raises(ValueError):
            Trace(n_threads=0, initial={}, messages=[])


class TestTraceFormatError:
    """Malformed files raise TraceFormatError naming file and line."""

    @staticmethod
    def _good_header():
        return json.dumps({"type": "header", "version": 1, "n_threads": 2,
                           "initial": {"x": 0}}) + "\n"

    def test_is_a_value_error(self):
        assert issubclass(TraceFormatError, ValueError)

    def test_header_not_json(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("not json at all\n")
        with pytest.raises(TraceFormatError) as exc:
            read_trace(path)
        assert exc.value.lineno == 1
        assert exc.value.path == str(path)
        assert "not valid JSON" in exc.value.problem
        assert str(path) + ":1:" in str(exc.value)

    def test_bad_n_threads_type(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(json.dumps({"type": "header", "version": 1,
                                    "n_threads": "two", "initial": {}}) + "\n")
        with pytest.raises(TraceFormatError, match="n_threads"):
            read_trace(path)

    def test_header_missing_initial(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(json.dumps({"type": "header", "version": 1,
                                    "n_threads": 2}) + "\n")
        with pytest.raises(TraceFormatError, match="'initial'"):
            read_trace(path)

    def test_message_line_not_json(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(self._good_header() + "{truncated\n")
        with pytest.raises(TraceFormatError) as exc:
            read_trace(path)
        assert exc.value.lineno == 2

    def test_message_line_missing_field(self, tmp_path, xyz_execution):
        path = tmp_path / "t.trace"
        good = json.loads(xyz_execution.messages[0].to_json())
        del good["clock"]
        path.write_text(self._good_header() + json.dumps(good) + "\n")
        with pytest.raises(TraceFormatError) as exc:
            read_trace(path)
        assert exc.value.lineno == 2
        assert "clock" in exc.value.problem

    def test_line_number_counts_from_header(self, tmp_path, xyz_execution):
        path = tmp_path / "t.trace"
        lines = [self._good_header()]
        lines += [m.to_json() + "\n" for m in xyz_execution.messages[:2]]
        lines.append("broken\n")
        path.write_text("".join(lines))
        with pytest.raises(TraceFormatError) as exc:
            read_trace(path)
        assert exc.value.lineno == 4
