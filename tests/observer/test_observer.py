"""Tests for the online observer: reordering tolerance (E7) and the socket
transport (the two-process deployment of Fig. 4)."""

import random

import pytest

from repro.observer import (
    FifoChannel,
    MultiChannel,
    Observer,
    ReorderingChannel,
    SocketTransport,
    deliver_all,
)
from repro.workloads import LANDING_VARS, XYZ_PROPERTY, XYZ_VARS


def make_observer(execution, variables, spec=None):
    initial = {v: execution.initial_store[v] for v in variables}
    return Observer(execution.n_threads, initial, spec=spec)


class TestIngestion:
    def test_receive_builds_causality(self, xyz_execution):
        obs = make_observer(xyz_execution, XYZ_VARS)
        obs.receive_many(xyz_execution.messages)
        assert obs.n_received == 4
        assert obs.causality.count_concurrent_pairs() == 2

    def test_receive_after_finish_rejected(self, xyz_execution):
        obs = make_observer(xyz_execution, XYZ_VARS)
        obs.receive_many(xyz_execution.messages)
        obs.finish()
        with pytest.raises(RuntimeError):
            obs.receive(xyz_execution.messages[0])

    def test_consume_channel(self, xyz_execution):
        obs = make_observer(xyz_execution, XYZ_VARS, spec=XYZ_PROPERTY)
        ch = FifoChannel()
        for m in xyz_execution.messages:
            ch.put(m)
        ch.close()
        obs.consume(ch)
        obs.finish()
        assert len(obs.violations) == 1

    def test_no_spec_no_violations(self, xyz_execution):
        obs = make_observer(xyz_execution, XYZ_VARS)
        obs.receive_many(xyz_execution.messages)
        assert obs.finish() == []
        assert obs.violations == []
        assert obs.stats is None


class TestReorderingInvariance:
    """E7: verdicts and causality are invariant under delivery order."""

    def test_fifo_order_is_linear_extension(self, xyz_execution):
        obs = make_observer(xyz_execution, XYZ_VARS)
        obs.receive_many(xyz_execution.messages)
        assert obs.observed_order_consistent()

    @pytest.mark.parametrize("seed", range(6))
    def test_reordered_delivery_same_verdict(self, xyz_execution, seed):
        channel = ReorderingChannel(seed=seed, window=3)
        delivery = deliver_all(channel, xyz_execution.messages)
        obs = make_observer(xyz_execution, XYZ_VARS, spec=XYZ_PROPERTY)
        obs.receive_many(delivery)
        obs.finish()
        assert len(obs.violations) == 1
        assert obs.causality.count_concurrent_pairs() == 2

    @pytest.mark.parametrize("seed", range(4))
    def test_multichannel_delivery_same_verdict(self, landing_execution, seed):
        from repro.workloads import LANDING_PROPERTY

        channel = MultiChannel(k=2, seed=seed)
        delivery = deliver_all(channel, landing_execution.messages)
        obs = make_observer(landing_execution, LANDING_VARS,
                            spec=LANDING_PROPERTY)
        obs.receive_many(delivery)
        obs.finish()
        assert len(obs.violations) == 1

    def test_adversarial_full_shuffle(self, xyz_execution):
        msgs = list(xyz_execution.messages)
        for seed in range(10):
            random.Random(seed).shuffle(msgs)
            obs = make_observer(xyz_execution, XYZ_VARS, spec=XYZ_PROPERTY)
            obs.receive_many(msgs)
            obs.finish()
            assert len(obs.violations) == 1, seed


class TestSocketTransport:
    def test_round_trip(self, xyz_execution):
        transport = SocketTransport()
        transport.start_receiver()
        sender = transport.sender()
        for m in xyz_execution.messages:
            sender.send(m)
        sender.close()
        received = transport.wait(timeout=10)
        assert [m.event.eid for m in received] == [
            m.event.eid for m in xyz_execution.messages]
        assert [tuple(m.clock) for m in received] == [
            tuple(m.clock) for m in xyz_execution.messages]

    def test_observer_over_socket(self, xyz_execution):
        transport = SocketTransport()
        transport.start_receiver()
        sender = transport.sender()
        for m in xyz_execution.messages:
            sender.send(m)
        sender.close()
        received = transport.wait(timeout=10)
        obs = make_observer(xyz_execution, XYZ_VARS, spec=XYZ_PROPERTY)
        obs.receive_many(received)
        obs.finish()
        assert len(obs.violations) == 1

    def test_wait_without_receiver_errors(self):
        transport = SocketTransport()
        with pytest.raises(RuntimeError):
            transport.wait()


class TestCausalLog:
    def test_causal_log_is_linear_extension_under_shuffle(self, xyz_execution):
        from repro.core.causality import is_linear_extension

        msgs = list(xyz_execution.messages)
        for seed in range(6):
            random.Random(seed).shuffle(msgs)
            obs = Observer(2, {v: xyz_execution.initial_store[v]
                               for v in ("x", "y", "z")}, causal_log=True)
            obs.receive_many(msgs)
            assert len(obs.causal_log) == 4
            assert is_linear_extension(obs.causal_log)

    def test_causal_log_disabled_by_default(self, xyz_execution):
        obs = Observer(2, dict(xyz_execution.initial_store))
        obs.receive_many(xyz_execution.messages)
        assert obs.causal_log == []


class TestSocketRobustness:
    def _send_raw(self, transport, lines):
        import socket as socket_mod

        sock = socket_mod.create_connection((transport.host, transport.port))
        sock.sendall("".join(line + "\n" for line in lines).encode())
        sock.close()

    def test_garbage_line_raises_in_strict_mode(self, xyz_execution):
        transport = SocketTransport()
        transport.start_receiver()
        self._send_raw(transport, [xyz_execution.messages[0].to_json(),
                                   "{not json"])
        with pytest.raises(ValueError, match="malformed"):
            transport.wait(timeout=10)

    def test_lenient_mode_records_and_continues(self, xyz_execution):
        transport = SocketTransport(strict=False)
        transport.start_receiver()
        good = [m.to_json() for m in xyz_execution.messages]
        self._send_raw(transport, good[:2] + ["garbage"] + good[2:])
        received = transport.wait(timeout=10)
        assert len(received) == 4
        assert len(transport.errors) == 1

    def test_blank_lines_ignored(self, xyz_execution):
        transport = SocketTransport()
        transport.start_receiver()
        self._send_raw(transport, ["", xyz_execution.messages[0].to_json(), ""])
        assert len(transport.wait(timeout=10)) == 1
