"""Batch-ingestion parity: every *_batch entry point vs its per-item twin.

The end-to-end batching path (``CausalDelivery.offer_batch`` →
``Observer.receive_batch`` → ``OnlinePredictor.feed_batch`` →
``LevelByLevelBuilder.feed_many``) exists purely for throughput; these
tests pin down that it is *observationally identical* to the per-item
path — same releases in the same order, same causal log, same violations,
same health report, same counters — across clean, shuffled and faulty
streams.
"""

import random

import pytest

from repro.core.causality import CausalityIndex
from repro.core.events import Envelope
from repro.obs import metrics
from repro.observer import Observer
from repro.observer.delivery import CausalDelivery
from repro.sched import FixedScheduler, RandomScheduler, run_program
from repro.workloads import (
    LANDING_OBSERVED_SCHEDULE,
    LANDING_PROPERTY,
    landing_controller,
    racy_counter,
    random_program,
)


def landing_messages():
    ex = run_program(landing_controller(),
                     FixedScheduler(LANDING_OBSERVED_SCHEDULE))
    return ex


def shuffled(messages, seed):
    msgs = list(messages)
    random.Random(seed).shuffle(msgs)
    return msgs


def make_execution(seed, n_threads=3, ops=8):
    program = random_program(random.Random(seed), n_threads=n_threads,
                             n_vars=3, ops_per_thread=ops, write_ratio=0.7)
    return run_program(program, RandomScheduler(seed))


class TestDeliveryOfferBatch:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_singles_on_shuffled_stream(self, seed):
        ex = make_execution(seed)
        msgs = shuffled(ex.messages, seed)
        a, b = CausalDelivery(ex.n_threads), CausalDelivery(ex.n_threads)
        singles = []
        for m in msgs:
            singles.extend(a.offer(m))
        batched = b.offer_batch(msgs)
        assert [m.event.eid for m in singles] == [m.event.eid for m in batched]
        assert a.delivered_counts == b.delivered_counts
        assert a.pending == b.pending

    def test_duplicates_and_chunks(self):
        ex = make_execution(5)
        msgs = shuffled(ex.messages, 5)
        msgs = msgs + msgs[: len(msgs) // 2]  # trailing duplicates
        a, b = CausalDelivery(ex.n_threads), CausalDelivery(ex.n_threads)
        singles = []
        for m in msgs:
            singles.extend(a.offer(m))
        batched = []
        for i in range(0, len(msgs), 7):  # uneven chunking
            batched.extend(b.offer_batch(msgs[i:i + 7]))
        assert [m.event.eid for m in singles] == [m.event.eid for m in batched]
        assert a.duplicates_dropped == b.duplicates_dropped > 0

    def test_counter_totals_match_singles(self):
        ex = make_execution(2)
        msgs = shuffled(ex.messages, 2) + [ex.messages[0]]  # one dup
        metrics.enable(reset=True)
        try:
            a = CausalDelivery(ex.n_threads)
            for m in msgs:
                a.offer(m)
            single_snap = {
                k: v for k, v in metrics.REGISTRY.snapshot().items()
                if k.startswith("delivery.") and k != "delivery.batch_size"
                and "histogram" not in str(v.get("kind", ""))
            }
            metrics.reset()
            b = CausalDelivery(ex.n_threads)
            b.offer_batch(msgs)
            batch_snap = {
                k: v for k, v in metrics.REGISTRY.snapshot().items()
                if k in single_snap
            }
            for name, inst in single_snap.items():
                if "value" in inst:
                    assert batch_snap[name]["value"] == inst["value"], name
            bs = metrics.REGISTRY.snapshot()["delivery.batch_size"]
            assert bs["count"] == 1 and bs["max"] == len(msgs)
        finally:
            metrics.disable()

    def test_lost_cone_outcomes(self):
        ex = make_execution(7, n_threads=3, ops=6)
        msgs = list(ex.messages)
        # drop thread 0's first message, declare it lost, then batch-offer
        # everything else: late/quarantined accounting must match singles
        victim = next(m for m in msgs if m.thread == 0)
        rest = [m for m in msgs if m is not victim]
        a, b = CausalDelivery(ex.n_threads), CausalDelivery(ex.n_threads)
        a.declare_lost([(victim.thread, victim.clock[victim.thread])])
        b.declare_lost([(victim.thread, victim.clock[victim.thread])])
        singles = []
        for m in rest + [victim]:
            singles.extend(a.offer(m))
        batched = b.offer_batch(rest + [victim])
        assert [m.event.eid for m in singles] == [m.event.eid for m in batched]
        assert a.late_arrivals == b.late_arrivals == 1
        assert len(a.quarantined) == len(b.quarantined)


class TestObserverReceiveBatch:
    @pytest.mark.parametrize("kwargs", [
        {},                                         # strict, no delivery
        {"causal_log": True},                       # strict + causal delivery
        {"fault_tolerant": True},                   # tolerant
        {"spec": LANDING_PROPERTY},                 # strict + predictor
        {"spec": LANDING_PROPERTY, "causal_log": True},
        {"spec": LANDING_PROPERTY, "fault_tolerant": True},
    ], ids=["plain", "log", "tolerant", "spec", "spec-log", "spec-tolerant"])
    @pytest.mark.parametrize("order_seed", [None, 13])
    def test_parity_with_receive(self, kwargs, order_seed):
        ex = landing_messages()
        msgs = (list(ex.messages) if order_seed is None
                else shuffled(ex.messages, order_seed))
        init = dict(ex.initial_store)
        one = Observer(ex.n_threads, init, **kwargs)
        many = Observer(ex.n_threads, init, **kwargs)
        v_one = []
        for m in msgs:
            v_one.extend(one.receive(m))
        v_many = []
        for i in range(0, len(msgs), 5):
            v_many.extend(many.receive_batch(msgs[i:i + 5]))
        v_one += one.finish()
        v_many += many.finish()
        assert [v.cut for v in v_one] == [v.cut for v in v_many]
        assert [m.event.eid for m in one.causal_log] == \
               [m.event.eid for m in many.causal_log]
        assert len(one.causality) == len(many.causality)
        assert one.health == many.health

    def test_tolerant_absorbs_faults_identically(self):
        ex = landing_messages()
        rng = random.Random(99)
        stream = []
        for i, m in enumerate(ex.messages):
            if rng.random() < 0.15:
                continue                      # drop
            stream.append(m)
            if rng.random() < 0.15:
                stream.append(m)              # duplicate
        # one corrupt envelope in the middle
        env = Envelope.wrap(ex.messages[0], seq=0)
        bad = Envelope(message=env.message, seq=env.seq,
                       checksum=env.checksum ^ 0xFF)
        stream.insert(len(stream) // 2, bad)
        init = dict(ex.initial_store)
        one = Observer(ex.n_threads, init, spec=LANDING_PROPERTY,
                       fault_tolerant=True)
        many = Observer(ex.n_threads, init, spec=LANDING_PROPERTY,
                        fault_tolerant=True)
        for item in stream:
            one.receive(item)
        many.receive_batch(stream)
        one.finish()
        many.finish()
        assert one.health == many.health
        assert one.health.corrupted == 1
        assert [m.event.eid for m in one.causal_log] == \
               [m.event.eid for m in many.causal_log]
        assert len(one.violations) == len(many.violations)

    def test_stall_threshold_falls_back_to_singles(self):
        ex = landing_messages()
        msgs = list(ex.messages)
        missing = msgs.pop(0)
        one = Observer(ex.n_threads, dict(ex.initial_store),
                       fault_tolerant=True, stall_threshold=3)
        many = Observer(ex.n_threads, dict(ex.initial_store),
                        fault_tolerant=True, stall_threshold=3)
        for m in msgs:
            one.receive(m)
        many.receive_batch(msgs)
        # stall accounting is per ingest: both saw the same ingest sequence
        assert one.health == many.health
        assert missing.event.eid not in many.causality

    def test_strict_duplicate_raises_after_prefix(self):
        ex = make_execution(1)
        msgs = list(ex.messages[:4])
        assert len(msgs) == 4
        obs = Observer(ex.n_threads, dict(ex.initial_store))
        with pytest.raises(ValueError, match="duplicate"):
            obs.receive_batch(msgs + [msgs[0]])
        # everything before the duplicate was fully processed
        assert len(obs.causality) == 4
        assert obs.n_received == 5

    def test_strict_corrupt_envelope_raises_after_prefix(self):
        ex = make_execution(1)
        env = Envelope.wrap(ex.messages[2], seq=2)
        bad = Envelope(message=env.message, seq=env.seq,
                       checksum=env.checksum ^ 1)
        obs = Observer(ex.n_threads, dict(ex.initial_store))
        with pytest.raises(ValueError, match="checksum"):
            obs.receive_batch(list(ex.messages[:2]) + [bad])
        assert len(obs.causality) == 2

    def test_empty_batch_is_noop(self):
        ex = landing_messages()
        obs = Observer(ex.n_threads, dict(ex.initial_store))
        assert obs.receive_batch([]) == []
        assert obs.n_received == 0

    def test_finished_observer_rejects_batch(self):
        ex = landing_messages()
        obs = Observer(ex.n_threads, dict(ex.initial_store))
        obs.finish()
        with pytest.raises(RuntimeError):
            obs.receive_batch(list(ex.messages[:1]))


class TestCausalityAddBatch:
    def test_batch_equals_singles(self):
        ex = make_execution(3)
        a = CausalityIndex(ex.n_threads)
        for m in ex.messages:
            a.add(m)
        b = CausalityIndex(ex.n_threads)
        assert b.add_batch(ex.messages) == 0
        assert list(a.messages) == list(b.messages)
        assert (a.relation_matrix() == b.relation_matrix()).all()

    def test_duplicate_rejected_with_prefix_committed(self):
        ex = make_execution(4)
        idx = CausalityIndex(ex.n_threads)
        batch = list(ex.messages[:3]) + [ex.messages[1]]
        with pytest.raises(ValueError, match="duplicate"):
            idx.add_batch(batch)
        assert len(idx) == 3                 # prefix before the dup is in
        assert ex.messages[2].event.eid in idx
        idx.add_batch(ex.messages[3:])       # index still usable
        assert len(idx) == len(ex.messages)

    def test_in_batch_duplicate_caught(self):
        ex = make_execution(6)
        idx = CausalityIndex(ex.n_threads)
        with pytest.raises(ValueError, match="duplicate"):
            idx.add_batch([ex.messages[0], ex.messages[0]])


class TestPredictorFeedBatch:
    def test_same_violations_as_singles(self):
        ex = landing_messages()
        from repro.analysis.predictive import OnlinePredictor

        one = OnlinePredictor(ex.n_threads, ex.initial_store,
                              LANDING_PROPERTY)
        many = OnlinePredictor(ex.n_threads, ex.initial_store,
                               LANDING_PROPERTY)
        got_one = []
        for m in ex.messages:
            got_one.extend(one.feed(m))
        got_many = many.feed_batch(list(ex.messages))
        got_one += one.finish()
        got_many += many.finish()
        assert [v.cut for v in got_one] == [v.cut for v in got_many]
        assert one.stats.levels_completed == many.stats.levels_completed

    def test_builder_feed_many_matches_feed(self):
        from repro.lattice.levels import LevelByLevelBuilder

        ex = landing_messages()
        a = LevelByLevelBuilder(ex.n_threads, ex.initial_store)
        for m in ex.messages:
            a.feed(m)
        b = LevelByLevelBuilder(ex.n_threads, ex.initial_store)
        b.feed_many(list(ex.messages))
        a.finish()
        b.finish()
        assert a.level == b.level
        assert set(a.frontier) == set(b.frontier)
        assert a.stats.messages_buffered == b.stats.messages_buffered

    def test_feed_many_rejects_closed_builder(self):
        from repro.lattice.levels import LevelByLevelBuilder

        ex = landing_messages()
        b = LevelByLevelBuilder(ex.n_threads, ex.initial_store)
        b.feed_many(list(ex.messages))
        b.finish()
        with pytest.raises(RuntimeError):
            b.feed_many(list(ex.messages[:1]))


class TestSessionBatchDrain:
    def test_worker_drains_in_batches(self):
        from repro.server.protocol import Hello
        from repro.server.session import Session

        ex = landing_messages()
        hello = Hello(mode="attach", program="landing",
                      n_threads=ex.n_threads,
                      initial=dict(ex.initial_store),
                      spec=LANDING_PROPERTY)
        sess = Session(1, hello)
        for m in ex.messages:
            assert sess.enqueue(m, timeout=1.0)
        sess.begin_drain()
        while sess.process_batch(max_batch=8):
            pass
        assert sess.state.value == "finished"
        assert sess.analyzed == len(ex.messages)
        assert sess.pending == 0
        # verdict identical to a plain observer over the same stream
        ref = Observer(ex.n_threads, dict(ex.initial_store),
                       spec=LANDING_PROPERTY)
        ref.receive_many(ex.messages)
        ref.finish()
        assert len(sess.observer.violations) == len(ref.violations)
        assert sess.final_clocks[ex.messages[-1].thread] == \
               tuple(ex.messages[-1].clock)

    def test_fin_mid_chunk_finishes(self):
        from repro.server.protocol import Hello
        from repro.server.session import Session

        ex = landing_messages()
        hello = Hello(mode="attach", program="landing",
                      n_threads=ex.n_threads,
                      initial=dict(ex.initial_store))
        sess = Session(2, hello)
        for m in ex.messages:
            sess.enqueue(m, timeout=1.0)
        sess.begin_drain()
        # one giant batch: the fin sentinel is consumed in the same call
        assert sess.process_batch(max_batch=10_000) is False
        assert sess.state.value == "finished"
        assert sess.analyzed == len(ex.messages)
