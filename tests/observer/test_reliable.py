"""Tests for the ack-based reliable transport over a lossy wire."""

import random
import socket
import threading

import pytest

from repro.observer.reliable import (
    LossyWire,
    ReliableReceiver,
    ReliableSender,
    ReliableTransportError,
)
from repro.sched import RandomScheduler, run_program
from repro.workloads import random_program


@pytest.fixture
def messages():
    program = random_program(random.Random(11), n_threads=3, n_vars=3,
                             ops_per_thread=8, write_ratio=0.7)
    return run_program(program, RandomScheduler(11)).messages


def roundtrip(messages, wire=None, **sender_kw):
    receiver = ReliableReceiver(accept_timeout=10.0)
    receiver.start()
    sender = ReliableSender("127.0.0.1", receiver.port, wire=wire,
                            **sender_kw)
    for m in messages:
        sender.send(m)
    sender.close()
    got = receiver.wait(timeout=10.0)
    return got, sender, receiver


class TestLossyWire:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            LossyWire(lambda b: None, drop=1.5)
        with pytest.raises(ValueError):
            LossyWire(lambda b: None, drop=0.6, dup=0.6)

    def test_deterministic_faults(self):
        for _ in range(2):
            sent = []
            wire = LossyWire(sent.append, drop=0.3, dup=0.2, seed=4)
            for i in range(100):
                wire(b"%d" % i)
            counts = (wire.frames_dropped, wire.frames_duplicated, len(sent))
            assert counts == (
                wire.frames_dropped, wire.frames_duplicated,
                100 - wire.frames_dropped + wire.frames_duplicated)
        # same seed twice gives the same trace
        sent2 = []
        wire2 = LossyWire(sent2.append, drop=0.3, dup=0.2, seed=4)
        for i in range(100):
            wire2(b"%d" % i)
        assert sent2 == sent


class TestCleanWire:
    def test_exactly_once_in_order(self, messages):
        got, sender, receiver = roundtrip(messages)
        assert [m.event.eid for m in got] == [m.event.eid for m in messages]
        assert receiver.duplicates == 0
        assert receiver.corrupt_frames == 0
        assert sender.retransmissions == 0

    def test_context_managers(self, messages):
        with ReliableReceiver(accept_timeout=10.0) as receiver:
            receiver.start()
            with ReliableSender("127.0.0.1", receiver.port) as sender:
                for m in messages[:4]:
                    sender.send(m)
            got = receiver.wait(timeout=10.0)
        assert len(got) == 4


class TestLossyDelivery:
    def test_zero_loss_over_five_percent_drop(self, messages):
        """The acceptance-criterion wire: 5% of sends vanish, the stream
        still arrives complete, in order, exactly once."""
        wires = []

        def make_wire(send_fn):
            w = LossyWire(send_fn, drop=0.05, seed=1)
            wires.append(w)
            return w

        got, sender, receiver = roundtrip(messages, wire=make_wire)
        assert [m.event.eid for m in got] == [m.event.eid for m in messages]
        assert wires[0].frames_dropped > 0, "wire never exercised"
        assert sender.retransmissions >= wires[0].frames_dropped - \
            wires[0].frames_duplicated - 1

    def test_heavy_drop_and_dup(self, messages):
        def make_wire(send_fn):
            return LossyWire(send_fn, drop=0.15, dup=0.10, seed=9)

        got, sender, receiver = roundtrip(messages, wire=make_wire,
                                          timeout=0.02, max_retries=20)
        assert [m.event.eid for m in got] == [m.event.eid for m in messages]
        # duplicated frames must have been suppressed (and re-acked)
        assert receiver.duplicates >= 0
        assert len(got) == len(messages)

    def test_retry_budget_exhaustion_raises(self, messages):
        def blackhole(send_fn):
            return lambda data: None    # nothing ever reaches the receiver

        receiver = ReliableReceiver(accept_timeout=5.0)
        receiver.start()
        sender = ReliableSender("127.0.0.1", receiver.port, wire=blackhole,
                                timeout=0.01, max_retries=2, window=4,
                                heartbeat_interval=None)
        with pytest.raises(ReliableTransportError, match="unacked"):
            sender.send(messages[0])
            sender.close(timeout=5.0)
        receiver.close()

    def test_window_backpressure(self, messages):
        """With window=1, a second send blocks until the first is acked —
        the sender buffer stays bounded."""
        got, sender, receiver = roundtrip(messages[:6], window=1)
        assert len(got) == 6
        assert [m.event.eid for m in got] == \
            [m.event.eid for m in messages[:6]]

    def test_heartbeats_flow_while_idle(self, messages):
        import time

        receiver = ReliableReceiver(accept_timeout=10.0)
        receiver.start()
        sender = ReliableSender("127.0.0.1", receiver.port,
                                heartbeat_interval=0.05)
        sender.send(messages[0])
        deadline = time.monotonic() + 5.0
        while receiver.heartbeats == 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert sender.heartbeats_sent > 0
        assert receiver.heartbeats > 0
        assert receiver.last_heartbeat is not None
        sender.close()
        receiver.wait(timeout=10.0)

    def test_corrupt_frames_not_acked_then_retried(self, messages):
        """Flip a byte in the first copy of each frame: the receiver must
        reject it (bad CRC) without acking, and the retransmitted intact
        copy completes the stream."""
        class CorruptingWire:
            def __init__(self, send_fn):
                self._send = send_fn
                self._seen = set()
                self.corrupted = 0

            def __call__(self, data):
                if data not in self._seen and b'"msg"' in data:
                    self._seen.add(data)
                    self.corrupted += 1
                    # tamper inside the payload, keep valid JSON framing
                    self._send(data.replace(b'"payload"', b'"paYload"'))
                    return
                self._send(data)

        wires = []

        def make_wire(send_fn):
            w = CorruptingWire(send_fn)
            wires.append(w)
            return w

        got, sender, receiver = roundtrip(messages[:5], wire=make_wire,
                                          timeout=0.02)
        assert len(got) == 5
        assert wires[0].corrupted == 5
        assert receiver.corrupt_frames >= 5
        assert sender.retransmissions >= 5


class TestReceiverErrors:
    def test_never_connected(self):
        receiver = ReliableReceiver(accept_timeout=0.2)
        receiver.start()
        with pytest.raises(ConnectionError, match="no sender connected"):
            receiver.wait(timeout=5.0)

    def test_wait_before_start(self):
        receiver = ReliableReceiver(accept_timeout=0.2)
        with pytest.raises(RuntimeError, match="start"):
            receiver.wait()
        receiver.close()

    def test_send_after_close_rejected(self, messages):
        receiver = ReliableReceiver(accept_timeout=10.0)
        receiver.start()
        sender = ReliableSender("127.0.0.1", receiver.port)
        sender.send(messages[0])
        sender.close()
        with pytest.raises(ReliableTransportError, match="closed"):
            sender.send(messages[1])
        receiver.wait(timeout=10.0)

    def test_on_message_callback_streams_in_order(self, messages):
        seen = []
        receiver = ReliableReceiver(accept_timeout=10.0,
                                    on_message=seen.append)
        receiver.start()

        def make_wire(send_fn):
            return LossyWire(send_fn, drop=0.1, seed=6)

        with ReliableSender("127.0.0.1", receiver.port,
                            wire=make_wire, timeout=0.02) as sender:
            for m in messages:
                sender.send(m)
        got = receiver.wait(timeout=10.0)
        assert seen == got
        assert [m.event.eid for m in seen] == \
            [m.event.eid for m in messages]
