"""Fault-injection tests: the observer pipeline under an imperfect wire.

Covers the robustness acceptance criteria:

* for seeded (workload, fault-plan) combinations with drop/dup/corrupt
  rates up to 10%, the observer terminates, never raises, and its health
  report matches the injected :class:`FaultLog` *exactly* (every fault
  reported, zero false positives);
* predictive verdicts on the non-quarantined region are identical to a
  fault-free run of the same trace;
* the causal log of delivered messages is a linear extension of ``⊳``
  restricted to the delivered subset, which is itself a consistent cut.
"""

import random

import pytest

from repro.core.causality import is_linear_extension
from repro.core.events import Envelope
from repro.observer import Observer
from repro.observer.delivery import CausalDelivery
from repro.observer.faults import (
    CORRUPTION_SENTINEL,
    FaultLog,
    FaultPlan,
    FaultyChannel,
)
from repro.sched import RandomScheduler, run_program
from repro.workloads import random_program


def make_execution(seed, n_threads=3, ops=10):
    program = random_program(random.Random(seed), n_threads=n_threads,
                             n_vars=3, ops_per_thread=ops, write_ratio=0.7)
    return run_program(program, RandomScheduler(seed))


def thread_totals(messages, n_threads):
    totals = [0] * n_threads
    for m in messages:
        totals[m.thread] += 1
    return totals


def pump(channel, observer, messages):
    """Producer/consumer loop: put one message, drain what's deliverable."""
    for m in messages:
        channel.put(m)
        observer.consume(channel)
    channel.close()
    observer.consume(channel)


class TestFaultPlan:
    def test_parse(self):
        plan = FaultPlan.parse("drop=0.05, dup=0.02, corrupt=0.01", seed=9)
        assert (plan.drop, plan.dup, plan.corrupt) == (0.05, 0.02, 0.01)
        assert plan.seed == 9

    def test_parse_crash_and_delay(self):
        plan = FaultPlan.parse("delay=0.2,delay_max=5,crash_after=10")
        assert plan.delay == 0.2
        assert plan.delay_max == 5
        assert plan.crash_after == 10

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("jitter=0.1")

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.parse("drop")

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=1.5)
        with pytest.raises(ValueError):
            FaultPlan(drop=0.6, dup=0.6)


class TestFaultyChannel:
    def test_no_faults_passes_everything_as_envelopes(self):
        ex = make_execution(0)
        ch = FaultyChannel(FaultPlan())
        out = []
        pump_ch = ex.messages
        for m in pump_ch:
            ch.put(m)
        ch.close()
        out = list(ch.drain())
        assert len(out) == len(ex.messages)
        assert all(isinstance(e, Envelope) and e.ok for e in out)
        assert ch.log == FaultLog()

    def test_seed_determinism(self):
        ex = make_execution(1)
        plans = [FaultPlan(drop=0.1, dup=0.1, corrupt=0.1, delay=0.1, seed=5)
                 for _ in range(2)]
        logs = []
        for plan in plans:
            ch = FaultyChannel(plan)
            for m in ex.messages:
                ch.put(m)
            ch.close()
            list(ch.drain())
            logs.append(ch.log)
        assert logs[0] == logs[1]

    def test_log_accounts_for_every_envelope(self):
        ex = make_execution(2, ops=20)
        ch = FaultyChannel(FaultPlan(drop=0.15, dup=0.1, corrupt=0.1,
                                     delay=0.1, seed=3))
        for m in ex.messages:
            ch.put(m)
        ch.close()
        out = list(ch.drain())
        log = ch.log
        expected = (len(ex.messages) - len(log.dropped)
                    + len(log.duplicated) - len(log.lost_to_crash))
        assert len(out) == expected
        bad = [e for e in out if not e.ok]
        assert len(bad) == len(log.corrupted)
        assert all(e.message.event.value == CORRUPTION_SENTINEL for e in bad)

    def test_crash_swallows_suffix(self):
        ex = make_execution(3, ops=10)
        ch = FaultyChannel(FaultPlan(crash_after=5, seed=0))
        for m in ex.messages:
            ch.put(m)
        ch.close()
        out = list(ch.drain())
        assert ch.crashed
        assert len(out) == 5
        assert ch.log.crashed_at == 5
        assert len(ch.log.lost_to_crash) == len(ex.messages) - 5

    def test_crash_loses_pending_delayed_sends(self):
        ex = make_execution(4, ops=10)
        ch = FaultyChannel(FaultPlan(delay=1.0, delay_max=30, crash_after=5,
                                     seed=1))
        for m in ex.messages:
            ch.put(m)
        ch.close()
        out = list(ch.drain())
        # everything the log says was delayed did eventually arrive;
        # everything lost to the crash (incl. unflushed delays) did not
        assert len(out) == len(ch.log.delayed)
        assert len(ch.log.delayed) + len(ch.log.lost_to_crash) == len(ex.messages)

    def test_put_after_close_rejected(self):
        ex = make_execution(0)
        ch = FaultyChannel(FaultPlan())
        ch.close()
        with pytest.raises(RuntimeError):
            ch.put(ex.messages[0])


class TestDeliveryLossAndQuarantine:
    def test_declare_lost_quarantines_cone(self, xyz_execution):
        e1, e2, e4, e3 = xyz_execution.messages
        d = CausalDelivery(2)
        assert d.offer(e2) == []            # blocked on e1 (slot (0, 1))
        evicted = d.declare_lost([(0, 1)])
        assert [m.event.eid for m in evicted] == [e2.event.eid]
        assert d.pending == 0
        assert d.losses == ((0, 1),)

    def test_concurrent_region_keeps_flowing(self, xyz_execution):
        # lose thread 0's first message: thread 1's e2 depends on it (e1 ⊳ e2
        # via the x-write), so only slots concurrent with the loss survive —
        # here, nothing; but a fresh independent thread-1 message delivers.
        e1, e2, e4, e3 = xyz_execution.messages
        d = CausalDelivery(2)
        d.declare_lost([(1, 1)])            # lose e2 (thread 1, index 1)
        assert d.offer(e1) == [e1]          # e1 is concurrent with that loss
        assert d.offer(e3) == [e3]          # e3 = thread 0 index 2, also fine
        assert d.offer(e4) == []            # e4 needs e2 -> quarantined
        assert [m.event.eid for m in d.quarantined] == [e4.event.eid]

    def test_late_arrival_of_lost_slot_is_quarantined(self, xyz_execution):
        e1 = xyz_execution.messages[0]
        d = CausalDelivery(2)
        d.declare_lost([(0, 1)])
        assert d.offer(e1) == []
        assert d.late_arrivals == 1
        assert d.duplicates_dropped == 0

    def test_cannot_lose_a_delivered_slot(self, xyz_execution):
        e1 = xyz_execution.messages[0]
        d = CausalDelivery(2)
        d.offer(e1)
        with pytest.raises(ValueError, match="already delivered"):
            d.declare_lost([(0, 1)])

    def test_gaps_reports_blocking_slots(self, xyz_execution):
        e1, e2, e4, e3 = xyz_execution.messages
        d = CausalDelivery(2)
        d.offer(e4)
        assert d.gaps() == [(0, 1)] or d.gaps() == [(1, 1)]
        assert not d.arrived((0, 1))
        assert d.arrived(e4.delivery_index)


class TestObserverFaultTolerance:
    def test_strict_mode_raises_on_corrupt_envelope(self, xyz_execution):
        import dataclasses

        obs = Observer(2, dict(xyz_execution.initial_store))
        env = Envelope.wrap(xyz_execution.messages[0], 0)
        bad_event = dataclasses.replace(env.message.event, value=123456)
        bad = Envelope(
            message=dataclasses.replace(env.message, event=bad_event),
            seq=0, checksum=env.checksum)
        with pytest.raises(ValueError, match="checksum"):
            obs.receive(bad)

    def test_tolerant_mode_counts_corruption(self, xyz_execution):
        import dataclasses

        obs = Observer(2, dict(xyz_execution.initial_store),
                       fault_tolerant=True)
        env = Envelope.wrap(xyz_execution.messages[0], 0)
        bad_event = dataclasses.replace(env.message.event, value=123456)
        bad = Envelope(
            message=dataclasses.replace(env.message, event=bad_event),
            seq=0, checksum=env.checksum)
        assert obs.receive(bad) == []
        assert obs.health.corrupted == 1

    def test_duplicates_absorbed_exactly(self, xyz_execution):
        obs = Observer(2, dict(xyz_execution.initial_store),
                       fault_tolerant=True)
        for m in xyz_execution.messages:
            obs.receive(m)
            obs.receive(m)              # every message arrives twice
        obs.finish(expected_totals=thread_totals(xyz_execution.messages, 2))
        h = obs.health
        assert h.duplicates_dropped == 4
        assert h.delivered == 4
        assert not h.degraded          # duplication alone does not degrade
        assert h.sound_everywhere

    def test_stall_threshold_declares_loss_online(self):
        ex = make_execution(7, n_threads=2, ops=8)
        totals = thread_totals(ex.messages, 2)
        # drop thread 0's first message; feed everything else
        victim = next(m for m in ex.messages if m.delivery_index == (0, 1))
        rest = [m for m in ex.messages if m is not victim]
        obs = Observer(2, dict(ex.initial_store), fault_tolerant=True,
                       stall_threshold=3)
        obs.receive_many(rest)
        assert (0, 1) in obs.health.losses   # declared before finish
        obs.finish(expected_totals=totals)
        assert obs.health.pending == 0

    def test_health_without_delivery_layer(self, xyz_execution):
        obs = Observer(2, dict(xyz_execution.initial_store))
        obs.receive_many(xyz_execution.messages)
        h = obs.health
        assert h.received == h.delivered == 4
        assert h.sound_everywhere


SOAK_SPEC = "v0 <= 4"
SOAK_SEEDS = range(20)


@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_fault_injection_soak(seed):
    """Acceptance soak: 20+ seeded (workload, fault-plan) combinations with
    rates up to 10% — terminates, health matches the plan exactly, and
    verdicts on the analyzed prefix equal the fault-free run's."""
    rng = random.Random(1000 + seed)
    n_threads = rng.choice((2, 3, 4))
    ex = make_execution(seed, n_threads=n_threads, ops=rng.randint(6, 14))
    totals = thread_totals(ex.messages, n_threads)
    plan = FaultPlan(
        drop=rng.uniform(0, 0.10),
        dup=rng.uniform(0, 0.10),
        corrupt=rng.uniform(0, 0.10),
        delay=rng.uniform(0, 0.10),
        delay_max=rng.randint(1, 4),
        crash_after=(rng.randrange(len(ex.messages) or 1)
                     if rng.random() < 0.2 and ex.messages else None),
        seed=seed * 31 + 7,
    )
    channel = FaultyChannel(plan)
    obs = Observer(n_threads, dict(ex.initial_store), spec=SOAK_SPEC,
                   fault_tolerant=True)
    pump(channel, obs, ex.messages)          # (a) never hangs or raises
    obs.finish(expected_totals=totals)
    h = obs.health
    log = channel.log

    # (b) every injected fault reported, zero false positives
    assert set(h.losses) == log.lost_slots
    assert h.duplicates_dropped == len(log.duplicated)
    assert h.corrupted == len(log.corrupted)
    assert h.pending == 0
    if log.lost_slots or log.corrupted:
        assert h.degraded
        assert h.degraded_windows
    else:
        assert not h.degraded
        assert h.sound_everywhere

    # (c) the causal log is a linear extension of ⊳ on the delivered subset,
    # and that subset is a consistent cut (per-thread contiguous prefixes)
    assert is_linear_extension(obs.causal_log)
    delivered = obs.health.delivered
    assert len(obs.causal_log) == delivered
    per_thread = {}
    for m in obs.causal_log:
        per_thread.setdefault(m.thread, []).append(m.clock[m.thread])
    for t, indices in per_thread.items():
        assert indices == list(range(1, len(indices) + 1)), t

    # verdict parity with the fault-free run, restricted to the analyzed cut
    clean = Observer(n_threads, dict(ex.initial_store), spec=SOAK_SPEC)
    clean.receive_many(ex.messages)
    clean.finish()
    cut = [len(per_thread.get(t, ())) for t in range(n_threads)]
    clean_restricted = {
        (v.cut, v.monitor_state) for v in clean.violations
        if all(v.cut[i] <= cut[i] for i in range(n_threads))
    }
    faulty = {(v.cut, v.monitor_state) for v in obs.violations}
    assert faulty == clean_restricted
