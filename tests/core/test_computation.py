"""Tests for the ground-truth multithreaded computation (§2.2 oracle)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.computation import Computation, execution_from_specs
from repro.core.events import Event, EventKind


def comp(specs, **kw):
    return Computation(execution_from_specs(specs, **kw))


class TestConstruction:
    def test_duplicate_eid_rejected(self):
        e = Event(thread=0, seq=1, kind=EventKind.INTERNAL)
        with pytest.raises(ValueError):
            Computation([e, e])

    def test_out_of_order_seq_rejected(self):
        events = [
            Event(thread=0, seq=2, kind=EventKind.INTERNAL),
            Event(thread=0, seq=1, kind=EventKind.INTERNAL),
        ]
        with pytest.raises(ValueError):
            Computation(events)

    def test_unknown_causality_mode(self):
        with pytest.raises(ValueError):
            Computation([], causality="nope")

    def test_empty_execution(self):
        c = Computation([])
        assert len(c) == 0
        assert c.relevant_events() == []
        assert c.count_linearizations() == 1


class TestProgramOrder:
    def test_same_thread_events_ordered(self):
        c = comp([(0, "i", None), (0, "i", None), (0, "i", None)])
        assert c.precedes((0, 1), (0, 2))
        assert c.precedes((0, 1), (0, 3))
        assert not c.precedes((0, 2), (0, 1))

    def test_different_thread_internals_concurrent(self):
        c = comp([(0, "i", None), (1, "i", None)])
        assert c.concurrent((0, 1), (1, 1))

    def test_not_concurrent_with_self(self):
        c = comp([(0, "i", None)])
        assert not c.concurrent((0, 1), (0, 1))


class TestAccessEdges:
    def test_write_read_edge(self):
        c = comp([(0, "w", "x"), (1, "r", "x")])
        assert c.precedes((0, 1), (1, 1))

    def test_read_write_edge(self):
        c = comp([(0, "r", "x"), (1, "w", "x")])
        assert c.precedes((0, 1), (1, 1))

    def test_write_write_edge(self):
        c = comp([(0, "w", "x"), (1, "w", "x")])
        assert c.precedes((0, 1), (1, 1))

    def test_read_read_permutable(self):
        """§2.2: no causal constraint on read-read pairs."""
        c = comp([(0, "r", "x"), (1, "r", "x")])
        assert c.concurrent((0, 1), (1, 1))

    def test_different_variables_unrelated(self):
        c = comp([(0, "w", "x"), (1, "w", "y")])
        assert c.concurrent((0, 1), (1, 1))

    def test_transitivity_through_variable(self):
        # T1 writes x; T2 reads x then writes y; T3 reads y.
        c = comp([(0, "w", "x"), (1, "r", "x"), (1, "w", "y"), (2, "r", "y")])
        assert c.precedes((0, 1), (2, 1))

    def test_transitivity_through_irrelevant_read(self):
        c = comp([(0, "w", "x"), (1, "r", "x"), (1, "i", None), (1, "w", "y")])
        assert c.precedes((0, 1), (1, 3))

    def test_earlier_read_before_later_write_same_var(self):
        # read then much later another thread writes: read <x write edge.
        c = comp([(0, "r", "x"), (1, "i", None), (1, "w", "x")])
        assert c.precedes((0, 1), (1, 2))


class TestPredecessors:
    def test_predecessors_list(self):
        c = comp([(0, "w", "x"), (1, "r", "x"), (1, "w", "y")])
        preds = c.predecessors((1, 2))
        assert [p.eid for p in preds] == [(0, 1), (1, 1)]

    def test_first_event_has_no_predecessors(self):
        c = comp([(0, "w", "x"), (1, "r", "x")])
        assert c.predecessors((0, 1)) == []


class TestRelevantCausality:
    def test_relevant_pairs_only_relevant_events(self):
        c = comp([(0, "w", "x"), (1, "r", "x"), (1, "w", "y")],
                 relevant_vars={"x", "y"})
        rel = c.relevant_events()
        assert [e.eid for e in rel] == [(0, 1), (1, 2)]
        pairs = {(a.eid, b.eid): v for a, b, v in c.relevant_pairs()}
        assert pairs[((0, 1), (1, 2))] is True
        assert pairs[((1, 2), (0, 1))] is False

    def test_relevant_precedes_requires_both_relevant(self):
        c = comp([(0, "w", "x"), (1, "r", "x"), (1, "w", "y")],
                 relevant_vars={"y"})
        e_wx = c.events[0]
        e_wy = c.events[2]
        assert c.precedes(e_wx, e_wy)
        assert not c.relevant_precedes(e_wx, e_wy)  # wx not relevant
        assert not e_wx.relevant and e_wy.relevant


class TestLinearizations:
    def test_chain_has_one_linearization(self):
        c = comp([(0, "w", "x"), (1, "r", "x"), (1, "w", "x"), (0, "r", "x")])
        assert c.count_linearizations() == 1

    def test_independent_events_factorial(self):
        c = comp([(0, "i", None), (1, "i", None), (2, "i", None)])
        assert c.count_linearizations() == 6

    def test_two_chains_binomial(self):
        # two independent threads of 2 internal events each: C(4,2) = 6
        c = comp([(0, "i", None), (0, "i", None), (1, "i", None), (1, "i", None)])
        assert c.count_linearizations() == 6

    def test_limit_overflow(self):
        specs = [(t, "i", None) for t in range(3) for _ in range(4)]
        c = comp(specs)
        with pytest.raises(OverflowError):
            c.count_linearizations(limit=10)

    def test_is_consistent_run_accepts_execution_order(self):
        specs = [(0, "w", "x"), (1, "r", "x"), (0, "w", "y"), (1, "w", "x")]
        c = comp(specs)
        assert c.is_consistent_run(list(c.events))

    def test_is_consistent_run_rejects_violation(self):
        c = comp([(0, "w", "x"), (1, "r", "x")])
        e1, e2 = c.events
        assert not c.is_consistent_run([e2, e1])

    def test_is_consistent_run_rejects_wrong_length(self):
        c = comp([(0, "w", "x"), (1, "r", "x")])
        assert not c.is_consistent_run([c.events[0]])

    def test_is_consistent_run_rejects_duplicates(self):
        c = comp([(0, "w", "x"), (1, "r", "x")])
        e1, _ = c.events
        assert not c.is_consistent_run([e1, e1])


class TestSyncCausality:
    def test_data_edges_dropped_in_sync_mode(self):
        events = execution_from_specs([(0, "w", "x"), (1, "w", "x")])
        full = Computation(events)
        sync = Computation(events, causality="sync")
        assert full.precedes((0, 1), (1, 1))
        assert sync.concurrent((0, 1), (1, 1))

    def test_sync_edges_kept(self):
        events = [
            Event(thread=0, seq=1, kind=EventKind.WRITE, var="x", value=1),
            Event(thread=0, seq=2, kind=EventKind.RELEASE, var="L"),
            Event(thread=1, seq=1, kind=EventKind.ACQUIRE, var="L"),
            Event(thread=1, seq=2, kind=EventKind.WRITE, var="x", value=2),
        ]
        sync = Computation(events, causality="sync")
        assert sync.precedes((0, 1), (1, 2))

    def test_program_order_kept_in_sync_mode(self):
        sync = comp([(0, "w", "x"), (0, "w", "y")])
        sync2 = Computation(execution_from_specs([(0, "w", "x"), (0, "w", "y")]),
                            causality="sync")
        assert sync2.precedes((0, 1), (0, 2))


# ---------------------------------------------------------------------------
# property-based: the partial order axioms hold on random executions
# ---------------------------------------------------------------------------

specs_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.sampled_from(["r", "w", "i"]),
        st.sampled_from(["x", "y", "z"]),
    ).map(lambda t: (t[0], t[1], None if t[1] == "i" else t[2])),
    min_size=1,
    max_size=14,
)


@given(specs_strategy)
@settings(max_examples=60)
def test_precedes_is_irreflexive_and_antisymmetric(specs):
    c = comp(specs)
    for a in c.events:
        assert not c.precedes(a, a)
        for b in c.events:
            if c.precedes(a, b):
                assert not c.precedes(b, a)


@given(specs_strategy)
@settings(max_examples=60)
def test_precedes_is_transitive(specs):
    c = comp(specs)
    ev = c.events
    for a in ev:
        for b in ev:
            if not c.precedes(a, b):
                continue
            for d in ev:
                if c.precedes(b, d):
                    assert c.precedes(a, d)


@given(specs_strategy)
@settings(max_examples=60)
def test_execution_order_is_a_linearization(specs):
    c = comp(specs)
    assert c.is_consistent_run(list(c.events))


@given(specs_strategy)
@settings(max_examples=60)
def test_precedence_implies_execution_order(specs):
    """≺ must be consistent with the observed total order."""
    c = comp(specs)
    for a in c.events:
        for b in c.events:
            if c.precedes(a, b):
                assert c.position(a) < c.position(b)
