"""Tests for observer-side causality reconstruction (CausalityIndex)."""

import random

import numpy as np
import pytest

from repro.core.causality import CausalityIndex, hasse_reduction, is_linear_extension
from repro.core.events import Event, EventKind, Message
from repro.core.vectorclock import VectorClock
from repro.sched import FixedScheduler, run_program
from repro.workloads import XYZ_OBSERVED_SCHEDULE, xyz_program


def msg(thread, seq, clock, var="x"):
    return Message(
        event=Event(thread=thread, seq=seq, kind=EventKind.WRITE, var=var,
                    value=0, relevant=True),
        thread=thread,
        clock=VectorClock(clock),
    )


@pytest.fixture
def fig6_index(xyz_execution):
    return CausalityIndex(2, xyz_execution.messages), xyz_execution.messages


class TestConstruction:
    def test_duplicate_eid_rejected(self):
        idx = CausalityIndex(2)
        idx.add(msg(0, 1, (1, 0)))
        with pytest.raises(ValueError):
            idx.add(msg(0, 1, (2, 0)))

    def test_width_mismatch_rejected(self):
        idx = CausalityIndex(2)
        with pytest.raises(ValueError):
            idx.add(msg(0, 1, (1, 0, 0)))

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            CausalityIndex(0)

    def test_contains_and_message(self):
        idx = CausalityIndex(2, [msg(0, 1, (1, 0))])
        assert (0, 1) in idx
        assert (1, 1) not in idx
        assert idx.message((0, 1)).clock == (1, 0)
        assert len(idx) == 1


class TestPointQueries:
    def test_fig6_relations(self, fig6_index):
        idx, msgs = fig6_index
        e1, e2, e4, e3 = msgs  # emission order of the observed schedule
        assert idx.precedes(e1, e2)
        assert idx.precedes(e1, e3)
        assert idx.precedes(e1, e4)
        assert idx.precedes(e2, e4)
        assert idx.concurrent(e2, e3)
        assert idx.concurrent(e3, e4)

    def test_queries_accept_eids(self, fig6_index):
        idx, msgs = fig6_index
        e1 = msgs[0]
        assert idx.precedes(e1.event.eid, msgs[1].event.eid)
        assert idx.concurrent(msgs[1].event.eid, msgs[3].event.eid)

    def test_predecessors_successors(self, fig6_index):
        idx, msgs = fig6_index
        e1, e2, e4, e3 = msgs
        assert {m.event.eid for m in idx.predecessors(e4)} == {e1.event.eid, e2.event.eid}
        assert {m.event.eid for m in idx.successors(e1)} == {
            e2.event.eid, e3.event.eid, e4.event.eid
        }


class TestBulkKernels:
    def test_relation_matrix_matches_point_queries(self, fig6_index):
        idx, msgs = fig6_index
        p = idx.relation_matrix()
        for i, a in enumerate(idx.messages):
            for j, b in enumerate(idx.messages):
                assert p[i, j] == (a.causally_precedes(b)), (i, j)

    def test_concurrency_matrix(self, fig6_index):
        idx, _ = fig6_index
        c = idx.concurrency_matrix()
        assert not c.diagonal().any()
        assert (c == c.T).all()
        # Fig. 6: exactly e2||e3 and e3||e4 concurrent
        assert idx.count_concurrent_pairs() == 2

    def test_insertion_order_invariance(self, xyz_execution):
        msgs = list(xyz_execution.messages)
        rng = random.Random(3)
        for _ in range(5):
            rng.shuffle(msgs)
            idx = CausalityIndex(2, msgs)
            assert idx.count_concurrent_pairs() == 2


class TestStructure:
    def test_covering_edges_fig6(self, fig6_index):
        idx, msgs = fig6_index
        e1, e2, e4, e3 = msgs
        cover = {(a.event.eid, b.event.eid) for a, b in idx.covering_edges()}
        # e1->e4 is implied by e1->e2->e4, so the Hasse diagram drops it.
        assert cover == {
            (e1.event.eid, e2.event.eid),
            (e1.event.eid, e3.event.eid),
            (e2.event.eid, e4.event.eid),
        }

    def test_hasse_reduction_empty(self):
        out = hasse_reduction(np.zeros((0, 0), dtype=bool))
        assert out.shape == (0, 0)

    def test_hasse_reduction_non_square(self):
        with pytest.raises(ValueError):
            hasse_reduction(np.zeros((2, 3), dtype=bool))

    def test_hasse_reduction_chain(self):
        # 0<1<2 with transitive edge 0<2: reduction keeps 0-1, 1-2 only
        p = np.array([[0, 1, 1], [0, 0, 1], [0, 0, 0]], dtype=bool)
        r = hasse_reduction(p)
        assert r.tolist() == [[False, True, False],
                              [False, False, True],
                              [False, False, False]]

    def test_per_thread_chains(self, fig6_index):
        idx, _ = fig6_index
        chains = idx.per_thread_chains()
        assert [m.clock[0] for m in chains[0]] == [1, 2]
        assert [m.clock[1] for m in chains[1]] == [1, 2]

    def test_minimal_messages(self, fig6_index):
        idx, msgs = fig6_index
        assert [m.event.eid for m in idx.minimal_messages()] == [msgs[0].event.eid]


class TestLinearization:
    def test_linearize_is_linear_extension(self, fig6_index):
        idx, _ = fig6_index
        order = idx.linearize()
        assert is_linear_extension(order)
        assert len(order) == 4

    def test_is_linear_extension_rejects_bad_order(self, fig6_index):
        idx, msgs = fig6_index
        e1, e2, e4, e3 = msgs
        assert not is_linear_extension([e2, e1, e3, e4])
        assert is_linear_extension([e1, e3, e2, e4])

    def test_emission_order_is_linear_extension_always(self):
        """Algorithm A's own emission order respects ⊳ (sanity)."""
        result = run_program(xyz_program(), FixedScheduler(XYZ_OBSERVED_SCHEDULE))
        assert is_linear_extension(result.messages)
