"""Theorem 3 — the paper's correctness theorem, validated mechanically.

    If ⟨e, i, V⟩ and ⟨e', i', V'⟩ are two messages sent by A, then
        e ⊳ e'   iff   V[i] <= V'[i]   iff   V < V'.

We replay random executions through Algorithm A *and* through the
independent §2.2 oracle (:class:`Computation`) and check that the clock
tests agree with the ground-truth relevant causality on every ordered pair
of emitted messages — for every relevance predicate, with and without
synchronization events, and under the scheduler-driven workloads.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm_a import AlgorithmA, all_accesses, relevant_writes
from repro.core.computation import Computation, execution_from_specs
from repro.core.events import EventKind
from repro.core.vectorclock import lt
from repro.sched import FixedScheduler, RandomScheduler, run_program
from repro.workloads import random_program


specs_strategy = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.sampled_from(["r", "w", "i"]),
        st.sampled_from(["x", "y", "z", "w0"]),
    ).map(lambda t: (t[0], t[1], None if t[1] == "i" else t[2])),
    min_size=1,
    max_size=20,
)


def check_theorem3(messages, computation):
    """All three characterizations agree with ground truth on every pair."""
    assert len(messages) == len(computation.relevant_events())
    by_eid = {m.event.eid: m for m in messages}
    for a, b, truth in computation.relevant_pairs():
        ma, mb = by_eid[a.eid], by_eid[b.eid]
        # characterization 1: V[i] <= V'[i]
        assert ma.causally_precedes(mb) == truth, (a, b)
        # characterization 2: V < V'
        assert lt(tuple(ma.clock), tuple(mb.clock)) == truth, (a, b)


@given(specs_strategy)
@settings(max_examples=120, deadline=None)
def test_theorem3_writes_relevance(specs):
    events = execution_from_specs(specs, relevance="writes")
    algo = AlgorithmA(4, relevance=relevant_writes({"x", "y", "z", "w0"}))
    for e in events:
        algo.process(e.thread, e.kind, e.var, e.value)
    check_theorem3(algo.emitted, Computation(events))


@given(specs_strategy)
@settings(max_examples=120, deadline=None)
def test_theorem3_all_accesses_relevance(specs):
    events = execution_from_specs(specs, relevance="accesses")
    algo = AlgorithmA(4, relevance=all_accesses())
    for e in events:
        algo.process(e.thread, e.kind, e.var, e.value)
    check_theorem3(algo.emitted, Computation(events))


@given(specs_strategy, st.sampled_from(["x", "y"]))
@settings(max_examples=60, deadline=None)
def test_theorem3_restricted_relevant_subset(specs, only_var):
    """Relevance restricted to one variable: irrelevant variables still shape
    the order, and the theorem must still hold on the restricted R."""
    events = execution_from_specs(specs, relevant_vars={only_var})
    algo = AlgorithmA(4, relevance=relevant_writes({only_var}))
    for e in events:
        algo.process(e.thread, e.kind, e.var, e.value)
    check_theorem3(algo.emitted, Computation(events))


@given(st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_theorem3_on_scheduled_random_programs(seed):
    """End-to-end: random straightline programs under random schedules."""
    rng = random.Random(seed)
    program = random_program(rng, n_threads=3, n_vars=3, ops_per_thread=5)
    result = run_program(program, RandomScheduler(seed))
    check_theorem3(result.messages, result.computation())


def test_theorem3_on_sync_workload():
    """Lock/notify events participate in the order like writes (§3.1)."""
    from repro.workloads import producer_consumer

    result = run_program(producer_consumer(2), FixedScheduler([], strict=False))
    check_theorem3(result.messages, result.computation())


def test_theorem3_paper_example(xyz_execution):
    check_theorem3(xyz_execution.messages, xyz_execution.computation())


def test_theorem3_landing_example(landing_execution):
    check_theorem3(landing_execution.messages, landing_execution.computation())


def test_clock_sum_counts_causal_past():
    """V[i] of a message equals 1 + number of relevant events of thread i
    strictly preceding it (requirement (a) seen from the message side)."""
    rng = random.Random(7)
    program = random_program(rng, n_threads=3, n_vars=2, ops_per_thread=6,
                             write_ratio=0.7)
    result = run_program(program, RandomScheduler(3))
    comp = result.computation()
    for m in result.messages:
        e = next(ev for ev in comp.events if ev.eid == m.event.eid)
        for j in range(3):
            expected = comp.count_relevant_preceding(j, e, inclusive=True)
            assert m.clock[j] == expected
