"""Unit and property tests for multithreaded vector clocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vectorclock import (
    ClockArena,
    MutableVectorClock,
    VectorClock,
    concurrent,
    join,
    leq,
    lt,
)

clock_components = st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8)


def paired_clocks(draw):
    xs = draw(clock_components)
    ys = draw(st.lists(st.integers(min_value=0, max_value=50),
                       min_size=len(xs), max_size=len(xs)))
    return xs, ys


clock_pairs = st.composite(paired_clocks)()
clock_triples = st.composite(
    lambda draw: (
        lambda xs: (
            xs,
            draw(st.lists(st.integers(0, 50), min_size=len(xs), max_size=len(xs))),
            draw(st.lists(st.integers(0, 50), min_size=len(xs), max_size=len(xs))),
        )
    )(draw(clock_components))
)()


# ---------------------------------------------------------------------------
# function-level kernels
# ---------------------------------------------------------------------------


class TestKernels:
    def test_leq_basic(self):
        assert leq((1, 0), (1, 1))
        assert not leq((1, 2), (2, 1))
        assert leq((0, 0), (0, 0))

    def test_lt_is_strict(self):
        assert lt((1, 0), (1, 1))
        assert not lt((1, 1), (1, 1))
        assert not lt((2, 0), (1, 1))

    def test_concurrent_symmetric_examples(self):
        assert concurrent((1, 0), (0, 1))
        assert not concurrent((1, 0), (1, 0))
        assert not concurrent((1, 0), (1, 1))

    def test_join_componentwise(self):
        assert join((1, 5, 0), (3, 2, 0)) == (3, 5, 0)

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            leq((1,), (1, 2))
        with pytest.raises(ValueError):
            lt((1,), (1, 2))
        with pytest.raises(ValueError):
            join((1,), (1, 2))

    @given(clock_pairs)
    def test_lt_iff_leq_and_neq(self, pair):
        a, b = pair
        assert lt(a, b) == (leq(a, b) and a != b)

    @given(clock_pairs)
    def test_exactly_one_relation_holds(self, pair):
        """For any two clocks: a==b, a<b, b<a, or a||b — exactly one."""
        a, b = pair
        relations = [a == b, lt(a, b), lt(b, a), concurrent(a, b)]
        assert sum(relations) == 1

    @given(clock_pairs)
    def test_join_is_upper_bound(self, pair):
        a, b = pair
        j = join(a, b)
        assert leq(a, j) and leq(b, j)

    @given(clock_triples)
    def test_join_least_upper_bound(self, triple):
        a, b, c = triple
        if leq(a, c) and leq(b, c):
            assert leq(join(a, b), c)

    @given(clock_pairs)
    def test_join_commutative(self, pair):
        a, b = pair
        assert join(a, b) == join(b, a)

    @given(clock_triples)
    def test_join_associative(self, triple):
        a, b, c = triple
        assert join(join(a, b), c) == join(a, join(b, c))

    @given(clock_components)
    def test_join_idempotent(self, a):
        assert join(a, a) == tuple(a)

    @given(clock_triples)
    def test_leq_transitive(self, triple):
        a, b, c = triple
        if leq(a, b) and leq(b, c):
            assert leq(a, c)


# ---------------------------------------------------------------------------
# VectorClock (immutable)
# ---------------------------------------------------------------------------


class TestVectorClock:
    def test_zero_and_unit(self):
        z = VectorClock.zero(3)
        assert z.components == (0, 0, 0)
        u = VectorClock.unit(3, 1)
        assert u.components == (0, 1, 0)
        assert z < u

    def test_zero_requires_positive_width(self):
        with pytest.raises(ValueError):
            VectorClock.zero(0)

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            VectorClock((1, -1))

    def test_hashable_and_eq(self):
        a = VectorClock((1, 2))
        b = VectorClock((1, 2))
        assert a == b and hash(a) == hash(b)
        assert a == (1, 2)
        assert len({a, b}) == 1

    def test_ordering_operators(self):
        a, b = VectorClock((1, 0)), VectorClock((1, 1))
        assert a <= b and a < b and b >= a and b > a
        assert not a.concurrent(b)
        assert VectorClock((1, 0)).concurrent(VectorClock((0, 1)))

    def test_join_and_meet(self):
        a, b = VectorClock((1, 5)), VectorClock((3, 2))
        assert a.join(b).components == (3, 5)
        assert a.meet(b).components == (1, 2)

    def test_meet_width_mismatch(self):
        with pytest.raises(ValueError):
            VectorClock((1,)).meet(VectorClock((1, 2)))

    def test_incremented_is_copy(self):
        a = VectorClock((1, 1))
        b = a.incremented(0)
        assert a.components == (1, 1)
        assert b.components == (2, 1)

    def test_sum_is_level(self):
        assert VectorClock((2, 3, 1)).sum() == 6

    def test_iteration_and_indexing(self):
        a = VectorClock((4, 5))
        assert list(a) == [4, 5]
        assert a[1] == 5
        assert len(a) == 2

    def test_to_numpy(self):
        arr = VectorClock((1, 2)).to_numpy()
        assert arr.dtype == np.int64
        assert arr.tolist() == [1, 2]

    def test_repr(self):
        assert "1" in repr(VectorClock((1, 0)))


# ---------------------------------------------------------------------------
# MutableVectorClock
# ---------------------------------------------------------------------------


class TestMutableVectorClock:
    def test_zero_init_by_width(self):
        m = MutableVectorClock(3)
        assert list(m) == [0, 0, 0]

    def test_init_from_components(self):
        m = MutableVectorClock([1, 2])
        assert list(m) == [1, 2]

    def test_invalid_inits(self):
        with pytest.raises(ValueError):
            MutableVectorClock(0)
        with pytest.raises(ValueError):
            MutableVectorClock([-1, 0])

    def test_increment(self):
        m = MutableVectorClock(2)
        m.increment(1)
        m.increment(1)
        assert list(m) == [0, 2]

    def test_merge_is_in_place_join(self):
        m = MutableVectorClock([1, 5, 0])
        m.merge([3, 2, 0])
        assert list(m) == [3, 5, 0]

    def test_merge_accepts_immutable(self):
        m = MutableVectorClock([1, 0])
        m.merge(VectorClock((0, 7)))
        assert list(m) == [1, 7]

    def test_copy_from(self):
        m = MutableVectorClock(2)
        m.copy_from([4, 5])
        assert list(m) == [4, 5]

    def test_width_mismatch(self):
        m = MutableVectorClock(2)
        with pytest.raises(ValueError):
            m.merge([1])
        with pytest.raises(ValueError):
            m.copy_from([1, 2, 3])

    def test_snapshot_is_frozen(self):
        m = MutableVectorClock([1, 2])
        snap = m.snapshot()
        m.increment(0)
        assert snap.components == (1, 2)

    def test_setitem_validation(self):
        m = MutableVectorClock(2)
        m[0] = 5
        assert m[0] == 5
        with pytest.raises(ValueError):
            m[0] = -1

    def test_grow(self):
        m = MutableVectorClock([1, 2])
        m.grow(4)
        assert list(m) == [1, 2, 0, 0]
        with pytest.raises(ValueError):
            m.grow(1)

    def test_eq_across_types(self):
        assert MutableVectorClock([1, 2]) == VectorClock((1, 2))
        assert MutableVectorClock([1, 2]) == MutableVectorClock([1, 2])

    @given(clock_pairs)
    def test_merge_matches_functional_join(self, pair):
        a, b = pair
        m = MutableVectorClock(a)
        m.merge(b)
        assert tuple(m) == join(a, b)


# ---------------------------------------------------------------------------
# ClockArena (numpy bulk kernel)
# ---------------------------------------------------------------------------


class TestClockArena:
    def test_append_and_get(self):
        a = ClockArena(width=2, capacity=1)
        i = a.append((1, 0))
        j = a.append(VectorClock((2, 3)))
        assert i == 0 and j == 1
        assert a.get(0).components == (1, 0)
        assert a.get(1).components == (2, 3)
        assert len(a) == 2

    def test_capacity_doubles(self):
        a = ClockArena(width=1, capacity=1)
        for k in range(20):
            a.append((k,))
        assert [a.get(k)[0] for k in range(20)] == list(range(20))

    def test_get_out_of_range(self):
        a = ClockArena(width=2)
        with pytest.raises(IndexError):
            a.get(0)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            ClockArena(width=0)
        a = ClockArena(width=2)
        with pytest.raises(ValueError):
            a.append((1,))

    def test_view_is_readonly_and_live_rows_only(self):
        a = ClockArena(width=2, capacity=8)
        a.append((1, 2))
        v = a.view()
        assert v.shape == (1, 2)
        with pytest.raises(ValueError):
            v[0, 0] = 9

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    min_size=1, max_size=30),
           st.tuples(st.integers(0, 9), st.integers(0, 9)))
    @settings(max_examples=50)
    def test_all_leq_matches_scalar(self, rows, probe):
        a = ClockArena(width=2)
        for r in rows:
            a.append(r)
        mask = a.all_leq(probe)
        expected = [leq(r, probe) for r in rows]
        assert mask.tolist() == expected

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    min_size=1, max_size=30),
           st.tuples(st.integers(0, 9), st.integers(0, 9)))
    @settings(max_examples=50)
    def test_all_geq_matches_scalar(self, rows, probe):
        a = ClockArena(width=2)
        for r in rows:
            a.append(r)
        assert a.all_geq(probe).tolist() == [leq(probe, r) for r in rows]

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
                    min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_pairwise_leq_matches_scalar(self, rows):
        a = ClockArena(width=3)
        for r in rows:
            a.append(r)
        m = a.pairwise_leq()
        for i, ri in enumerate(rows):
            for j, rj in enumerate(rows):
                assert m[i, j] == leq(ri, rj)
