"""TreeClock property tests: flat-equivalence over Algorithm-A-shaped ops.

The tree clock (``repro.core.treeclock``) must be bit-for-bit
indistinguishable from :class:`~repro.core.vectorclock.MutableVectorClock`
on the *visible* components under every operation sequence Algorithm A can
produce.  These tests drive both backends with the same randomized op
soups (shadow testing), check structural invariants after every step, and
close with message-level parity of whole executions run on each backend.

``TreeClock.check_preconditions`` is switched on for the duration of the
module so the O(n) ``copy_from`` precondition is verified at every call.
"""

from __future__ import annotations

import random

import pytest

from repro.core.algorithm_a import AlgorithmA
from repro.core.treeclock import TreeClock
from repro.core.vectorclock import (
    AUTO_TREE_THRESHOLD,
    CLOCK_BACKENDS,
    MutableVectorClock,
    VectorClock,
    make_thread_clock,
    make_var_clock,
    resolve_clock_backend,
)
from repro.sched import FixedScheduler, RandomScheduler, run_program
from repro.workloads import (
    LANDING_OBSERVED_SCHEDULE,
    XYZ_OBSERVED_SCHEDULE,
    landing_controller,
    producer_consumer,
    racy_counter,
    transfer_program,
    xyz_program,
)


@pytest.fixture(autouse=True)
def _strict_preconditions():
    old = TreeClock.check_preconditions
    TreeClock.check_preconditions = True
    yield
    TreeClock.check_preconditions = old


# -- shadow harness: every tree clock mirrored by a flat clock ----------------


class _Shadowed:
    """A TreeClock and a MutableVectorClock driven in lockstep."""

    def __init__(self, width: int, root=None):
        self.tree = TreeClock(width, root=root)
        self.flat = MutableVectorClock(width)

    def increment(self, j: int) -> None:
        self.tree.increment(j)
        self.flat.increment(j)

    def merge(self, other: "_Shadowed") -> None:
        self.tree.merge(other.tree)
        self.flat.merge(other.flat)

    def copy_from(self, other: "_Shadowed") -> None:
        self.tree.copy_from(other.tree)
        self.flat.copy_from(other.flat)

    def assert_agrees(self) -> None:
        self.tree.check_invariants()
        assert list(self.tree) == list(self.flat), (
            f"tree {list(self.tree)} != flat {list(self.flat)}"
        )


def _run_soup(n_threads, n_vars, n_ops, seed, write_prob=0.5,
              relevant_prob=0.5, locality=0.0):
    """Drive shadowed clocks through a random Algorithm-A-shaped op soup.

    Mirrors ``AlgorithmA._process`` exactly: a *relevant* event increments
    first; a write does ``vi.merge(va); va.copy_from(vi); vw.copy_from(vi)``
    and a read does ``vi.merge(vw); va.merge(vi)``.  ``locality`` biases
    each thread toward a home variable (the regime where subtree skipping
    pays off).
    """
    rng = random.Random(seed)
    threads = [_Shadowed(n_threads, root=i) for i in range(n_threads)]
    access = [_Shadowed(n_threads) for _ in range(n_vars)]
    write = [_Shadowed(n_threads) for _ in range(n_vars)]
    for _ in range(n_ops):
        t = rng.randrange(n_threads)
        if locality and rng.random() < locality:
            x = t % n_vars
        else:
            x = rng.randrange(n_vars)
        vi, va, vw = threads[t], access[x], write[x]
        if rng.random() < relevant_prob:
            vi.increment(t)
        if rng.random() < write_prob:
            vi.merge(va)
            va.copy_from(vi)
            vw.copy_from(vi)
        else:
            vi.merge(vw)
            va.merge(vi)
        vi.assert_agrees()
        va.assert_agrees()
        vw.assert_agrees()
    return threads, access, write


class TestRandomOpSoups:
    @pytest.mark.parametrize("seed", range(12))
    def test_small_soups_agree(self, seed):
        _run_soup(n_threads=4, n_vars=3, n_ops=400, seed=seed)

    @pytest.mark.parametrize("write_prob", [0.05, 0.5, 0.95])
    @pytest.mark.parametrize("n_threads", [2, 8, 64])
    def test_shapes_across_write_ratios(self, n_threads, write_prob):
        _run_soup(n_threads=n_threads, n_vars=max(2, n_threads // 2),
                  n_ops=600, seed=write_prob * 100 + n_threads,
                  write_prob=write_prob)

    def test_high_locality_soup(self):
        # the tree's fast-path regime: threads mostly touch a home variable
        _run_soup(n_threads=16, n_vars=16, n_ops=1500, seed=7,
                  locality=0.95)

    def test_mostly_irrelevant_soup(self):
        # irrelevant accesses merge clocks without ticking — the case that
        # breaks component-value versioning and motivated internal epochs
        _run_soup(n_threads=8, n_vars=4, n_ops=800, seed=11,
                  relevant_prob=0.1)


class TestDegenerateShapes:
    def test_chain_deep_tree(self):
        """Token passed around a ring: knowledge chains thread -> thread."""
        n = 32
        threads = [_Shadowed(n, root=i) for i in range(n)]
        token_a = _Shadowed(n)
        token_w = _Shadowed(n)
        for lap in range(3):
            for t in range(n):
                vi = threads[t]
                vi.increment(t)
                vi.merge(token_w)
                token_a.merge(vi)
                vi.merge(token_a)
                token_a.copy_from(vi)
                token_w.copy_from(vi)
                for c in (vi, token_a, token_w):
                    c.assert_agrees()
        assert threads[n - 1].tree.tree_depth() >= 1
        assert list(threads[n - 1].tree)[0] >= 1

    def test_star_wide_tree(self):
        """Hub thread merges every spoke: one node fans out wide."""
        n = 64
        hub = _Shadowed(n, root=0)
        spokes = [_Shadowed(n, root=i) for i in range(1, n)]
        shared_a = _Shadowed(n)
        shared_w = _Shadowed(n)
        for s in spokes:
            s.increment(s.tree._root[0])
            s.merge(shared_a)
            shared_a.copy_from(s)
            shared_w.copy_from(s)
        hub.increment(0)
        hub.merge(shared_w)
        shared_a.merge(hub)
        hub.assert_agrees()
        shared_a.assert_agrees()
        assert list(hub.tree) == [1] * n

    def test_single_thread_degenerate(self):
        one = _Shadowed(1, root=0)
        va, vw = _Shadowed(1), _Shadowed(1)
        for _ in range(50):
            one.increment(0)
            one.merge(va)
            va.copy_from(one)
            vw.copy_from(one)
            one.assert_agrees()
        assert list(one.tree) == [50]

    def test_grow_mid_stream(self):
        a = _Shadowed(2, root=0)
        b = _Shadowed(2, root=1)
        va = _Shadowed(2)
        a.increment(0)
        va.copy_from(a)
        for c in (a, b, va):
            c.tree.grow(4)
            c.flat.grow(4)
        b.increment(1)
        b.merge(va)
        va.copy_from(b)
        for c in (a, b, va):
            c.assert_agrees()
        assert list(b.tree) == [1, 1, 0, 0]


class TestTreeClockAPI:
    def test_flat_protocol(self):
        tc = TreeClock(3, root=1)
        tc.increment(1)
        assert tc.width == 3 and len(tc) == 3
        assert tc[1] == 1 and list(tc) == [0, 1, 0]
        assert tc == [0, 1, 0] and tc == (0, 1, 0)
        assert tc == VectorClock((0, 1, 0))
        mvc = MutableVectorClock(3)
        mvc.increment(1)
        assert tc == mvc
        assert tc.snapshot() == VectorClock((0, 1, 0))
        assert "TC(root=1" in repr(tc)

    def test_only_owner_increments(self):
        tc = TreeClock(3, root=1)
        with pytest.raises(ValueError):
            tc.increment(0)
        with pytest.raises(ValueError):
            TreeClock(3).increment(0)  # rootless never ticks

    def test_merge_rejects_raw_sequences(self):
        tc = TreeClock(2, root=0)
        with pytest.raises(TypeError):
            tc.merge([1, 1])
        with pytest.raises(TypeError):
            tc.copy_from([1, 1])

    def test_merge_width_mismatch(self):
        wide = TreeClock(3, root=0)
        narrow = TreeClock(2, root=1)
        with pytest.raises(ValueError):
            wide.merge(narrow)
        narrow.merge(wide)  # growing direction is fine
        assert narrow.width == 3

    def test_copy_from_precondition_enforced(self):
        a = TreeClock(2, root=0)
        b = TreeClock(2, root=1)
        a.increment(0)
        b.copy_from(a)  # [0,0] <= [1,0]: fine
        b.increment(1)
        with pytest.raises(ValueError):
            b.copy_from(a)  # b = [1,1] !<= a = [1,0]

    def test_merge_fast_flag(self):
        a = TreeClock(4, root=0)
        b = TreeClock(4, root=1)
        b.increment(1)
        assert a.merge(b) is False   # learned something
        assert a.merge(b) is True    # nothing new: O(1) skip
        va = TreeClock(4)
        assert va.merge(b) is False
        assert va.merge(b) is True

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TreeClock(0)
        with pytest.raises(ValueError):
            TreeClock(2, root=5)


class TestBackendSeam:
    def test_resolve(self):
        assert resolve_clock_backend("flat", 256) == "flat"
        assert resolve_clock_backend("tree", 2) == "tree"
        assert resolve_clock_backend("auto", AUTO_TREE_THRESHOLD) == "tree"
        assert resolve_clock_backend("auto", AUTO_TREE_THRESHOLD - 1) == "flat"
        with pytest.raises(ValueError):
            resolve_clock_backend("quantum", 2)

    def test_factories(self):
        assert isinstance(make_thread_clock("tree", 4, 1), TreeClock)
        assert isinstance(make_thread_clock("flat", 4, 1), MutableVectorClock)
        assert isinstance(make_var_clock("tree", 4), TreeClock)
        assert make_var_clock("tree", 4)._root is None
        assert isinstance(make_var_clock("flat", 4), MutableVectorClock)
        assert set(CLOCK_BACKENDS) == {"flat", "tree", "auto"}

    def test_algorithm_a_exposes_backend(self):
        assert AlgorithmA(2, {"x"}, clock_backend="tree").clock_backend == "tree"
        assert AlgorithmA(2, {"x"}).clock_backend == "flat"
        with pytest.raises(ValueError):
            AlgorithmA(2, {"x"}, clock_backend="nope")


# -- message-level parity: whole executions on each backend -------------------


_WORKLOADS = [
    ("landing", lambda: landing_controller(),
     lambda: FixedScheduler(LANDING_OBSERVED_SCHEDULE)),
    ("xyz", lambda: xyz_program(),
     lambda: FixedScheduler(XYZ_OBSERVED_SCHEDULE)),
    ("racy_counter", lambda: racy_counter(increments=20),
     lambda: RandomScheduler(3)),
    ("prodcons", lambda: producer_consumer(items=8),
     lambda: RandomScheduler(5)),
    ("transfer", lambda: transfer_program(),
     lambda: RandomScheduler(9)),
]


class TestExecutionParity:
    @pytest.mark.parametrize("name,prog,sched", _WORKLOADS,
                             ids=[w[0] for w in _WORKLOADS])
    def test_messages_identical_across_backends(self, name, prog, sched):
        flat = run_program(prog(), sched(), clock_backend="flat")
        tree = run_program(prog(), sched(), clock_backend="tree")
        assert [m.event.eid for m in flat.messages] == \
               [m.event.eid for m in tree.messages]
        assert [tuple(m.clock) for m in flat.messages] == \
               [tuple(m.clock) for m in tree.messages]
        assert flat.final_store == tree.final_store
        fa, ta = flat.algorithm, tree.algorithm
        for i in range(fa.n_threads):
            assert fa.thread_clock(i) == ta.thread_clock(i)
        for x in sorted(fa.variables):
            assert fa.access_clock(x) == ta.access_clock(x)
            assert fa.write_clock(x) == ta.write_clock(x)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_schedules_agree(self, seed):
        flat = run_program(racy_counter(increments=15),
                           RandomScheduler(seed), clock_backend="flat")
        tree = run_program(racy_counter(increments=15),
                           RandomScheduler(seed), clock_backend="tree")
        assert [tuple(m.clock) for m in flat.messages] == \
               [tuple(m.clock) for m in tree.messages]

    def test_auto_backend_runs(self):
        ex = run_program(racy_counter(increments=5), RandomScheduler(0),
                         clock_backend="auto")
        assert ex.algorithm.clock_backend in ("flat", "tree")
        assert ex.messages
