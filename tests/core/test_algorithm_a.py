"""Tests for Algorithm A: each step, the formal requirements (a)-(c), and
the exact clock values of the paper's Fig. 6."""

import pytest

from repro.core.algorithm_a import AlgorithmA, all_accesses, relevant_writes
from repro.core.computation import Computation
from repro.core.events import EventKind


class TestSteps:
    def test_step1_relevant_increments_own_component(self):
        a = AlgorithmA(2)
        a.on_write(0, "x", 1)
        assert a.thread_clock(0) == (1, 0)
        a.on_write(0, "x", 2)
        assert a.thread_clock(0) == (2, 0)

    def test_irrelevant_event_does_not_increment(self):
        a = AlgorithmA(2)  # default relevance: writes
        a.on_read(0, "x")
        a.on_internal(0)
        assert a.thread_clock(0) == (0, 0)

    def test_step2_read_merges_write_clock_not_access_clock(self):
        a = AlgorithmA(2)
        a.on_write(0, "x", 1)          # V0=(1,0); Vw_x=Va_x=(1,0)
        a.on_read(1, "x")              # V1 <- max(V1, Vw_x) = (1,0)
        assert a.thread_clock(1) == (1, 0)
        assert a.access_clock("x") == (1, 0)
        # the write clock must NOT absorb the reader's clock
        a.on_write(1, "y", 1)          # V1=(1,1) via y, unrelated to x
        a.on_read(1, "x")
        assert a.write_clock("x") == (1, 0)
        assert a.access_clock("x") == (1, 1)

    def test_reads_commute_through_access_clock_only(self):
        """Two readers of x stay concurrent (read-read permutable)."""
        a = AlgorithmA(2, relevance=all_accesses())
        m0 = a.on_read(0, "x")
        m1 = a.on_read(1, "x")
        assert m0.concurrent_with(m1)

    def test_step3_write_joins_access_clock(self):
        a = AlgorithmA(2)
        a.on_write(0, "x", 1)
        a.on_read(1, "x")
        a.on_write(1, "x", 2)          # write sees reader's access clock
        assert a.write_clock("x") == a.access_clock("x") == a.thread_clock(1)

    def test_write_read_write_chain_orders_messages(self):
        a = AlgorithmA(3)
        m1 = a.on_write(0, "x", 1)
        a.on_read(1, "x")
        m2 = a.on_write(1, "y", 1)
        a.on_read(2, "y")
        m3 = a.on_write(2, "z", 1)
        assert m1.causally_precedes(m2)
        assert m2.causally_precedes(m3)
        assert m1.causally_precedes(m3)  # transitivity through clocks

    def test_invariant_vw_leq_va(self):
        """§3.2: V^w_x <= V^a_x at any time."""
        a = AlgorithmA(2)
        ops = [(0, "w", "x"), (1, "r", "x"), (1, "w", "y"), (0, "r", "y"),
               (1, "w", "x"), (0, "r", "x"), (0, "w", "y")]
        from repro.core.vectorclock import leq
        for t, k, v in ops:
            if k == "w":
                a.on_write(t, v, 0)
            else:
                a.on_read(t, v)
            for var in a.variables:
                assert leq(a.write_clock(var), a.access_clock(var))


class TestFig6:
    def test_exact_paper_clocks(self):
        """e1..e4 of Fig. 6 get clocks (1,0), (1,1), (2,0), (1,2)."""
        a = AlgorithmA(2, relevance=relevant_writes({"x", "y", "z"}))
        a.on_read(0, "x", -1)
        e1 = a.on_write(0, "x", 0)
        a.on_read(1, "x", 0)
        e2 = a.on_write(1, "z", 1)
        a.on_read(0, "x", 0)
        a.on_read(1, "x", 0)
        e4 = a.on_write(1, "x", 1)
        e3 = a.on_write(0, "y", 1)
        assert tuple(e1.clock) == (1, 0)
        assert tuple(e2.clock) == (1, 1)
        assert tuple(e3.clock) == (2, 0)
        assert tuple(e4.clock) == (1, 2)
        # the causal relations drawn in Fig. 6
        assert e1.causally_precedes(e2)
        assert e1.causally_precedes(e3)
        assert e1.causally_precedes(e4)
        assert e2.causally_precedes(e4)
        assert e2.concurrent_with(e3)
        assert e3.concurrent_with(e4)


class TestRelevance:
    def test_relevant_writes_filters_vars_and_reads(self):
        pred = relevant_writes({"x"})
        a = AlgorithmA(1, relevance=pred)
        a.on_write(0, "x", 1)
        a.on_write(0, "y", 1)
        a.on_read(0, "x")
        assert [m.event.var for m in a.emitted] == ["x"]

    def test_all_accesses_includes_reads(self):
        a = AlgorithmA(1, relevance=all_accesses({"x"}))
        a.on_read(0, "x")
        a.on_write(0, "x", 1)
        a.on_read(0, "y")
        kinds = [m.event.kind for m in a.emitted]
        assert kinds == [EventKind.READ, EventKind.WRITE]

    def test_default_relevance_every_write(self):
        a = AlgorithmA(1)
        a.on_write(0, "q", 1)
        a.on_internal(0)
        assert len(a.emitted) == 1

    def test_irrelevant_variables_still_shape_causality(self):
        """§2.3: irrelevant vars can influence ⊳ indirectly."""
        a = AlgorithmA(2, relevance=relevant_writes({"y", "z"}))
        my = a.on_write(0, "y", 1)
        a.on_write(0, "tmp", 1)     # irrelevant write
        a.on_read(1, "tmp")         # irrelevant read — carries causality
        mz = a.on_write(1, "z", 1)
        assert my.causally_precedes(mz)


class TestSink:
    def test_sink_receives_messages_in_order(self):
        got = []
        a = AlgorithmA(2, sink=got.append)
        a.on_write(0, "x", 1)
        a.on_write(1, "x", 2)
        assert [m.event.eid for m in got] == [(0, 1), (1, 1)]
        assert got == a.emitted

    def test_collect_false_keeps_emitted_empty(self):
        got = []
        a = AlgorithmA(1, sink=got.append, collect=False)
        a.on_write(0, "x", 1)
        assert a.emitted == []
        assert len(got) == 1

    def test_emit_index_monotone(self):
        a = AlgorithmA(2)
        a.on_write(0, "x", 1)
        a.on_write(1, "y", 1)
        a.on_write(0, "x", 2)
        assert [m.emit_index for m in a.emitted] == [0, 1, 2]


class TestDynamicGrowth:
    def test_static_mode_rejects_unknown_thread(self):
        a = AlgorithmA(2)
        with pytest.raises(IndexError):
            a.on_write(2, "x", 1)

    def test_dynamic_threads_grow_clocks(self):
        a = AlgorithmA(1, dynamic_threads=True)
        a.on_write(0, "x", 1)
        m = a.on_write(3, "x", 2)
        assert a.n_threads == 4
        assert len(m.clock) == 4
        # the earlier write is causally before (clock component carried over)
        assert m.clock[0] == 1

    def test_dynamic_growth_preserves_order(self):
        a = AlgorithmA(1, dynamic_threads=True)
        m1 = a.on_write(0, "x", 1)
        m2 = a.on_write(2, "x", 2)
        # widths differ; compare via Theorem 3 on the common prefix semantics:
        assert m2.clock[0] >= 1  # knows about m1

    def test_variables_registered_lazily(self):
        a = AlgorithmA(1)
        assert a.variables == frozenset()
        a.on_read(0, "v")
        assert a.variables == frozenset({"v"})
        assert a.write_clock("unseen") == (0,)

    def test_event_counts(self):
        a = AlgorithmA(2)
        a.on_read(0, "x")
        a.on_write(0, "x", 1)
        a.on_internal(1)
        assert a.events_of(0) == 2
        assert a.events_of(1) == 1


class TestSynchronization:
    def test_lock_ops_are_write_weight(self):
        """§3.1: acquire/release write the lock variable, so critical
        sections are causally ordered."""
        a = AlgorithmA(2, relevance=relevant_writes({"c"}))
        a.on_acquire(0, "L")
        m1 = a.on_write(0, "c", 1)
        a.on_release(0, "L")
        a.on_acquire(1, "L")
        m2 = a.on_write(1, "c", 2)
        a.on_release(1, "L")
        assert m1.causally_precedes(m2)

    def test_notify_wake_install_edge(self):
        a = AlgorithmA(2, relevance=relevant_writes({"d"}))
        m1 = a.on_write(0, "d", 42)
        a.on_notify(0, "cond")
        a.on_wake(1, "cond")
        m2 = a.on_write(1, "d", 43)
        assert m1.causally_precedes(m2)

    def test_without_sync_events_writes_stay_concurrent(self):
        a = AlgorithmA(2, relevance=relevant_writes({"p", "q"}))
        m1 = a.on_write(0, "p", 1)
        m2 = a.on_write(1, "q", 1)
        assert m1.concurrent_with(m2)


class TestSyncOnlyClocks:
    def test_data_accesses_do_not_couple_clocks(self):
        a = AlgorithmA(2, relevance=all_accesses(), sync_only_clocks=True)
        m1 = a.on_write(0, "x", 1)
        m2 = a.on_write(1, "x", 2)
        assert m1.concurrent_with(m2)  # would be ordered under full mode

    def test_sync_events_still_couple_clocks(self):
        a = AlgorithmA(2, relevance=all_accesses(), sync_only_clocks=True)
        m1 = a.on_write(0, "x", 1)
        a.on_release(0, "L")
        a.on_acquire(1, "L")
        m2 = a.on_write(1, "x", 2)
        assert m1.causally_precedes(m2)


class TestRequirements:
    """The formal requirements (a), (b), (c) of Section 3, validated against
    the §2.2 oracle after *every* event of a scripted execution."""

    OPS = [
        (0, "w", "x"), (1, "r", "x"), (1, "w", "y"), (0, "r", "y"),
        (0, "w", "z"), (1, "r", "z"), (2, "w", "x"), (0, "r", "x"),
        (2, "i", None), (1, "w", "x"), (2, "r", "y"), (0, "w", "y"),
    ]

    def _replay(self):
        from repro.core.computation import execution_from_specs

        events = execution_from_specs(self.OPS)
        algo = AlgorithmA(3)
        comp_events = []
        for e in events:
            comp_events.append(e)
            if e.kind is EventKind.READ:
                algo.on_read(e.thread, e.var)
            elif e.kind is EventKind.WRITE:
                algo.on_write(e.thread, e.var, e.value)
            else:
                algo.on_internal(e.thread)
            yield e, algo, Computation(comp_events)

    def test_requirement_a(self):
        """V_i[j] = number of relevant events of t_j causally preceding the
        latest event of t_i (inclusive for j=i)."""
        for e, algo, comp in self._replay():
            vi = algo.thread_clock(e.thread)
            for j in range(3):
                expected = comp.count_relevant_preceding(j, e, inclusive=True)
                assert vi[j] == expected, (e, j, vi)

    def test_requirement_b(self):
        """V^a_x[j] counts relevant events of t_j preceding (or equal to)
        the most recent access of x."""
        for e, algo, comp in self._replay():
            for x in algo.variables:
                pos = comp.last_access_position(x, comp.position(e), write_only=False)
                va = algo.access_clock(x)
                if pos is None:
                    assert va == (0, 0, 0)
                    continue
                last = comp.events[pos]
                for j in range(3):
                    expected = comp.count_relevant_preceding(j, last, inclusive=True)
                    assert va[j] == expected, (e, x, j)

    def test_requirement_c(self):
        """V^w_x[j] counts relevant events of t_j preceding (or equal to)
        the most recent write of x."""
        for e, algo, comp in self._replay():
            for x in algo.variables:
                pos = comp.last_access_position(x, comp.position(e), write_only=True)
                vw = algo.write_clock(x)
                if pos is None:
                    assert vw == (0, 0, 0)
                    continue
                last = comp.events[pos]
                for j in range(3):
                    expected = comp.count_relevant_preceding(j, last, inclusive=True)
                    assert vw[j] == expected, (e, x, j)
