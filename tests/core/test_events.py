"""Tests for the event/message model."""

import pytest

from repro.core.events import Envelope, Event, EventKind, Message
from repro.core.vectorclock import VectorClock


class TestEventKind:
    def test_internal_is_not_access(self):
        assert not EventKind.INTERNAL.is_access
        assert not EventKind.INTERNAL.is_write

    def test_read_is_access_not_write(self):
        assert EventKind.READ.is_access
        assert EventKind.READ.is_read
        assert not EventKind.READ.is_write

    def test_write_kinds(self):
        for k in (EventKind.WRITE, EventKind.ACQUIRE, EventKind.RELEASE,
                  EventKind.NOTIFY, EventKind.WAKE):
            assert k.is_access, k
            assert k.is_write, k
            assert not k.is_read, k


class TestEvent:
    def test_eid_matches_paper_notation(self):
        e = Event(thread=1, seq=3, kind=EventKind.WRITE, var="x", value=7)
        assert e.eid == (1, 3)

    def test_seq_is_one_based(self):
        with pytest.raises(ValueError):
            Event(thread=0, seq=0, kind=EventKind.INTERNAL)

    def test_negative_thread_rejected(self):
        with pytest.raises(ValueError):
            Event(thread=-1, seq=1, kind=EventKind.INTERNAL)

    def test_access_requires_var(self):
        with pytest.raises(ValueError):
            Event(thread=0, seq=1, kind=EventKind.READ)

    def test_internal_rejects_var(self):
        with pytest.raises(ValueError):
            Event(thread=0, seq=1, kind=EventKind.INTERNAL, var="x")

    def test_pretty_uses_label(self):
        e = Event(thread=0, seq=2, kind=EventKind.WRITE, var="x", value=1,
                  relevant=True, label="x=1")
        assert "x=1" in e.pretty()
        assert "T1" in e.pretty()

    def test_pretty_without_label(self):
        e = Event(thread=1, seq=1, kind=EventKind.READ, var="y", value=3)
        s = e.pretty()
        assert "R" in s and "y" in s

    def test_frozen(self):
        e = Event(thread=0, seq=1, kind=EventKind.INTERNAL)
        with pytest.raises(AttributeError):
            e.thread = 2


class TestMessage:
    def _msg(self, thread, seq, clock, var="x", value=0):
        return Message(
            event=Event(thread=thread, seq=seq, kind=EventKind.WRITE,
                        var=var, value=value, relevant=True),
            thread=thread,
            clock=VectorClock(clock),
        )

    def test_thread_consistency_enforced(self):
        e = Event(thread=0, seq=1, kind=EventKind.WRITE, var="x", relevant=True)
        with pytest.raises(ValueError):
            Message(event=e, thread=1, clock=VectorClock((1, 0)))

    def test_theorem3_test_uses_sender_index(self):
        """The paper: e ⊳ e' iff V[i] <= V'[i] — the *second* index is the
        sender's i, not i' ("no typo")."""
        e1 = self._msg(0, 1, (1, 0))
        e4 = self._msg(1, 2, (1, 2))
        # e1 ⊳ e4 because V1[0]=1 <= V4[0]=1
        assert e1.causally_precedes(e4)
        assert not e4.causally_precedes(e1)

    def test_concurrent_messages(self):
        e2 = self._msg(1, 1, (1, 1), var="z")
        e3 = self._msg(0, 2, (2, 0), var="y")
        assert e2.concurrent_with(e3)
        assert e3.concurrent_with(e2)

    def test_self_never_precedes_itself(self):
        m = self._msg(0, 1, (1, 0))
        assert not m.causally_precedes(m)

    def test_same_thread_ordered_by_component(self):
        a = self._msg(0, 1, (1, 0))
        b = self._msg(0, 4, (2, 1))
        assert a.causally_precedes(b)
        assert not b.causally_precedes(a)

    def test_json_roundtrip(self):
        m = self._msg(1, 3, (2, 5), var="radio", value=0)
        back = Message.from_json(m.to_json())
        assert back.event.eid == m.event.eid
        assert back.clock == m.clock
        assert back.event.var == "radio"
        assert back.event.value == 0
        assert back.event.relevant

    def test_json_roundtrip_preserves_emit_index(self):
        e = Event(thread=0, seq=1, kind=EventKind.WRITE, var="x", value=1,
                  relevant=True, label="x=1")
        m = Message(event=e, thread=0, clock=VectorClock((1,)), emit_index=9)
        back = Message.from_json(m.to_json())
        assert back.emit_index == 9
        assert back.event.label == "x=1"

    def test_pretty_mentions_clock(self):
        m = self._msg(0, 1, (1, 0))
        assert "(1, 0)" in m.pretty()

    def test_emit_index_not_compared(self):
        e = Event(thread=0, seq=1, kind=EventKind.WRITE, var="x", relevant=True)
        a = Message(event=e, thread=0, clock=VectorClock((1,)), emit_index=1)
        b = Message(event=e, thread=0, clock=VectorClock((1,)), emit_index=2)
        assert a == b


class TestEnvelope:
    def _msg(self):
        e = Event(thread=0, seq=2, kind=EventKind.WRITE, var="x", value=7,
                  relevant=True)
        return Message(event=e, thread=0, clock=VectorClock((2, 1)))

    def test_wrap_checksum_verifies(self):
        env = Envelope.wrap(self._msg(), seq=4)
        assert env.ok
        assert env.seq == 4
        assert env.thread == 0

    def test_tampered_payload_detected(self):
        import dataclasses

        env = Envelope.wrap(self._msg(), seq=0)
        bad_event = dataclasses.replace(env.message.event, value=999)
        bad = Envelope(
            message=dataclasses.replace(env.message, event=bad_event),
            seq=env.seq, checksum=env.checksum)
        assert not bad.ok

    def test_json_roundtrip_preserves_checksum(self):
        env = Envelope.wrap(self._msg(), seq=3)
        back = Envelope.from_json(env.to_json())
        assert back.ok
        assert back.seq == 3
        assert back.message == env.message

    def test_from_json_rejects_non_envelope(self):
        with pytest.raises(ValueError, match="envelope"):
            Envelope.from_json('{"type": "header"}')

    def test_delivery_index_uses_relevant_position(self):
        m = self._msg()
        assert m.delivery_index == (0, 2)
