"""§3.2 — the distributed-systems interpretation is equivalent to Algorithm A.

The paper argues informally ("the answer to this question is: almost") that
Algorithm A can be recovered from standard vector-clock message passing with
one twist: reads trigger a *hidden* request from the access process to the
write process.  These tests mechanize the claim: the actor simulation and
Algorithm A produce identical clocks on arbitrary executions, and removing
the hiddenness (the control experiment) breaks read-read permutability.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm_a import AlgorithmA, all_accesses
from repro.core.computation import execution_from_specs
from repro.core.distributed import DistributedInterpretation
from repro.workloads import random_execution_specs

specs_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.sampled_from(["r", "w", "i"]),
        st.sampled_from(["x", "y"]),
    ).map(lambda t: (t[0], t[1], None if t[1] == "i" else t[2])),
    min_size=1,
    max_size=16,
)


def drive_both(specs, n_threads=3, relevance=None):
    algo = AlgorithmA(n_threads, relevance=relevance)
    dist = DistributedInterpretation(n_threads, relevance=relevance)
    events = execution_from_specs(specs)
    for e in events:
        algo.process(e.thread, e.kind, e.var, e.value)
        dist.process(e.thread, e.kind, e.var, e.value)
    return algo, dist, events


class TestEquivalence:
    @given(specs_strategy)
    @settings(max_examples=120, deadline=None)
    def test_thread_clocks_identical(self, specs):
        algo, dist, _ = drive_both(specs)
        for i in range(3):
            assert algo.thread_clock(i) == dist.thread_clock(i)

    @given(specs_strategy)
    @settings(max_examples=120, deadline=None)
    def test_variable_clocks_identical(self, specs):
        algo, dist, _ = drive_both(specs)
        for x in ("x", "y"):
            assert algo.access_clock(x) == dist.access_clock(x), x
            assert algo.write_clock(x) == dist.write_clock(x), x

    @given(specs_strategy)
    @settings(max_examples=80, deadline=None)
    def test_emitted_messages_identical(self, specs):
        algo, dist, _ = drive_both(specs)
        assert [(m.event.eid, tuple(m.clock)) for m in algo.emitted] == [
            (m.event.eid, tuple(m.clock)) for m in dist.emitted]

    @given(specs_strategy)
    @settings(max_examples=60, deadline=None)
    def test_equivalence_with_all_accesses_relevance(self, specs):
        algo, dist, _ = drive_both(specs, relevance=all_accesses())
        assert [(m.event.eid, tuple(m.clock)) for m in algo.emitted] == [
            (m.event.eid, tuple(m.clock)) for m in dist.emitted]

    def test_equivalence_at_scale(self):
        rng = random.Random(11)
        specs = random_execution_specs(rng, n_threads=4, n_vars=3,
                                       n_events=300)
        algo = AlgorithmA(4)
        dist = DistributedInterpretation(4)
        for e in execution_from_specs(specs):
            algo.process(e.thread, e.kind, e.var, e.value)
            dist.process(e.thread, e.kind, e.var, e.value)
        for i in range(4):
            assert algo.thread_clock(i) == dist.thread_clock(i)


class TestProtocolShape:
    def test_write_exchange_is_fig3_right(self):
        d = DistributedInterpretation(2)
        d.on_write(0, "x", 1)
        arrows = [(e.sender, e.receiver, e.kind, e.hidden) for e in d.exchanges]
        assert arrows == [
            ("t0", "xa", "request", False),
            ("xa", "xw", "request", False),
            ("xw", "t0", "ack", False),
        ]

    def test_read_exchange_is_fig3_left_with_hidden_message(self):
        d = DistributedInterpretation(2)
        d.on_write(0, "x", 1)
        d.exchanges.clear()
        d.on_read(1, "x")
        arrows = [(e.sender, e.receiver, e.kind, e.hidden) for e in d.exchanges]
        assert arrows == [
            ("t1", "xa", "request", False),
            ("xa", "xw", "request", True),   # the dotted arrow of Fig. 3
            ("xw", "t1", "ack", False),
        ]

    def test_hidden_message_carries_no_clock(self):
        d = DistributedInterpretation(2)
        d.on_read(0, "x")
        hidden = [e for e in d.exchanges if e.hidden]
        assert len(hidden) == 1 and hidden[0].clock is None

    def test_internal_event_sends_nothing(self):
        d = DistributedInterpretation(2)
        d.on_internal(0)
        assert d.exchanges == []

    def test_invalid_thread(self):
        d = DistributedInterpretation(2)
        with pytest.raises(IndexError):
            d.on_write(5, "x", 1)
        with pytest.raises(ValueError):
            DistributedInterpretation(0)


class TestWhyHiddenMatters:
    def test_reads_stay_concurrent_thanks_to_hiddenness(self):
        """Two reads of x by different threads are permutable — because the
        read request does not update xw's clock."""
        d = DistributedInterpretation(2, relevance=all_accesses())
        m0 = d.on_read(0, "x")
        m1 = d.on_read(1, "x")
        assert m0.concurrent_with(m1)

    def test_unhidden_variant_would_order_reads(self):
        """Control experiment: if the xa→xw request were a normal message
        (and the ack therefore carried it back), the second reader would
        depend on the first — exactly what the paper's hidden message
        avoids."""
        d = DistributedInterpretation(2, relevance=all_accesses())
        m0 = d.on_read(0, "x")
        # simulate the non-hidden protocol by hand for the second read:
        # xw would merge xa's clock (which knows about reader 0) before
        # acknowledging reader 1
        xa = d._access["x"]
        xw = d._write["x"]
        xw.clock.merge(tuple(xa.clock))
        m1 = d.on_read(1, "x")
        assert m0.causally_precedes(m1)  # permutability lost
