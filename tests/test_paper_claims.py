"""The paper's claims, one executable test each.

This module is the reproduction's table of contents: every §-level claim of
Roşu & Sen (IPDPS/PADTAD 2004) asserted in one place, with the quote it
corresponds to.  Deeper coverage of each claim lives in the per-module
suites; EXPERIMENTS.md records the measured numbers.
"""

import random

import pytest

from repro.analysis import detect, predict
from repro.core import AlgorithmA, Computation, all_accesses, relevant_writes
from repro.core.distributed import DistributedInterpretation
from repro.core.vectorclock import lt
from repro.lattice import ComputationLattice, LevelByLevelBuilder
from repro.logic import Monitor
from repro.sched import FixedScheduler, RandomScheduler, run_program
from repro.workloads import (
    LANDING_OBSERVED_SCHEDULE,
    LANDING_PROPERTY,
    LANDING_VARS,
    XYZ_OBSERVED_SCHEDULE,
    XYZ_PROPERTY,
    landing_controller,
    random_program,
    xyz_program,
)


class TestSection1:
    def test_predicts_errors_from_successful_executions(self):
        """'one can predict errors that can potentially occur in other
        possible runs of the multithreaded program' — the headline."""
        ex = run_program(landing_controller(),
                         FixedScheduler(LANDING_OBSERVED_SCHEDULE))
        assert detect(ex, LANDING_PROPERTY).ok          # successful run
        assert predict(ex, LANDING_PROPERTY).violations  # bug found anyway

    def test_no_source_needed_for_callers(self):
        """'A bytecode instrumentation package is used, so the Java source
        code of the tested programs is not necessary' — our analogue: the
        AST instrumentor rewrites the target function only; callers and
        helpers run unmodified."""
        from repro.instrument import InstrumentedRuntime, instrument_function
        from tests.instrument.test_rewriter import _uses_helper

        rt = InstrumentedRuntime({"x": 0})
        f = instrument_function(_uses_helper, {"x"}, rt)
        assert f() == 42 and rt.store["x"] == 42


class TestSection2:
    def test_read_read_permutable(self):
        """'multiple consecutive reads of the same variable can be permuted
        without changing the actual computation' (§1/§2.2)."""
        a = AlgorithmA(2, relevance=all_accesses())
        m0 = a.on_read(0, "x")
        m1 = a.on_read(1, "x")
        assert m0.concurrent_with(m1)

    def test_write_involved_pairs_ordered(self):
        """'if two events access a shared variable x and one of them is a
        write, then the most recent one causally depends on the former'."""
        from repro.core.computation import execution_from_specs

        for kinds in (("w", "r"), ("r", "w"), ("w", "w")):
            comp = Computation(execution_from_specs(
                [(0, kinds[0], "x"), (1, kinds[1], "x")]))
            assert comp.precedes((0, 1), (1, 1)), kinds

    def test_dynamic_threads_supported(self):
        """'can be easily extended to systems consisting of a variable
        number of threads' (§2)."""
        from repro.sched import Join, Program, Spawn, Write

        def child():
            yield Write("c", 1)

        def parent():
            idx = yield Spawn(child)
            yield Join(idx)
            yield Write("p", 1)

        p = Program(initial={"p": 0, "c": 0}, threads=[parent])
        ex = run_program(p, FixedScheduler([], strict=False))
        assert ex.n_threads == 2 and ex.final_store == {"p": 1, "c": 1}


class TestSection3:
    @pytest.mark.parametrize("seed", range(10))
    def test_theorem_3(self, seed):
        """'e ⊳ e' iff V[i] ≤ V'[i] iff V < V'' — against the independent
        §2.2 oracle."""
        program = random_program(random.Random(seed), n_threads=3,
                                 n_vars=3, ops_per_thread=5)
        ex = run_program(program, RandomScheduler(seed))
        comp = ex.computation()
        by = {m.event.eid: m for m in ex.messages}
        for a, b, truth in comp.relevant_pairs():
            assert by[a.eid].causally_precedes(by[b.eid]) == truth
            assert lt(tuple(by[a.eid].clock), tuple(by[b.eid].clock)) == truth

    def test_vw_leq_va_invariant(self):
        """'note that V^w_x ≤ V^a_x at any time' (§3.2)."""
        from repro.core.vectorclock import leq

        a = AlgorithmA(2)
        for t, k, v in [(0, "w", "x"), (1, "r", "x"), (1, "w", "y"),
                        (0, "r", "y"), (1, "w", "x")]:
            (a.on_write if k == "w" else a.on_read)(t, v, 0)
            for var in a.variables:
                assert leq(a.write_clock(var), a.access_clock(var))

    def test_synchronization_as_writes(self):
        """'locks are considered as shared variables and a write event is
        generated whenever a lock is acquired or released' (§3.1)."""
        a = AlgorithmA(2, relevance=relevant_writes({"c"}))
        a.on_acquire(0, "L")
        m1 = a.on_write(0, "c", 1)
        a.on_release(0, "L")
        a.on_acquire(1, "L")
        m2 = a.on_write(1, "c", 2)
        assert m1.causally_precedes(m2)

    def test_distributed_interpretation_almost(self):
        """§3.2: the message-passing interpretation with a hidden read
        request produces the same clocks as Algorithm A."""
        algo, dist = AlgorithmA(2), DistributedInterpretation(2)
        for t, k, v in [(0, "w", "x"), (1, "r", "x"), (1, "w", "y"),
                        (0, "r", "y"), (0, "w", "x")]:
            for impl in (algo, dist):
                (impl.on_write if k == "w" else impl.on_read)(t, v, 0)
        assert algo.thread_clock(0) == dist.thread_clock(0)
        assert algo.thread_clock(1) == dist.thread_clock(1)
        assert algo.write_clock("x") == dist.write_clock("x")


class TestSection4:
    def test_observed_sequence_is_one_run_of_the_lattice(self, xyz_execution):
        """'the observed sequence of events is just one such run'."""
        initial = {v: xyz_execution.initial_store[v] for v in ("x", "y", "z")}
        lat = ComputationLattice(2, initial, xyz_execution.messages)
        observed = tuple(m.event.eid for m in xyz_execution.messages)
        assert observed in {
            tuple(m.event.eid for m in run.messages) for run in lat.runs()
        }

    def test_any_delivery_order_accepted(self, xyz_execution):
        """'The observer therefore receives messages ⟨e, i, V⟩ in any
        order'."""
        msgs = list(xyz_execution.messages)
        for seed in range(5):
            random.Random(seed).shuffle(msgs)
            b = LevelByLevelBuilder(2, {"x": -1, "y": 0, "z": 0},
                                    Monitor(XYZ_PROPERTY))
            b.feed_many(msgs)
            b.finish()
            assert len(b.violations) == 1

    def test_two_levels_resident(self):
        """'at most two consecutive levels in the computation lattice need
        to be stored at any moment'."""
        from repro.sched.program import Program, Write, straightline

        p = Program(
            initial={f"v{t}": 0 for t in range(3)},
            threads=[straightline([Write(f"v{t}", k) for k in range(5)])
                     for t in range(3)],
        )
        ex = run_program(p, FixedScheduler([], strict=False))
        initial = {v: 0 for v in p.initial}
        full = ComputationLattice(3, initial, ex.messages)
        widths = [len(lv) for lv in full.levels()]
        bound = max(widths[i] + widths[i + 1] for i in range(len(widths) - 1))
        b = LevelByLevelBuilder(3, initial, track_paths=False)
        b.feed_many(ex.messages)
        b.finish()
        assert b.stats.peak_resident_cuts <= bound < len(full)

    def test_example1_two_violations(self, landing_execution):
        """'it is shown how JMPAX is able to predict two safety violations
        from a single successful execution' (Example 1 / Fig. 5)."""
        report = predict(landing_execution, LANDING_PROPERTY, mode="full")
        assert report.observed_ok
        assert report.nodes == 6 and report.n_runs == 3
        assert len(report.violations) == 2

    def test_example2_rightmost_run_violates(self, xyz_execution):
        """'another possible run of the same computation is the rightmost
        one, which violates the safety property ... JPAX and JAVA-MAC fail
        to detect this violation' (Example 2 / Fig. 6)."""
        assert detect(xyz_execution, XYZ_PROPERTY).ok  # the baseline misses
        report = predict(xyz_execution, XYZ_PROPERTY, mode="full")
        assert len(report.violations) == 1
        assert [m.event.label for m in report.violations[0].messages] == [
            "x=0", "y=1", "z=1", "x=1"]

    def test_liveness_lassos(self):
        """'to search for paths of the form uv ... and then to check
        whether uv^ω satisfies the liveness property' (§4)."""
        from repro.analysis import predict_liveness_violations
        from repro.sched.program import Internal, Program, Write

        def toggler():
            for _ in range(2):
                yield Write("busy", 1)
                yield Internal()
                yield Write("busy", 0)

        def signaler():
            yield Internal()
            yield Write("go", 1)

        p = Program(initial={"busy": 0, "go": 0},
                    threads=[toggler, signaler],
                    relevant_vars=frozenset({"busy", "go"}))
        ex = run_program(p, FixedScheduler([], strict=False))
        lat = ComputationLattice(2, {"busy": 0, "go": 0}, ex.messages)
        assert predict_liveness_violations(lat, "eventually(go == 1)")
        assert not predict_liveness_violations(lat, "eventually(busy == 0)")
