"""Documentation health checks, run as part of the normal suite and by the
CI ``docs`` job:

* every ````` ```python ````` block in README.md and docs/*.md must parse
  (``compile(..., "exec")`` — no execution, so snippets may reference
  files or long-running workloads freely);
* every intra-repo markdown link must point at a file that exists;
* every metric registered by the pipeline must be documented in the
  docs/OBSERVABILITY.md catalogue;
* every committed BENCH_*.json baseline must be documented in
  docs/PERFORMANCE.md, along with the harness options that regenerate it.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

_FENCE = re.compile(r"```[a-z]*\n.*?```", re.DOTALL)
_PY_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_doc_files_found():
    names = [p.name for p in DOC_FILES]
    assert "README.md" in names
    assert "OBSERVABILITY.md" in names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_python_snippets_parse(path):
    text = path.read_text(encoding="utf-8")
    blocks = list(_PY_BLOCK.finditer(text))
    for m in blocks:
        first_line = text[: m.start()].count("\n") + 2
        try:
            compile(m.group(1), f"{path.name}:{first_line}", "exec")
        except SyntaxError as exc:
            pytest.fail(
                f"{path.name}: python block starting at line {first_line} "
                f"does not parse: {exc}"
            )


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_intra_repo_links_resolve(path):
    # links inside code fences are examples, not navigation
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    broken = []
    for m in _LINK.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        if not (path.parent / rel).exists():
            broken.append(target)
    assert not broken, f"{path.name}: broken intra-repo links: {broken}"


def test_metric_catalogue_complete():
    """Every metric the pipeline can emit must appear by name in the
    OBSERVABILITY.md catalogue.  Importing the instrumented modules is
    enough: instruments register at import time, values stay zero."""
    import repro.core.algorithm_a  # noqa: F401
    import repro.fleet.router  # noqa: F401
    import repro.fleet.shards  # noqa: F401
    import repro.lattice.levels  # noqa: F401
    import repro.observer.delivery  # noqa: F401
    import repro.observer.faults  # noqa: F401
    import repro.observer.observer  # noqa: F401
    import repro.observer.reliable  # noqa: F401
    import repro.server.daemon  # noqa: F401
    import repro.store  # noqa: F401 (format, archive, replay metrics)
    from repro.obs import metrics

    text = (REPO / "docs" / "OBSERVABILITY.md").read_text(encoding="utf-8")
    missing = [
        name
        for name in metrics.REGISTRY.names()
        # instruments created by the test suite itself are not catalogue;
        # labelled instruments are documented under their base name
        if not metrics.base_name(name).startswith("test.")
        if metrics.base_name(name) not in text
    ]
    assert not missing, f"metrics absent from OBSERVABILITY.md: {missing}"


def test_performance_guide_documents_baselines():
    """Every committed ``BENCH_*.json`` baseline must be named (with a
    reading guide) in docs/PERFORMANCE.md, and the guide must describe
    the harness options that regenerate and smoke-test them."""
    text = (REPO / "docs" / "PERFORMANCE.md").read_text(encoding="utf-8")
    baselines = sorted(p.name for p in REPO.glob("BENCH_*.json"))
    assert baselines, "no committed BENCH_*.json baselines at the repo root"
    missing = [b for b in baselines if b not in text]
    assert not missing, (
        f"baselines not documented in docs/PERFORMANCE.md: {missing}")
    for opt in ("--emit-json", "--quick", "--benchmark-disable"):
        assert opt in text, (
            f"harness option {opt} is not described in docs/PERFORMANCE.md")
    # the backend-evaluation metrics the guide tells readers to watch
    for name in ("algoa.vc_join_fast", "delivery.batch_size"):
        assert name in text, (
            f"metric {name} is not mentioned in docs/PERFORMANCE.md")


def test_span_taxonomy_documented():
    """The span names used by the instrumented sites must appear in the
    OBSERVABILITY.md span taxonomy."""
    spans = [
        "algoa.process",
        "observer.consume",
        "observer.finish",
        "predict.observed_check",
        "predict.levels",
        "predict.full",
        "lattice.level",
    ]
    text = (REPO / "docs" / "OBSERVABILITY.md").read_text(encoding="utf-8")
    missing = [s for s in spans if s not in text]
    assert not missing, f"spans absent from OBSERVABILITY.md: {missing}"
