"""Sanity tests for the workload generators."""

import random

import pytest

from repro.sched import FixedScheduler, RandomScheduler, explore_all, run_program
from repro.workloads import (
    AUDIT_PROPERTY,
    landing_controller,
    locked_counter,
    peterson_like,
    producer_consumer,
    racy_counter,
    random_execution_specs,
    random_program,
    transfer_program,
    xyz_program,
)


class TestLanding:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            landing_controller(radio_down_iteration=4, max_radio_checks=4)

    def test_radio_always_ends_down_or_loop_exits(self):
        for seed in range(5):
            ex = run_program(landing_controller(), RandomScheduler(seed))
            assert ex.final_store["radio"] in (0, 1)

    def test_denied_landing_path(self):
        """If the radio is down before approval, landing never starts."""
        ex = run_program(landing_controller(radio_down_iteration=0),
                         FixedScheduler([1, 1, 1] + [0] * 5, strict=False))
        assert ex.final_store["approved"] == 0
        assert ex.final_store["landing"] == 0


class TestCounters:
    def test_racy_counter_param_validation(self):
        with pytest.raises(ValueError):
            racy_counter(0)
        with pytest.raises(ValueError):
            locked_counter(1, 0)

    def test_locked_counter_always_exact(self):
        for seed in range(5):
            ex = run_program(locked_counter(3, 2), RandomScheduler(seed))
            assert ex.final_store["c"] == 6

    def test_racy_counter_can_lose_updates(self):
        finals = {ex.final_store["c"]
                  for ex in explore_all(racy_counter(2, 1))}
        assert 1 in finals and 2 in finals

    def test_peterson_like_runs(self):
        for seed in range(5):
            ex = run_program(peterson_like(), RandomScheduler(seed))
            assert ex.final_store["flag0"] == 0
            assert ex.final_store["flag1"] == 0


class TestBank:
    def test_final_conservation_always(self):
        for ex in explore_all(transfer_program(amounts=(30,)),
                              max_executions=5000):
            assert ex.final_store["a"] + ex.final_store["b"] == 100

    def test_locked_variant_never_violates_audit(self):
        from repro.analysis import detect

        for ex in explore_all(transfer_program(amounts=(30,), locked=True),
                              max_executions=5000):
            assert detect(ex, AUDIT_PROPERTY).ok

    def test_unlocked_variant_sometimes_violates(self):
        from repro.analysis import detect

        results = [detect(ex, AUDIT_PROPERTY).ok
                   for ex in explore_all(transfer_program(amounts=(30,)))]
        assert any(results) and not all(results)


class TestProducerConsumer:
    def test_items_delivered_in_order(self):
        for seed in range(5):
            ex = run_program(producer_consumer(3), RandomScheduler(seed))
            assert ex.final_store["consumed"] == 3

    def test_param_validation(self):
        with pytest.raises(ValueError):
            producer_consumer(0)


class TestRandomPrograms:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            random_program(random.Random(0), n_threads=0)
        with pytest.raises(ValueError):
            random_program(random.Random(0), write_ratio=1.5)

    def test_deterministic_for_seed(self):
        p1 = random_program(random.Random(7), ops_per_thread=6)
        p2 = random_program(random.Random(7), ops_per_thread=6)
        e1 = run_program(p1, FixedScheduler([], strict=False))
        e2 = run_program(p2, FixedScheduler([], strict=False))
        assert [e.eid for e in e1.events] == [e.eid for e in e2.events]
        assert e1.final_store == e2.final_store

    def test_relevant_subset(self):
        p = random_program(random.Random(3), n_vars=4, relevant_subset=2)
        assert p.default_relevance_vars() == frozenset({"v0", "v1"})

    def test_ops_per_thread_respected(self):
        p = random_program(random.Random(1), n_threads=3, ops_per_thread=5)
        ex = run_program(p, FixedScheduler([], strict=False))
        assert len(ex.events) == 15

    def test_write_values_unique(self):
        """Writes carry unique values so lost updates are observable."""
        p = random_program(random.Random(9), n_threads=2, ops_per_thread=8,
                           write_ratio=1.0, internal_ratio=0.0)
        ex = run_program(p, FixedScheduler([], strict=False))
        values = [e.value for e in ex.events if e.kind.is_write]
        assert len(values) == len(set(values))

    def test_random_execution_specs_shape(self):
        specs = random_execution_specs(random.Random(2), n_events=20)
        assert len(specs) == 20
        from repro.core.computation import execution_from_specs, Computation

        Computation(execution_from_specs(specs))  # must validate


class TestXyz:
    def test_values_computed_from_reads(self):
        # serial T1-then-T2: x=0, y=1, then z reads x=0 -> z=1, x=1
        ex = run_program(xyz_program(), FixedScheduler([0] * 5 + [1] * 5))
        assert ex.final_store == {"x": 1, "y": 1, "z": 1}

    def test_alternative_order_changes_values(self):
        # serial T2-then-T1: z=0, x=0, then T1: x=1, y=2
        ex = run_program(xyz_program(), FixedScheduler([1] * 5 + [0] * 5))
        assert ex.final_store == {"x": 1, "y": 2, "z": 0}
