"""Readers-writer and barrier workload tests."""

import pytest

from repro.analysis import detect, find_races, model_check, predict
from repro.core import all_accesses
from repro.lattice import ComputationLattice
from repro.sched import FixedScheduler, RandomScheduler, run_program
from repro.workloads import RW_PROPERTY, barrier_program, readers_writer


def clean_racy_execution():
    """Observed run with the reader entirely before the writer: clean."""
    p = readers_writer(safe=False)
    return p, run_program(p, FixedScheduler([1] * 6 + [0] * 20, strict=False))


class TestReadersWriter:
    def test_racy_predicts_torn_observation(self):
        _p, ex = clean_racy_execution()
        assert detect(ex, RW_PROPERTY).ok
        report = predict(ex, RW_PROPERTY, mode="full")
        assert report.predicted
        # torn state: observation pulse lands between lo=k and hi=k
        v = report.violations[0]
        last = v.states[-1]
        assert last["lo"] != last["hi"]

    def test_safe_variant_clean_in_every_run(self):
        p = readers_writer(safe=True)
        ex = run_program(p, FixedScheduler([1] * 8 + [0] * 20, strict=False))
        report = predict(ex, RW_PROPERTY, mode="full")
        assert report.ok

    def test_safe_variant_model_checked_clean(self):
        result = model_check(readers_writer(safe=True, writes=1),
                             RW_PROPERTY, max_executions=50_000)
        assert result.ok

    def test_racy_variant_model_check_finds_it(self):
        result = model_check(readers_writer(safe=False, writes=1),
                             RW_PROPERTY, max_executions=50_000)
        assert result.violating_runs > 0

    def test_racy_variant_has_data_races(self):
        p = readers_writer(safe=False, writes=1)
        ex = run_program(p, RandomScheduler(0), relevance=all_accesses(),
                         sync_only_clocks=True)
        races = find_races(ex)
        assert any(r.var in ("lo", "hi") for r in races)

    def test_safe_variant_has_no_races(self):
        p = readers_writer(safe=True, writes=1)
        ex = run_program(p, RandomScheduler(0), relevance=all_accesses(),
                         sync_only_clocks=True)
        assert find_races(ex) == []

    def test_multiple_readers(self):
        p = readers_writer(n_readers=2, safe=True, writes=1)
        ex = run_program(p, FixedScheduler([], strict=False))
        assert ex.n_threads == 3


class TestBarrier:
    def test_all_workers_finish(self):
        for seed in range(6):
            ex = run_program(barrier_program(3), RandomScheduler(seed))
            assert ex.final_store["arrived"] == 3
            assert all(ex.final_store[f"done{i}"] == 1 for i in range(3))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            barrier_program(1)

    def test_no_done_before_all_arrivals_in_any_run(self):
        """The lattice proof: in every consistent run, every done-write
        comes after the third arrival."""
        p = barrier_program(3)
        ex = run_program(p, FixedScheduler([], strict=False))
        variables = sorted(p.default_relevance_vars())
        initial = {v: ex.initial_store[v] for v in variables}
        lat = ComputationLattice(3, initial, ex.messages)
        for run in lat.runs():
            arrived = 0
            for m in run.messages:
                if m.event.var == "arrived":
                    arrived = m.event.value
                elif str(m.event.var).startswith("done"):
                    assert arrived == 3, run.pretty(variables)

    def test_barrier_scales(self):
        ex = run_program(barrier_program(5), RandomScheduler(2))
        assert ex.final_store["arrived"] == 5
