"""Tests for the specification parser."""

import pytest

from repro.logic.ast import (
    And,
    Always,
    BinArith,
    Bool,
    Compare,
    Const,
    End,
    Eventually,
    Historically,
    Iff,
    Implies,
    Interval,
    Next,
    Not,
    Once,
    Or,
    Prev,
    Since,
    Start,
    Until,
    Var,
    variables_of,
)
from repro.logic.parser import ParseError, parse


class TestAtoms:
    def test_simple_comparison(self):
        f = parse("x > 0")
        assert isinstance(f, Compare) and f.op == ">"
        assert f.left == Var("x") and f.right == Const(0)

    def test_all_comparison_ops(self):
        for op in ("==", "!=", "<", "<=", ">", ">="):
            f = parse(f"a {op} b")
            assert isinstance(f, Compare) and f.op == op

    def test_arithmetic_precedence(self):
        f = parse("a + b * 2 == 7")
        assert isinstance(f.left, BinArith) and f.left.op == "+"
        assert isinstance(f.left.right, BinArith) and f.left.right.op == "*"

    def test_parenthesized_arithmetic(self):
        f = parse("(a + b) * 2 == 14")
        assert isinstance(f.left, BinArith) and f.left.op == "*"
        assert isinstance(f.left.left, BinArith) and f.left.left.op == "+"

    def test_unary_minus(self):
        f = parse("x == -1")
        assert f.right.eval({}) == -1

    def test_floordiv_and_mod(self):
        f = parse("x // 2 == 3 and y % 2 == 0")
        assert f.left.test({"x": 7}) and f.right.test({"y": 4})

    def test_true_false(self):
        assert parse("true") == Bool(True)
        assert parse("false") == Bool(False)


class TestBooleanStructure:
    def test_implies_right_assoc(self):
        f = parse("a == 1 -> b == 1 -> c == 1")
        assert isinstance(f, Implies)
        assert isinstance(f.right, Implies)

    def test_precedence_or_binds_tighter_than_implies(self):
        f = parse("a == 1 or b == 1 -> c == 1")
        assert isinstance(f, Implies)
        assert isinstance(f.left, Or)

    def test_and_binds_tighter_than_or(self):
        f = parse("a == 1 or b == 1 and c == 1")
        assert isinstance(f, Or)
        assert isinstance(f.right, And)

    def test_symbolic_operators(self):
        f = parse("a == 1 && b == 1 || c == 1")
        assert isinstance(f, Or) and isinstance(f.left, And)

    def test_not_variants(self):
        assert isinstance(parse("not a == 1"), Not)
        assert isinstance(parse("!(a == 1)"), Not)

    def test_iff(self):
        f = parse("a == 1 <-> b == 1")
        assert isinstance(f, Iff)

    def test_parenthesized_formula(self):
        f = parse("(a == 1 -> b == 1) and c == 1")
        assert isinstance(f, And) and isinstance(f.left, Implies)


class TestTemporal:
    def test_unary_temporal_operators(self):
        cases = {
            "prev": Prev, "once": Once, "historically": Historically,
            "start": Start, "end": End,
            "always": Always, "eventually": Eventually, "next": Next,
        }
        for kw, cls in cases.items():
            f = parse(f"{kw}(x == 1)")
            assert isinstance(f, cls), kw

    def test_unary_without_parens(self):
        f = parse("once x == 1")
        assert isinstance(f, Once) and isinstance(f.operand, Compare)

    def test_since_infix(self):
        f = parse("a == 1 since b == 1")
        assert isinstance(f, Since)

    def test_since_symbol(self):
        assert isinstance(parse("a == 1 S b == 1"), Since)

    def test_until_infix(self):
        assert isinstance(parse("a == 1 until b == 1"), Until)
        assert isinstance(parse("a == 1 U b == 1"), Until)

    def test_interval(self):
        f = parse("[p == 1, q == 1)")
        assert isinstance(f, Interval)
        assert isinstance(f.start, Compare) and isinstance(f.stop, Compare)

    def test_nested_temporal(self):
        f = parse("once(start(x == 1) and prev(y == 0))")
        assert isinstance(f, Once)
        assert isinstance(f.operand, And)

    def test_paper_property_example1(self):
        f = parse("start(landing == 1) -> [approved == 1, radio == 0)")
        assert isinstance(f, Implies)
        assert isinstance(f.left, Start)
        assert isinstance(f.right, Interval)
        assert variables_of(f) == frozenset({"landing", "approved", "radio"})

    def test_paper_property_example2(self):
        f = parse("(x > 0) -> [y == 0, y > z)")
        assert isinstance(f, Implies)
        assert isinstance(f.right, Interval)
        assert variables_of(f) == frozenset({"x", "y", "z"})


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("x == 1 y")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse("x == $")

    def test_missing_interval_comma(self):
        with pytest.raises(ParseError):
            parse("[x == 1 y == 2)")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse("(x == 1")

    def test_reserved_word_as_variable(self):
        # keywords cannot appear where a variable is expected
        with pytest.raises(ParseError):
            parse("x + prev == 1")
        with pytest.raises(ParseError):
            parse("prev == 1")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse("")

    def test_bare_identifier_is_not_a_formula(self):
        with pytest.raises(ParseError):
            parse("x")

    def test_error_has_position_pointer(self):
        try:
            parse("x == 1 &&")
        except ParseError as exc:
            assert "^" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected ParseError")


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "x > 0",
        "start(landing == 1) -> [approved == 1, radio == 0)",
        "(x > 0) -> [y == 0, y > z)",
        "once(a == 1) and historically(b == 0)",
        "a == 1 since b == 2",
        "prev(x == 1) or end(y == 2)",
        "always(eventually(go == 1))",
    ])
    def test_str_reparses_to_same_ast(self, text):
        f = parse(text)
        assert parse(str(f)) == f


# ---------------------------------------------------------------------------
# round-trip on randomly generated formulas (hypothesis)
# ---------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_atoms = st.sampled_from([
    parse("p == 1"), parse("q > 2"), parse("p + q <= 7"),
    parse("true"), parse("false"),
])


def _formulas(depth):
    if depth == 0:
        return _atoms
    sub = _formulas(depth - 1)
    return st.one_of(
        _atoms,
        st.builds(Not, sub),
        st.builds(And, sub, sub),
        st.builds(Or, sub, sub),
        st.builds(Implies, sub, sub),
        st.builds(Iff, sub, sub),
        st.builds(Prev, sub),
        st.builds(Once, sub),
        st.builds(Historically, sub),
        st.builds(Since, sub, sub),
        st.builds(Interval, sub, sub),
        st.builds(Start, sub),
        st.builds(End, sub),
        st.builds(Always, sub),
        st.builds(Eventually, sub),
        st.builds(Until, sub, sub),
        st.builds(Next, sub),
    )


@given(_formulas(3))
@settings(max_examples=200, deadline=None)
def test_str_roundtrip_on_random_formulas(f):
    """str() output of any formula re-parses to a structurally equal AST."""
    assert parse(str(f)) == f
