"""Tests for ptLTL monitor synthesis: per-operator semantics, the HR initial
convention, and agreement with the brute-force oracle on random formulas and
traces (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.ast import (
    And,
    Bool,
    Compare,
    Const,
    End,
    Historically,
    Implies,
    Interval,
    Not,
    Once,
    Or,
    Prev,
    Since,
    Start,
    Var,
)
from repro.logic.monitor import Monitor, evaluate_trace
from repro.logic.parser import parse


def states(*bits):
    """Build single-variable traces: states('p', 0, 1, 1) -> [{'p':0},...]."""
    name, *vals = bits
    return [{name: v} for v in vals]


def verdicts(spec, trace):
    """Monitor verdict at each position."""
    m = Monitor(spec)
    s = m.initial_state()
    out = []
    for st_ in trace:
        s, ok = m.step(s, st_)
        out.append(ok)
    return out


class TestStateFormulas:
    def test_compare(self):
        assert verdicts("p == 1", states("p", 0, 1, 2)) == [False, True, False]

    def test_boolean_connectives(self):
        trace = [{"p": 1, "q": 0}, {"p": 1, "q": 1}]
        assert verdicts("p == 1 and q == 1", trace) == [False, True]
        assert verdicts("p == 1 or q == 1", trace) == [True, True]
        assert verdicts("p == 1 -> q == 1", trace) == [False, True]
        assert verdicts("p == 1 <-> q == 1", trace) == [False, True]
        assert verdicts("!(q == 1)", trace) == [True, False]

    def test_constants(self):
        assert verdicts("true", states("p", 0)) == [True]
        assert verdicts("false", states("p", 0)) == [False]

    def test_missing_variable_raises(self):
        m = Monitor("q == 1")
        with pytest.raises(KeyError):
            m.step(m.initial_state(), {"p": 1})


class TestPrev:
    def test_prev_shifts_by_one(self):
        assert verdicts("prev(p == 1)", states("p", 1, 0, 1)) == [True, True, False]

    def test_prev_initial_convention(self):
        """HR convention: at the first state, prev f = f."""
        assert verdicts("prev(p == 1)", states("p", 1)) == [True]
        assert verdicts("prev(p == 1)", states("p", 0)) == [False]


class TestOnceHistorically:
    def test_once_latches(self):
        assert verdicts("once(p == 1)", states("p", 0, 1, 0, 0)) == [
            False, True, True, True]

    def test_historically_drops_permanently(self):
        assert verdicts("historically(p == 1)", states("p", 1, 1, 0, 1)) == [
            True, True, False, False]

    def test_duality(self):
        """once f == !historically(!f) pointwise."""
        trace = states("p", 0, 1, 1, 0, 1)
        once = evaluate_trace("once(p == 1)", trace)
        nh = evaluate_trace("!(historically(!(p == 1)))", trace)
        assert once == nh


class TestSince:
    def test_since_basic(self):
        # f S g: g fired at 1, f holds from then on
        trace = [{"f": 1, "g": 0}, {"f": 1, "g": 1}, {"f": 1, "g": 0},
                 {"f": 0, "g": 0}, {"f": 1, "g": 0}]
        assert verdicts("f == 1 since g == 1", trace) == [
            False, True, True, False, False]

    def test_since_initial(self):
        assert verdicts("f == 1 since g == 1", [{"f": 1, "g": 1}]) == [True]
        assert verdicts("f == 1 since g == 1", [{"f": 1, "g": 0}]) == [False]

    def test_g_now_suffices(self):
        trace = [{"f": 0, "g": 0}, {"f": 0, "g": 1}]
        assert verdicts("f == 1 since g == 1", trace) == [False, True]


class TestInterval:
    def test_recurrence(self):
        """[p, q): opens at p, closes at q."""
        trace = [{"p": 0, "q": 0}, {"p": 1, "q": 0}, {"p": 0, "q": 0},
                 {"p": 0, "q": 1}, {"p": 0, "q": 0}]
        assert verdicts("[p == 1, q == 1)", trace) == [
            False, True, True, False, False]

    def test_q_wins_when_simultaneous(self):
        trace = [{"p": 1, "q": 1}]
        assert verdicts("[p == 1, q == 1)", trace) == [False]

    def test_reopens_after_close(self):
        trace = [{"p": 1, "q": 0}, {"p": 0, "q": 1}, {"p": 1, "q": 0}]
        assert verdicts("[p == 1, q == 1)", trace) == [True, False, True]


class TestStartEnd:
    def test_start_detects_rising_edge(self):
        assert verdicts("start(p == 1)", states("p", 0, 1, 1, 0, 1)) == [
            False, True, False, False, True]

    def test_start_false_at_initial_even_if_true(self):
        assert verdicts("start(p == 1)", states("p", 1, 1)) == [False, False]

    def test_end_detects_falling_edge(self):
        assert verdicts("end(p == 1)", states("p", 1, 0, 0, 1, 0)) == [
            False, True, False, False, True]

    def test_end_false_at_initial(self):
        assert verdicts("end(p == 1)", states("p", 0)) == [False]


class TestPaperProperties:
    LANDING = "start(landing == 1) -> [approved == 1, radio == 0)"

    def _trace(self, seq):
        return [dict(zip(("landing", "approved", "radio"), s)) for s in seq]

    def test_observed_run_passes(self):
        trace = self._trace([(0, 0, 1), (0, 1, 1), (1, 1, 1), (1, 1, 0)])
        assert Monitor(self.LANDING).check_trace(trace) == (True, None)

    def test_radio_between_approval_and_landing_fails(self):
        trace = self._trace([(0, 0, 1), (0, 1, 1), (0, 1, 0), (1, 1, 0)])
        ok, k = Monitor(self.LANDING).check_trace(trace)
        assert not ok and k == 3

    def test_radio_before_approval_fails(self):
        trace = self._trace([(0, 0, 1), (0, 0, 0), (0, 1, 0), (1, 1, 0)])
        ok, k = Monitor(self.LANDING).check_trace(trace)
        assert not ok and k == 3


class TestMonitorMechanics:
    def test_future_operator_rejected(self):
        with pytest.raises(ValueError, match="future"):
            Monitor("always(x == 1)")

    def test_monitor_state_hashable(self):
        m = Monitor("once(p == 1)")
        s, _ = m.step(m.initial_state(), {"p": 0})
        assert hash(s) is not None
        assert isinstance(s, tuple)

    def test_functional_stepping(self):
        """Same (mstate, state) always gives the same result."""
        m = Monitor("[p == 1, q == 1)")
        s0 = m.initial_state()
        a1 = m.step(s0, {"p": 1, "q": 0})
        a2 = m.step(s0, {"p": 1, "q": 0})
        assert a1 == a2

    def test_variables_property(self):
        m = Monitor("(x > 0) -> [y == 0, y > z)")
        assert m.variables == frozenset({"x", "y", "z"})

    def test_width(self):
        # subformulas: the Compare atom and the Once node
        assert Monitor("once(p == 1)").width == 2

    def test_check_trace_reports_first_violation(self):
        m = Monitor("historically(p == 0)")
        ok, k = m.check_trace(states("p", 0, 0, 1, 0))
        assert not ok and k == 2

    def test_accepts_formula_object(self):
        f = Implies(Compare(">", Var("x"), Const(0)), Bool(True))
        m = Monitor(f)
        _, ok = m.step(m.initial_state(), {"x": 5})
        assert ok


# ---------------------------------------------------------------------------
# hypothesis: monitor == brute-force oracle on random formulas and traces
# ---------------------------------------------------------------------------

atoms = st.sampled_from([
    Compare("==", Var("p"), Const(1)),
    Compare("==", Var("q"), Const(1)),
    Compare(">", Var("p"), Var("q")),
    Bool(True),
])


def formulas(depth):
    if depth == 0:
        return atoms
    sub = formulas(depth - 1)
    return st.one_of(
        atoms,
        st.builds(Not, sub),
        st.builds(And, sub, sub),
        st.builds(Or, sub, sub),
        st.builds(Implies, sub, sub),
        st.builds(Prev, sub),
        st.builds(Once, sub),
        st.builds(Historically, sub),
        st.builds(Since, sub, sub),
        st.builds(Interval, sub, sub),
        st.builds(Start, sub),
        st.builds(End, sub),
    )


traces = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2)).map(
        lambda t: {"p": t[0], "q": t[1]}
    ),
    min_size=1,
    max_size=8,
)


@given(formulas(3), traces)
@settings(max_examples=200, deadline=None)
def test_monitor_agrees_with_oracle(formula, trace):
    """The synthesized O(|φ|)-state monitor computes exactly the recursive
    past-time semantics, at every position."""
    expected = evaluate_trace(formula, trace)
    assert verdicts(formula, trace) == expected


@given(formulas(2), traces)
@settings(max_examples=100, deadline=None)
def test_monitor_state_is_markovian(formula, trace):
    """Restarting from a stored monitor state must equal running through."""
    m = Monitor(formula)
    s = m.initial_state()
    mid = len(trace) // 2
    for st_ in trace[:mid]:
        s, _ = m.step(s, st_)
    # continue from the stored state
    out_a = []
    sa = s
    for st_ in trace[mid:]:
        sa, ok = m.step(sa, st_)
        out_a.append(ok)
    # compare against a full run
    out_b = verdicts(formula, trace)[mid:]
    assert out_a == out_b


class TestAtomEscapeHatch:
    def test_atom_callable_in_monitor(self):
        from repro.logic.ast import Atom, Once

        parity = Atom(lambda s: s["n"] % 2 == 0, name="even(n)")
        m = Monitor(Once(parity))
        s = m.initial_state()
        s, ok = m.step(s, {"n": 1})
        assert not ok
        s, ok = m.step(s, {"n": 2})
        assert ok
        s, ok = m.step(s, {"n": 3})
        assert ok  # once latched

    def test_atom_in_evaluate_trace(self):
        from repro.logic.ast import Atom

        parity = Atom(lambda s: s["n"] % 2 == 0, name="even(n)")
        assert evaluate_trace(parity, [{"n": 2}, {"n": 3}]) == [True, False]

    def test_atom_str_uses_name(self):
        from repro.logic.ast import Atom

        assert str(Atom(lambda s: True, name="myatom")) == "myatom"
