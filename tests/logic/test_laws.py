"""Algebraic laws of the past-time logic, property-tested.

These pin down the operator semantics against each other (not just against
the oracle): dualities, unfoldings, and the expressibility of the paper's
interval operator via ``since``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.ast import (
    And,
    Compare,
    Const,
    Historically,
    Interval,
    Not,
    Once,
    Prev,
    Since,
    Var,
)
from repro.logic.monitor import evaluate_trace

P = Compare("==", Var("p"), Const(1))
Q = Compare("==", Var("q"), Const(1))

traces = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, 1)).map(
        lambda t: {"p": t[0], "q": t[1]}
    ),
    min_size=1,
    max_size=10,
)


def same(f, g, trace):
    return evaluate_trace(f, trace) == evaluate_trace(g, trace)


@given(traces)
@settings(max_examples=150)
def test_once_historically_duality(trace):
    """once f  ==  ¬ historically ¬f"""
    assert same(Once(P), Not(Historically(Not(P))), trace)


@given(traces)
@settings(max_examples=150)
def test_once_is_true_since(trace):
    """once f  ==  true S f"""
    from repro.logic.ast import Bool

    assert same(Once(P), Since(Bool(True), P), trace)


@given(traces)
@settings(max_examples=150)
def test_since_unfolding(trace):
    """f S g  ==  g ∨ (f ∧ prev(f S g))  — pointwise except at the initial
    state, where prev(X) = X collapses the unfolding to g ∨ (f ∧ g)... so
    compare from position 1 onward."""
    lhs = evaluate_trace(Since(P, Q), trace)
    fsg = Since(P, Q)
    rhs_formula = _or(Q, And(P, Prev(fsg)))
    # build rhs values manually to share the same Since object
    rhs = evaluate_trace(rhs_formula, trace)
    assert lhs[1:] == rhs[1:]


def _or(a, b):
    from repro.logic.ast import Or

    return Or(a, b)


@given(traces)
@settings(max_examples=150)
def test_interval_via_since(trace):
    """[p, q)  ==  (¬q) S (p ∧ ¬q)"""
    lhs = Interval(P, Q)
    rhs = Since(Not(Q), And(P, Not(Q)))
    assert same(lhs, rhs, trace)


@given(traces)
@settings(max_examples=150)
def test_interval_unfolding(trace):
    """[p,q)_k == ¬q_k ∧ (p_k ∨ [p,q)_{k-1}) for k >= 1."""
    iv = Interval(P, Q)
    lhs = evaluate_trace(iv, trace)
    rhs = evaluate_trace(And(Not(Q), _or(P, Prev(iv))), trace)
    assert lhs[1:] == rhs[1:]


@given(traces)
@settings(max_examples=150)
def test_historically_unfolding(trace):
    hf = Historically(P)
    lhs = evaluate_trace(hf, trace)
    rhs = evaluate_trace(And(P, Prev(hf)), trace)
    assert lhs[1:] == rhs[1:]


@given(traces)
@settings(max_examples=150)
def test_initial_state_conventions(trace):
    """At position 0: once f = historically f = f; f S g = g; [p,q) = p∧¬q."""
    first = trace[:1]
    f0 = evaluate_trace(P, first)[0]
    g0 = evaluate_trace(Q, first)[0]
    assert evaluate_trace(Once(P), first)[0] == f0
    assert evaluate_trace(Historically(P), first)[0] == f0
    assert evaluate_trace(Since(P, Q), first)[0] == g0
    assert evaluate_trace(Interval(P, Q), first)[0] == (f0 and not g0)


@given(traces)
@settings(max_examples=150)
def test_monitor_matches_laws_too(trace):
    """The synthesized monitor satisfies the interval/since identity as well
    (not only the brute-force semantics)."""
    from repro.logic.monitor import Monitor

    iv = Monitor(Interval(P, Q))
    eq = Monitor(Since(Not(Q), And(P, Not(Q))))
    si, se = iv.initial_state(), eq.initial_state()
    for state in trace:
        si, oki = iv.step(si, state)
        se, oke = eq.step(se, state)
        assert oki == oke
