"""Composite monitors and multi-spec prediction."""

import pytest

from repro.analysis import predict, predict_many
from repro.logic import Monitor
from repro.logic.composite import CompositeMonitor
from repro.workloads import LANDING_PROPERTY, XYZ_PROPERTY


class TestCompositeMonitor:
    def test_needs_specs(self):
        with pytest.raises(ValueError):
            CompositeMonitor([])

    def test_variables_union(self):
        c = CompositeMonitor(["x == 1", "y == 2"])
        assert c.variables == frozenset({"x", "y"})

    def test_step_conjunction(self):
        c = CompositeMonitor(["p == 1", "q == 1"])
        s, ok = c.step(c.initial_state(), {"p": 1, "q": 0})
        assert not ok
        assert c.verdicts(s) == (True, False)
        assert c.failing_specs(s) == [1]

    def test_temporal_state_carried(self):
        c = CompositeMonitor(["once(p == 1)", "historically(q == 0)"])
        s, ok = c.step(c.initial_state(), {"p": 1, "q": 0})
        assert ok
        s, ok = c.step(s, {"p": 0, "q": 0})
        assert ok  # once(p) latched
        s, ok = c.step(s, {"p": 0, "q": 1})
        assert not ok
        assert c.failing_specs(s) == [1]

    def test_accepts_monitor_instances(self):
        c = CompositeMonitor([Monitor("p == 1"), "q == 1"])
        assert len(c) == 2

    def test_verdicts_before_step_rejected(self):
        c = CompositeMonitor(["p == 1"])
        with pytest.raises(ValueError):
            c.verdicts(None)


class TestPredictMany:
    def test_attribution(self, landing_execution):
        reports = predict_many(landing_execution, [
            LANDING_PROPERTY,
            "radio == 0 or radio == 1",       # tautology here
            "historically(landing <= 1)",     # holds
        ])
        assert len(reports) == 3
        main = reports[str(Monitor(LANDING_PROPERTY).formula)]
        assert main.observed_ok and main.violations
        for spec, r in reports.items():
            if spec != str(Monitor(LANDING_PROPERTY).formula):
                assert r.ok, spec

    def test_agrees_with_individual_predict(self, xyz_execution):
        specs = [XYZ_PROPERTY, "historically(z <= 1)", "x >= -1"]
        many = predict_many(xyz_execution, specs)
        for spec in specs:
            single = predict(xyz_execution, spec)
            key = str(Monitor(spec).formula)
            assert bool(many[key].violations) == bool(single.violations), spec
            assert many[key].observed_ok == single.observed_ok

    def test_single_sweep(self, xyz_execution):
        reports = predict_many(xyz_execution, [XYZ_PROPERTY, "x >= -1"])
        stats = {id(r.stats) for r in reports.values()}
        assert len(stats) == 1  # one shared builder sweep

    def test_two_failing_specs_both_attributed(self, xyz_execution):
        reports = predict_many(xyz_execution, [
            XYZ_PROPERTY,
            "!(y == 1 and z == 1 and x < 1)",  # fails on the same bad run
        ])
        failing = [spec for spec, r in reports.items() if r.violations]
        assert len(failing) == 2
