"""Tests for LTL evaluation over lasso words u·vω."""

import pytest

from repro.logic.lasso import LassoUnsupportedError, evaluate_lasso
from repro.logic.parser import parse


def w(name, *vals):
    return [{name: v} for v in vals]


class TestBasics:
    def test_state_formula_at_position_zero(self):
        assert evaluate_lasso("p == 1", w("p", 1), w("p", 0))
        assert not evaluate_lasso("p == 1", w("p", 0), w("p", 1))

    def test_empty_loop_rejected(self):
        with pytest.raises(ValueError):
            evaluate_lasso("p == 1", w("p", 1), [])

    def test_empty_stem_allowed(self):
        assert evaluate_lasso("p == 1", [], w("p", 1))

    def test_past_operator_rejected(self):
        with pytest.raises(LassoUnsupportedError):
            evaluate_lasso("once(p == 1)", w("p", 1), w("p", 0))


class TestEventually:
    def test_true_in_stem(self):
        assert evaluate_lasso("eventually(p == 1)", w("p", 0, 1), w("p", 0))

    def test_true_in_loop(self):
        assert evaluate_lasso("eventually(p == 1)", w("p", 0), w("p", 0, 1))

    def test_false_everywhere(self):
        assert not evaluate_lasso("eventually(p == 1)", w("p", 0, 0), w("p", 0))

    def test_stem_only_occurrence_visible_from_start(self):
        # p holds only in the stem; at position 0 it is still "eventually".
        assert evaluate_lasso("eventually(p == 1)", w("p", 1, 0), w("p", 0))


class TestAlways:
    def test_requires_loop(self):
        assert evaluate_lasso("always(p == 1)", w("p", 1), w("p", 1, 1))
        assert not evaluate_lasso("always(p == 1)", w("p", 1), w("p", 1, 0))

    def test_stem_violation_counts(self):
        assert not evaluate_lasso("always(p == 1)", w("p", 0), w("p", 1))

    def test_gf_liveness(self):
        """always(eventually(p)) on a loop where p recurs."""
        assert evaluate_lasso("always(eventually(p == 1))",
                              w("p", 0), w("p", 0, 1))
        assert not evaluate_lasso("always(eventually(p == 1))",
                                  w("p", 1), w("p", 0, 0))


class TestNext:
    def test_next_within_stem(self):
        assert evaluate_lasso("next(p == 1)", w("p", 0, 1), w("p", 0))

    def test_next_wraps_to_loop_start(self):
        # single loop state: next from it is itself
        assert evaluate_lasso("next(p == 1)", [], w("p", 1))

    def test_next_from_loop_end_wraps(self):
        # stem empty, loop [0, 1]; at pos 1 (p=1) next wraps to pos 0 (p=0)
        f = parse("next(p == 0)")
        assert not evaluate_lasso(f, [], w("p", 0, 1))  # pos0: next=pos1 p=1


class TestUntil:
    def test_until_satisfied_in_stem(self):
        trace_u = [{"a": 1, "b": 0}, {"a": 1, "b": 1}]
        trace_v = [{"a": 0, "b": 0}]
        assert evaluate_lasso("a == 1 until b == 1", trace_u, trace_v)

    def test_until_requires_eventual_b(self):
        """a U b is false if b never happens, even with a forever."""
        trace_u = [{"a": 1, "b": 0}]
        trace_v = [{"a": 1, "b": 0}]
        assert not evaluate_lasso("a == 1 until b == 1", trace_u, trace_v)

    def test_until_b_in_loop(self):
        trace_u = [{"a": 1, "b": 0}]
        trace_v = [{"a": 1, "b": 0}, {"a": 0, "b": 1}]
        assert evaluate_lasso("a == 1 until b == 1", trace_u, trace_v)

    def test_until_broken_a_before_b(self):
        trace_u = [{"a": 1, "b": 0}, {"a": 0, "b": 0}, {"a": 1, "b": 1}]
        trace_v = [{"a": 0, "b": 0}]
        assert not evaluate_lasso("a == 1 until b == 1", trace_u, trace_v)


class TestIdentities:
    def test_eventually_equals_true_until(self):
        for u_bits, v_bits in [((0, 0), (0,)), ((0, 1), (0,)), ((0,), (0, 1))]:
            u, v = w("p", *u_bits), w("p", *v_bits)
            assert (evaluate_lasso("eventually(p == 1)", u, v)
                    == evaluate_lasso("true until p == 1", u, v))

    def test_always_is_dual_of_eventually(self):
        for u_bits, v_bits in [((1, 1), (1,)), ((1, 0), (1,)), ((1,), (1, 0))]:
            u, v = w("p", *u_bits), w("p", *v_bits)
            assert (evaluate_lasso("always(p == 1)", u, v)
                    == evaluate_lasso("!(eventually(!(p == 1)))", u, v))
