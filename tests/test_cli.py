"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import main


def run_cli(*argv):
    lines: list[str] = []
    code = main(list(argv), out=lines.append)
    return code, "\n".join(lines)


class TestDemo:
    def test_landing_predicts(self):
        code, out = run_cli("demo", "landing")
        assert code == 1
        assert "PREDICTED" in out
        assert "counterexample" in out
        assert "6 states, 3 runs" in out

    def test_xyz_predicts(self):
        code, out = run_cli("demo", "xyz")
        assert code == 1
        assert "observed run: OK" in out
        assert "violations (observed or predicted): 1" in out

    def test_clean_spec_exits_zero(self):
        code, out = run_cli("demo", "xyz", "--spec", "x >= -1")
        assert code == 0
        assert "no violation" in out

    def test_seeded_schedule(self):
        code, out = run_cli("demo", "landing", "--seed", "3")
        assert code in (0, 1)

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("demo", "nope")


class TestRecordCheck:
    def test_record_then_check(self, tmp_path):
        trace = str(tmp_path / "t.trace")
        code, out = run_cli("record", "xyz", trace)
        assert code == 0
        assert "recorded 4 messages" in out
        code, out = run_cli("check", trace, "--spec",
                            "(x > 0) -> [y == 0, y > z)")
        assert code == 1
        assert "violations: 1" in out

    def test_check_clean_spec(self, tmp_path):
        trace = str(tmp_path / "t.trace")
        run_cli("record", "xyz", trace)
        code, out = run_cli("check", trace, "--spec", "x >= -1")
        assert code == 0


class TestRender:
    def test_text_render(self):
        code, out = run_cli("render", "landing")
        assert code == 0
        assert "Level 0:" in out
        assert "T1:" in out

    def test_dot_render(self):
        code, out = run_cli("render", "xyz", "--dot")
        assert code == 0
        assert out.startswith("digraph")


class TestRaces:
    def test_counter_races(self):
        code, out = run_cli("races", "counter")
        assert code == 1
        assert "races: 3" in out

    def test_clean_workload(self):
        code, out = run_cli("races", "xyz")
        # xyz has unsynchronized accesses to x from both threads: races
        assert code in (0, 1)
        assert "program:" in out


class TestRunMiniLang:
    SRC = (
        "shared int landing = 0, approved = 0, radio = 1;\n"
        "thread controller {\n"
        "    if (radio == 0) { approved = 0; } else { approved = 1; }\n"
        "    if (approved == 1) { landing = 1; }\n"
        "}\n"
        "thread watchdog {\n"
        "    local int i = 0;\n"
        "    while (radio == 1 && i < 3) {\n"
        "        skip; i = i + 1;\n"
        "        if (i == 2) { radio = 0; }\n"
        "    }\n"
        "}\n"
    )

    def test_run_with_spec(self, tmp_path):
        src = tmp_path / "controller.ml"
        src.write_text(self.SRC)
        code, out = run_cli(
            "run", str(src), "--spec",
            "start(landing == 1) -> [approved == 1, radio == 0)",
        )
        assert code == 1
        assert "violations (observed or predicted): 1" in out
        assert "counterexample" in out

    def test_run_without_spec(self, tmp_path):
        src = tmp_path / "p.ml"
        src.write_text("shared int x = 0;\nthread t { x = 7; }\n")
        code, out = run_cli("run", str(src))
        assert code == 0
        assert "'x': 7" in out

    def test_run_with_seed(self, tmp_path):
        src = tmp_path / "p.ml"
        src.write_text(self.SRC)
        code, out = run_cli("run", str(src), "--seed", "3")
        assert code == 0


class TestExplore:
    def test_landing_exploration(self):
        code, out = run_cli("explore", "landing")
        assert code == 1
        assert "interleavings explored:" in out
        assert "witness schedule:" in out

    def test_limit_truncates(self):
        code, out = run_cli("explore", "landing", "--limit", "3")
        assert "(truncated)" in out

    def test_clean_spec(self):
        code, out = run_cli("explore", "xyz", "--spec", "x >= -1")
        assert code == 0
        assert "violating interleavings: 0" in out


class TestObserve:
    def test_clean_wire_is_sound(self):
        code, out = run_cli("observe", "xyz", "--faults", "")
        assert "all verdicts sound" in out
        assert "VERDICT: sound everywhere" in out

    def test_fault_injection_degrades_gracefully(self):
        code, out = run_cli("observe", "landing", "--faults",
                            "drop=0.9", "--fault-seed", "1")
        assert "losses=" in out
        assert "VERDICT: degraded" in out
        assert "degraded windows:" in out

    def test_duplicates_absorbed(self):
        code, out = run_cli("observe", "xyz", "--faults", "dup=1.0")
        assert "duplicates_dropped=4" in out
        assert "VERDICT: sound everywhere" in out

    def test_bad_fault_spec_exits_two(self):
        code, out = run_cli("observe", "xyz", "--faults", "warble=0.1")
        assert code == 2
        assert "error:" in out

    def test_reordering_channel_with_stall_threshold(self):
        code, out = run_cli("observe", "landing", "--channel", "reorder",
                            "--faults", "drop=0.2", "--fault-seed", "3",
                            "--stall", "2")
        assert "observer health:" in out
        assert "VERDICT:" in out


class TestObserveObservability:
    def test_metrics_flag_prints_summary(self):
        code, out = run_cli("observe", "xyz", "--metrics")
        assert "metrics:" in out
        assert "algoa.events" in out
        assert "delivery.offered" in out
        assert "observer.received" in out

    def test_metrics_off_by_default(self):
        from repro.obs import metrics

        code, out = run_cli("observe", "xyz")
        assert "metrics:" not in out
        assert not metrics.ENABLED

    def test_trace_out_writes_chrome_json(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        code, out = run_cli("observe", "xyz", "--trace-out", str(path))
        assert f"written to {path}" in out
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert all("ph" in ev for ev in doc["traceEvents"])

    def test_progress_lines(self):
        code, out = run_cli("observe", "xyz", "--progress", "2")
        assert "progress: 2 messages" in out
        assert "progress (final): 4 messages" in out

    def test_obs_state_restored_after_run(self):
        from repro.obs import metrics, tracing

        run_cli("observe", "xyz", "--metrics")
        assert not metrics.ENABLED
        assert not tracing.ENABLED


class TestStats:
    def test_stats_prints_metrics_and_hotspots(self):
        code, out = run_cli("stats", "xyz")
        assert code == 0
        assert "metrics:" in out
        assert "algoa.events" in out
        assert "span hotspots:" in out
        assert "algoa.process" in out
        assert "lattice: 7 cuts expanded over 5 levels" in out

    def test_stats_trace_out(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        code, out = run_cli("stats", "xyz", "--trace-out", str(path))
        assert code == 0
        doc = json.loads(path.read_text())
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert "algoa.process" in names
        assert "lattice.level" in names

    def test_stats_json_snapshot(self):
        import json

        code, out = run_cli("stats", "xyz", "--json")
        start = out.index("{")
        snap = json.loads(out[start:])
        assert snap["algoa.events"]["value"] == 10

    def test_stats_spec_override(self):
        code, out = run_cli("stats", "xyz", "--spec", "x >= -1")
        assert code == 0
        assert "violations (observed or predicted): 0" in out

    def test_stats_leaves_obs_disabled(self):
        from repro.obs import metrics, tracing

        run_cli("stats", "landing")
        assert not metrics.ENABLED
        assert not tracing.ENABLED


class TestServerCommands:
    @pytest.fixture
    def server(self):
        from repro.server import AnalysisServer, ServerConfig

        with AnalysisServer(ServerConfig(port=0, workers=2)) as srv:
            yield srv

    def test_attach_streams_and_predicts(self, server):
        code, out = run_cli("attach", "xyz", "--port", str(server.port))
        assert code == 1
        assert "attached to" in out
        assert "state: finished" in out
        assert "violations (observed or predicted): 1" in out
        assert "counterexample" in out

    def test_attach_clean_spec_exits_zero(self, server):
        code, out = run_cli("attach", "xyz", "--port", str(server.port),
                            "--spec", "x >= -1")
        assert code == 0

    def test_attach_connection_refused_exits_two(self):
        # a freshly closed ephemeral port: nothing listens there
        import socket

        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code, out = run_cli("attach", "xyz", "--port", str(port))
        assert code == 2
        assert "error" in out

    def test_sessions_table(self, server):
        run_cli("attach", "landing", "--port", str(server.port))
        assert server.wait_idle(timeout=10.0)
        code, out = run_cli("sessions", "--port", str(server.port))
        assert code == 0
        assert "1 finished" in out
        assert "landing" in out

    def test_sessions_json(self, server):
        import json

        run_cli("attach", "xyz", "--port", str(server.port))
        assert server.wait_idle(timeout=10.0)
        code, out = run_cli("sessions", "--port", str(server.port), "--json")
        assert code == 0
        doc = json.loads(out[out.index("{"):])
        assert doc["t"] == "status"
        assert doc["sessions"][0]["program"] == "xyz"

    def test_sessions_no_server_exits_two(self):
        import socket

        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code, out = run_cli("sessions", "--port", str(port))
        assert code == 2


class TestStoreCommands:
    """repro archive / replay / query / gc."""

    @pytest.fixture
    def populated(self, tmp_path):
        root = str(tmp_path / "arch")
        code, _ = run_cli("archive", root, "xyz")
        assert code == 0
        code, _ = run_cli("archive", root, "bank")
        assert code == 0
        return root

    def test_archive_workload(self, tmp_path):
        code, out = run_cli("archive", str(tmp_path / "a"), "xyz")
        assert code == 0
        assert "archived s000001-xyz" in out
        assert "verdict violation" in out
        assert "counterexample" in out

    def test_archive_requires_one_source(self, tmp_path):
        code, out = run_cli("archive", str(tmp_path / "a"))
        assert code == 2
        trace = str(tmp_path / "t.trace")
        run_cli("record", "xyz", trace)
        code, out = run_cli("archive", str(tmp_path / "a"), "xyz",
                            "--import-trace", trace)
        assert code == 2

    def test_archive_import_trace(self, tmp_path):
        trace = str(tmp_path / "t.trace")
        run_cli("record", "xyz", trace)
        code, out = run_cli("archive", str(tmp_path / "a"),
                            "--import-trace", trace,
                            "--spec", "(x > 0) -> [y == 0, y > z)")
        assert code == 0
        assert "verdict violation" in out

    def test_archive_import_missing_file(self, tmp_path):
        code, out = run_cli("archive", str(tmp_path / "a"),
                            "--import-trace", str(tmp_path / "nope.trace"))
        assert code == 2
        assert "error" in out

    def test_query_table_and_json(self, populated):
        import json

        code, out = run_cli("query", populated)
        assert code == 0
        assert "2 trace(s)" in out
        code, out = run_cli("query", populated, "--program", "bank",
                            "--json")
        assert code == 0
        doc = json.loads(out)
        assert [e["program"] for e in doc] == ["bank"]

    def test_query_empty(self, populated):
        code, out = run_cli("query", populated, "--min-events", "999")
        assert code == 0
        assert "no matching traces" in out

    def test_replay_expect_catalog(self, populated):
        code, out = run_cli("replay", populated, "--all",
                            "--expect-catalog")
        assert code == 0
        assert "all verdicts reproduced exactly" in out

    def test_replay_expect_catalog_detects_drift(self, populated):
        import json
        from pathlib import Path

        catalog = Path(populated) / "catalog.json"
        doc = json.loads(catalog.read_text())
        doc["entries"][0]["violations"] = 0
        doc["entries"][0]["counterexamples"] = []
        catalog.write_text(json.dumps(doc))
        code, out = run_cli("replay", populated, "--all",
                            "--expect-catalog")
        assert code == 1
        assert "DRIFT" in out

    def test_replay_single_id_new_spec(self, populated):
        code, out = run_cli("replay", populated, "s000001-xyz",
                            "--spec", "x >= -1")
        assert code == 0
        assert "clean" in out

    def test_replay_json_is_pure(self, populated):
        import json

        code, out = run_cli("replay", populated, "--all",
                            "--engine", "atomicity", "--json")
        assert code == 0
        results = json.loads(out)  # no progress lines before the document
        assert len(results) == 2
        assert all(r["engines"][0]["engine"] == "atomicity" for r in results)

    def test_replay_usage_errors(self, populated):
        code, _ = run_cli("replay", populated)
        assert code == 2
        code, _ = run_cli("replay", populated, "s000001-xyz", "--all")
        assert code == 2
        code, _ = run_cli("replay", populated, "--all", "--expect-catalog",
                          "--spec", "x >= 0")
        assert code == 2

    def test_replay_unknown_id(self, populated):
        code, out = run_cli("replay", populated, "s999999-nope")
        assert code == 2
        assert "error" in out

    def test_gc_dry_run_then_live(self, populated):
        code, out = run_cli("gc", populated, "--keep", "1", "--dry-run")
        assert code == 0
        assert "would remove 1 trace(s)" in out
        code, out = run_cli("gc", populated, "--keep", "1")
        assert code == 0
        assert "removed 1 trace(s)" in out
        code, out = run_cli("query", populated)
        assert "1 trace(s)" in out

    def test_gc_unbounded_warns(self, populated):
        code, out = run_cli("gc", populated)
        assert code == 0
        assert "warning" in out

    def test_serve_archive_flag(self, tmp_path):
        import threading

        from repro.server import AnalysisServer, ServerConfig

        # the CLI wires --archive straight into ServerConfig.archive_dir;
        # drive the config path end-to-end through a real server
        config = ServerConfig(port=0, archive_dir=str(tmp_path / "arch"))
        server = AnalysisServer(config).start()
        try:
            code, out = run_cli("attach", "xyz", "--port", str(server.port))
            assert code == 1
        finally:
            server.shutdown(drain=True)
        code, out = run_cli("replay", str(tmp_path / "arch"), "--all",
                            "--expect-catalog")
        assert code == 0
        assert "all verdicts reproduced exactly" in out
