"""Tests for the real-thread instrumented runtime (library-function route)."""

import threading

import pytest

from repro.core import all_accesses
from repro.core.vectorclock import lt
from repro.instrument import (
    InstrumentedRuntime,
    SharedArray,
    SharedStruct,
    SharedVar,
    run_threads,
    to_execution_result,
)


class TestSingleThread:
    def test_read_write_update(self):
        rt = InstrumentedRuntime({"x": 1})
        assert rt.read("x") == 1
        rt.write("x", 5)
        assert rt.read("x") == 5
        rt.update("x", lambda v: v * 2)
        assert rt.store["x"] == 10

    def test_undeclared_variable_rejected(self):
        rt = InstrumentedRuntime({})
        with pytest.raises(KeyError):
            rt.read("ghost")
        with pytest.raises(KeyError):
            rt.write("ghost", 1)

    def test_declare_dynamic(self):
        rt = InstrumentedRuntime({})
        rt.declare("d", 7)
        assert rt.read("d") == 7
        with pytest.raises(ValueError):
            rt.declare("d", 8)

    def test_events_and_messages_recorded(self):
        rt = InstrumentedRuntime({"x": 0})
        rt.read("x")
        rt.write("x", 1)
        rt.internal("thinking")
        assert [e.kind.name for e in rt.events] == ["READ", "WRITE", "INTERNAL"]
        assert len(rt.messages) == 1  # default relevance: writes

    def test_update_is_two_events(self):
        rt = InstrumentedRuntime({"x": 0})
        rt.update("x", lambda v: v + 1)
        assert [e.kind.name for e in rt.events] == ["READ", "WRITE"]

    def test_thread_index_stable(self):
        rt = InstrumentedRuntime({})
        assert rt.thread_index() == rt.thread_index() == 0

    def test_register_thread_explicit_index(self):
        rt = InstrumentedRuntime({})
        assert rt.register_thread(3) == 3
        assert rt.thread_index() == 3
        with pytest.raises(RuntimeError):
            rt.register_thread(1)


class TestRealThreads:
    def test_bodies_pinned_to_indices(self):
        rt = InstrumentedRuntime({"a": 0, "b": 0})

        def body_a(r):
            r.write("a", 1)

        def body_b(r):
            r.write("b", 1)

        run_threads(rt, [body_a, body_b])
        by_thread = {m.thread: m.event.var for m in rt.messages}
        assert by_thread == {0: "a", 1: "b"}

    def test_exceptions_propagate(self):
        rt = InstrumentedRuntime({"x": 0})

        def bad(r):
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            run_threads(rt, [bad])

    def test_empty_bodies_rejected(self):
        with pytest.raises(ValueError):
            run_threads(InstrumentedRuntime({}), [])

    def test_theorem3_holds_on_real_threads(self):
        """Whatever the OS did, MVC order must equal ground truth (§2.2)."""
        rt = InstrumentedRuntime({"x": 0, "y": 0}, relevance=all_accesses())

        def worker(r):
            for _ in range(5):
                v = r.read("x")
                r.write("x", v + 1)
                r.write("y", v)

        run_threads(rt, [worker] * 3)
        result = to_execution_result(rt)
        comp = result.computation()
        by_eid = {m.event.eid: m for m in result.messages}
        for a, b, truth in comp.relevant_pairs():
            ma, mb = by_eid[a.eid], by_eid[b.eid]
            assert ma.causally_precedes(mb) == truth
            assert lt(tuple(ma.clock), tuple(mb.clock)) == truth

    def test_locks_serialize_critical_sections(self):
        rt = InstrumentedRuntime({"c": 0})

        def worker(r):
            for _ in range(20):
                with r.lock("L"):
                    v = r.read("c")
                    r.write("c", v + 1)

        run_threads(rt, [worker] * 4)
        assert rt.store["c"] == 80  # no lost updates under the lock

    def test_lock_events_emitted(self):
        rt = InstrumentedRuntime({"c": 0}, relevance=all_accesses())

        def worker(r):
            with r.lock("L"):
                r.write("c", 1)

        run_threads(rt, [worker])
        kinds = [e.kind.name for e in rt.events]
        assert kinds == ["ACQUIRE", "WRITE", "RELEASE"]

    def test_sequential_consistency_of_event_log(self):
        """The recorded event order is a real total order consistent with
        per-thread program order."""
        rt = InstrumentedRuntime({"x": 0})

        def worker(r):
            for _ in range(10):
                r.update("x", lambda v: v + 1)

        run_threads(rt, [worker] * 3)
        seqs = {}
        for e in rt.events:
            assert e.seq == seqs.get(e.thread, 0) + 1
            seqs[e.thread] = e.seq


class TestSharedWrappers:
    def test_shared_var(self):
        rt = InstrumentedRuntime({"x": 0})
        x = SharedVar(rt, "x")
        x.set(3)
        assert x.get() == 3
        x.incr(2)
        assert x.get() == 5

    def test_shared_var_declares_initial(self):
        rt = InstrumentedRuntime({})
        v = SharedVar(rt, "fresh", initial=9)
        assert v.get() == 9

    def test_shared_var_undeclared_without_initial(self):
        rt = InstrumentedRuntime({})
        with pytest.raises(KeyError):
            SharedVar(rt, "ghost")

    def test_shared_array_slots_independent(self):
        rt = InstrumentedRuntime({})
        arr = SharedArray(rt, "a", [0, 0, 0])
        arr.set(1, 7)
        assert arr.get(1) == 7 and arr.get(0) == 0
        assert len(arr) == 3
        with pytest.raises(IndexError):
            arr.get(3)

    def test_shared_array_slots_are_distinct_clock_vars(self):
        rt = InstrumentedRuntime({}, relevance=all_accesses())
        arr = SharedArray(rt, "a", [0, 0])

        def w0(r):
            arr.set(0, 1)

        def w1(r):
            arr.set(1, 1)

        run_threads(rt, [w0, w1])
        m0, m1 = rt.messages
        assert m0.concurrent_with(m1)  # different slots never conflict

    def test_shared_struct_fields(self):
        rt = InstrumentedRuntime({})
        p = SharedStruct(rt, "pt", {"x": 1, "y": 2})
        p.x = 10
        assert p.x + p.y == 12
        with pytest.raises(AttributeError):
            p.z = 1
        with pytest.raises(AttributeError):
            _ = p.unknown

    def test_struct_field_clock_names(self):
        rt = InstrumentedRuntime({})
        SharedStruct(rt, "pt", {"x": 0})
        assert "pt.x" in rt.initial_store
