"""Tests for the AST instrumentor (the code-instrumentation route)."""

import pytest

from repro.core import all_accesses
from repro.instrument import InstrumentedRuntime, InstrumentError, instrument_function


# Module-level functions so inspect.getsource works.

def _simple():
    x = 5
    y = x + 1
    return y


def _augmented():
    c = c + 0  # noqa: F821 - read then write of shared c
    c += 3
    c *= 2
    return 0


def _control_flow():
    if flag == 1:  # noqa: F821
        out = 10
    else:
        out = 20
    total = 0
    for _i in range(3):
        total = total + out  # noqa: F821
    return 0


def _locals_untouched():
    local = 1
    local += 2
    x = local  # only x is shared
    return local


def _chained():
    x = y = 7  # noqa: F841 - both shared
    return 0


def _mixed_chain():
    x = tmp = 4  # x shared, tmp local
    return tmp


def _deleter():
    del x  # noqa: F821


def _globaler():
    global x
    x = 1


def _tuple_target():
    x, y = 1, 2  # noqa: F841


def _while_loop():
    n = 0
    while x > 0:  # noqa: F821
        x -= 1  # noqa: F821
        n += 1
    return n


def _nested_expression():
    return (x + y) * x  # noqa: F821


class TestRewriting:
    def test_plain_assignments(self):
        rt = InstrumentedRuntime({"x": 0, "y": 0})
        f = instrument_function(_simple, {"x", "y"}, rt)
        assert f() == 6
        assert rt.store == {"x": 5, "y": 6}

    def test_event_stream_shape(self):
        rt = InstrumentedRuntime({"x": 0, "y": 0}, relevance=all_accesses())
        f = instrument_function(_simple, {"x", "y"}, rt)
        f()
        assert [(e.kind.name, e.var) for e in rt.events] == [
            ("WRITE", "x"), ("READ", "x"), ("WRITE", "y"), ("READ", "y")]

    def test_augmented_assignments(self):
        rt = InstrumentedRuntime({"c": 5})
        f = instrument_function(_augmented, {"c"}, rt)
        f()
        assert rt.store["c"] == 16  # ((5+0)+3)*2

    def test_augmented_emits_read_and_write(self):
        rt = InstrumentedRuntime({"c": 0}, relevance=all_accesses())
        f = instrument_function(_augmented, {"c"}, rt)
        f()
        kinds = [e.kind.name for e in rt.events]
        assert kinds == ["READ", "WRITE"] * 3

    def test_control_flow_reads(self):
        rt = InstrumentedRuntime({"flag": 1, "out": 0, "total": 0})
        f = instrument_function(_control_flow, {"flag", "out", "total"}, rt)
        f()
        assert rt.store["out"] == 10
        assert rt.store["total"] == 30

    def test_locals_not_instrumented(self):
        rt = InstrumentedRuntime({"x": 0}, relevance=all_accesses())
        f = instrument_function(_locals_untouched, {"x"}, rt)
        assert f() == 3
        # only one shared event: the write of x
        assert [(e.kind.name, e.var) for e in rt.events] == [("WRITE", "x")]

    def test_chained_shared_targets(self):
        rt = InstrumentedRuntime({"x": 0, "y": 0})
        f = instrument_function(_chained, {"x", "y"}, rt)
        f()
        assert rt.store == {"x": 7, "y": 7}

    def test_mixed_chain_shared_and_local(self):
        rt = InstrumentedRuntime({"x": 0})
        f = instrument_function(_mixed_chain, {"x"}, rt)
        assert f() == 4
        assert rt.store["x"] == 4

    def test_while_loop_over_shared(self):
        rt = InstrumentedRuntime({"x": 3})
        f = instrument_function(_while_loop, {"x"}, rt)
        assert f() == 3
        assert rt.store["x"] == 0

    def test_nested_expression_reads(self):
        rt = InstrumentedRuntime({"x": 2, "y": 3}, relevance=all_accesses())
        f = instrument_function(_nested_expression, {"x", "y"}, rt)
        assert f() == 10
        reads = [e.var for e in rt.events]
        assert reads == ["x", "y", "x"]


class TestRejections:
    def test_delete_shared_rejected(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError, match="delete"):
            instrument_function(_deleter, {"x"}, rt)

    def test_global_shared_rejected(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError, match="global"):
            instrument_function(_globaler, {"x"}, rt)

    def test_tuple_target_rejected(self):
        rt = InstrumentedRuntime({"x": 0, "y": 0})
        with pytest.raises(InstrumentError, match="write pattern"):
            instrument_function(_tuple_target, {"x", "y"}, rt)

    def test_undeclared_shared_name_rejected(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError, match="not declared"):
            instrument_function(_simple, {"x", "y"}, rt)

    def test_lambda_rejected(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError):
            instrument_function(lambda: x, {"x"}, rt)  # noqa: F821


class TestSemanticsPreservation:
    def test_uninstrumented_names_see_globals(self):
        rt = InstrumentedRuntime({"x": 0})

        f = instrument_function(_uses_helper, {"x"}, rt)
        assert f() == 42
        assert rt.store["x"] == 42

    def test_signature_preserved(self):
        rt = InstrumentedRuntime({"acc": 0})
        f = instrument_function(_with_args, {"acc"}, rt)
        assert f(4, k=5) == 9
        assert rt.store["acc"] == 9

    def test_instrumented_marker(self):
        rt = InstrumentedRuntime({"x": 0})
        f = instrument_function(_simple, {"x"}, rt)
        assert f.__instrumented_shared__ == frozenset({"x"})


def _helper():
    return 42


def _uses_helper():
    x = _helper()  # noqa: F841
    return x


def _with_args(n, k=0):
    acc = n + k  # noqa: F841
    return acc


def _floordiv_aug():
    c //= 2  # noqa: F821
    return 0


def _chained_aug():
    # consecutive augmented assignments where each RHS reads other shared
    # names — the written value must thread through the runtime store.
    a += b  # noqa: F821
    b += a  # noqa: F821
    a += a  # noqa: F821
    return 0


def _walrus_shared():
    if (x := 3) > 2:  # noqa: F821
        pass


def _comp_target_shared():
    return [x for x in range(3)]  # noqa: F821


def _comp_reads_shared():
    return [i + x for i in range(3)]  # noqa: F821


def _lambda_param_shadow():
    f = lambda x: x + 1  # noqa: E731,F821
    return f(1)


def _nested_def_param_shadow():
    def inner(x):
        return x

    return inner(1)


def _with_as_shared():
    with open("/dev/null") as x:  # noqa: F821
        pass


def _starred_target():
    x, *rest = [1, 2, 3]  # noqa: F821,F841


def _ann_assign():
    x: int = 41  # noqa: F821
    y: int  # bare annotation: neither read nor write
    x += 1  # noqa: F821
    return 0


def _quiet_mix():
    noise = noise + 1  # noqa: F821
    x = noise * 10  # noqa: F821
    noise += 1  # noqa: F821
    return 0


def _nested_reader():
    def helper():
        return x + 1  # noqa: F821 - shared read inside a nested function

    y = helper()  # noqa: F841
    return 0


class TestMorePatterns:
    def test_floordiv_augmented(self):
        rt = InstrumentedRuntime({"c": 9})
        f = instrument_function(_floordiv_aug, {"c"}, rt)
        f()
        assert rt.store["c"] == 4

    def test_shared_read_inside_nested_function(self):
        rt = InstrumentedRuntime({"x": 5, "y": 0})
        f = instrument_function(_nested_reader, {"x", "y"}, rt)
        f()
        assert rt.store["y"] == 6

    def test_chained_augmented_assignments(self):
        rt = InstrumentedRuntime({"a": 1, "b": 2}, relevance=all_accesses())
        f = instrument_function(_chained_aug, {"a", "b"}, rt)
        f()
        # a=1+2=3, b=2+3=5, a=3+3=6 — every read sees the prior write.
        assert rt.store == {"a": 6, "b": 5}
        kinds = [(e.kind.name, e.var) for e in rt.events]
        assert kinds == [
            ("READ", "a"), ("READ", "b"), ("WRITE", "a"),
            ("READ", "b"), ("READ", "a"), ("WRITE", "b"),
            ("READ", "a"), ("READ", "a"), ("WRITE", "a")]

    def test_comprehension_reading_shared_allowed(self):
        rt = InstrumentedRuntime({"x": 10}, relevance=all_accesses())
        f = instrument_function(_comp_reads_shared, {"x"}, rt)
        assert f() == [10, 11, 12]
        assert [e.var for e in rt.events] == ["x", "x", "x"]

    def test_ann_assign_shared(self):
        rt = InstrumentedRuntime({"x": 0, "y": 0}, relevance=all_accesses())
        f = instrument_function(_ann_assign, {"x", "y"}, rt)
        f()
        assert rt.store["x"] == 42
        # bare `y: int` produced no event at all
        assert all(e.var == "x" for e in rt.events)


class TestScopeRebindRejections:
    """Constructs that would silently rebind a shared name must be refused
    (satellite: comprehensions, lambdas, nested defs — support or reject)."""

    def test_walrus_target_rejected(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError, match=":="):
            instrument_function(_walrus_shared, {"x"}, rt)

    def test_comprehension_target_rejected(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError,
                           match="comprehension target rebinds"):
            instrument_function(_comp_target_shared, {"x"}, rt)

    def test_lambda_param_shadow_rejected(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError, match="lambda parameter"):
            instrument_function(_lambda_param_shadow, {"x"}, rt)

    def test_nested_def_param_shadow_rejected(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError,
                           match="nested function parameter"):
            instrument_function(_nested_def_param_shadow, {"x"}, rt)

    def test_with_as_rejected(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError, match="'with ... as' rebinds"):
            instrument_function(_with_as_shared, {"x"}, rt)

    def test_starred_target_rejected(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError, match="write pattern"):
            instrument_function(_starred_target, {"x"}, rt)

    def test_entry_param_shadow_rejected(self):
        rt = InstrumentedRuntime({"acc": 0, "n": 0})
        with pytest.raises(InstrumentError, match="shadows the shared"):
            instrument_function(_with_args, {"acc", "n"}, rt)


class TestErrorSpans:
    """InstrumentError carries the offending construct's real file:line:col
    in the repository's shared span format."""

    def test_delete_span_points_into_this_file(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError) as exc:
            instrument_function(_deleter, {"x"}, rt)
        err = exc.value
        assert err.filename.endswith("test_rewriter.py")
        assert err.line == _deleter.__code__.co_firstlineno + 1
        assert err.col >= 1
        assert str(err).startswith(f"{err.filename}:{err.line}:{err.col}: ")
        assert "cannot delete shared variable 'x'" in err.problem

    def test_starred_span(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError) as exc:
            instrument_function(_starred_target, {"x"}, rt)
        assert exc.value.line == _starred_target.__code__.co_firstlineno + 1
        assert "unsupported write pattern to shared variable 'x'" in \
            exc.value.problem

    def test_global_span(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError) as exc:
            instrument_function(_globaler, {"x"}, rt)
        assert exc.value.line == _globaler.__code__.co_firstlineno + 1

    def test_traceback_lines_match_source_file(self):
        # compile() gets the real filename + line offsets, so runtime
        # tracebacks through instrumented code point at this file.
        rt = InstrumentedRuntime({"x": 0})
        f = instrument_function(_simple, {"x"}, rt)
        assert f.__code__.co_filename.endswith("test_rewriter.py")
        assert f.__code__.co_firstlineno == _simple.__code__.co_firstlineno


class TestRelevantOnlySlicing:
    def test_quiet_names_keep_store_coherent_without_events(self):
        rt = InstrumentedRuntime({"noise": 0, "x": 0},
                                 relevance=all_accesses(),
                                 relevant_only={"x"})
        f = instrument_function(_quiet_mix, {"noise", "x"}, rt,
                                relevant_only={"x"})
        f()
        assert rt.store == {"noise": 2, "x": 10}
        assert [e.var for e in rt.events] == ["x"]

    def test_full_run_matches_sliced_store(self):
        rt_full = InstrumentedRuntime({"noise": 0, "x": 0})
        instrument_function(_quiet_mix, {"noise", "x"}, rt_full)()
        rt_sliced = InstrumentedRuntime({"noise": 0, "x": 0},
                                        relevant_only={"x"})
        instrument_function(_quiet_mix, {"noise", "x"}, rt_sliced,
                            relevant_only={"x"})()
        assert rt_full.store == rt_sliced.store

    def test_relevant_marker(self):
        rt = InstrumentedRuntime({"noise": 0, "x": 0})
        f = instrument_function(_quiet_mix, {"noise", "x"}, rt,
                                relevant_only={"x"})
        assert f.__instrumented_relevant__ == frozenset({"x"})

    def test_relevant_only_must_be_subset_of_shared(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError, match="not in the shared set"):
            instrument_function(_simple, {"x"}, rt, relevant_only={"ghost"})


class TestRoundTripEquivalence:
    """Instrumented functions compute exactly what the plain Python would."""

    CASES = [
        (_augmented, {"c": 5}, {"c": 16}),
        (_chained_aug, {"a": 1, "b": 2}, {"a": 6, "b": 5}),
        (_control_flow, {"flag": 0, "out": 0, "total": 0},
         {"flag": 0, "out": 20, "total": 60}),
        (_ann_assign, {"x": 0, "y": 9}, {"x": 42, "y": 9}),
        (_while_loop, {"x": 5}, {"x": 0}),
    ]

    @pytest.mark.parametrize("fn,initial,expected", CASES,
                             ids=[c[0].__name__ for c in CASES])
    def test_final_store(self, fn, initial, expected):
        rt = InstrumentedRuntime(dict(initial))
        instrument_function(fn, set(initial), rt)()
        assert rt.store == expected
