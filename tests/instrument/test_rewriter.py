"""Tests for the AST instrumentor (the code-instrumentation route)."""

import pytest

from repro.core import all_accesses
from repro.instrument import InstrumentedRuntime, InstrumentError, instrument_function


# Module-level functions so inspect.getsource works.

def _simple():
    x = 5
    y = x + 1
    return y


def _augmented():
    c = c + 0  # noqa: F821 - read then write of shared c
    c += 3
    c *= 2
    return 0


def _control_flow():
    if flag == 1:  # noqa: F821
        out = 10
    else:
        out = 20
    total = 0
    for _i in range(3):
        total = total + out  # noqa: F821
    return 0


def _locals_untouched():
    local = 1
    local += 2
    x = local  # only x is shared
    return local


def _chained():
    x = y = 7  # noqa: F841 - both shared
    return 0


def _mixed_chain():
    x = tmp = 4  # x shared, tmp local
    return tmp


def _deleter():
    del x  # noqa: F821


def _globaler():
    global x
    x = 1


def _tuple_target():
    x, y = 1, 2  # noqa: F841


def _while_loop():
    n = 0
    while x > 0:  # noqa: F821
        x -= 1  # noqa: F821
        n += 1
    return n


def _nested_expression():
    return (x + y) * x  # noqa: F821


class TestRewriting:
    def test_plain_assignments(self):
        rt = InstrumentedRuntime({"x": 0, "y": 0})
        f = instrument_function(_simple, {"x", "y"}, rt)
        assert f() == 6
        assert rt.store == {"x": 5, "y": 6}

    def test_event_stream_shape(self):
        rt = InstrumentedRuntime({"x": 0, "y": 0}, relevance=all_accesses())
        f = instrument_function(_simple, {"x", "y"}, rt)
        f()
        assert [(e.kind.name, e.var) for e in rt.events] == [
            ("WRITE", "x"), ("READ", "x"), ("WRITE", "y"), ("READ", "y")]

    def test_augmented_assignments(self):
        rt = InstrumentedRuntime({"c": 5})
        f = instrument_function(_augmented, {"c"}, rt)
        f()
        assert rt.store["c"] == 16  # ((5+0)+3)*2

    def test_augmented_emits_read_and_write(self):
        rt = InstrumentedRuntime({"c": 0}, relevance=all_accesses())
        f = instrument_function(_augmented, {"c"}, rt)
        f()
        kinds = [e.kind.name for e in rt.events]
        assert kinds == ["READ", "WRITE"] * 3

    def test_control_flow_reads(self):
        rt = InstrumentedRuntime({"flag": 1, "out": 0, "total": 0})
        f = instrument_function(_control_flow, {"flag", "out", "total"}, rt)
        f()
        assert rt.store["out"] == 10
        assert rt.store["total"] == 30

    def test_locals_not_instrumented(self):
        rt = InstrumentedRuntime({"x": 0}, relevance=all_accesses())
        f = instrument_function(_locals_untouched, {"x"}, rt)
        assert f() == 3
        # only one shared event: the write of x
        assert [(e.kind.name, e.var) for e in rt.events] == [("WRITE", "x")]

    def test_chained_shared_targets(self):
        rt = InstrumentedRuntime({"x": 0, "y": 0})
        f = instrument_function(_chained, {"x", "y"}, rt)
        f()
        assert rt.store == {"x": 7, "y": 7}

    def test_mixed_chain_shared_and_local(self):
        rt = InstrumentedRuntime({"x": 0})
        f = instrument_function(_mixed_chain, {"x"}, rt)
        assert f() == 4
        assert rt.store["x"] == 4

    def test_while_loop_over_shared(self):
        rt = InstrumentedRuntime({"x": 3})
        f = instrument_function(_while_loop, {"x"}, rt)
        assert f() == 3
        assert rt.store["x"] == 0

    def test_nested_expression_reads(self):
        rt = InstrumentedRuntime({"x": 2, "y": 3}, relevance=all_accesses())
        f = instrument_function(_nested_expression, {"x", "y"}, rt)
        assert f() == 10
        reads = [e.var for e in rt.events]
        assert reads == ["x", "y", "x"]


class TestRejections:
    def test_delete_shared_rejected(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError, match="delete"):
            instrument_function(_deleter, {"x"}, rt)

    def test_global_shared_rejected(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError, match="global"):
            instrument_function(_globaler, {"x"}, rt)

    def test_tuple_target_rejected(self):
        rt = InstrumentedRuntime({"x": 0, "y": 0})
        with pytest.raises(InstrumentError, match="write pattern"):
            instrument_function(_tuple_target, {"x", "y"}, rt)

    def test_undeclared_shared_name_rejected(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError, match="not declared"):
            instrument_function(_simple, {"x", "y"}, rt)

    def test_lambda_rejected(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(InstrumentError):
            instrument_function(lambda: x, {"x"}, rt)  # noqa: F821


class TestSemanticsPreservation:
    def test_uninstrumented_names_see_globals(self):
        rt = InstrumentedRuntime({"x": 0})

        f = instrument_function(_uses_helper, {"x"}, rt)
        assert f() == 42
        assert rt.store["x"] == 42

    def test_signature_preserved(self):
        rt = InstrumentedRuntime({"acc": 0})
        f = instrument_function(_with_args, {"acc"}, rt)
        assert f(4, k=5) == 9
        assert rt.store["acc"] == 9

    def test_instrumented_marker(self):
        rt = InstrumentedRuntime({"x": 0})
        f = instrument_function(_simple, {"x"}, rt)
        assert f.__instrumented_shared__ == frozenset({"x"})


def _helper():
    return 42


def _uses_helper():
    x = _helper()  # noqa: F841
    return x


def _with_args(n, k=0):
    acc = n + k  # noqa: F841
    return acc


def _floordiv_aug():
    c //= 2  # noqa: F821
    return 0


def _nested_reader():
    def helper():
        return x + 1  # noqa: F821 - shared read inside a nested function

    y = helper()  # noqa: F841
    return 0


class TestMorePatterns:
    def test_floordiv_augmented(self):
        rt = InstrumentedRuntime({"c": 9})
        f = instrument_function(_floordiv_aug, {"c"}, rt)
        f()
        assert rt.store["c"] == 4

    def test_shared_read_inside_nested_function(self):
        rt = InstrumentedRuntime({"x": 5, "y": 0})
        f = instrument_function(_nested_reader, {"x", "y"}, rt)
        f()
        assert rt.store["y"] == 6
