"""E8: synchronization modeled as shared-variable writes prunes infeasible
runs from the lattice (paper §3.1)."""

from repro.core import all_accesses
from repro.lattice import ComputationLattice
from repro.sched import FixedScheduler, run_program
from repro.workloads import (
    handoff,
    locked_counter,
    producer_consumer,
    racy_counter,
)


def lattice_of(execution, variables):
    initial = {v: execution.initial_store[v] for v in variables}
    return ComputationLattice(execution.n_threads, initial, execution.messages)


class TestLockPruning:
    def test_locked_counter_lattice_is_a_chain(self):
        """Lock events totally order the critical sections, so the lattice
        of c-writes has exactly one run."""
        ex = run_program(locked_counter(2, 2), FixedScheduler([], strict=False))
        lat = lattice_of(ex, ("c",))
        assert lat.count_runs() == 1

    def test_racy_counter_lattice_is_a_chain_too(self):
        """Subtle: even unlocked, writes of the same variable are ordered by
        write-write causality — the *runs* don't vary; what varies across
        schedules is the data (lost updates), which prediction keeps fixed."""
        ex = run_program(racy_counter(2, 1), FixedScheduler([], strict=False))
        lat = lattice_of(ex, ("c",))
        assert lat.count_runs() == 1

    def test_unlocked_two_variables_do_interleave(self):
        """Writes of *different* variables stay permutable without locks."""
        from repro.sched.program import Program, Write, straightline

        p = Program(
            initial={"p": 0, "q": 0},
            threads=[straightline([Write("p", 1)]),
                     straightline([Write("q", 1)])],
        )
        ex = run_program(p, FixedScheduler([], strict=False))
        lat = lattice_of(ex, ("p", "q"))
        assert lat.count_runs() == 2

    def test_lock_brackets_order_cross_variable_writes(self):
        """With both writes inside the same lock, the 2 runs collapse to 1 —
        §3.1's 'causal dependency between any exit and any entry'."""
        from repro.sched.program import Acquire, Program, Release, Write, straightline

        p = Program(
            initial={"p": 0, "q": 0, "L": 0},
            threads=[straightline([Acquire("L"), Write("p", 1), Release("L")]),
                     straightline([Acquire("L"), Write("q", 1), Release("L")])],
        )
        ex = run_program(p, FixedScheduler([], strict=False),
                         relevance=all_accesses({"p", "q"}))
        lat = lattice_of(ex, ("p", "q"))
        assert lat.count_runs() == 1


class TestWaitNotifyEdges:
    def test_handoff_never_predicts_consume_before_produce(self):
        ex = run_program(handoff(), FixedScheduler([], strict=False))
        lat = lattice_of(ex, ("data", "done"))
        for run in lat.runs():
            labels = [m.event.label for m in run.messages]
            assert labels.index("data=42") < labels.index("done")

    def test_producer_consumer_orders_produce_consume(self):
        ex = run_program(producer_consumer(2), FixedScheduler([], strict=False))
        lat = lattice_of(ex, ("slot", "consumed"))
        for run in lat.runs():
            labels = [m.event.label for m in run.messages]
            for i in (1, 2):
                assert labels.index(f"produce {i}") < labels.index(f"consume {i}")

    def test_notify_edge_visible_in_clocks(self):
        ex = run_program(handoff(), FixedScheduler([], strict=False))
        data_msg = next(m for m in ex.messages if m.event.var == "data")
        done_msg = next(m for m in ex.messages if m.event.var == "done")
        assert data_msg.causally_precedes(done_msg)
