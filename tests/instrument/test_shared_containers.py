"""SharedDict / SharedList / real-thread conditions (§3.1 dynamic sharing)."""

import pytest

from repro.core import all_accesses
from repro.instrument import (
    InstrumentedRuntime,
    SharedDict,
    SharedList,
    run_threads,
    to_execution_result,
)


class TestSharedDict:
    def test_lazy_key_registration(self):
        rt = InstrumentedRuntime({})
        d = SharedDict(rt, "cfg")
        d["mode"] = "fast"
        assert "mode" in d
        assert d["mode"] == "fast"
        assert d.get("missing", 42) == 42

    def test_initial_keys(self):
        rt = InstrumentedRuntime({})
        d = SharedDict(rt, "cfg", {"a": 1, "b": 2})
        assert d.keys() == frozenset({"a", "b"})
        assert d["a"] + d["b"] == 3

    def test_missing_key_raises(self):
        rt = InstrumentedRuntime({})
        d = SharedDict(rt, "cfg")
        with pytest.raises(KeyError):
            d["ghost"]

    def test_per_key_clock_independence(self):
        rt = InstrumentedRuntime({}, relevance=all_accesses())
        d = SharedDict(rt, "m", {"a": 0, "b": 0})

        def wa(r):
            d["a"] = 1

        def wb(r):
            d["b"] = 1

        run_threads(rt, [wa, wb])
        m1, m2 = rt.messages
        assert m1.concurrent_with(m2)

    def test_same_key_causally_ordered(self):
        rt = InstrumentedRuntime({}, relevance=all_accesses())
        d = SharedDict(rt, "m", {"a": 0})

        def w1(r):
            d["a"] = 1

        def w2(r):
            d.update_key("a", lambda v: v + 1)

        run_threads(rt, [w1, w2])
        writes = [m for m in rt.messages if m.event.kind.is_write]
        a, b = writes
        assert a.causally_precedes(b) or b.causally_precedes(a)


class TestSharedList:
    def test_capacity_validation(self):
        rt = InstrumentedRuntime({})
        with pytest.raises(ValueError):
            SharedList(rt, "q", 0)

    def test_append_and_snapshot(self):
        rt = InstrumentedRuntime({})
        q = SharedList(rt, "q", 4)
        q.append("x")
        q.append("y")
        assert len(q) == 2
        assert q.snapshot() == ["x", "y"]

    def test_overflow(self):
        rt = InstrumentedRuntime({})
        q = SharedList(rt, "q", 1)
        q.append(1)
        with pytest.raises(IndexError):
            q.append(2)

    def test_index_bounds(self):
        rt = InstrumentedRuntime({})
        q = SharedList(rt, "q", 2)
        with pytest.raises(IndexError):
            q.get(2)
        with pytest.raises(IndexError):
            q.set(-1, 0)

    def test_append_event_shape(self):
        rt = InstrumentedRuntime({}, relevance=all_accesses())
        q = SharedList(rt, "q", 2)
        rt_events_before = len(rt.events)
        q.append("v")
        kinds = [(e.kind.name, e.var) for e in rt.events[rt_events_before:]]
        assert kinds == [("READ", "q.len"), ("WRITE", "q[0]"),
                         ("WRITE", "q.len")]

    def test_concurrent_appends_race_on_len(self):
        """Two unsynchronized appenders race on the length cursor — the race
        detector sees it."""
        from repro.analysis import find_races

        rt = InstrumentedRuntime({}, relevance=all_accesses(),
                                 sync_only_clocks=True)
        q = SharedList(rt, "q", 8)

        def appender(r):
            q.append("v")

        run_threads(rt, [appender, appender])
        races = find_races(to_execution_result(rt))
        assert any(r.var == "q.len" for r in races)


class TestRealThreadConditions:
    def test_notify_then_wait_proceeds(self):
        rt = InstrumentedRuntime({"d": 0})
        cond = rt.condition("c")
        cond.notify()
        cond.wait(timeout=5)  # sticky credit: no deadlock

    def test_wait_timeout(self):
        rt = InstrumentedRuntime({"d": 0})
        cond = rt.condition("c")
        with pytest.raises(TimeoutError):
            cond.wait(timeout=0.05)

    def test_handoff_edge_on_real_threads(self):
        rt = InstrumentedRuntime({"data": 0, "done": 0})

        def setter(r):
            r.write("data", 42)
            r.condition("c").notify()

        def waiter(r):
            r.condition("c").wait(timeout=10)
            v = r.read("data")
            r.write("done", 1 if v == 42 else -1)

        run_threads(rt, [setter, waiter])
        assert rt.store["done"] == 1
        msgs = {m.event.var: m for m in rt.messages if m.event.var in ("data", "done")}
        assert msgs["data"].causally_precedes(msgs["done"])

    def test_notify_all(self):
        rt = InstrumentedRuntime({"n": 0})

        def waiter(r):
            r.condition("c").wait(timeout=10)
            r.update("n", lambda v: v + 1)

        def notifier(r):
            import time

            time.sleep(0.05)  # let waiters block first
            r.condition("c").notify_all()

        run_threads(rt, [waiter, waiter, notifier])
        assert rt.store["n"] == 2

    def test_kinds_recorded(self):
        rt = InstrumentedRuntime({})
        cond = rt.condition("c")
        cond.notify()
        cond.wait(timeout=5)
        kinds = [e.kind.name for e in rt.events]
        assert kinds == ["NOTIFY", "WAKE"]
