"""The multi-session analysis server: admission, analysis, lifecycle."""

import json
import time

import pytest

from repro.observer import Observer
from repro.observer.reliable import ReliableTransportError, RetransmitConfig
from repro.server import (
    AnalysisServer,
    ServerConfig,
    ServerRejected,
    SessionState,
    attach,
    fetch_status,
)
from repro.workloads import XYZ_PROPERTY, XYZ_VARS


@pytest.fixture
def xyz_initial(xyz_execution):
    return {v: xyz_execution.initial_store[v] for v in XYZ_VARS}


def _standalone_counterexamples(execution, initial, spec):
    obs = Observer(execution.n_threads, initial, spec=spec)
    for m in execution.messages:
        obs.receive(m)
    obs.finish()
    return sorted(v.pretty(tuple(sorted(initial))) for v in obs.violations)


def _attach_and_stream(server, execution, initial, spec, **kw):
    session = attach(server.host, server.port,
                     n_threads=execution.n_threads, initial=initial,
                     spec=spec, **kw)
    for m in execution.messages:
        session.send(m)
    return session.close()


class TestEndToEnd:
    def test_verdict_matches_standalone_observer(self, xyz_execution,
                                                 xyz_initial):
        with AnalysisServer(ServerConfig(port=0, workers=2)) as srv:
            verdict = _attach_and_stream(srv, xyz_execution, xyz_initial,
                                         XYZ_PROPERTY, program="xyz")
        expected = _standalone_counterexamples(
            xyz_execution, xyz_initial, XYZ_PROPERTY)
        assert verdict.state == "finished"
        assert verdict.analyzed == len(xyz_execution.messages)
        assert sorted(verdict.counterexamples) == expected
        assert verdict.violations == len(expected) == 1
        assert verdict.sound
        assert not verdict.ok   # a violation was predicted

    def test_no_spec_session(self, xyz_execution, xyz_initial):
        with AnalysisServer(ServerConfig(port=0, workers=1)) as srv:
            verdict = _attach_and_stream(srv, xyz_execution, xyz_initial,
                                         spec=None)
        assert verdict.state == "finished"
        assert verdict.violations == 0
        assert verdict.ok

    def test_sequential_sessions_get_distinct_ids(self, xyz_execution,
                                                  xyz_initial):
        with AnalysisServer(ServerConfig(port=0, workers=1)) as srv:
            ids = []
            for _ in range(3):
                s = attach(srv.host, srv.port,
                           n_threads=xyz_execution.n_threads,
                           initial=xyz_initial, spec=XYZ_PROPERTY)
                ids.append(s.session_id)
                for m in xyz_execution.messages:
                    s.send(m)
                assert s.close().state == "finished"
        assert ids == [1, 2, 3]


class TestStatus:
    def test_status_reports_session_records(self, xyz_execution, xyz_initial):
        with AnalysisServer(ServerConfig(port=0, workers=1)) as srv:
            _attach_and_stream(srv, xyz_execution, xyz_initial, XYZ_PROPERTY,
                               program="xyz")
            assert srv.wait_idle(timeout=10.0)
            status = fetch_status(srv.host, srv.port)
        assert status["t"] == "status"
        assert status["server"]["active_sessions"] == 0
        assert status["server"]["finished"] == 1
        assert status["server"]["max_sessions"] == srv.config.max_sessions
        (record,) = status["sessions"]
        assert record["program"] == "xyz"
        assert record["state"] == SessionState.FINISHED.value
        assert record["violations"] == 1
        assert record["analyzed"] == len(xyz_execution.messages)
        # one JSON line end to end
        json.dumps(status)

    def test_status_is_one_json_line_on_the_wire(self, xyz_execution,
                                                 xyz_initial):
        import socket

        from repro.server.protocol import Hello, encode_frame

        with AnalysisServer(ServerConfig(port=0, workers=1)) as srv:
            with socket.create_connection((srv.host, srv.port)) as sock:
                sock.sendall(encode_frame(Hello(mode="status").to_frame()))
                data = b""
                while not data.endswith(b"\n"):
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    data += chunk
        assert data.count(b"\n") == 1
        assert json.loads(data)["t"] == "status"


class TestAdmissionControl:
    def test_capacity_reject_is_explicit_and_fast(self, xyz_execution,
                                                  xyz_initial):
        with AnalysisServer(ServerConfig(port=0, workers=1,
                                         max_sessions=1)) as srv:
            first = attach(srv.host, srv.port,
                           n_threads=xyz_execution.n_threads,
                           initial=xyz_initial, spec=XYZ_PROPERTY)
            t0 = time.monotonic()
            with pytest.raises(ServerRejected) as exc:
                attach(srv.host, srv.port,
                       n_threads=xyz_execution.n_threads,
                       initial=xyz_initial, spec=XYZ_PROPERTY)
            assert time.monotonic() - t0 < 5.0   # an answer, not a hang
            assert "capacity" in exc.value.reason
            # the admitted session is unaffected
            for m in xyz_execution.messages:
                first.send(m)
            assert first.close().state == "finished"
            # the slot frees once the reader retires the finished session,
            # which races our finack — poll briefly instead of flaking
            deadline = time.monotonic() + 5.0
            while True:
                try:
                    second = attach(srv.host, srv.port,
                                    n_threads=xyz_execution.n_threads,
                                    initial=xyz_initial, spec=XYZ_PROPERTY)
                    break
                except ServerRejected:
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.05)
            for m in xyz_execution.messages:
                second.send(m)
            assert second.close().state == "finished"
            status = fetch_status(srv.host, srv.port)
            # at least the explicit reject above; retries of the second
            # attach may have been counted too
            assert status["server"]["rejected"] >= 1

    def test_bad_spec_rejected_with_reason(self, srv_factory=None):
        with AnalysisServer(ServerConfig(port=0, workers=1)) as srv:
            with pytest.raises(ServerRejected) as exc:
                attach(srv.host, srv.port, n_threads=2, initial={"x": 0},
                       spec="missing > 0")
            assert "missing" in exc.value.reason

    def test_malformed_hello_rejected(self):
        import socket

        from repro.server.protocol import read_frame_line

        with AnalysisServer(ServerConfig(port=0, workers=1)) as srv:
            with socket.create_connection((srv.host, srv.port)) as sock:
                sock.sendall(b'{"t":"hello","v":999,"mode":"attach"}\n')
                reply = read_frame_line(sock)
        assert reply["t"] == "reject"
        assert "version" in reply["reason"]


class TestBackpressureAndOverload:
    def test_overload_fails_session_explicitly(self, xyz_execution,
                                               xyz_initial):
        # No workers: nothing drains, so a tiny queue must overflow and the
        # server must answer with an err frame -- not stall the client.
        config = ServerConfig(port=0, workers=0, max_queued_events=2,
                              overload_timeout=0.05)
        with AnalysisServer(config) as srv:
            session = attach(srv.host, srv.port,
                             n_threads=xyz_execution.n_threads,
                             initial=xyz_initial, spec=XYZ_PROPERTY,
                             config=RetransmitConfig(window=64))
            with pytest.raises(ReliableTransportError, match="overload"):
                for _ in range(200):
                    for m in xyz_execution.messages:
                        session.send(m)
                session.close(timeout=5.0)
            assert srv.wait_idle(timeout=10.0)
            status = fetch_status(srv.host, srv.port)
        (record,) = status["sessions"]
        assert record["state"] == SessionState.FAILED.value
        assert "overload" in record["error"]

    def test_queue_high_water_is_bounded(self, xyz_execution, xyz_initial):
        config = ServerConfig(port=0, workers=1, max_queued_events=2)
        with AnalysisServer(config) as srv:
            verdict = _attach_and_stream(srv, xyz_execution, xyz_initial,
                                         XYZ_PROPERTY)
            assert verdict.state == "finished"
            assert srv.wait_idle(timeout=10.0)
            (record,) = fetch_status(srv.host, srv.port)["sessions"]
        # DRAINING appends the fin sentinel, so the bound is max_queued + 1
        assert record["queue_high_water"] <= config.max_queued_events + 1


class TestLifecycle:
    def test_dropped_connection_fails_session(self, xyz_execution,
                                              xyz_initial):
        with AnalysisServer(ServerConfig(port=0, workers=1)) as srv:
            session = attach(srv.host, srv.port,
                             n_threads=xyz_execution.n_threads,
                             initial=xyz_initial, spec=XYZ_PROPERTY)
            session.send(xyz_execution.messages[0])
            session.abort()
            assert srv.wait_idle(timeout=10.0)
            (record,) = fetch_status(srv.host, srv.port)["sessions"]
        assert record["state"] == SessionState.FAILED.value
        assert "connection" in record["error"]

    def test_shutdown_returns_all_records_and_writes_results(
            self, xyz_execution, xyz_initial, tmp_path):
        results = tmp_path / "results.jsonl"
        srv = AnalysisServer(ServerConfig(port=0, workers=2,
                                          results_path=str(results))).start()
        for _ in range(2):
            verdict = _attach_and_stream(srv, xyz_execution, xyz_initial,
                                         XYZ_PROPERTY)
            assert verdict.state == "finished"
        assert srv.wait_idle(timeout=10.0)
        records = srv.shutdown()
        assert [r["state"] for r in records] == ["finished", "finished"]
        lines = [json.loads(l) for l in results.read_text().splitlines()]
        assert [r["session"] for r in lines] == [r["session"] for r in records]

    def test_attach_during_shutdown_rejected(self, xyz_execution,
                                             xyz_initial):
        srv = AnalysisServer(ServerConfig(port=0, workers=1)).start()
        srv.shutdown()
        with pytest.raises((ServerRejected, OSError)):
            attach(srv.host, srv.port, n_threads=xyz_execution.n_threads,
                   initial=xyz_initial, spec=XYZ_PROPERTY)

    def test_on_session_end_callback(self, xyz_execution, xyz_initial):
        seen = []
        config = ServerConfig(port=0, workers=1)
        with AnalysisServer(config, on_session_end=seen.append) as srv:
            _attach_and_stream(srv, xyz_execution, xyz_initial, XYZ_PROPERTY)
            assert srv.wait_idle(timeout=10.0)
        assert len(seen) == 1
        assert seen[0]["state"] == "finished"

    def test_record_history_is_bounded(self, xyz_execution, xyz_initial):
        config = ServerConfig(port=0, workers=1, max_records=2)
        with AnalysisServer(config) as srv:
            for _ in range(4):
                _attach_and_stream(srv, xyz_execution, xyz_initial,
                                   spec=None)
            assert srv.wait_idle(timeout=10.0)
            status = fetch_status(srv.host, srv.port)
        assert [r["session"] for r in status["sessions"]] == [3, 4]


class TestServerConfig:
    @pytest.mark.parametrize("kw", [
        {"max_sessions": 0},
        {"max_queued_events": 0},
        {"workers": -1},
        {"batch": 0},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            ServerConfig(**kw)


class TestServerMetrics:
    def test_session_lifecycle_metrics(self, xyz_execution, xyz_initial):
        from repro.obs import metrics

        metrics.enable(reset=True)
        try:
            with AnalysisServer(ServerConfig(port=0, workers=1,
                                             max_sessions=1)) as srv:
                _attach_and_stream(srv, xyz_execution, xyz_initial,
                                   XYZ_PROPERTY)
                with pytest.raises(ServerRejected):
                    # hold the slot open to force a rejection
                    holder = attach(srv.host, srv.port,
                                    n_threads=xyz_execution.n_threads,
                                    initial=xyz_initial, spec=XYZ_PROPERTY)
                    try:
                        attach(srv.host, srv.port,
                               n_threads=xyz_execution.n_threads,
                               initial=xyz_initial, spec=XYZ_PROPERTY)
                    finally:
                        for m in xyz_execution.messages:
                            holder.send(m)
                        holder.close()
                assert srv.wait_idle(timeout=10.0)
                snap = metrics.REGISTRY.snapshot()
        finally:
            metrics.disable()
        assert snap["server.sessions_started"]["value"] == 2
        assert snap["server.sessions_finished"]["value"] == 2
        assert snap["server.sessions_rejected"]["value"] == 1
        assert snap["server.active_sessions"]["value"] == 0
        assert (snap["server.events_ingested"]["value"]
                == 2 * len(xyz_execution.messages))
        # labelled per-session counters exist
        labelled = [n for n in snap
                    if metrics.base_name(n) == "server.session.events"]
        assert len(labelled) == 2


class TestStatusPortIsExplicit:
    def test_fetch_status_requires_a_port(self):
        # port 0 is never routable; the old default silently dialled it
        with pytest.raises(ValueError, match="port"):
            fetch_status()
        with pytest.raises(ValueError, match="port"):
            fetch_status("127.0.0.1", 0)


class TestRejectCategories:
    def test_capacity_reject_carries_a_why_category(self, xyz_execution,
                                                    xyz_initial):
        # routers spill on why == "capacity" and must not have to parse
        # the human-facing reason string
        import socket

        from repro.server.protocol import Hello, encode_frame, \
            read_frame_line

        with AnalysisServer(ServerConfig(port=0, workers=1,
                                         max_sessions=1)) as srv:
            holder = attach(srv.host, srv.port,
                            n_threads=xyz_execution.n_threads,
                            initial=xyz_initial, spec=XYZ_PROPERTY)
            try:
                hello = Hello(mode="attach",
                              n_threads=xyz_execution.n_threads,
                              initial={str(k): v
                                       for k, v in xyz_initial.items()},
                              spec=XYZ_PROPERTY)
                with socket.create_connection((srv.host, srv.port)) as sock:
                    sock.sendall(encode_frame(hello.to_frame()))
                    reply = read_frame_line(sock)
            finally:
                for m in xyz_execution.messages:
                    holder.send(m)
                holder.close()
        assert reply["t"] == "reject"
        assert reply["why"] == "capacity"
        assert "capacity" in reply["reason"]

    def test_bad_hello_reject_category(self):
        import socket

        from repro.server.protocol import read_frame_line

        with AnalysisServer(ServerConfig(port=0, workers=1)) as srv:
            with socket.create_connection((srv.host, srv.port)) as sock:
                sock.sendall(b'{"t":"hello","v":999,"mode":"attach"}\n')
                reply = read_frame_line(sock)
        assert reply["t"] == "reject"
        assert reply["why"] == "bad-hello"

    def test_rejects_metric_is_labelled_by_reason(self, xyz_execution,
                                                  xyz_initial):
        from repro.obs import metrics

        metrics.enable()
        metrics.REGISTRY.reset()
        try:
            with AnalysisServer(ServerConfig(port=0, workers=1,
                                             max_sessions=1)) as srv:
                holder = attach(srv.host, srv.port,
                                n_threads=xyz_execution.n_threads,
                                initial=xyz_initial, spec=XYZ_PROPERTY)
                try:
                    with pytest.raises(ServerRejected):
                        attach(srv.host, srv.port,
                               n_threads=xyz_execution.n_threads,
                               initial=xyz_initial, spec=XYZ_PROPERTY)
                finally:
                    for m in xyz_execution.messages:
                        holder.send(m)
                    holder.close()
                assert srv.wait_idle(timeout=10.0)
                snap = metrics.REGISTRY.snapshot()
        finally:
            metrics.disable()
        labelled = {n: v["value"] for n, v in snap.items()
                    if metrics.base_name(n) == "server.rejects"}
        assert sum(labelled.values()) >= 1
        assert any("reason=capacity" in n for n in labelled)
