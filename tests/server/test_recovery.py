"""Session journals: durability, torn-tail rollback, and replay parity.

The recovery layer's contract (``repro.server.recovery``): everything
checkpointed is recoverable, a kill mid-write rolls back to the last
durable prefix, and rebuilding an observer from the recovered prefix
reproduces the live observer's verdict exactly.
"""

import json

import pytest

from repro.observer import Observer
from repro.sched import RandomScheduler, run_program
from repro.server.recovery import (
    EVENTS_NAME,
    META_NAME,
    JournalError,
    SessionJournal,
    build_observer,
    scan_journals,
)
from repro.store import TraceArchive
from repro.store.format import read_trace_meta, read_trace_prefix
from repro.workloads import XYZ_PROPERTY, xyz_program


def _execution(seed=0):
    return run_program(xyz_program(), RandomScheduler(seed))


def _create(root, execution, session=1, token="cafe0123"):
    return SessionJournal.create(
        root, session=session, token=token, program="xyz",
        n_threads=execution.n_threads,
        initial=dict(execution.initial_store), spec=XYZ_PROPERTY,
        fault_tolerant=False)


class TestJournalRoundTrip:
    def test_create_open_roundtrip(self, tmp_path):
        execution = _execution()
        journal = _create(tmp_path, execution)
        assert journal.recover_and_open() == []
        for m in execution.messages:
            journal.write(m)
        journal.checkpoint()
        journal.close()

        reopened = SessionJournal.open_dir(journal.dir)
        meta = reopened.meta
        assert meta.session == 1
        assert meta.token == "cafe0123"
        assert meta.epoch == 1
        assert meta.program == "xyz"
        assert meta.spec == XYZ_PROPERTY
        recovered = reopened.recover_and_open()
        assert [m.to_json() for m in recovered] == [
            m.to_json() for m in execution.messages]
        reopened.close()

    def test_duplicate_create_refuses(self, tmp_path):
        execution = _execution()
        _create(tmp_path, execution)
        with pytest.raises(OSError):
            _create(tmp_path, execution)

    def test_bump_epoch_persists(self, tmp_path):
        journal = _create(tmp_path, _execution())
        journal.bump_epoch(4)
        assert SessionJournal.open_dir(journal.dir).meta.epoch == 4

    def test_delete_removes_directory(self, tmp_path):
        journal = _create(tmp_path, _execution())
        journal.recover_and_open()
        journal.write(_execution().messages[0])
        journal.delete()
        assert not journal.dir.exists()
        assert scan_journals(tmp_path) == ([], [])


class TestTornTailRollback:
    def test_kill_mid_write_rolls_back_to_checkpoint(self, tmp_path):
        execution = _execution()
        journal = _create(tmp_path, execution)
        journal.recover_and_open()
        for m in execution.messages[:2]:
            journal.write(m)
        durable = journal.checkpoint()
        for m in execution.messages[2:]:
            journal.write(m)   # buffered, never checkpointed
        journal._writer._abandon()   # simulate SIGKILL: no flush, no footer
        journal._writer = None

        # tear the tail mid-byte for good measure
        path = journal.dir / EVENTS_NAME
        path.write_bytes(path.read_bytes() + b"\x02\xff\xff")

        reopened = SessionJournal.open_dir(journal.dir)
        recovered = reopened.recover_and_open()
        assert [m.to_json() for m in recovered] == [
            m.to_json() for m in execution.messages[:durable]]
        # the rewrite is itself durable: read back the rolled-back file
        reopened.checkpoint()
        assert len(read_trace_prefix(path).messages) == durable
        reopened.close()

    def test_missing_events_file_recovers_empty(self, tmp_path):
        journal = _create(tmp_path, _execution())
        assert journal.recover_and_open() == []
        journal.close()

    def test_unreadable_header_starts_over(self, tmp_path):
        journal = _create(tmp_path, _execution())
        (journal.dir / EVENTS_NAME).write_bytes(b"garbage, not a trace")
        assert journal.recover_and_open() == []
        journal.close()


class TestScanJournals:
    def test_scan_orders_by_session_and_skips_corrupt(self, tmp_path):
        ex = _execution()
        _create(tmp_path, ex, session=7, token="bbbb")
        _create(tmp_path, ex, session=2, token="aaaa")
        bad = _create(tmp_path, ex, session=9, token="cccc")
        (bad.dir / META_NAME).write_text("{not json", encoding="utf-8")
        (tmp_path / "not-a-session").mkdir()
        (tmp_path / "session-empty").mkdir()   # no meta at all

        journals, skipped = scan_journals(tmp_path)
        assert [j.meta.session for j in journals] == [2, 7]
        assert sorted(name for name, _ in skipped) == [
            "session-cccc", "session-empty"]
        for _, reason in skipped:
            assert reason   # every skip carries a human-readable why

    def test_scan_missing_root_is_empty(self, tmp_path):
        assert scan_journals(tmp_path / "nope") == ([], [])


class TestReplayParity:
    def test_rebuilt_observer_matches_live(self, tmp_path):
        execution = _execution(seed=3)
        journal = _create(tmp_path, execution)
        journal.recover_and_open()

        live = build_observer(journal.meta)
        for m in execution.messages:
            live.receive(m)
            journal.write(m)
        journal.checkpoint()
        journal.close()

        reopened = SessionJournal.open_dir(journal.dir)
        recovered = reopened.recover_and_open()
        rebuilt = build_observer(reopened.meta)
        rebuilt.rebuild(recovered)
        live.finish()
        rebuilt.finish()
        pretty = lambda o: sorted(v.pretty(("x", "y", "z"))
                                  for v in o.violations)
        assert pretty(rebuilt) == pretty(live)
        assert len(live.violations) > 0   # the workload does violate
        reopened.close()


class TestSealAndAdopt:
    def test_sealed_journal_is_adoptable(self, tmp_path):
        execution = _execution()
        journal = _create(tmp_path / "journals", execution)
        journal.recover_and_open()
        for m in execution.messages:
            journal.write(m)
        extra = {"program": "xyz", "spec": XYZ_PROPERTY,
                 "n_threads": execution.n_threads, "verdict": "violation",
                 "violations": 1, "counterexamples": ["x=1, y=0, z=1"],
                 "final_clocks": [[2, 2], [1, 2]], "sound": True,
                 "wall_time_s": 0.1, "created_at": 1.0}
        sealed = journal.seal(extra=extra)
        assert read_trace_meta(sealed).catalog == extra

        archive = TraceArchive(tmp_path / "archive")
        entry = archive.adopt_sealed(sealed)
        assert entry.verdict == "violation"
        assert entry.events == len(execution.messages)
        assert not sealed.exists()   # moved, not copied
        assert archive.path_of(entry).exists()
