"""Supervised sessions: worker processes, crash restarts, crash loops.

With ``ServerConfig(supervised=True, checkpoint_dir=...)`` each session's
analysis runs in a spawned worker process.  The supervisor must (a) be
invisible when nothing crashes — verdict parity with a standalone
observer, (b) restart a SIGKILLed worker and recover through the journal
with the same verdict, and (c) give up on a crash loop with a reasoned
error instead of hanging the client.
"""

import os
import signal
import time

import pytest

from repro.observer import Observer
from repro.observer.reliable import ReliableTransportError
from repro.server import AnalysisServer, ServerConfig, attach
from repro.workloads import XYZ_PROPERTY, XYZ_VARS


@pytest.fixture
def xyz_initial(xyz_execution):
    return {v: xyz_execution.initial_store[v] for v in XYZ_VARS}


def _standalone(execution, initial, spec):
    obs = Observer(execution.n_threads, initial, spec=spec)
    for m in execution.messages:
        obs.receive(m)
    obs.finish()
    return sorted(v.pretty(tuple(sorted(initial))) for v in obs.violations)


def _config(tmp_path, **kw):
    kw.setdefault("port", 0)
    kw.setdefault("workers", 1)
    kw.setdefault("supervised", True)
    kw.setdefault("checkpoint_dir", str(tmp_path / "ckpt"))
    kw.setdefault("checkpoint_every", 2)
    kw.setdefault("drain_timeout", 60.0)
    return ServerConfig(**kw)


def _worker_pid(server, session_id, deadline=10.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        sess = server._sessions.get(session_id)
        proc = getattr(sess, "_proc", None) if sess else None
        if proc is not None and proc.pid is not None and proc.is_alive():
            return proc.pid
        time.sleep(0.02)
    raise RuntimeError("no live worker process")


class TestSupervisedParity:
    def test_clean_run_matches_standalone(self, tmp_path, xyz_execution,
                                          xyz_initial):
        records = []
        with AnalysisServer(_config(tmp_path),
                            on_session_end=records.append) as srv:
            session = attach(srv.host, srv.port,
                             n_threads=xyz_execution.n_threads,
                             initial=xyz_initial, spec=XYZ_PROPERTY,
                             program="xyz")
            for m in xyz_execution.messages:
                session.send(m)
            verdict = session.close(timeout=60.0)

        expected = _standalone(xyz_execution, xyz_initial, XYZ_PROPERTY)
        assert verdict.state == "finished"
        assert verdict.analyzed == len(xyz_execution.messages)
        assert sorted(verdict.counterexamples) == expected
        assert verdict.sound
        assert verdict.final_clocks   # supervised results carry clocks
        [record] = records
        assert record["supervised"] is True
        assert record["restarts"] == 0
        # terminal sessions clean their journals up
        assert list((tmp_path / "ckpt").iterdir()) == []

    def test_journal_archive_promotion(self, tmp_path, xyz_execution,
                                       xyz_initial):
        from repro.store import TraceArchive

        config = _config(tmp_path, archive_dir=str(tmp_path / "arch"))
        with AnalysisServer(config) as srv:
            session = attach(srv.host, srv.port,
                             n_threads=xyz_execution.n_threads,
                             initial=xyz_initial, spec=XYZ_PROPERTY,
                             program="xyz")
            for m in xyz_execution.messages:
                session.send(m)
            session.close(timeout=60.0)
        [entry] = TraceArchive(tmp_path / "arch").entries()
        assert entry.program == "xyz"
        assert entry.verdict == "violation"
        assert entry.events == len(xyz_execution.messages)


class TestWorkerCrash:
    def test_sigkill_mid_stream_recovers_with_parity(self, tmp_path,
                                                     xyz_execution,
                                                     xyz_initial):
        records = []
        with AnalysisServer(_config(tmp_path),
                            on_session_end=records.append) as srv:
            session = attach(srv.host, srv.port,
                             n_threads=xyz_execution.n_threads,
                             initial=xyz_initial, spec=XYZ_PROPERTY,
                             program="xyz")
            half = len(xyz_execution.messages) // 2
            for m in xyz_execution.messages[:half]:
                session.send(m)
            os.kill(_worker_pid(srv, session.session_id), signal.SIGKILL)
            for m in xyz_execution.messages[half:]:
                session.send(m)
            verdict = session.close(timeout=60.0)

        expected = _standalone(xyz_execution, xyz_initial, XYZ_PROPERTY)
        assert verdict.state == "finished"
        assert verdict.analyzed == len(xyz_execution.messages)
        assert sorted(verdict.counterexamples) == expected
        [record] = records
        assert record["restarts"] >= 1

    def test_crash_loop_fails_with_reason_not_hang(self, tmp_path,
                                                   xyz_execution,
                                                   xyz_initial):
        records = []
        config = _config(tmp_path, max_restarts=1, restart_backoff=0.05,
                         drain_timeout=30.0)
        with AnalysisServer(config, on_session_end=records.append) as srv:
            session = attach(srv.host, srv.port,
                             n_threads=xyz_execution.n_threads,
                             initial=xyz_initial, spec=XYZ_PROPERTY,
                             program="xyz")
            session.send(xyz_execution.messages[0])
            # kill every worker incarnation until the budget is exhausted
            started = time.monotonic()
            deadline = started + config.drain_timeout
            failed = None
            while time.monotonic() < deadline and failed is None:
                try:
                    os.kill(_worker_pid(srv, session.session_id,
                                        deadline=2.0), signal.SIGKILL)
                except RuntimeError:
                    pass
                sess = srv._sessions.get(session.session_id)
                if sess is not None and sess.done.is_set():
                    failed = sess.record()
                time.sleep(0.05)
            assert failed is not None, "crash loop never resolved"
            assert "crash loop" in failed["error"]
            assert "restart budget" in failed["error"]
            # the client is told, not left hanging
            with pytest.raises((ReliableTransportError, OSError)):
                for m in xyz_execution.messages[1:]:
                    session.send(m)
                session.close(timeout=30.0)
