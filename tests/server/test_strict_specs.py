"""``serve --strict-specs``: inconsistent specs die at the handshake."""

import pytest

from repro.server import AnalysisServer, ServerConfig, ServerRejected, attach
from repro.workloads import XYZ_PROPERTY, XYZ_VARS

UNSAT = "x == 0 and x == 1"
TRIVIAL = "x == 0 or x != 0"


@pytest.fixture
def xyz_initial(xyz_execution):
    return {v: xyz_execution.initial_store[v] for v in XYZ_VARS}


def _stream(server, execution, initial, spec, **kw):
    session = attach(server.host, server.port,
                     n_threads=execution.n_threads, initial=initial,
                     spec=spec, **kw)
    for m in execution.messages:
        session.send(m)
    return session.close()


class TestStrictSpecs:
    def test_unsat_spec_rejected_at_handshake(self, xyz_execution,
                                              xyz_initial):
        cfg = ServerConfig(port=0, workers=1, strict_specs=True)
        with AnalysisServer(cfg) as srv:
            with pytest.raises(ServerRejected) as exc:
                attach(srv.host, srv.port,
                       n_threads=xyz_execution.n_threads,
                       initial=xyz_initial, spec=UNSAT)
            assert "strict-specs" in str(exc.value)
            assert "SC301" in str(exc.value)

    def test_trivial_spec_rejected(self, xyz_execution, xyz_initial):
        cfg = ServerConfig(port=0, workers=1, strict_specs=True)
        with AnalysisServer(cfg) as srv:
            with pytest.raises(ServerRejected) as exc:
                attach(srv.host, srv.port,
                       n_threads=xyz_execution.n_threads,
                       initial=xyz_initial, spec=TRIVIAL)
            assert "SC302" in str(exc.value)

    def test_bad_engine_selection_rejected(self, xyz_execution, xyz_initial):
        cfg = ServerConfig(port=0, workers=1, strict_specs=True)
        with AnalysisServer(cfg) as srv:
            with pytest.raises(ServerRejected) as exc:
                attach(srv.host, srv.port,
                       n_threads=xyz_execution.n_threads,
                       initial=xyz_initial, spec=XYZ_PROPERTY,
                       engines=["ltl:" + UNSAT])
            assert "SC301" in str(exc.value)

    def test_clean_spec_admitted_and_analyzed(self, xyz_execution,
                                              xyz_initial):
        cfg = ServerConfig(port=0, workers=1, strict_specs=True)
        with AnalysisServer(cfg) as srv:
            verdict = _stream(srv, xyz_execution, xyz_initial, XYZ_PROPERTY)
        assert verdict.state == "finished"
        assert verdict.violations == 1

    def test_rejection_counts_in_status(self, xyz_execution, xyz_initial):
        cfg = ServerConfig(port=0, workers=1, strict_specs=True)
        with AnalysisServer(cfg) as srv:
            with pytest.raises(ServerRejected):
                attach(srv.host, srv.port,
                       n_threads=xyz_execution.n_threads,
                       initial=xyz_initial, spec=UNSAT)
            assert srv.status()["server"]["rejected"] == 1

    def test_default_off_admits_unsat_spec(self, xyz_execution, xyz_initial):
        with AnalysisServer(ServerConfig(port=0, workers=1)) as srv:
            verdict = _stream(srv, xyz_execution, xyz_initial, UNSAT)
        assert verdict.state == "finished"   # burns the worker, as before
