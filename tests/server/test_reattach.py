"""Client re-attach: resume tokens, epochs, replay, daemon restart.

The re-attach protocol's promises: a dropped connection resumes
transparently (same verdict as an undisturbed run), a wrong token is
rejected, a restarted daemon readmits journaled sessions for resume, and
a server that acknowledges the stream but never produces a result raises
:class:`ResultTimeout` instead of hanging — plus the accept-loop error
accounting satellite.
"""

import errno
import json
import socket
import threading
import time

import pytest

from repro.obs import metrics as _metrics
from repro.observer import Observer
from repro.server import (
    AnalysisServer,
    ReconnectPolicy,
    ResultTimeout,
    ServerConfig,
    ServerRejected,
    attach,
)
from repro.server.client import _handshake
from repro.server.protocol import Hello
from repro.workloads import XYZ_PROPERTY, XYZ_VARS


@pytest.fixture
def xyz_initial(xyz_execution):
    return {v: xyz_execution.initial_store[v] for v in XYZ_VARS}


def _standalone(execution, initial, spec):
    obs = Observer(execution.n_threads, initial, spec=spec)
    for m in execution.messages:
        obs.receive(m)
    obs.finish()
    return sorted(v.pretty(tuple(sorted(initial))) for v in obs.violations)


def _drop(session):
    try:
        session._sender._sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass


class TestResume:
    def test_drop_and_resume_has_verdict_parity(self, xyz_execution,
                                                xyz_initial):
        config = ServerConfig(port=0, workers=2, resume_timeout=10.0)
        with AnalysisServer(config) as srv:
            session = attach(srv.host, srv.port,
                             n_threads=xyz_execution.n_threads,
                             initial=xyz_initial, spec=XYZ_PROPERTY,
                             reconnect=ReconnectPolicy(max_attempts=8,
                                                       backoff=0.05))
            half = len(xyz_execution.messages) // 2
            for m in xyz_execution.messages[:half]:
                session.send(m)
            _drop(session)
            for m in xyz_execution.messages[half:]:
                session.send(m)
            verdict = session.close(timeout=60.0)
        expected = _standalone(xyz_execution, xyz_initial, XYZ_PROPERTY)
        assert verdict.state == "finished"
        assert verdict.analyzed == len(xyz_execution.messages)
        assert sorted(verdict.counterexamples) == expected
        assert session.reconnects >= 1
        assert session.epoch >= 2

    def test_resume_with_wrong_token_is_rejected(self, xyz_execution,
                                                 xyz_initial):
        config = ServerConfig(port=0, workers=1, resume_timeout=10.0)
        with AnalysisServer(config) as srv:
            session = attach(srv.host, srv.port,
                             n_threads=xyz_execution.n_threads,
                             initial=xyz_initial, spec=XYZ_PROPERTY)
            hello = Hello(mode="resume", session=session.session_id,
                          token="0000000000000000", epoch=1)
            with pytest.raises(ServerRejected, match="token mismatch"):
                _handshake(srv.host, srv.port, hello, 5.0)
            session.abort()

    def test_resume_of_unknown_session_is_rejected(self):
        with AnalysisServer(ServerConfig(port=0, workers=1,
                                         resume_timeout=5.0)) as srv:
            hello = Hello(mode="resume", session=404, token="cafe", epoch=1)
            with pytest.raises(ServerRejected, match="no such live session"):
                _handshake(srv.host, srv.port, hello, 5.0)

    def test_detached_session_expires_after_window(self, xyz_execution,
                                                   xyz_initial):
        records = []
        config = ServerConfig(port=0, workers=1, resume_timeout=0.2)
        with AnalysisServer(config, on_session_end=records.append) as srv:
            session = attach(srv.host, srv.port,
                             n_threads=xyz_execution.n_threads,
                             initial=xyz_initial, spec=XYZ_PROPERTY)
            session.send(xyz_execution.messages[0])
            session.abort()
            deadline = time.monotonic() + 10.0
            while not records and time.monotonic() < deadline:
                time.sleep(0.02)
        [record] = records
        assert record["state"] == "failed"
        assert "did not resume" in record["error"]


class TestDaemonRestart:
    def test_recover_readmits_and_client_resumes(self, tmp_path,
                                                 xyz_execution, xyz_initial):
        ckpt = str(tmp_path / "ckpt")
        base = dict(workers=2, supervised=True, checkpoint_dir=ckpt,
                    checkpoint_every=1, resume_timeout=30.0,
                    drain_timeout=60.0)
        first = AnalysisServer(ServerConfig(port=0, **base)).start()
        port = first.port
        session = attach(first.host, port,
                         n_threads=xyz_execution.n_threads,
                         initial=xyz_initial, spec=XYZ_PROPERTY,
                         program="xyz",
                         reconnect=ReconnectPolicy(max_attempts=12,
                                                   backoff=0.1))
        half = len(xyz_execution.messages) // 2
        for m in xyz_execution.messages[:half]:
            session.send(m)
        deadline = time.monotonic() + 10.0   # wait for a durable prefix
        sess = first._sessions[session.session_id]
        while sess._durable == 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        first.shutdown(drain=False)   # journals survive a daemon shutdown

        # rebinding the very same port can briefly lose to lingering
        # connection state from the first daemon; retry like an operator
        second = None
        deadline = time.monotonic() + 10.0
        while second is None:
            try:
                second = AnalysisServer(
                    ServerConfig(port=port, recover=True, **base)).start()
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.1)
        try:
            for m in xyz_execution.messages[half:]:
                session.send(m)
            verdict = session.close(timeout=60.0)
        finally:
            second.shutdown()
        expected = _standalone(xyz_execution, xyz_initial, XYZ_PROPERTY)
        assert verdict.state == "finished"
        assert verdict.analyzed == len(xyz_execution.messages)
        assert sorted(verdict.counterexamples) == expected
        assert session.reconnects >= 1


class _FakeServer:
    """Acks every message and the fin, but never sends a result frame."""

    def __init__(self):
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.port = self.sock.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        conn, _ = self.sock.accept()
        with conn, conn.makefile("r", encoding="utf-8") as reader:
            reader.readline()   # hello
            conn.sendall((json.dumps(
                {"t": "helloack", "session": 1, "epoch": 1,
                 "token": "feed"}) + "\n").encode())
            for line in reader:
                d = json.loads(line)
                if d.get("t") == "msg":
                    conn.sendall((json.dumps(
                        {"t": "ack", "seq": d["seq"]}) + "\n").encode())
                elif d.get("t") == "fin":
                    conn.sendall(b'{"t": "finack"}\n')
                    # keep reading; never send a result

    def close(self):
        self.sock.close()


class TestResultTimeout:
    def test_acked_stream_without_result_raises(self, xyz_execution,
                                                xyz_initial):
        fake = _FakeServer()
        try:
            session = attach("127.0.0.1", fake.port,
                             n_threads=xyz_execution.n_threads,
                             initial=xyz_initial, spec=XYZ_PROPERTY)
            for m in xyz_execution.messages:
                session.send(m)
            started = time.monotonic()
            with pytest.raises(ResultTimeout, match="no result frame"):
                session.close(timeout=0.5)
            assert time.monotonic() - started < 10.0
        finally:
            fake.close()


class _FlakyAcceptSocket:
    """EMFILE twice (transient), then EBADF (fatal)."""

    def __init__(self):
        self.calls = 0

    def accept(self):
        self.calls += 1
        if self.calls <= 2:
            raise OSError(errno.EMFILE, "too many open files")
        raise OSError(errno.EBADF, "bad file descriptor")


class TestAcceptErrors:
    def test_accept_errors_are_counted_and_logged_once(self, caplog):
        _metrics.enable(reset=True)
        try:
            srv = AnalysisServer(ServerConfig(port=0, workers=1))
            stub = _FlakyAcceptSocket()
            srv._server = stub
            with caplog.at_level("WARNING", logger="repro.server"):
                srv._accept_loop()   # returns on the fatal errno
            assert stub.calls == 3
            emfile = _metrics.REGISTRY.get(
                "server.accept_errors{errno=%d}" % errno.EMFILE)
            ebadf = _metrics.REGISTRY.get(
                "server.accept_errors{errno=%d}" % errno.EBADF)
            assert emfile is not None and emfile.value == 2
            assert ebadf is not None and ebadf.value == 1
            # one log line per distinct errno, not per occurrence
            warnings = [r for r in caplog.records
                        if "accept" in r.getMessage()]
            assert len(warnings) == 2
        finally:
            _metrics.disable()
