"""Soak: many simultaneous clients, verdicts identical to standalone.

The acceptance bar for the server: with at least 8 clients streaming
mixed workloads concurrently, every session finishes and its verdicts
(count *and* counterexample text) match a standalone
:class:`~repro.observer.observer.Observer` fed the same execution.
"""

import threading

import pytest

from repro.observer import Observer
from repro.sched import RandomScheduler, run_program
from repro.server import AnalysisServer, ServerConfig, attach
from repro.workloads import (
    AUDIT_PROPERTY,
    LANDING_PROPERTY,
    XYZ_PROPERTY,
    landing_controller,
    racy_counter,
    transfer_program,
    xyz_program,
)

_WORKLOADS = [
    ("xyz", xyz_program, XYZ_PROPERTY, ("x", "y", "z")),
    ("landing", landing_controller, LANDING_PROPERTY,
     ("landing", "approved", "radio")),
    ("bank", transfer_program, AUDIT_PROPERTY, ("a", "b", "audited")),
    ("counter", lambda: racy_counter(2, 1), "c >= 0", ("c",)),
]


def _make_run(name, factory, spec, variables, seed):
    execution = run_program(factory(), RandomScheduler(seed))
    initial = {v: execution.initial_store[v] for v in variables}
    observer = Observer(execution.n_threads, initial, spec=spec)
    for m in execution.messages:
        observer.receive(m)
    observer.finish()
    # the server prints counterexamples over sorted(spec variables)
    expected = sorted(v.pretty(tuple(sorted(variables)))
                      for v in observer.violations)
    return execution, initial, expected


class TestSoak:
    @pytest.mark.parametrize("n_clients", [8])
    def test_concurrent_clients_match_standalone(self, n_clients):
        runs = []
        for i in range(n_clients):
            name, factory, spec, variables = _WORKLOADS[i % len(_WORKLOADS)]
            runs.append((name, spec,
                         *_make_run(name, factory, spec, variables, seed=i)))

        config = ServerConfig(port=0, workers=3, max_sessions=n_clients,
                              max_queued_events=64)
        results = [None] * n_clients
        errors = [None] * n_clients
        barrier = threading.Barrier(n_clients)

        with AnalysisServer(config) as srv:
            def client(i):
                name, spec, execution, initial, _ = runs[i]
                try:
                    session = attach(srv.host, srv.port,
                                     n_threads=execution.n_threads,
                                     initial=initial, spec=spec, program=name)
                    barrier.wait(timeout=30)   # all sessions live at once
                    for m in execution.messages:
                        session.send(m)
                    results[i] = session.close(timeout=60)
                except Exception as exc:  # noqa: BLE001 - reported by assert
                    errors[i] = exc

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(n_clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not any(t.is_alive() for t in threads)

        assert errors == [None] * n_clients
        for i, verdict in enumerate(results):
            name, spec, execution, initial, expected = runs[i]
            assert verdict is not None, f"client {i} ({name}) got no verdict"
            assert verdict.state == "finished", (name, verdict)
            assert verdict.analyzed == len(execution.messages), (name, verdict)
            assert verdict.sound, (name, verdict)
            assert sorted(verdict.counterexamples) == expected, (
                f"client {i} ({name}): server verdicts diverge from the "
                f"standalone observer")

    def test_sessions_overlap_for_real(self):
        """The registry actually holds 8 concurrent sessions (the soak
        above could in principle pass with serialized attaches)."""
        n = 8
        config = ServerConfig(port=0, workers=2, max_sessions=n)
        with AnalysisServer(config) as srv:
            name, factory, spec, variables = _WORKLOADS[0]
            execution, initial, _ = _make_run(name, factory, spec, variables,
                                              seed=1)
            sessions = [attach(srv.host, srv.port,
                               n_threads=execution.n_threads,
                               initial=initial, spec=spec, program=name)
                        for _ in range(n)]
            with srv._lock:
                live = len(srv._sessions)
            assert live == n
            for s in sessions:
                for m in execution.messages:
                    s.send(m)
                assert s.close().state == "finished"
