"""Session-frame protocol: hello validation and framing."""

import json
import socket
import threading

import pytest

from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Hello,
    ProtocolError,
    encode_frame,
    read_frame_line,
)


class TestHello:
    def test_attach_round_trip(self):
        h = Hello(mode="attach", program="xyz", n_threads=2,
                  initial={"x": -1, "y": 0}, spec="x > 0",
                  fault_tolerant=True)
        d = json.loads(encode_frame(h.to_frame()))
        assert d["t"] == "hello"
        assert d["v"] == PROTOCOL_VERSION
        assert Hello.from_frame(d) == h

    def test_status_round_trip(self):
        h = Hello(mode="status")
        assert Hello.from_frame(h.to_frame()) == h

    def test_status_frame_omits_session_params(self):
        d = Hello(mode="status").to_frame()
        assert "n_threads" not in d and "initial" not in d

    def test_unknown_mode_rejected(self):
        with pytest.raises(ProtocolError, match="mode"):
            Hello(mode="stream")

    def test_attach_needs_threads(self):
        with pytest.raises(ProtocolError, match="n_threads"):
            Hello(mode="attach", n_threads=0)

    def test_version_mismatch_rejected(self):
        d = Hello(mode="status").to_frame()
        d["v"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            Hello.from_frame(d)

    def test_wrong_frame_type_rejected(self):
        with pytest.raises(ProtocolError, match="hello"):
            Hello.from_frame({"t": "msg", "v": PROTOCOL_VERSION})

    @pytest.mark.parametrize("patch, match", [
        ({"n_threads": "two"}, "n_threads"),
        ({"initial": [1, 2]}, "initial"),
        ({"spec": 7}, "spec"),
        ({"program": 7}, "program"),
    ])
    def test_malformed_attach_fields(self, patch, match):
        d = Hello(mode="attach", n_threads=2, initial={"x": 0}).to_frame()
        d.update(patch)
        with pytest.raises(ProtocolError, match=match):
            Hello.from_frame(d)


class TestReadFrameLine:
    def _pipe(self):
        a, b = socket.socketpair()
        return a, b

    def test_reads_exactly_one_line(self):
        a, b = self._pipe()
        try:
            a.sendall(b'{"t":"helloack","session":1}\n{"t":"ack","seq":0}\n')
            d = read_frame_line(b)
            assert d == {"t": "helloack", "session": 1}
            # the second line must still be in the socket, untouched
            assert b.recv(64).startswith(b'{"t":"ack"')
        finally:
            a.close(); b.close()

    def test_eof_mid_line(self):
        a, b = self._pipe()
        try:
            a.sendall(b'{"t":"hel')
            a.close()
            with pytest.raises(ProtocolError, match="closed"):
                read_frame_line(b)
        finally:
            b.close()

    def test_oversize_line(self):
        a, b = self._pipe()
        try:
            def feed():
                try:
                    a.sendall(b"x" * 4096)
                except OSError:
                    pass
            t = threading.Thread(target=feed, daemon=True)
            t.start()
            with pytest.raises(ProtocolError, match="exceeds"):
                read_frame_line(b, max_bytes=1024)
            t.join()
        finally:
            a.close(); b.close()

    def test_non_object_frame(self):
        a, b = self._pipe()
        try:
            a.sendall(b"[1,2,3]\n")
            with pytest.raises(ProtocolError, match="object"):
                read_frame_line(b)
        finally:
            a.close(); b.close()

    def test_bad_json(self):
        a, b = self._pipe()
        try:
            a.sendall(b"{broken\n")
            with pytest.raises(ProtocolError, match="JSON"):
                read_frame_line(b)
        finally:
            a.close(); b.close()

    def test_default_bound_is_sane(self):
        assert MAX_FRAME_BYTES >= 65536
