"""FleetConfig: shard config derivation and the session-id stride."""

import pytest

from repro.fleet import SESSION_STRIDE, FleetConfig, shard_of_session


class TestStride:
    def test_shard_of_session_inverts_session_id_base(self):
        config = FleetConfig(shards=4)
        for index in range(4):
            base = config.shard_config(index).session_id_base
            assert base == index * SESSION_STRIDE + 1
            assert shard_of_session(base) == index
            assert shard_of_session(base + SESSION_STRIDE - 1) == index

    def test_stride_is_disjoint_across_shards(self):
        config = FleetConfig(shards=3)
        bases = [config.shard_config(i).session_id_base for i in range(3)]
        assert len(set(bases)) == 3
        assert all(b2 - b1 == SESSION_STRIDE
                   for b1, b2 in zip(bases, bases[1:]))


class TestShardConfig:
    def test_pass_throughs(self):
        config = FleetConfig(shards=2, max_sessions=5, workers=3,
                             strict_specs=True,
                             default_engines=("ltl", "atomicity"))
        sc = config.shard_config(1)
        assert sc.max_sessions == 5
        assert sc.workers == 3
        assert sc.strict_specs
        assert sc.default_engines == ("ltl", "atomicity")
        assert sc.port == 0   # every shard binds its own ephemeral port

    def test_archive_dirs_are_per_shard_with_namespace(self, tmp_path):
        config = FleetConfig(shards=2, archive_dir=str(tmp_path))
        sc0, sc1 = config.shard_config(0), config.shard_config(1)
        assert sc0.archive_dir.endswith("shard-00")
        assert sc1.archive_dir.endswith("shard-01")
        assert sc0.archive_namespace == "sh00"
        assert sc1.archive_namespace == "sh01"

    def test_no_archive_means_no_namespace(self):
        sc = FleetConfig(shards=1).shard_config(0)
        assert sc.archive_dir is None
        assert sc.archive_namespace == ""

    def test_supervised_derives_per_shard_checkpoints(self, tmp_path):
        config = FleetConfig(shards=2, supervised=True,
                             checkpoint_dir=str(tmp_path))
        sc = config.shard_config(1)
        assert sc.supervised
        assert sc.checkpoint_dir.endswith("shard-01")
        assert not sc.recover
        assert config.shard_config(1, recover=True).recover

    def test_recover_needs_supervision(self, tmp_path):
        # an unsupervised shard has no journals to rescan: recover=True
        # must not leak into its ServerConfig (which would reject it)
        sc = FleetConfig(shards=1).shard_config(0, recover=True)
        assert not sc.recover

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            FleetConfig(shards=0)
        with pytest.raises(ValueError):
            FleetConfig(supervised=True)   # no checkpoint_dir
        with pytest.raises(ValueError):
            FleetConfig(shards=2).shard_config(2)
