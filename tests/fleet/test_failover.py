"""Shard failover: SIGKILL the owning shard mid-stream, lose nothing.

The chain under test: supervisor notices the dead process, respawns the
slot with ``recover=True`` (same checkpoint directory, generation + 1);
the broken splice kicks the client off; its :class:`ReconnectPolicy`
re-dials the *router*, whose session-id stride lands the resume on the
reborn shard; journal recovery plus idempotent resend close the gap.
The verdict must equal a fault-free run's — zero session loss.
"""

import time

import pytest

from repro.fleet import AnalysisFleet, FleetConfig, shard_of_session
from repro.observer.reliable import RetransmitConfig
from repro.server import ReconnectPolicy, attach
from repro.workloads import XYZ_PROPERTY, XYZ_VARS


@pytest.fixture
def xyz_initial(xyz_execution):
    return {v: xyz_execution.initial_store[v] for v in XYZ_VARS}


def _fleet_config(tmp_path) -> FleetConfig:
    return FleetConfig(
        shards=2, workers=1, supervised=True,
        checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_every=2,
        resume_timeout=15.0,
        heartbeat_interval=0.1, heartbeat_timeout=1.0,
        restart_backoff=0.05, restart_backoff_cap=0.2)


def _run(fleet, execution, initial, kill=False):
    session = attach(
        fleet.host, fleet.port, n_threads=execution.n_threads,
        initial=initial, spec=XYZ_PROPERTY, fault_tolerant=True,
        config=RetransmitConfig(window=64),
        reconnect=ReconnectPolicy(max_attempts=10, backoff=0.1))
    messages = list(execution.messages)
    half = len(messages) // 2
    for m in messages[:half]:
        session.send(m)
    if kill:
        slot = shard_of_session(session.session_id)
        assert fleet.supervisor.kill_shard(slot) is not None
    for m in messages[half:]:
        session.send(m)
    verdict = session.close(timeout=60.0)
    return session, verdict


class TestShardFailover:
    def test_sigkill_mid_stream_preserves_the_verdict(
            self, xyz_execution, xyz_initial, tmp_path):
        with AnalysisFleet(_fleet_config(tmp_path / "a")) as fleet:
            _, control = _run(fleet, xyz_execution, xyz_initial, kill=False)
        assert control.state == "finished"

        with AnalysisFleet(_fleet_config(tmp_path / "b")) as fleet:
            session, verdict = _run(fleet, xyz_execution, xyz_initial,
                                    kill=True)
            slot = shard_of_session(session.session_id)
            status = fleet.status()

        assert verdict.state == "finished"
        assert verdict.analyzed == control.analyzed \
            == len(xyz_execution.messages)
        assert sorted(verdict.counterexamples) == \
            sorted(control.counterexamples)
        assert session.reconnects >= 1

        router = status["fleet"]["router"]
        assert router["shard_restarts"] >= 1
        assert router["rebalanced_sessions"] >= 1
        (row,) = [r for r in status["fleet"]["shards"]
                  if r["shard"] == slot]
        assert row["state"] == "up"
        assert row["generation"] >= 2
        assert row["restarts"] >= 1

    def test_sibling_shard_untouched_by_the_kill(
            self, xyz_execution, xyz_initial, tmp_path):
        # sessions on the surviving shard never notice the crash: no
        # reconnects, same verdict, generation still 1
        with AnalysisFleet(_fleet_config(tmp_path)) as fleet:
            first = attach(
                fleet.host, fleet.port, n_threads=xyz_execution.n_threads,
                initial=xyz_initial, spec=XYZ_PROPERTY, fault_tolerant=True,
                reconnect=ReconnectPolicy(max_attempts=10, backoff=0.1))
            victim_slot = 1 - shard_of_session(first.session_id)
            assert fleet.supervisor.kill_shard(victim_slot) is not None
            for m in xyz_execution.messages:
                first.send(m)
            verdict = first.close(timeout=60.0)
            assert verdict.state == "finished"
            assert first.reconnects == 0

            # wait for the victim slot to come back before shutdown so
            # the fleet drains cleanly
            deadline = time.monotonic() + 15.0
            while fleet.supervisor.address(victim_slot) is None:
                assert time.monotonic() < deadline, "victim never respawned"
                time.sleep(0.05)
            (row,) = [r for r in fleet.status()["fleet"]["shards"]
                      if r["shard"] == victim_slot]
            assert row["generation"] >= 2
