"""Consistent hash ring: determinism, balance, minimal movement."""

import pytest

from repro.fleet import HashRing, stable_hash

KEYS = [f"session:{i}" for i in range(2000)]


class TestStableHash:
    def test_deterministic_across_instances(self):
        # sha1-based, NOT Python's salted hash(): two rings built apart
        # must place every key identically, or resume routing would break
        # across router restarts
        a = HashRing([0, 1, 2, 3])
        b = HashRing([0, 1, 2, 3])
        assert [a.node_for(k) for k in KEYS] == [b.node_for(k) for k in KEYS]

    def test_known_value_is_stable(self):
        # a change to the hash function silently remaps every session;
        # pin one value so that shows up as a test failure instead
        assert stable_hash("node:0:vnode:0") == 0xFD3CFEB8B4C2D6CB


class TestPlacement:
    def test_distribution_roughly_balanced(self):
        ring = HashRing([0, 1, 2, 3], vnodes=64)
        counts = ring.distribution(KEYS)
        assert sum(counts.values()) == len(KEYS)
        for node, n in counts.items():
            # expected 500 per node; vnode smoothing keeps the skew small
            assert 200 < n < 900, f"node {node} owns {n} of {len(KEYS)}"

    def test_remove_moves_about_one_nth(self):
        ring = HashRing([0, 1, 2, 3], vnodes=64)
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove(2)
        moved = 0
        for k in KEYS:
            after = ring.node_for(k)
            if before[k] == 2:
                assert after != 2
                moved += 1
            else:
                # consistent hashing's defining property: keys not owned
                # by the removed node do not move at all
                assert after == before[k]
        assert 0.10 < moved / len(KEYS) < 0.45   # ~1/4 expected

    def test_add_is_inverse_of_remove(self):
        ring = HashRing([0, 1, 2, 3], vnodes=64)
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove(1)
        ring.add(1)
        assert {k: ring.node_for(k) for k in KEYS} == before

    def test_preference_order(self):
        ring = HashRing([0, 1, 2], vnodes=32)
        for k in KEYS[:50]:
            pref = ring.preference(k)
            assert pref[0] == ring.node_for(k)
            assert sorted(pref) == [0, 1, 2]   # every node, exactly once

    def test_membership_helpers(self):
        ring = HashRing()
        assert len(ring) == 0 and ring.preference("x") == []
        ring.add(7)
        assert 7 in ring and ring.nodes == (7,)
        ring.add(7)   # idempotent
        assert len(ring) == 1
        ring.remove(9)   # absent: no-op
        assert ring.node_for("anything") == 7

    def test_empty_ring_lookup_raises(self):
        with pytest.raises(LookupError):
            HashRing().node_for("k")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
