"""Router end-to-end: unchanged clients, stride ids, spill, fleet status.

These spawn real shard processes (spawn context), so fleets here are
deliberately small: two shards, one worker each.
"""

import pytest

from repro.fleet import SESSION_STRIDE, AnalysisFleet, FleetConfig, \
    shard_of_session
from repro.server import ServerRejected, attach, fetch_status
from repro.workloads import XYZ_PROPERTY, XYZ_VARS


@pytest.fixture
def xyz_initial(xyz_execution):
    return {v: xyz_execution.initial_store[v] for v in XYZ_VARS}


def _stream(fleet, execution, initial, spec=XYZ_PROPERTY, **kw):
    session = attach(fleet.host, fleet.port, n_threads=execution.n_threads,
                     initial=initial, spec=spec, **kw)
    for m in execution.messages:
        session.send(m)
    return session


class TestRouting:
    def test_client_is_unchanged_and_verdicts_match(self, xyz_execution,
                                                    xyz_initial):
        from repro.observer import Observer

        obs = Observer(xyz_execution.n_threads, xyz_initial,
                       spec=XYZ_PROPERTY)
        for m in xyz_execution.messages:
            obs.receive(m)
        obs.finish()
        expected = sorted(v.pretty(tuple(sorted(xyz_initial)))
                          for v in obs.violations)

        config = FleetConfig(shards=2, workers=1)
        with AnalysisFleet(config) as fleet:
            session = _stream(fleet, xyz_execution, xyz_initial)
            # stride ids: the session id names its owning shard
            slot = shard_of_session(session.session_id)
            assert slot in (0, 1)
            verdict = session.close()
        assert verdict.state == "finished"
        assert verdict.analyzed == len(xyz_execution.messages)
        assert sorted(verdict.counterexamples) == expected

    def test_status_aggregates_the_whole_fleet(self, xyz_execution,
                                               xyz_initial):
        config = FleetConfig(shards=2, workers=1)
        with AnalysisFleet(config) as fleet:
            verdict = _stream(fleet, xyz_execution, xyz_initial,
                              program="xyz").close()
            assert verdict.state == "finished"
            status = fetch_status(fleet.host, fleet.port)

            assert status["t"] == "status"
            router = status["fleet"]["router"]
            assert router["routed_sessions"] == 1
            assert router["spills"] == 0 or router["spills"] >= 0
            assert router["session_stride"] == SESSION_STRIDE
            rows = status["fleet"]["shards"]
            assert [r["shard"] for r in rows] == [0, 1]
            assert all(r["state"] == "up" for r in rows)
            assert all(r["generation"] == 1 for r in rows)
            # the synthesized server section sums shard capacity, so
            # `repro sessions` against a router keeps working unchanged
            assert status["server"]["max_sessions"] == \
                2 * config.max_sessions
            assert status["server"]["finished"] == 1
            (record,) = status["sessions"]
            assert record["program"] == "xyz"
            assert record["shard"] == shard_of_session(record["session"])

    def test_fleet_status_fetched_via_plain_fetch_status(self, xyz_execution,
                                                         xyz_initial):
        # same wire frame as a single daemon: one hello, one JSON line
        import json
        import socket

        from repro.server.protocol import Hello, encode_frame

        with AnalysisFleet(FleetConfig(shards=2, workers=1)) as fleet:
            with socket.create_connection((fleet.host, fleet.port)) as sock:
                sock.sendall(encode_frame(Hello(mode="status").to_frame()))
                data = b""
                while not data.endswith(b"\n"):
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    data += chunk
        assert data.count(b"\n") == 1
        doc = json.loads(data)
        assert doc["t"] == "status" and "fleet" in doc


class TestSpillAndSaturation:
    def test_spill_then_fleet_capacity_reject(self, xyz_execution,
                                              xyz_initial):
        # one slot per shard: the first two held-open sessions must land
        # on DISTINCT shards (spilling off a full preferred shard if the
        # ring hashes both to the same one); the third gets the fleet-wide
        # capacity reject
        config = FleetConfig(shards=2, workers=1, max_sessions=1,
                             status_ttl=0.05)
        with AnalysisFleet(config) as fleet:
            held = []
            try:
                for _ in range(2):
                    held.append(attach(
                        fleet.host, fleet.port,
                        n_threads=xyz_execution.n_threads,
                        initial=xyz_initial, spec=XYZ_PROPERTY))
                slots = {shard_of_session(s.session_id) for s in held}
                assert slots == {0, 1}

                with pytest.raises(ServerRejected) as exc:
                    attach(fleet.host, fleet.port,
                           n_threads=xyz_execution.n_threads,
                           initial=xyz_initial, spec=XYZ_PROPERTY)
                assert "capacity" in exc.value.reason

                router = fleet.status()["fleet"]["router"]
                assert router["rejects"] >= 1
                assert router["routed_sessions"] == 2
            finally:
                for s in held:
                    for m in xyz_execution.messages:
                        s.send(m)
                    assert s.close().state == "finished"

    def test_resume_rejects_foreign_session_id(self, xyz_execution,
                                               xyz_initial):
        # a resume for a session id outside any shard's stride range is
        # answered, not spliced into a random shard
        import socket

        from repro.server.protocol import Hello, encode_frame, \
            read_frame_line

        with AnalysisFleet(FleetConfig(shards=2, workers=1)) as fleet:
            hello = Hello(mode="resume", session=99 * SESSION_STRIDE + 1,
                          token="tok", epoch=1)
            with socket.create_connection((fleet.host, fleet.port)) as sock:
                sock.sendall(encode_frame(hello.to_frame()))
                reply = read_frame_line(sock)
        assert reply["t"] == "reject"
        assert reply["why"] == "resume"
