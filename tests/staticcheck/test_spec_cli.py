"""CLI contract for ``repro spec check`` and the up-front --spec/--engine
validation on the other commands (exit 1 with a parse span, no traceback)."""

import json
from pathlib import Path

from repro.cli import main

CORPUS = Path(__file__).parent / "spec_corpus"


def run_cli(*argv):
    lines: list[str] = []
    code = main(list(argv), out=lines.append)
    return code, "\n".join(lines)


class TestSpecCheck:
    def test_clean_spec_exits_zero(self):
        code, out = run_cli(
            "spec", "check",
            "start(landing == 1) -> [approved == 1, radio == 0)")
        assert code == 0
        assert "satisfiable: yes" in out
        assert "witness:" in out and "-->" in out

    def test_unsat_spec_exits_one(self):
        code, out = run_cli("spec", "check", "ltl:x == 0 and x == 1")
        assert code == 1
        assert "SC301" in out

    def test_warn_only_exits_zero_without_flag(self):
        code, out = run_cli("spec", "check", "x == 0 or x != 0")
        assert code == 0
        assert "SC302" in out

    def test_fail_on_warn(self):
        code, _ = run_cli("spec", "check", "x == 0 or x != 0",
                          "--fail-on-warn")
        assert code == 1

    def test_demos_all_clean(self):
        code, out = run_cli("spec", "check", "--demos")
        assert code == 0
        assert "0 error(s), 0 warning(s)" in out

    def test_corpus_directory(self):
        code, out = run_cli("spec", "check", str(CORPUS))
        assert code == 1
        for c in ("SC300", "SC301", "SC302", "SC303", "SC304", "SC305",
                  "SC306", "SC310", "SC311", "SC312"):
            assert c in out, f"missing {c}"

    def test_json_document(self):
        code, out = run_cli("spec", "check", "ltl:x == 0 and x == 1",
                            "--json")
        assert code == 1
        doc = json.loads(out)
        assert doc["tool"] == "repro.staticcheck.speccheck"
        assert doc["summary"]["errors"] == 1
        assert doc["diagnostics"][0]["code"] == "SC301"

    def test_json_out_writes_file(self, tmp_path):
        target = tmp_path / "report.json"
        code, out = run_cli("spec", "check", "--demos",
                            "--json-out", str(target))
        assert code == 0
        doc = json.loads(target.read_text())
        assert doc["summary"]["ok"]
        assert "spec(s):" in out   # text report still printed

    def test_scan_workloads_clean(self):
        root = Path(__file__).resolve().parents[2]
        code, out = run_cli(
            "spec", "check",
            "--scan", str(root / "src" / "repro" / "workloads"))
        assert code == 0
        assert "0 error(s)" in out

    def test_no_input_is_usage_error(self):
        code, out = run_cli("spec", "check")
        assert code == 2
        assert "nothing to check" in out

    def test_engine_selection_target(self):
        code, out = run_cli("spec", "check", "pattern:W(x);R(y)@T0")
        assert code == 1
        assert "SC311" in out


class TestUpfrontValidation:
    def test_check_malformed_spec_exits_one_with_span(self, tmp_path):
        trace = str(tmp_path / "t.trace")
        run_cli("record", "xyz", trace)
        code, out = run_cli("check", trace, "--spec", "x ==")
        assert code == 1
        assert "invalid --spec" in out
        assert "<spec>:1:" in out

    def test_check_future_spec_rejected_cleanly(self, tmp_path):
        trace = str(tmp_path / "t.trace")
        run_cli("record", "xyz", trace)
        code, out = run_cli("check", trace, "--spec", "eventually(x == 1)")
        assert code == 1
        assert "invalid --spec" in out

    def test_observe_malformed_spec(self):
        code, out = run_cli("observe", "xyz", "--spec", "y == ")
        assert code == 1
        assert "invalid --spec" in out

    def test_observe_bad_engine_formula(self):
        code, out = run_cli("observe", "xyz", "--engine", "ltl:x ==")
        assert code == 1
        assert "invalid --engine" in out
        assert "<spec>:1:" in out

    def test_observe_bad_pattern_engine(self):
        code, out = run_cli("observe", "xyz",
                            "--engine", "pattern:W(x);;R(y)")
        assert code == 1
        assert "invalid --engine" in out

    def test_demo_malformed_spec(self):
        code, out = run_cli("demo", "landing", "--spec", "not")
        assert code == 1
        assert "invalid --spec" in out

    def test_replay_bad_engine(self, tmp_path):
        code, out = run_cli("replay", str(tmp_path), "--all",
                            "--engine", "nosuch")
        assert code == 1
        assert "invalid --engine" in out

    def test_run_malformed_spec(self, tmp_path):
        src = tmp_path / "p.ml"
        src.write_text("shared int x\nthread:\n  x = 1\n")
        code, out = run_cli("run", str(src), "--spec", "x >=")
        assert code == 1
        assert "invalid --spec" in out


class TestLintCrossWire:
    def test_lint_spec_findings_merged(self, tmp_path):
        clean = tmp_path / "empty.py"
        clean.write_text("")
        code, out = run_cli("lint", str(clean),
                            "--spec", "x == 0 and x == 1")
        assert code == 1
        assert "SC301" in out

    def test_lint_unparseable_spec_reports_sc300(self, tmp_path):
        clean = tmp_path / "empty.py"
        clean.write_text("")
        code, out = run_cli("lint", str(clean), "--spec", "x ==")
        assert code == 1
        assert "SC300" in out

    def test_lint_clean_spec_stays_clean(self, tmp_path):
        clean = tmp_path / "empty.py"
        clean.write_text("")
        code, out = run_cli(
            "lint", str(clean),
            "--spec", "start(landing == 1) -> [approved == 1, radio == 0)")
        assert code == 0
