"""Unit and property tests for the spec consistency checker.

The load-bearing guarantee: every verdict ships *verified* evidence.
Witness traces are re-run through :class:`repro.logic.Monitor` (or the
lasso oracle) before being reported, and the property tests below assert
that contract over randomly generated formulas.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import Monitor
from repro.logic.lasso import evaluate_lasso
from repro.logic.parser import ParseError, parse
from repro.staticcheck import Severity
from repro.staticcheck.speccheck import (
    STRICT_REJECT_WARNS,
    SpecCheckOptions,
    SpecCheckReport,
    candidate_domain,
    check_formula,
    check_pattern,
    check_selection,
    check_spec_file,
    check_spec_text,
    representative_states,
    scan_python_specs,
    strict_reject_reason,
    validate_selection_syntax,
    validate_spec_syntax,
)

LANDING = "start(landing == 1) -> [approved == 1, radio == 0)"
XYZ = "(x > 0) -> [y == 0, y > z)"


class TestDomain:
    def test_constants_and_neighbours(self):
        dom = candidate_domain(parse("x == 5"))
        assert {4, 5, 6, 0, 1} <= set(dom)

    def test_extra_values_merged(self):
        opts = SpecCheckOptions(extra_values=(42,))
        assert 42 in candidate_domain(parse("x == 0"), opts)

    def test_representative_states_cover_all_signatures(self):
        f = parse("x == 0 or x == 1")
        states, capped = representative_states(f)
        assert not capped
        sigs = {(s["x"] == 0, s["x"] == 1) for s in states}
        # both-true is impossible; the other three signatures must appear
        assert sigs == {(True, False), (False, True), (False, False)}


class TestPastFragment:
    @pytest.mark.parametrize("spec", [
        LANDING, XYZ, "c >= 0", "a + b == 100",
        "start(audited == 1) -> a + b == 100",
        "start(observed == 1) -> lo == hi",
    ])
    def test_shipped_specs_are_consistent(self, spec):
        r = check_formula(spec)
        assert r.satisfiable and r.falsifiable
        assert not r.vacuous
        assert r.diagnostics == []
        assert r.witness_verified and r.counter_verified

    def test_witness_satisfies_spec_through_monitor(self):
        r = check_formula(LANDING)
        ok, _ = Monitor(LANDING).check_trace(r.witness.as_states())
        assert ok
        assert len(r.witness) == SpecCheckOptions().horizon

    def test_counter_violates_at_reported_step(self):
        r = check_formula(LANDING)
        ok, k = Monitor(LANDING).check_trace(r.counter.as_states())
        assert not ok
        assert k == r.counter.violation_index

    def test_unsat_flagged_with_error(self):
        r = check_formula("x == 0 and x == 1")
        assert r.satisfiable is False
        assert r.codes() == {"SC301"}
        assert not r.ok

    def test_unsat_temporal(self):
        r = check_formula("historically(x == 0) and once(x == 1)")
        assert "SC301" in r.codes()

    def test_trivially_true_flagged(self):
        r = check_formula("x == 0 or x != 0")
        assert r.falsifiable is False
        assert "SC302" in r.codes()
        assert r.ok   # WARN only

    def test_vacuous_subformula_named(self):
        r = check_formula("(y == 1 or true) and x == 0")
        assert "SC303" in r.codes()
        assert any("y == 1" in v for v in r.vacuous)

    def test_interval_never_opens(self):
        r = check_formula("y == 1 or [x == 1, x >= 1)")
        assert "SC304" in r.codes()
        # the q-mutant is one-sided, so this must NOT double-report SC303
        assert "SC303" not in r.codes()

    def test_dead_branch_constant(self):
        r = check_formula("(x == 0 and x == 1) or y == 1")
        assert "SC305" in r.codes()

    def test_mixed_fragment_refused(self):
        r = check_formula("once(x == 1) and eventually(x == 0)")
        assert r.kind == "ltl-mixed"
        assert r.codes() == {"SC306"}
        assert r.satisfiable is None

    def test_parse_error_becomes_sc300(self):
        r = check_formula("x ==")
        assert r.codes() == {"SC300"}
        assert not r.ok

    def test_witness_format_is_arrow_joined_tuples(self):
        r = check_formula("c >= 0")
        assert " --> ".join(str((v,)) for v in
                            (s["c"] for s in r.witness.as_states())) \
            == r.witness.pretty()


class TestFutureFragment:
    def test_eventually_has_lasso_witness(self):
        r = check_formula("eventually(go == 1)")
        assert r.kind == "ltl-future"
        assert r.satisfiable and r.falsifiable
        assert r.witness.loop_start is not None
        assert "ω" in r.witness.pretty()
        assert r.witness_verified and r.counter_verified

    def test_always_eventually(self):
        r = check_formula("always(eventually(go == 1))")
        assert r.satisfiable and r.falsifiable
        assert r.diagnostics == []

    def test_future_tautology_flagged(self):
        r = check_formula("eventually(x == 0 or x != 0)")
        assert "SC302" in r.codes()

    def test_future_unsat_flagged(self):
        r = check_formula("always(x == 0 and x == 1)")
        assert "SC301" in r.codes()

    def test_lasso_witness_replays_through_oracle(self):
        r = check_formula("always(eventually(go == 1))")
        states = r.witness.as_states()
        u, v = states[: r.witness.loop_start], states[r.witness.loop_start:]
        assert evaluate_lasso(parse("always(eventually(go == 1))"), u, v)


class TestPattern:
    def test_clean_multi_step(self):
        r = check_pattern("W(x);R(y);W(x)")
        assert r.ok and r.satisfiable
        assert any("realizable witness" in n for n in r.notes)

    def test_thread_zero_unreachable(self):
        r = check_pattern("W(x);R(y)@T0")
        assert "SC311" in r.codes()
        assert r.satisfiable is False

    def test_lock_value_unreachable(self):
        r = check_pattern("ACQ(l)=1;W(x)")
        assert "SC311" in r.codes()

    def test_single_step_trivial(self):
        r = check_pattern("ANY(x)")
        assert r.codes() == {"SC312"}
        assert r.ok   # WARN only

    def test_syntax_error(self):
        r = check_pattern("W(x);;R(y)")
        assert r.codes() == {"SC310"}


class TestSelectionsAndDispatch:
    def test_ltl_selection_inherits_default_spec(self):
        r = check_selection("ltl", default_spec="x == 0 and x == 1")
        assert "SC301" in r.codes()

    def test_ltl_selection_without_any_spec(self):
        r = check_selection("ltl")
        assert "SC300" in r.codes()

    def test_unknown_engine(self):
        r = check_selection("bogus:x")
        assert "SC300" in r.codes()

    def test_atomicity_carries_no_spec(self):
        r = check_selection("atomicity")
        assert r.ok and r.diagnostics == []

    def test_text_dispatch(self):
        assert check_spec_text("pattern:ANY(x)").kind == "pattern"
        assert check_spec_text(LANDING).kind == "ltl"
        assert check_spec_text("ltl:" + LANDING).kind == "ltl"

    def test_spec_file_lines_and_spans(self, tmp_path):
        p = tmp_path / "specs.spec"
        p.write_text("# comment\n\nx == 0 and x == 1\nltl:x ==\n")
        results = check_spec_file(str(p))
        assert [r.line for r in results] == [3, 4]
        assert results[0].codes() == {"SC301"}
        assert results[1].codes() == {"SC300"}

    def test_scan_python_specs(self, tmp_path):
        p = tmp_path / "mod.py"
        p.write_text(
            'MY_PROPERTY = "x == 0"\n'
            'run(spec="y >= 1", engines=["pattern:W(x);R(y)"])\n')
        found = scan_python_specs([str(tmp_path)])
        assert sorted(s.text for s in found) == [
            "pattern:W(x);R(y)", "x == 0", "y >= 1"]
        assert all(s.line >= 1 and s.col >= 1 for s in found)


class TestReportAndValidation:
    def test_report_json_contract(self):
        report = SpecCheckReport()
        report.add(check_formula("x == 0 and x == 1"))
        report.add(check_formula(LANDING))
        doc = report.to_json()
        assert doc["tool"] == "repro.staticcheck.speccheck"
        assert doc["summary"]["specs"] == 2
        assert doc["summary"]["errors"] == 1
        assert not doc["summary"]["ok"]
        assert doc["specs"][1]["witness"]["states"]

    def test_validate_spec_syntax_returns_span(self):
        msg = validate_spec_syntax("x ==")
        assert msg is not None and "<spec>:1:" in msg
        assert validate_spec_syntax(LANDING) is None

    def test_validate_selection_syntax(self):
        assert validate_selection_syntax("ltl") is None
        assert validate_selection_syntax("atomicity") is None
        assert validate_selection_syntax("pattern:W(x)") is None
        assert validate_selection_syntax("pattern") is not None
        assert validate_selection_syntax("bogus") is not None
        assert validate_selection_syntax("ltl:x ==") is not None

    def test_strict_reject_reasons(self):
        assert strict_reject_reason(LANDING) is None
        bad = strict_reject_reason("x == 0 and x == 1")
        assert bad is not None and "SC301" in bad
        warn = strict_reject_reason("x == 0 or x != 0")
        assert warn is not None and "SC302" in warn
        assert strict_reject_reason(None) is None
        sel = strict_reject_reason(None, engines=("ltl:x == 0 and x == 1",))
        assert sel is not None and "SC301" in sel
        assert STRICT_REJECT_WARNS == {"SC302", "SC303", "SC304"}


class TestParseErrorSpans:
    def test_inline_span_defaults(self):
        with pytest.raises(ParseError) as exc:
            parse("x ==")
        assert exc.value.span == "<spec>:1:1"
        assert exc.value.line == 1

    def test_filename_threads_into_message(self):
        with pytest.raises(ParseError) as exc:
            parse("x ==\ny == 1 and", filename="props.spec")
        assert exc.value.filename == "props.spec"
        assert exc.value.span.startswith("props.spec:")
        assert "props.spec:" in str(exc.value)

    def test_multiline_position(self):
        with pytest.raises(ParseError) as exc:
            parse("x == 0\nand y ===")
        assert exc.value.line == 2
        assert exc.value.col >= 1
        assert "^" in str(exc.value)


# ---------------------------------------------------------------------------
# Property tests: evidence is always verified
# ---------------------------------------------------------------------------

_VARS = ("x", "y")


def _atoms():
    return st.builds(
        lambda v, op, c: f"{v} {op} {c}",
        st.sampled_from(_VARS),
        st.sampled_from(("==", "!=", "<", "<=", ">", ">=")),
        st.integers(min_value=-2, max_value=2))


def _past_formulas(depth=2):
    def extend(children):
        unary = st.builds(lambda op, f: f"{op}({f})",
                          st.sampled_from(("not", "prev", "once",
                                           "historically", "start", "end")),
                          children)
        binary = st.builds(lambda op, f, g: f"({f}) {op} ({g})",
                           st.sampled_from(("and", "or", "->")),
                           children, children)
        interval = st.builds(lambda p, q: f"[{p}, {q})", children, children)
        return unary | binary | interval
    return st.recursive(_atoms(), extend, max_leaves=6)


@settings(max_examples=60, deadline=None)
@given(_past_formulas())
def test_property_witness_always_satisfies(spec):
    r = check_formula(spec, options=SpecCheckOptions(horizon=4))
    if r.witness is not None:
        ok, _ = Monitor(spec).check_trace(r.witness.as_states())
        assert ok, (spec, r.witness.pretty())
        assert r.witness_verified


@settings(max_examples=60, deadline=None)
@given(_past_formulas())
def test_property_counter_always_violates(spec):
    r = check_formula(spec, options=SpecCheckOptions(horizon=4))
    if r.counter is not None:
        ok, k = Monitor(spec).check_trace(r.counter.as_states())
        assert not ok, (spec, r.counter.pretty())
        assert k == r.counter.violation_index
        assert r.counter_verified


@settings(max_examples=40, deadline=None)
@given(_past_formulas())
def test_property_unsat_means_no_state_works(spec):
    """SC301 is exact within the domain: every representative state must
    yield a False verdict at step 1."""
    r = check_formula(spec)
    if r.satisfiable is False and not r.capped:
        f = parse(spec)
        states, _ = representative_states(f)
        monitor = Monitor(f)
        for s in states:
            _, ok = monitor.step(None, s)
            assert not ok, (spec, s)


@settings(max_examples=40, deadline=None)
@given(_past_formulas())
def test_property_errors_only_unsat_or_syntax(spec):
    """Generated formulas always parse; ERROR findings can only be SC301."""
    r = check_formula(spec)
    errors = {d.code for d in r.diagnostics
              if d.severity is Severity.ERROR}
    assert errors <= {"SC301"}
