"""SC102: attribute/subscript mutation through a shared binding."""
# repro-shared: queue, table
# repro-instrument: worker


def worker():
    queue.append(1)         # noqa: F821 - READ recorded, mutation invisible
    table["k"] = 2          # noqa: F821 - subscript store, no WRITE event
