"""SC112: shared value handed to an unresolvable callee (WARN)."""
# repro-shared: buffer
# repro-instrument: worker
import json


def worker():
    json.dump(buffer, None)   # attribute call: fine (not a mutator name)
    mystery(buffer)           # noqa: F821 - opaque callee may mutate it
