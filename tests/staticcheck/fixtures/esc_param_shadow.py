"""SC108: a nested function's parameter rebinds a shared name."""
# repro-shared: flag
# repro-instrument: worker


def worker():
    def check(flag):        # body reads of 'flag' would be miscompiled
        return flag + 1
    return check(0)
