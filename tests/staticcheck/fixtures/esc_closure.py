"""SC103: a closure captures a shared name (WARN: misattribution risk)."""
# repro-shared: counter
# repro-instrument: worker


def worker():
    def bump():
        return counter + 1  # noqa: F821 - runs on whichever thread calls it
    return bump
