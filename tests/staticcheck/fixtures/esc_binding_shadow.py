"""SC109: with/except bindings shadow a shared name (WARN)."""
# repro-shared: conn
# repro-instrument: worker


def worker():
    with open("/dev/null") as conn:  # rebinds 'conn' for the whole scope
        conn.read()
