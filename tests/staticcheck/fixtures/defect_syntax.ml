shared int x = 0;

thread main {
    x = x + ;
}
