"""SC107: 'global' declaration of a shared name inside the entry."""
# repro-shared: counter
# repro-instrument: worker


def worker():
    global counter          # noqa: F824 - shared vars live in the runtime
    counter = 1             # noqa: F841
