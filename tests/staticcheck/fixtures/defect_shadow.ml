shared int x = 0, y = 1;

thread main {
    local int x = 5;
    y = x + 1;
}
