"""SC106: call into an un-instrumented helper that touches shared names."""
# repro-shared: total
# repro-instrument: worker


def accumulate(v):
    global total            # the helper body is never rewritten
    total = total + v       # noqa: F821,F824


def deep(v):
    accumulate(v)           # transitive: deep -> accumulate -> total


def worker():
    deep(3)
