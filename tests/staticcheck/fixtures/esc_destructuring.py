"""SC111: destructuring / loop-target / walrus writes to shared names."""
# repro-shared: lo, hi, idx
# repro-instrument: worker


def worker():
    lo, hi = 1, 2           # noqa: F841 - tuple write, not instrumented
    for idx in range(3):    # loop target rebinds shared 'idx'
        pass
