shared int x = 0;

thread main {
    x = ghost + 1;
    phantom = 2;
}
