"""SC105: comprehension target rebinds a shared name."""
# repro-shared: x
# repro-instrument: worker


def worker():
    return [x * 2 for x in range(4)]  # target 'x' shadows the shared 'x'
