"""A sound instrumented function: every construct here is supported."""
# repro-shared: a, b
# repro-instrument: worker


def helper(v):
    return v * 2            # touches no shared names: safe to call


def worker():
    a = a + 1               # noqa: F821,F841 - plain shared read/write
    t = helper(5)
    b = t                   # noqa: F841
    if b > 3:               # noqa: F821
        b = 0               # noqa: F841
