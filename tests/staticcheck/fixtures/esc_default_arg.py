"""SC104: shared read in the entry function's parameter default."""
# repro-shared: limit
# repro-instrument: worker


def worker(cap=limit):      # noqa: F821 - evaluates at instrument time
    return cap
