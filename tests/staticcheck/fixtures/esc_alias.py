"""SC101: aliasing a shared name into a plain local."""
# repro-shared: balance, audit
# repro-instrument: worker


def worker():
    snapshot = balance      # noqa: F821 - alias: later accesses emit nothing
    audit = snapshot + 1    # noqa: F821,F841
