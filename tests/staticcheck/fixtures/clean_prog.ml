shared int x = 0, y = 0;

thread writer {
    local int t = 3;
    x = t + 1;
    y = x * 2;
}

thread reader {
    local int seen = 0;
    seen = y;
}
