"""SC110: del of a shared name."""
# repro-shared: cache
# repro-instrument: worker


def worker():
    del cache               # noqa: F821 - shared variables cannot be unbound
