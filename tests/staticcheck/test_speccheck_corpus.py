"""The seeded spec-defect corpus: every planted inconsistency must be
flagged.

``spec_corpus/manifest.json`` is the ground truth; CI runs the same
check through ``repro spec check`` so the corpus cannot silently rot.
"""

import json
from pathlib import Path

import pytest

from repro.staticcheck import CATALOGUE
from repro.staticcheck.speccheck import check_spec_file

CORPUS = Path(__file__).parent / "spec_corpus"
MANIFEST = json.loads((CORPUS / "manifest.json").read_text())


def _codes(name):
    results = check_spec_file(str(CORPUS / name))
    return {code for r in results for code in r.codes()}


@pytest.mark.parametrize("name,expected", sorted(MANIFEST["defects"].items()))
def test_seeded_defect_is_flagged(name, expected):
    found = _codes(name)
    missing = set(expected) - found
    assert not missing, f"{name}: spec check missed seeded defect(s) {missing}"


@pytest.mark.parametrize("name", sorted(MANIFEST["clean"]))
def test_clean_spec_stays_clean(name):
    results = check_spec_file(str(CORPUS / name))
    diags = [d for r in results for d in r.diagnostics]
    assert diags == [], [d.pretty() for d in diags]
    assert all(r.satisfiable for r in results)


def test_corpus_covers_at_least_ten_defect_kinds():
    kinds = {code for codes in MANIFEST["defects"].values() for code in codes}
    assert len(kinds) >= 10
    assert all(k in CATALOGUE for k in kinds)


def test_corpus_has_at_least_ten_defect_specs():
    assert len(MANIFEST["defects"]) >= 10


def test_every_finding_has_the_corpus_file_span():
    for name in MANIFEST["defects"]:
        for r in check_spec_file(str(CORPUS / name)):
            for d in r.diagnostics:
                assert d.file.endswith(name)
                assert d.line >= 1 and d.col >= 1


def test_manifest_lists_every_corpus_file():
    on_disk = {p.name for p in CORPUS.glob("*.spec")}
    in_manifest = set(MANIFEST["defects"]) | set(MANIFEST["clean"])
    assert on_disk == in_manifest
