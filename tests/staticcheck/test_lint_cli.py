"""``repro lint`` CLI: exit codes, text output, and the JSON contract."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.staticcheck import JSON_SCHEMA_VERSION

FIXTURES = Path(__file__).parent / "fixtures"

#: The stable shape of the ``repro lint --json`` document.  Bump
#: JSON_SCHEMA_VERSION when changing any of this.
TOP_LEVEL_KEYS = {"version", "tool", "files", "summary", "diagnostics"}
SUMMARY_KEYS = {"files", "errors", "warnings", "ok"}
DIAGNOSTIC_KEYS = {"code", "severity", "title", "message", "file", "line",
                   "col", "symbol", "function"}


def run_cli(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(lines)


class TestExitCodes:
    def test_clean_file_exits_zero(self):
        code, _ = run_cli(["lint", str(FIXTURES / "clean_worker.py")])
        assert code == 0

    def test_error_defect_exits_one(self):
        code, _ = run_cli(["lint", str(FIXTURES / "esc_alias.py")])
        assert code == 1

    def test_warn_only_exits_zero_by_default(self):
        code, _ = run_cli(["lint", str(FIXTURES / "esc_closure.py")])
        assert code == 0

    def test_fail_on_warn(self):
        code, _ = run_cli(["lint", "--fail-on-warn",
                           str(FIXTURES / "esc_closure.py")])
        assert code == 1

    def test_missing_path_exits_two(self):
        code, out = run_cli(["lint", str(FIXTURES / "does_not_exist.py")])
        assert code == 2
        assert "error" in out


class TestTextOutput:
    def test_pretty_lines_carry_span_code_severity(self):
        code, out = run_cli(["lint", str(FIXTURES / "esc_alias.py")])
        assert code == 1
        line = out.splitlines()[0]
        assert "esc_alias.py:" in line
        assert "SC101" in line
        assert "ERROR" in line

    def test_summary_line(self):
        _, out = run_cli(["lint", str(FIXTURES / "clean_worker.py")])
        assert "1 file(s): 0 error(s), 0 warning(s)" in out


class TestJsonContract:
    def test_schema_shape(self):
        code, out = run_cli(["lint", "--json", str(FIXTURES)])
        doc = json.loads(out)
        assert set(doc) == TOP_LEVEL_KEYS
        assert doc["version"] == JSON_SCHEMA_VERSION
        assert doc["tool"] == "repro.staticcheck"
        assert set(doc["summary"]) == SUMMARY_KEYS
        assert doc["summary"]["errors"] > 0
        assert doc["summary"]["ok"] is False
        assert code == 1
        for d in doc["diagnostics"]:
            assert set(d) == DIAGNOSTIC_KEYS
            assert d["severity"] in ("error", "warn")
            assert d["line"] >= 1 and d["col"] >= 1

    def test_diagnostics_sorted_by_location(self):
        _, out = run_cli(["lint", "--json", str(FIXTURES)])
        doc = json.loads(out)
        keys = [(d["file"], d["line"], d["col"], d["code"])
                for d in doc["diagnostics"]]
        assert keys == sorted(keys)

    def test_json_out_writes_file(self, tmp_path):
        target = tmp_path / "report.json"
        code, out = run_cli(["lint", "--json-out", str(target),
                             str(FIXTURES / "clean_worker.py")])
        assert code == 0
        doc = json.loads(target.read_text())
        assert doc["summary"]["ok"] is True
        # text mode still printed the human summary
        assert "0 error(s)" in out

    def test_spec_flag_adds_relevance_findings(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(
            "# repro-shared: x, noise\n"
            "# repro-instrument: worker\n"
            "def worker():\n"
            "    x = x + 1\n"
            "    noise = 7\n")
        code, out = run_cli(["lint", "--json", "--spec", "x >= 0", str(src)])
        doc = json.loads(out)
        assert code == 0  # SC113 is WARN
        assert [d["code"] for d in doc["diagnostics"]] == ["SC113"]


class TestMiniLangThroughCli:
    def test_ml_file_is_dispatched(self):
        code, out = run_cli(["lint", str(FIXTURES / "defect_undeclared.ml")])
        assert code == 1
        assert "SC201" in out

    def test_parse_error_span_in_message(self):
        _, out = run_cli(["lint", str(FIXTURES / "defect_syntax.ml")])
        # SC200 wraps the MiniLangError, whose text already carries the span.
        assert "defect_syntax.ml:4" in out
