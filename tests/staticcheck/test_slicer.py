"""Tests for the spec-relevance slicer."""

from repro.logic.parser import parse as parse_spec
from repro.staticcheck import (
    close_slice,
    minilang_flows,
    python_flows,
    slice_minilang,
    slice_python_functions,
    spec_variables,
)
from repro.workloads import XYZ_PROPERTY, xyz_program
from repro.workloads.minilang_sources import LANDING_SOURCE


class TestSpecVariables:
    def test_from_string(self):
        assert spec_variables("x > 0") == {"x"}

    def test_from_formula(self):
        assert spec_variables(parse_spec("a + b == 100")) == {"a", "b"}

    def test_interval_operator(self):
        assert spec_variables(XYZ_PROPERTY) == {"x", "y", "z"}


class TestCloseSlice:
    def test_no_flows_keeps_spec_vars(self):
        r = close_slice({"x"}, {}, shared={"x", "y"})
        assert r.relevant == {"x"}
        assert r.irrelevant == {"y"}

    def test_direct_flow(self):
        r = close_slice({"x"}, {"x": {"y"}}, shared={"x", "y", "z"})
        assert r.relevant == {"x", "y"}
        assert r.irrelevant == {"z"}

    def test_transitive_flow(self):
        flows = {"x": {"y"}, "y": {"z"}, "z": set()}
        r = close_slice({"x"}, flows, shared={"x", "y", "z", "w"})
        assert r.relevant == {"x", "y", "z"}
        assert r.irrelevant == {"w"}

    def test_flow_into_irrelevant_var_ignored(self):
        # w reads from x, but nothing makes w relevant.
        r = close_slice({"x"}, {"w": {"x"}}, shared={"x", "w"})
        assert r.relevant == {"x"}
        assert r.irrelevant == {"w"}

    def test_why_explanations(self):
        r = close_slice({"x"}, {"x": {"y"}}, shared={"x", "y", "z"})
        assert "specification" in r.why("x")
        assert "relevant write" in r.why("y")
        assert "no flow" in r.why("z")


class TestPythonFlows:
    def test_bare_name_flow(self):
        src = """
def worker():
    t = a
    b = t + 1
"""
        flows = python_flows([src], {"a", "b"})
        assert flows["b"] == {"a"}

    def test_runtime_call_flow(self):
        src = """
def worker(rt):
    v = rt.read("a")
    rt.write("b", v * 2)
"""
        flows = python_flows([src], {"a", "b"})
        assert flows["b"] == {"a"}

    def test_generator_yield_flow(self):
        src = """
def worker():
    v = yield Read("a")
    yield Write("b", v + 1)
"""
        flows = python_flows([src], {"a", "b"})
        assert flows["b"] == {"a"}

    def test_update_is_self_dependent(self):
        src = """
def worker(rt):
    rt.update("c", lambda v: v + 1)
"""
        flows = python_flows([src], {"c"})
        assert "c" in flows["c"]

    def test_augassign_shared_self_dep(self):
        src = """
def worker():
    c += a
"""
        flows = python_flows([src], {"a", "c"})
        assert flows["c"] == {"a", "c"}

    def test_loop_taint_fixpoint(self):
        # Taint flows backwards through the loop: t picks up a only on the
        # second traversal of the body.
        src = """
def worker():
    t = 0
    while t < 3:
        b = t
        t = a
"""
        flows = python_flows([src], {"a", "b"})
        assert "a" in flows["b"]

    def test_real_workload_xyz(self):
        flows = python_flows([xyz_program], {"x", "y", "z"})
        # xyz: x gets written constants, y reads x, z reads x.
        assert "x" in flows.get("y", set())

    def test_slice_narrow_spec_on_xyz(self):
        r = slice_python_functions([xyz_program], {"x", "y", "z"}, "x >= -1")
        assert "x" in r.relevant
        assert r.irrelevant  # y and/or z drop out


class TestMiniLangSlicing:
    def test_flows_through_locals(self):
        src = """
shared int a = 0, b = 0;
thread main {
    local int t = a;
    b = t + 1;
}
"""
        r = slice_minilang(src, "b == 1")
        assert r.relevant == {"a", "b"}

    def test_irrelevant_variable_dropped(self):
        src = """
shared int a = 0, noise = 0;
thread main {
    a = a + 1;
    noise = 9;
}
"""
        r = slice_minilang(src, "a >= 0")
        assert r.relevant == {"a"}
        assert r.irrelevant == {"noise"}

    def test_landing_source_full_slice(self):
        r = slice_minilang(
            LANDING_SOURCE,
            "start(landing == 1) -> [approved == 1, radio == 0)")
        # all three variables are spec-mentioned: nothing to slice.
        assert r.relevant >= {"landing", "approved", "radio"}

    def test_minilang_flows_shape(self):
        from repro.lang.parser import parse_source

        program = parse_source("""
shared int a = 0, b = 0;
thread main { b = a + 1; }
""")
        assert minilang_flows(program)["b"] == {"a"}

    def test_predicate_matches_algorithm_a(self):
        from repro.core.events import EventKind

        r = close_slice({"x"}, {}, shared={"x", "y"})
        pred = r.predicate()

        class _E:
            kind = EventKind.WRITE
            var = "x"

        class _E2:
            kind = EventKind.WRITE
            var = "y"

        assert pred(_E()) and not pred(_E2())
