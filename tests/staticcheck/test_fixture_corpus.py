"""The seeded-defect corpus: every planted escape must be flagged.

``manifest.json`` is the ground truth; CI runs the same check through
``repro lint`` so the corpus cannot silently rot.
"""

import json
from pathlib import Path

import pytest

from repro.staticcheck import CATALOGUE, Severity, lint_path, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
MANIFEST = json.loads((FIXTURES / "manifest.json").read_text())


@pytest.mark.parametrize("name,expected", sorted(MANIFEST["defects"].items()))
def test_seeded_defect_is_flagged(name, expected):
    found = {d.code for d in lint_path(FIXTURES / name)}
    missing = set(expected) - found
    assert not missing, f"{name}: lint missed seeded defect(s) {missing}"


@pytest.mark.parametrize("name", sorted(MANIFEST["clean"]))
def test_clean_fixture_stays_clean(name):
    diags = lint_path(FIXTURES / name)
    assert diags == [], [d.pretty() for d in diags]


def test_corpus_covers_at_least_ten_defect_kinds():
    kinds = {code for codes in MANIFEST["defects"].values() for code in codes}
    assert len(kinds) >= 10


def test_every_finding_has_a_real_span():
    report = lint_paths([FIXTURES])
    for d in report.diagnostics:
        assert d.line >= 1 and d.col >= 1
        assert Path(d.file).name  # non-empty file component
        assert d.code in CATALOGUE


def test_directory_lint_aggregates_all_defects():
    report = lint_paths([FIXTURES])
    expected = {code for codes in MANIFEST["defects"].values()
                for code in codes}
    assert expected <= report.codes()
    # ERROR-severity defects must make the report fail.
    assert not report.ok
    assert any(d.severity is Severity.WARN for d in report.diagnostics)


def test_workloads_and_examples_are_clean():
    """The acceptance bar: zero ERRORs on everything we ship instrumented."""
    root = Path(__file__).resolve().parents[2]
    report = lint_paths([root / "src" / "repro" / "workloads",
                         root / "examples"])
    assert report.ok, [d.pretty() for d in report.errors]
