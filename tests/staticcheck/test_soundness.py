"""Tests for the escape-analysis soundness lint."""

import pytest

from repro.staticcheck import (
    CATALOGUE,
    Diagnostic,
    Severity,
    lint_function,
    lint_minilang_source,
    lint_python_source,
)


def codes(diags):
    return {d.code for d in diags}


class TestFunctionLint:
    def test_clean_function_has_no_findings(self):
        src = """
def worker():
    x = x + 1
    y = x * 2
"""
        assert lint_function(src, {"x", "y"}) == []

    def test_alias_sc101(self):
        src = """
def worker():
    snap = x
"""
        diags = lint_function(src, {"x"})
        assert codes(diags) == {"SC101"}
        assert diags[0].symbol == "x"
        assert diags[0].severity is Severity.ERROR

    def test_tuple_unpack_alias_sc101(self):
        src = """
def worker():
    a, b = x, 1
"""
        assert "SC101" in codes(lint_function(src, {"x"}))

    def test_attribute_store_sc102(self):
        src = """
def worker():
    shared.field = 1
"""
        assert codes(lint_function(src, {"shared"})) == {"SC102"}

    def test_mutating_method_sc102(self):
        src = """
def worker():
    q.append(3)
"""
        assert codes(lint_function(src, {"q"})) == {"SC102"}

    def test_plain_attribute_read_is_sound(self):
        # `x.value` through a read call is recorded; reads don't escape.
        src = """
def worker():
    v = x.value
"""
        assert lint_function(src, {"x"}) == []

    def test_closure_capture_sc103_is_warn(self):
        src = """
def worker():
    f = lambda: x + 1
"""
        diags = lint_function(src, {"x"})
        assert codes(diags) == {"SC103"}
        assert diags[0].severity is Severity.WARN

    def test_default_arg_sc104(self):
        src = """
def worker(cap=x):
    return cap
"""
        assert "SC104" in codes(lint_function(src, {"x"}))

    def test_comprehension_shadow_sc105(self):
        src = """
def worker():
    return [x for x in range(3)]
"""
        assert codes(lint_function(src, {"x"})) == {"SC105"}

    def test_comprehension_reading_shared_is_sound(self):
        src = """
def worker():
    return [i + x for i in range(3)]
"""
        assert lint_function(src, {"x"}) == []

    def test_global_sc107(self):
        src = """
def worker():
    global x
    x = 1
"""
        assert codes(lint_function(src, {"x"})) == {"SC107"}

    def test_nested_param_shadow_sc108(self):
        src = """
def worker():
    def inner(x):
        return 1
"""
        assert "SC108" in codes(lint_function(src, {"x"}))

    def test_with_binding_sc109(self):
        src = """
def worker():
    with ctx() as x:
        pass
"""
        assert "SC109" in codes(lint_function(src, {"x"}))

    def test_del_sc110(self):
        src = """
def worker():
    del x
"""
        assert codes(lint_function(src, {"x"})) == {"SC110"}

    def test_destructuring_sc111(self):
        src = """
def worker():
    x, y = 1, 2
"""
        assert codes(lint_function(src, {"x"})) == {"SC111"}

    def test_walrus_sc111(self):
        src = """
def worker():
    if (x := 3) > 2:
        pass
"""
        assert codes(lint_function(src, {"x"})) == {"SC111"}

    def test_arg_escape_sc112_for_unknown_callee(self):
        src = """
def worker():
    mystery(x)
"""
        diags = lint_function(src, {"x"})
        assert codes(diags) == {"SC112"}
        assert diags[0].severity is Severity.WARN

    def test_safe_builtins_not_flagged(self):
        src = """
def worker():
    print(x)
    n = len(x)
"""
        assert lint_function(src, {"x"}) == []

    def test_spans_are_one_indexed(self):
        src = """
def worker():
    snap = x
"""
        d = lint_function(src, {"x"})[0]
        assert d.line == 3
        assert d.col >= 1
        assert d.span.endswith(f":{d.line}:{d.col}")


class TestModuleLint:
    def test_entries_from_instrument_function_literal(self):
        src = '''
def worker():
    alias = x

rt = InstrumentedRuntime({"x": 0})
f = instrument_function(worker, {"x"}, rt)
'''
        assert codes(lint_python_source(src)) == {"SC101"}

    def test_shared_from_runtime_dict_literal(self):
        src = '''
# repro-instrument: worker
def worker():
    alias = y

rt = InstrumentedRuntime({"y": 0})
'''
        assert codes(lint_python_source(src)) == {"SC101"}

    def test_directives(self):
        src = '''
# repro-shared: a
# repro-instrument: worker
def worker():
    alias = a
'''
        assert codes(lint_python_source(src)) == {"SC101"}

    def test_helper_escape_sc106_transitive(self):
        src = '''
# repro-shared: total
# repro-instrument: worker
def leaf(v):
    total = total + v

def mid(v):
    leaf(v)

def worker():
    mid(1)
'''
        diags = lint_python_source(src)
        assert codes(diags) == {"SC106"}
        assert any(d.symbol == "mid" for d in diags)

    def test_calls_between_instrumented_functions_ok(self):
        src = '''
# repro-shared: x
# repro-instrument: worker, helper
def helper():
    x = x + 1

def worker():
    helper()
'''
        assert lint_python_source(src) == []

    def test_no_entries_means_no_findings(self):
        src = '''
def library_code(q):
    q.append(1)
'''
        assert lint_python_source(src) == []

    def test_spec_relevance_sc113(self):
        src = '''
# repro-shared: x, noise
# repro-instrument: worker
def worker():
    x = x + 1
    noise = 7
'''
        diags = lint_python_source(src, spec="x >= 0")
        assert codes(diags) == {"SC113"}
        assert diags[0].symbol == "noise"
        assert diags[0].severity is Severity.WARN


class TestMiniLangLint:
    def test_clean_program(self):
        src = """
shared int x = 0;
thread main { x = x + 1; }
"""
        assert lint_minilang_source(src) == []

    def test_syntax_error_sc200(self):
        diags = lint_minilang_source("shared int x = ;")
        assert codes(diags) == {"SC200"}

    def test_undeclared_sc201(self):
        src = """
shared int x = 0;
thread main { x = ghost + 1; }
"""
        diags = lint_minilang_source(src)
        assert codes(diags) == {"SC201"}
        assert diags[0].line == 3

    def test_shadow_sc202(self):
        src = """
shared int x = 0;
thread main { local int x = 1; }
"""
        assert codes(lint_minilang_source(src)) == {"SC202"}

    def test_spec_relevance_sc203(self):
        src = """
shared int x = 0, noise = 0;
thread main { x = x + 1; noise = 5; }
"""
        diags = lint_minilang_source(src, spec="x >= 0")
        assert codes(diags) == {"SC203"}
        assert diags[0].symbol == "noise"


class TestDiagnosticModel:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic(code="SC999", message="m", file="f", line=1)

    def test_catalogue_codes_are_namespaced(self):
        # SC1xx python escapes, SC2xx MiniLang, SC3xx spec consistency
        for code in CATALOGUE:
            assert code.startswith(("SC1", "SC2", "SC3"))

    def test_pretty_contains_span_and_code(self):
        d = Diagnostic(code="SC101", message="boom", file="a.py", line=4,
                       col=7)
        assert "a.py:4:7" in d.pretty()
        assert "SC101" in d.pretty()
        assert "ERROR" in d.pretty()
