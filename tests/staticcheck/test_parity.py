"""Verdict parity: spec-sliced instrumentation must not change analyses.

Two slicing mechanisms are exercised:

* **predicate slicing** (cooperative scheduler route) — run the same
  deterministic schedule with the default relevance vs the slice's
  ``relevant_writes`` predicate and compare ``predict`` verdicts;
* **quiet slicing** (AST route) — ``relevant_only=`` on
  ``instrument_function``/``InstrumentedRuntime`` with a deterministic
  sequential thread order.

In both cases the slice always contains the spec's variables, so every
message the monitor can see survives; the tests also assert the slice
actually *removes* events somewhere (the paper's bandwidth win).
"""

import threading

import pytest

from repro.analysis import predict
from repro.instrument import InstrumentedRuntime, instrument_function
from repro.instrument.threads import to_execution_result
from repro.sched import RandomScheduler, run_program
from repro.staticcheck import close_slice, python_flows, spec_variables
from repro.workloads import (
    AUDIT_PROPERTY,
    XYZ_PROPERTY,
    handoff,
    producer_consumer,
    transfer_program,
    xyz_program,
)
from repro.workloads.instrumented import (
    LANDING_AST_SHARED,
    controller,
    radio_watchdog,
)

CASES = [
    # (factory, spec, narrow_spec)
    (xyz_program, XYZ_PROPERTY, "x >= -1"),
    (transfer_program, AUDIT_PROPERTY, "audited == 0 || audited == 1"),
    (lambda: producer_consumer(2), "consumed >= 0", "consumed >= 0"),
    (handoff, "done == 0 || data == 42", "done == 0 || data == 42"),
]


def _slice_for(program_factory, spec):
    program = program_factory()
    shared = program.default_relevance_vars()
    flows = python_flows(list(program.threads), shared)
    return program, close_slice(spec_variables(spec), flows, shared=shared)


def _verdict(execution, spec):
    report = predict(execution, spec, mode="full")
    return (report.observed_ok, bool(report.violations))


class TestPredicateSlicingParity:
    @pytest.mark.parametrize("factory,spec,narrow", CASES,
                             ids=["xyz", "bank", "prodcons", "handoff"])
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_verdicts_match(self, factory, spec, narrow, seed):
        for used_spec in {spec, narrow}:
            program, sl = _slice_for(factory, used_spec)
            full = run_program(factory(), RandomScheduler(seed))
            sliced = run_program(factory(), RandomScheduler(seed),
                                 relevance=sl.predicate())
            assert _verdict(full, used_spec) == _verdict(sliced, used_spec)
            assert len(sliced.messages) <= len(full.messages)

    def test_narrow_spec_reduces_messages_on_xyz(self):
        _, sl = _slice_for(xyz_program, "x >= -1")
        assert sl.irrelevant  # y/z sliced out
        full = run_program(xyz_program(), RandomScheduler(3))
        sliced = run_program(xyz_program(), RandomScheduler(3),
                             relevance=sl.predicate())
        assert len(sliced.messages) < len(full.messages)
        assert _verdict(full, "x >= -1") == _verdict(sliced, "x >= -1")

    def test_slice_always_contains_spec_vars(self):
        for factory, spec, narrow in CASES:
            for s in (spec, narrow):
                _, sl = _slice_for(factory, s)
                assert spec_variables(s) <= sl.relevant


def _run_sequential(relevant_only):
    """Deterministic AST-route run: controller fully precedes watchdog."""
    rt = InstrumentedRuntime(
        {"landing": 0, "approved": 0, "radio": 1, "ticks": 0},
        relevant_only=relevant_only)
    t1 = instrument_function(controller, set(LANDING_AST_SHARED), rt,
                             relevant_only=relevant_only)
    t2 = instrument_function(radio_watchdog, set(LANDING_AST_SHARED), rt,
                             relevant_only=relevant_only)
    rt.register_thread(0)
    t1()
    worker = threading.Thread(target=t2)
    worker.start()
    worker.join()
    return rt, to_execution_result(rt, "ast-landing")


class TestQuietSlicingParity:
    SPEC = "start(landing == 1) -> [approved == 1, radio == 0)"

    def test_verdict_parity_and_event_reduction(self):
        _, full = _run_sequential(None)
        _, sliced = _run_sequential(frozenset({"landing", "approved",
                                               "radio"}))
        assert _verdict(full, self.SPEC) == _verdict(sliced, self.SPEC)
        # 'ticks' accesses disappear entirely from the sliced event log.
        assert len(sliced.events) < len(full.events)
        assert not any(e.var == "ticks" for e in sliced.events)
        assert any(e.var == "ticks" for e in full.events)

    def test_store_identical_under_slicing(self):
        rt_full, _ = _run_sequential(None)
        rt_sliced, _ = _run_sequential(frozenset({"landing", "approved",
                                                  "radio"}))
        assert rt_full.store == rt_sliced.store

    def test_runtime_property_reports_slice(self):
        rt, _ = _run_sequential(frozenset({"landing", "approved", "radio"}))
        assert rt.relevant_only == {"landing", "approved", "radio"}

    def test_quiet_paths_require_declared_names(self):
        rt = InstrumentedRuntime({"x": 0})
        with pytest.raises(KeyError):
            rt.read_quiet("ghost")
        with pytest.raises(KeyError):
            rt.write_quiet("ghost", 1)
