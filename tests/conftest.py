"""Shared fixtures: the paper's two reference executions and helpers."""

from __future__ import annotations

import random

import pytest

from repro.sched import FixedScheduler, run_program
from repro.workloads import (
    LANDING_OBSERVED_SCHEDULE,
    XYZ_OBSERVED_SCHEDULE,
    landing_controller,
    xyz_program,
)


@pytest.fixture
def landing_execution():
    """The paper's Example 1 observed execution (radio down after landing)."""
    return run_program(landing_controller(), FixedScheduler(LANDING_OBSERVED_SCHEDULE))


@pytest.fixture
def xyz_execution():
    """The paper's Example 2 observed execution (Fig. 6 message labels)."""
    return run_program(xyz_program(), FixedScheduler(XYZ_OBSERVED_SCHEDULE))


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)
