"""Unit tests for span tracing and its two export formats."""

import json

from repro.obs import tracing
from repro.obs.tracing import Tracer


class TestDisabled:
    def test_span_is_shared_noop(self):
        assert not tracing.ENABLED
        s1 = tracing.span("anything", foo=1)
        s2 = tracing.span("else")
        assert s1 is s2  # the shared null singleton — no allocation
        with s1:
            pass
        assert tracing.TRACER.spans == []

    def test_instant_noop(self):
        tracing.TRACER.reset()
        tracing.instant("marker")
        assert tracing.TRACER.spans == []


class TestRecording:
    def test_span_records_name_args_duration(self, obs_enabled):
        with tracing.span("phase.one", items=3):
            pass
        (rec,) = tracing.TRACER.spans
        assert rec["name"] == "phase.one"
        assert rec["cat"] == "repro"
        assert rec["args"] == {"items": 3}
        assert rec["dur_us"] is not None and rec["dur_us"] >= 0
        assert rec["ts_us"] >= 0

    def test_instant_has_no_duration(self, obs_enabled):
        tracing.instant("marker", level=2)
        (rec,) = tracing.TRACER.spans
        assert rec["dur_us"] is None
        assert rec["args"] == {"level": 2}

    def test_by_name_aggregates(self, obs_enabled):
        for _ in range(3):
            with tracing.span("a"):
                pass
        with tracing.span("b"):
            pass
        agg = tracing.TRACER.by_name()
        assert agg["a"]["count"] == 3
        assert agg["b"]["count"] == 1
        assert agg["a"]["total_us"] >= agg["a"]["max_us"]

    def test_hotspots_table(self, obs_enabled):
        with tracing.span("hot.path"):
            pass
        text = tracing.TRACER.hotspots()
        assert "hot.path" in text
        assert "total ms" in text

    def test_hotspots_empty(self):
        assert Tracer().hotspots() == "(no spans recorded)"

    def test_reset_restarts_epoch(self, obs_enabled):
        with tracing.span("x"):
            pass
        tracing.TRACER.reset()
        assert tracing.TRACER.spans == []


class TestExport:
    def _record_some(self):
        with tracing.TRACER.span("outer", n=1):
            with tracing.TRACER.span("inner"):
                pass
        tracing.TRACER.instant("mark")

    def test_jsonl_export(self, tmp_path, obs_enabled):
        self._record_some()
        path = tmp_path / "spans.jsonl"
        n = tracing.TRACER.export_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == n == 3
        for line in lines:
            rec = json.loads(line)
            assert {"name", "cat", "ts_us", "dur_us", "tid", "args"} <= set(rec)

    def test_chrome_export_schema(self, tmp_path, obs_enabled):
        """The exported file must be a valid Chrome trace-event document
        (JSON-object format) so chrome://tracing and Perfetto load it."""
        self._record_some()
        path = tmp_path / "trace.json"
        n = tracing.TRACER.export_chrome(str(path))
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == n == 3
        for ev in events:
            assert {"name", "cat", "ts", "pid", "tid", "ph"} <= set(ev)
            assert isinstance(ev["ts"], (int, float))
            if ev["ph"] == "X":  # complete span
                assert ev["dur"] >= 0
            else:  # instant
                assert ev["ph"] == "i"
                assert ev["s"] == "t"
        phases = sorted(ev["ph"] for ev in events)
        assert phases == ["X", "X", "i"]
