"""Unit tests for the periodic progress reporter (injected clock)."""

import pytest

from repro.obs import ProgressReporter


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


def make(every=2, clock=None):
    lines = []
    clock = clock or FakeClock()
    return ProgressReporter(every=every, out=lines.append,
                            label="msgs", clock=clock), lines, clock


class TestTick:
    def test_reports_every_n_ticks(self):
        reporter, lines, clock = make(every=2)
        assert reporter.tick() is False
        clock.t += 1.0
        assert reporter.tick() is True
        assert reporter.tick() is False
        clock.t += 1.0
        assert reporter.tick() is True
        assert reporter.reports == 2
        assert reporter.count == 4

    def test_bulk_tick_crossing_reports_once(self):
        reporter, lines, clock = make(every=10)
        clock.t += 2.0
        assert reporter.tick(25) is True
        assert len(lines) == 1
        assert "25 msgs" in lines[0]

    def test_rate_is_since_last_report(self):
        reporter, lines, clock = make(every=4)
        reporter.tick()  # establishes t0
        clock.t += 2.0
        reporter.tick(3)  # 4 msgs in 2s since first tick
        assert lines == ["progress: 4 msgs (2/s)"]

    def test_fields_appended(self):
        reporter, lines, clock = make(every=1)
        clock.t += 1.0
        reporter.tick(pending=7, level=3)
        assert lines[0].endswith("pending=7  level=3")


class TestFinal:
    def test_final_uses_overall_rate(self):
        reporter, lines, clock = make(every=100)
        reporter.tick()
        clock.t += 4.0
        reporter.tick(7)
        clock.t += 4.0
        reporter.final(done=True)
        assert lines == ["progress (final): 8 msgs (1/s)  done=True"]

    def test_final_without_ticks(self):
        reporter, lines, _ = make(every=5)
        reporter.final()
        assert lines == ["progress (final): 0 msgs (inf/s)"]


def test_every_must_be_positive():
    with pytest.raises(ValueError):
        ProgressReporter(every=0)
