"""Unit tests for the zero-dependency metrics instruments and registry."""

import json

import pytest

from repro.obs import metrics
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_reset(self):
        c = Counter("c", unit="events")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_to_dict(self):
        c = Counter("c", unit="events", help="h")
        c.inc(2)
        assert c.to_dict() == {"type": "counter", "value": 2,
                               "unit": "events", "help": "h"}


class TestGauge:
    def test_tracks_high_water_mark(self):
        g = Gauge("g")
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2
        assert g.max == 7
        g.reset()
        assert g.value == 0 and g.max == 0


class TestHistogram:
    def test_stats(self):
        h = Histogram("h")
        for v in (1, 2, 3, 8):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 14
        assert h.min == 1 and h.max == 8
        assert h.mean == pytest.approx(3.5)

    def test_power_of_two_buckets(self):
        h = Histogram("h")
        for v in (0, 1, 2, 3, 4, 8):
            h.observe(v)
        # v<=1 -> le_1; 1<v<=2 -> le_2; 2<v<=4 -> le_4; 4<v<=8 -> le_8
        assert h.buckets() == {"le_1": 2, "le_2": 1, "le_4": 2, "le_8": 1}

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("x")
        b = reg.counter("x")
        assert a is b
        assert len(reg) == 1

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_reset_zeroes_in_place(self):
        """Cached instrument references must survive a registry reset —
        hot paths cache them at import time."""
        reg = MetricsRegistry()
        cached = reg.counter("x")
        cached.inc(9)
        reg.reset()
        assert cached.value == 0
        cached.inc()
        assert reg.counter("x").value == 1

    def test_snapshot_is_json_able(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(2)
        reg.histogram("h").observe(5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["c"]["value"] == 3
        assert snap["g"]["max"] == 2
        assert snap["h"]["count"] == 1

    def test_summary_filters_zero_instruments(self):
        reg = MetricsRegistry()
        reg.counter("zero")
        reg.counter("hot").inc()
        text = reg.summary()
        assert "hot" in text
        assert "zero" not in text
        assert "zero" in reg.summary(nonzero_only=False)

    def test_empty_summary(self):
        assert MetricsRegistry().summary() == "(no metrics recorded)"


class TestModuleToggles:
    def test_enable_disable(self):
        assert not metrics.enabled()
        metrics.enable()
        try:
            assert metrics.ENABLED and metrics.enabled()
        finally:
            metrics.disable()
        assert not metrics.ENABLED

    def test_enable_with_reset_zeroes_registry(self):
        metrics.REGISTRY.counter("test.scratch").inc(5)
        metrics.enable(reset=True)
        try:
            assert metrics.REGISTRY.counter("test.scratch").value == 0
        finally:
            metrics.disable()
