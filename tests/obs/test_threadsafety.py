"""Concurrency stress: instruments and registry under contended updates.

Counter/Gauge/Histogram updates are read-modify-write; without the
per-instrument locks these tests lose increments under a small GIL switch
interval.  Also covers concurrent get-or-create on the registry and
labelled instruments, which the analysis server exercises with one reader
thread per connection plus a worker pool.
"""

import sys
import threading

import pytest

from repro.obs import metrics, tracing
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

N_THREADS = 8
N_OPS = 2_000


@pytest.fixture(autouse=True)
def _tight_switch_interval():
    """Force frequent thread switches so lost updates actually surface."""
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(old)


def _hammer(fn):
    threads = [threading.Thread(target=fn) for _ in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestInstrumentRaces:
    def test_counter_increments_are_exact(self):
        c = Counter("c")
        _hammer(lambda: [c.inc() for _ in range(N_OPS)])
        assert c.value == N_THREADS * N_OPS

    def test_gauge_add_is_atomic(self):
        g = Gauge("g")
        _hammer(lambda: [g.add(1) for _ in range(N_OPS)])
        assert g.value == N_THREADS * N_OPS
        assert g.max == N_THREADS * N_OPS
        _hammer(lambda: [g.add(-1) for _ in range(N_OPS)])
        assert g.value == 0

    def test_histogram_count_and_sum_are_exact(self):
        h = Histogram("h")
        _hammer(lambda: [h.observe(2) for _ in range(N_OPS)])
        assert h.count == N_THREADS * N_OPS
        assert h.sum == 2 * N_THREADS * N_OPS
        assert h.min == 2 and h.max == 2


class TestRegistryRaces:
    def test_concurrent_get_or_create_yields_one_instance(self):
        reg = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(N_THREADS)

        def worker():
            barrier.wait()
            seen.append(reg.counter("shared.counter"))

        _hammer(worker)
        assert len({id(c) for c in seen}) == 1
        assert len(reg.names()) == 1

    def test_concurrent_labelled_instruments(self):
        reg = MetricsRegistry()

        def worker():
            for i in range(200):
                reg.counter("sess.events",
                            labels={"session": i % 4}).inc()

        _hammer(worker)
        names = reg.names()
        assert len(names) == 4
        total = sum(reg.counter("sess.events", labels={"session": i}).value
                    for i in range(4))
        assert total == N_THREADS * 200

    def test_snapshot_during_updates_does_not_crash(self):
        reg = MetricsRegistry()
        stop = threading.Event()

        def updater():
            i = 0
            while not stop.is_set():
                reg.counter("c", labels={"k": i % 8}).inc()
                i += 1

        threads = [threading.Thread(target=updater) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                snap = reg.snapshot()
                assert all(isinstance(v, dict) for v in snap.values())
                reg.summary()
        finally:
            stop.set()
            for t in threads:
                t.join()

    def test_unregister_concurrent_with_creation(self):
        reg = MetricsRegistry()

        def churn():
            for i in range(500):
                reg.counter("evicted", labels={"s": i}).inc()
                reg.unregister("evicted", labels={"s": i})

        _hammer(churn)
        assert reg.names() == []


class TestTracerRaces:
    def test_concurrent_spans_are_all_recorded(self, obs_enabled):
        def worker():
            for _ in range(N_OPS // 10):
                with tracing.TRACER.span("stress.span"):
                    pass

        _hammer(worker)
        spans = [s for s in tracing.TRACER.spans
                 if s["name"] == "stress.span"]
        assert len(spans) == N_THREADS * (N_OPS // 10)

    def test_reset_concurrent_with_spans(self, obs_enabled):
        stop = threading.Event()

        def worker():
            while not stop.is_set():
                with tracing.TRACER.span("churn"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(100):
                tracing.TRACER.reset()
        finally:
            stop.set()
            for t in threads:
                t.join()
        # no exception and the tracer still works
        with tracing.TRACER.span("after"):
            pass
        assert any(s["name"] == "after" for s in tracing.TRACER.spans)
