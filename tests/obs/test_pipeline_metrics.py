"""Metrics accuracy over the paper's fixed xyz workload, and the
disabled-mode guarantee that the pipeline records nothing.

The xyz run under ``XYZ_OBSERVED_SCHEDULE`` is fully deterministic, so the
pipeline counters have exact expected values — not bounds.  Derivation:

* 10 events reach Algorithm A (every access of the 10-statement program);
* 4 of them are relevant writes -> 4 messages;
* joins: each relevant write joins the access VC into the thread VC (4),
  each read of a shared variable joins twice (thread<-var, var<-thread);
  the schedule performs 4 such read joins -> 12 total;
* the 4 messages over 2 threads build a 5-level lattice (levels 0..4 are
  completed as frontiers), expanding 7 cuts, stepping monitors 9 times,
  and finding exactly 1 (predicted) violation.
"""

from repro import obs
from repro.analysis import predict
from repro.obs import metrics, tracing
from repro.sched import FixedScheduler, run_program
from repro.workloads import XYZ_OBSERVED_SCHEDULE, XYZ_PROPERTY, xyz_program


def run_xyz_pipeline():
    execution = run_program(xyz_program(),
                            FixedScheduler(XYZ_OBSERVED_SCHEDULE))
    report = predict(execution, XYZ_PROPERTY, mode="levels")
    return execution, report


class TestAccuracy:
    def test_xyz_counters_exact(self, obs_enabled):
        _, report = run_xyz_pipeline()
        reg = metrics.REGISTRY
        assert reg.counter("algoa.events").value == 10
        assert reg.counter("algoa.messages").value == 4
        assert reg.counter("algoa.vc_joins").value == 12
        assert reg.counter("lattice.levels").value == 5
        assert reg.counter("lattice.nodes_expanded").value == 7
        assert reg.counter("lattice.monitor_steps").value == 9
        assert reg.counter("lattice.violations").value == 1

    def test_counters_agree_with_builder_stats(self, obs_enabled):
        """The metrics layer and BuilderStats count the same quantities
        through independent code paths; they must agree exactly."""
        execution, report = run_xyz_pipeline()
        reg = metrics.REGISTRY
        assert (reg.counter("lattice.nodes_expanded").value
                == report.stats.nodes_expanded)
        assert (reg.counter("lattice.levels").value
                == report.stats.levels_completed)
        assert reg.counter("algoa.messages").value == len(execution.messages)
        assert reg.counter("lattice.violations").value == len(report.violations)

    def test_xyz_distributions(self, obs_enabled):
        run_xyz_pipeline()
        reg = metrics.REGISTRY
        width = reg.histogram("lattice.level_width")
        assert width.count == 5
        assert width.max == 2
        assert width.mean == 7 / 5
        assert reg.gauge("lattice.frontier_cuts").max == 2
        assert reg.gauge("lattice.frontier_states").max == 3

    def test_xyz_spans_recorded(self, obs_enabled):
        run_xyz_pipeline()
        agg = tracing.TRACER.by_name()
        assert agg["algoa.process"]["count"] == 10
        assert agg["lattice.level"]["count"] == 5
        assert agg["predict.levels"]["count"] == 1
        assert agg["predict.observed_check"]["count"] == 1

    def test_causal_delivery_metrics(self, obs_enabled):
        """Feed the 4 xyz messages through the observer (FIFO, no faults):
        all offered messages release, nothing is lost or quarantined."""
        from repro.observer import FifoChannel, Observer

        execution, _ = run_xyz_pipeline()
        channel = FifoChannel()
        initial = {v: execution.initial_store[v] for v in ("x", "y", "z")}
        observer = Observer(execution.n_threads, initial, spec=XYZ_PROPERTY,
                            fault_tolerant=True)
        for m in execution.messages:
            channel.put(m)
        channel.close()
        observer.consume(channel)
        observer.finish()
        reg = metrics.REGISTRY
        assert reg.counter("delivery.offered").value == 4
        assert reg.counter("delivery.released").value == 4
        assert reg.counter("delivery.losses_declared").value == 0
        assert reg.counter("observer.received").value == 4
        assert reg.histogram("delivery.release_cascade").count >= 1


class TestDisabledNoOp:
    def test_pipeline_records_nothing_when_disabled(self):
        assert not metrics.ENABLED and not tracing.ENABLED
        metrics.REGISTRY.reset()
        tracing.TRACER.reset()
        run_xyz_pipeline()
        for name, data in metrics.REGISTRY.snapshot().items():
            if data["type"] == "counter":
                assert data["value"] == 0, name
            elif data["type"] == "gauge":
                assert data["value"] == 0 and data["max"] == 0, name
            else:
                assert data["count"] == 0, name
        assert tracing.TRACER.spans == []

    def test_obs_facade_toggles_both(self):
        obs.enable(reset=True)
        assert metrics.ENABLED and tracing.ENABLED
        obs.disable()
        assert not metrics.ENABLED and not tracing.ENABLED
        assert not obs.enabled()
