"""Fixtures for the observability tests: enable/disable around each test
so the process-wide registry and tracer never leak state across tests."""

import pytest

from repro import obs


@pytest.fixture
def obs_enabled():
    """Metrics + tracing on (zeroed), guaranteed off and zeroed after."""
    obs.enable(reset=True)
    yield
    obs.disable()
    obs.reset()
