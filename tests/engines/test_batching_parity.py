"""Per-engine batch-vs-single parity through the Observer (satellite of
PR 8, mirroring ``tests/observer/test_batching.py`` for the new engines).

``Observer.receive_batch`` exists purely for throughput: with any engine
mix riding the bus it must be observationally identical to per-item
``receive`` — same per-engine verdicts (violations, counterexample texts,
soundness, degraded windows), same causal log, same health — across
clean, shuffled, chunked and fault-injected streams.
"""

import random

import pytest

from repro.core.events import Envelope
from repro.observer import Observer

from .conftest import lock_execution

#: The multi-engine mixes under test.  ``v0 >= 0`` is clean on every
#: lock program (values are 0..9), so LTL exercises the lattice without
#: drowning the parity diff in violations.
MIXES = [
    ["atomicity"],
    ["pattern:W(v0);R(v0)"],
    ["atomicity", "pattern:W(v0);R(v0);W(v1)"],
    ["ltl:v0 >= 0", "atomicity", "pattern:R(v1);W(v1)"],
]


def shuffled(messages, seed):
    msgs = list(messages)
    random.Random(seed).shuffle(msgs)
    return msgs


def faulty_stream(messages, seed, drop=0.15, dup=0.15):
    """Drop/duplicate messages and splice in one corrupt envelope —
    the fault-injection shape of ``tests/observer/test_batching.py``."""
    rng = random.Random(seed)
    stream = []
    for m in messages:
        if rng.random() < drop:
            continue
        stream.append(m)
        if rng.random() < dup:
            stream.append(m)
    env = Envelope.wrap(messages[0], seq=0)
    bad = Envelope(message=env.message, seq=env.seq,
                   checksum=env.checksum ^ 0xFF)
    stream.insert(len(stream) // 2, bad)
    return stream


def drain(observer, items, chunk):
    found = []
    if chunk is None:
        for item in items:
            found.extend(observer.receive(item))
    else:
        for i in range(0, len(items), chunk):
            found.extend(observer.receive_batch(items[i:i + chunk]))
    return found


def assert_verdict_parity(one, many):
    docs_one = [v.to_json() for v in one.engine_verdicts()]
    docs_many = [v.to_json() for v in many.engine_verdicts()]
    assert docs_one == docs_many
    assert one.counterexamples() == many.counterexamples()
    assert [m.event.eid for m in one.causal_log] == \
           [m.event.eid for m in many.causal_log]
    assert one.health == many.health


class TestCleanStreams:
    @pytest.mark.parametrize("engines", MIXES, ids=[",".join(
        s.partition(":")[0] for s in m) for m in MIXES])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_equals_single_in_order(self, engines, seed):
        ex = lock_execution(seed)
        init = dict(ex.initial_store)
        one = Observer(ex.n_threads, init, engines=engines, causal_log=True)
        many = Observer(ex.n_threads, init, engines=engines, causal_log=True)
        msgs = list(ex.messages)
        drain(one, msgs, None)
        drain(many, msgs, 5)
        one.finish()
        many.finish()
        assert_verdict_parity(one, many)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_batch_equals_single_shuffled(self, seed):
        """Order-requiring engines route strict ingestion through the
        delivery buffer: a shuffled stream still reaches every engine in
        causal order, identically for both entry points."""
        ex = lock_execution(seed)
        engines = ["atomicity", "pattern:W(v0);R(v0)"]
        init = dict(ex.initial_store)
        one = Observer(ex.n_threads, init, engines=engines)
        many = Observer(ex.n_threads, init, engines=engines)
        msgs = shuffled(ex.messages, seed)
        drain(one, msgs, None)
        drain(many, msgs, 7)
        one.finish()
        many.finish()
        assert_verdict_parity(one, many)

    def test_uneven_chunks(self):
        ex = lock_execution(6)
        engines = ["atomicity", "pattern:R(v0);W(v0)"]
        observers = [Observer(ex.n_threads, dict(ex.initial_store),
                              engines=engines) for _ in range(3)]
        msgs = list(ex.messages)
        drain(observers[0], msgs, None)
        drain(observers[1], msgs, 1)
        drain(observers[2], msgs, len(msgs))
        for o in observers:
            o.finish()
        assert_verdict_parity(observers[0], observers[1])
        assert_verdict_parity(observers[0], observers[2])


class TestFaultInjection:
    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_tolerant_absorbs_faults_identically(self, seed):
        ex = lock_execution(seed % 3)
        engines = ["ltl:v0 >= 0", "atomicity", "pattern:W(v0);R(v0)"]
        stream = faulty_stream(list(ex.messages), seed)
        init = dict(ex.initial_store)
        one = Observer(ex.n_threads, init, engines=engines,
                       fault_tolerant=True)
        many = Observer(ex.n_threads, init, engines=engines,
                        fault_tolerant=True)
        drain(one, stream, None)
        drain(many, stream, 5)
        one.finish()
        many.finish()
        assert one.health.corrupted == 1
        assert_verdict_parity(one, many)

    @pytest.mark.parametrize("seed", [7, 8])
    def test_degraded_finish_parity(self, seed):
        """Dropping a whole suffix degrades every engine's verdict the
        same way on both ingestion paths (finish_partial through the bus).
        """
        ex = lock_execution(seed)
        engines = ["atomicity", "pattern:W(v0);R(v0)"]
        msgs = list(ex.messages)[: 2 * len(ex.messages) // 3]
        totals = [0] * ex.n_threads
        for m in ex.messages:
            totals[m.thread] += 1
        init = dict(ex.initial_store)
        one = Observer(ex.n_threads, init, engines=engines,
                       fault_tolerant=True)
        many = Observer(ex.n_threads, init, engines=engines,
                        fault_tolerant=True)
        drain(one, msgs, None)
        drain(many, msgs, 4)
        one.finish(expected_totals=totals)
        many.finish(expected_totals=totals)
        assert_verdict_parity(one, many)
        docs = [v.to_json() for v in one.engine_verdicts()]
        assert any(not d["sound"] for d in docs)
        for d in docs:
            assert d["sound"] is False
            assert d["degraded_windows"]

    def test_strict_duplicate_raises_after_prefix(self):
        ex = lock_execution(9)
        obs = Observer(ex.n_threads, dict(ex.initial_store),
                       engines=["atomicity"])
        msgs = list(ex.messages[:4])
        with pytest.raises(ValueError, match="duplicate"):
            obs.receive_batch(msgs + [msgs[0]])
        assert len(obs.causality) == 4


class TestEngineAccessors:
    def test_violations_accessor_tracks_ltl_only(self):
        """`Observer.violations` stays the LTL back-compat view; other
        engines report through `engine_verdicts`."""
        ex = lock_execution(0)
        obs = Observer(ex.n_threads, dict(ex.initial_store),
                       engines=["ltl:v0 >= 0", "atomicity"])
        for m in ex.messages:
            obs.receive(m)
        obs.finish()
        assert obs.violations == []             # v0 >= 0 is clean
        names = [v.engine for v in obs.engine_verdicts()]
        assert names == ["ltl", "atomicity"]

    def test_spec_only_observer_is_single_ltl(self):
        ex = lock_execution(1)
        obs = Observer(ex.n_threads, dict(ex.initial_store),
                       spec="v0 >= 0")
        assert [e.name for e in obs.engines] == ["ltl"]
        assert obs.stats is not None

    def test_engineless_observer_has_empty_bus(self):
        ex = lock_execution(1)
        obs = Observer(ex.n_threads, dict(ex.initial_store))
        for m in ex.messages:
            assert obs.receive(m) == []
        assert obs.finish() == []
        assert obs.engine_verdicts() == []
