"""Differential replay + engine attribution end-to-end.

The archive is the regression corpus: multi-engine sessions must commit
attributable entries (which engines, which versions, which spec texts),
`verify_entry` must rebuild the exact pipeline from the catalog and
reproduce every verdict bit-for-bit, and `--engine` differential replay
must surface findings the recorded pipeline missed — the headline case
being a seeded serializability violation that is invisible to the LTL
spec.  Plumbing round-trips (Hello, JournalMeta, catalog back-compat)
ride along.
"""

import pytest

from repro.core import all_accesses
from repro.sched import FixedScheduler, Program, run_program
from repro.sched.program import (
    Acquire,
    Internal,
    Read,
    Release,
    Write,
    straightline,
)
from repro.server.protocol import Hello, ProtocolError
from repro.server.recovery import JournalMeta
from repro.store import TraceArchive, replay_entry, verify_entry
from repro.store.catalog import CatalogEntry, CatalogQuery
from repro.store.replay import selections_for_entry

from .conftest import lock_execution


@pytest.fixture
def archive(tmp_path):
    return TraceArchive(tmp_path / "archive")


def seeded_violation_execution():
    """A region whose atomicity is broken by a remote write while every
    value stays non-negative: the LTL spec ``x >= 0`` is clean, only the
    atomicity engine sees the R-W-R triple."""
    region = straightline([Acquire("L"), Read("x"), Internal(),
                           Read("x"), Release("L")])
    remote = straightline([Write("x", 1)])
    program = Program(initial={"x": 0, "L": 0}, threads=[region, remote])
    return run_program(program, FixedScheduler([], strict=False),
                       relevance=all_accesses())


ENGINES = ["ltl:x >= 0", "atomicity", "pattern:W(x);R(x)"]


def record(archive, execution, engines, program="locks"):
    return archive.record_messages(
        program, execution.n_threads, execution.initial_store,
        execution.messages, spec="x >= 0", engines=engines)


class TestMultiEngineRecording:
    def test_entry_attributes_every_engine(self, archive):
        entry = record(archive, seeded_violation_execution(), ENGINES)
        assert entry.engine == "ltl"
        assert entry.engines == ("ltl@1", "atomicity@1", "pattern@1")
        assert entry.engine_spec == "x >= 0"
        assert entry.engine_specs == (
            "x >= 0", "unserializable access patterns (AVIO table)",
            "W(x) ; R(x)")     # pattern text is stored normalized
        # atomicity flags the seeded violation the LTL spec misses
        assert entry.verdict == "violation"
        assert any("atomicity violation" in c for c in entry.counterexamples)
        assert not any("x >= 0" in c for c in entry.counterexamples)

    def test_verify_entry_reproduces_multi_engine_verdicts(self, archive):
        entry = record(archive, seeded_violation_execution(), ENGINES)
        assert verify_entry(archive, entry) == []

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_verify_random_lock_corpus(self, archive, seed):
        ex = lock_execution(seed)
        entry = archive.record_messages(
            "locks", ex.n_threads, ex.initial_store, ex.messages,
            spec="v0 >= 0",
            engines=["ltl:v0 >= 0", "atomicity", "pattern:W(v0);R(v0)"])
        assert verify_entry(archive, entry) == []

    def test_selections_reconstructed_from_catalog(self, archive):
        entry = record(archive, seeded_violation_execution(), ENGINES)
        selections, missing = selections_for_entry(entry)
        assert selections == ["ltl:x >= 0", "atomicity",
                              "pattern:W(x) ; R(x)"]
        assert missing == []

    def test_classic_entry_still_verifies(self, archive):
        """A spec-only recording (no engines) stays the classic pipeline
        and still reproduces bit-for-bit — the pre-bus baseline."""
        ex = seeded_violation_execution()
        entry = archive.record_messages(
            "locks", ex.n_threads, ex.initial_store, ex.messages,
            spec="x >= 0")
        assert entry.engine == "ltl"
        assert entry.engines == ("ltl@1",)
        assert entry.violations == 0            # x >= 0 is clean
        assert verify_entry(archive, entry) == []


class TestDifferentialReplay:
    def test_new_engine_over_old_entry_finds_what_ltl_missed(self, archive):
        """The acceptance case: replay an LTL-clean archive under the
        atomicity engine and surface the seeded serializability bug."""
        ex = seeded_violation_execution()
        entry = archive.record_messages(
            "locks", ex.n_threads, ex.initial_store, ex.messages,
            spec="x >= 0")
        assert entry.violations == 0
        diff = replay_entry(archive, entry, engines=["atomicity"])
        assert diff.violations == 1
        assert "R-W-R" in diff.counterexamples[0]
        assert diff.engines[0]["engine"] == "atomicity"
        # the archived entry itself is untouched
        assert archive.get(entry.id).violations == 0

    def test_verify_with_extra_engines_keeps_diff_on_recorded(self, archive):
        """`replay --engine X --expect-catalog`: X runs alongside but the
        bit-for-bit comparison stays restricted to the recorded engines —
        extra findings must not read as drift."""
        ex = seeded_violation_execution()
        entry = archive.record_messages(
            "locks", ex.n_threads, ex.initial_store, ex.messages,
            spec="x >= 0")
        assert verify_entry(archive, entry,
                            extra_engines=["atomicity"]) == []

    def test_extra_engine_already_recorded_not_duplicated(self, archive):
        entry = record(archive, seeded_violation_execution(), ENGINES)
        assert verify_entry(archive, entry,
                            extra_engines=["atomicity"]) == []


class TestQueryByEngine:
    def test_bare_name_and_qualified_filters(self, archive):
        ex = seeded_violation_execution()
        multi = record(archive, ex, ENGINES, program="multi")
        classic = archive.record_messages(
            "classic", ex.n_threads, ex.initial_store, ex.messages,
            spec="x >= 0")
        ids = {e.id for e in archive.entries(CatalogQuery(engine="atomicity"))}
        assert ids == {multi.id}
        ids = {e.id for e in
               archive.entries(CatalogQuery(engine="atomicity@1"))}
        assert ids == {multi.id}
        assert not archive.entries(CatalogQuery(engine="atomicity@99"))
        # every entry ran LTL; the classic one is attributed to it too
        ids = {e.id for e in archive.entries(CatalogQuery(engine="ltl"))}
        assert ids == {multi.id, classic.id}

    def test_engine_filter_conjunctive_with_others(self, archive):
        ex = seeded_violation_execution()
        record(archive, ex, ENGINES, program="multi")
        q = CatalogQuery(engine="atomicity", program="elsewhere")
        assert archive.entries(q) == []


class TestCatalogBackCompat:
    def _doc(self, **overrides):
        doc = {
            "id": "t-0001", "program": "xyz", "n_threads": 3, "events": 9,
            "verdict": "clean", "violations": 0, "counterexamples": [],
            "final_clocks": [[1, 0, 0], [0, 1, 0], [0, 0, 1]],
            "sound": True, "wall_time_s": 0.1, "created_at": 1.0,
            "bytes": 128, "path": "traces/t-0001.rpt", "spec": "x >= 0",
        }
        doc.update(overrides)
        return doc

    def test_pre_bus_doc_attributed_to_ltl(self):
        entry = CatalogEntry.from_json(self._doc())
        assert entry.engine == "ltl"
        assert entry.engines == ("ltl@1",)
        assert entry.engine_spec == "x >= 0"
        selections, missing = selections_for_entry(entry)
        assert selections == ["ltl:x >= 0"]
        assert missing == []

    def test_pre_bus_specless_doc_attributed_to_none(self):
        entry = CatalogEntry.from_json(self._doc(spec=None))
        assert entry.engine == "none"
        assert entry.engines == ()
        assert selections_for_entry(entry) == ([], [])

    def test_explicit_empty_engines_round_trips(self):
        entry = CatalogEntry.from_json(self._doc(engines=[]))
        assert entry.engines == ()

    def test_unreconstructible_engine_reported_missing(self):
        entry = CatalogEntry.from_json(self._doc(
            engines=["ltl@1", "pattern@1"], engine_spec="x >= 0"))
        selections, missing = selections_for_entry(entry)
        assert selections == ["ltl:x >= 0"]
        assert missing == ["pattern@1"]    # its pattern text was never kept


class TestProtocolPlumbing:
    def test_hello_engines_round_trip(self):
        h = Hello(mode="attach", program="demo", n_threads=3,
                  initial={"x": 0}, spec="x >= 0",
                  engines=("ltl", "atomicity", "pattern:W(x);R(x)"))
        back = Hello.from_frame(h.to_frame())
        assert back.engines == h.engines

    def test_hello_engines_default_empty(self):
        h = Hello(mode="attach", program="demo", n_threads=3,
                  initial={}, spec=None)
        doc = h.to_frame()
        assert "engines" not in doc
        assert Hello.from_frame(doc).engines == ()

    @pytest.mark.parametrize("bad", [["ltl", 3], "atomicity", [""]])
    def test_hello_rejects_malformed_engines(self, bad):
        h = Hello(mode="attach", program="demo", n_threads=3, initial={})
        doc = h.to_frame()
        doc["engines"] = bad
        with pytest.raises(ProtocolError, match="engines"):
            Hello.from_frame(doc)

    def test_journal_meta_engines_round_trip(self):
        meta = JournalMeta(
            session=1, token="tok", epoch=1, program="demo", n_threads=2,
            initial={"x": 0}, spec="x >= 0", fault_tolerant=True,
            created_at=123.0, engines=("atomicity", "ltl:x >= 0"))
        back = JournalMeta.from_json(meta.to_json())
        assert back.engines == ("atomicity", "ltl:x >= 0")

    def test_journal_meta_pre_bus_doc_defaults_empty(self):
        meta = JournalMeta(
            session=1, token="tok", epoch=1, program="demo", n_threads=2,
            initial={}, spec=None, fault_tolerant=False, created_at=1.0)
        doc = meta.to_json()
        del doc["engines"]
        assert JournalMeta.from_json(doc).engines == ()
