"""Shared generators for the engine tests: random programs with lock
regions, executed with every access relevant so the sync and read events
reach the message stream (what the atomicity and pattern engines need)."""

import random

import pytest

from repro.core import all_accesses
from repro.sched import Program, RandomScheduler, run_program
from repro.sched.program import (
    Acquire,
    Internal,
    Read,
    Release,
    Write,
    straightline,
)


def random_lock_program(rng, n_threads=3, n_vars=2, n_locks=2,
                        ops_per_thread=12):
    """A random straightline program with acquire/release regions.

    Each thread holds at most one lock at a time and releases any held
    lock before finishing — the two invariants the runtime enforces
    (no re-acquire, no deadlock-by-exit).
    """
    variables = [f"v{i}" for i in range(n_vars)]
    locks = [f"L{i}" for i in range(n_locks)]
    bodies = []
    for _t in range(n_threads):
        ops = []
        held = None
        for _ in range(ops_per_thread):
            u = rng.random()
            if u < 0.15 and held is None:
                held = rng.choice(locks)
                ops.append(Acquire(held))
            elif u < 0.30 and held is not None:
                ops.append(Release(held))
                held = None
            elif u < 0.40:
                ops.append(Internal())
            elif u < 0.72:
                ops.append(Write(rng.choice(variables), rng.randrange(10)))
            else:
                ops.append(Read(rng.choice(variables)))
        if held is not None:
            ops.append(Release(held))
        bodies.append(straightline(ops))
    initial = {v: 0 for v in variables}
    initial.update({lk: 0 for lk in locks})
    return Program(initial=initial, threads=bodies)


def lock_execution(seed, **kwargs):
    rng = random.Random(seed)
    program = random_lock_program(rng, **kwargs)
    return run_program(program, RandomScheduler(seed),
                       relevance=all_accesses())


@pytest.fixture
def lock_exec():
    return lock_execution
