"""Analysis-bus tests: one stream, one clock computation, N engines.

Pins down the bus contract — annotations are computed once and shared by
identity, the online sync-HB clocks agree with the offline
``Computation(causality="sync")`` oracle, ordering requirements are
enforced at registration, and graceful degradation reaches every engine.
"""

import pytest

from repro.core.computation import Computation
from repro.engines import (
    AnalysisBus,
    AnalysisEngine,
    AtomicityEngine,
    EngineError,
    EngineVerdict,
    LtlEngine,
    PatternEngine,
    compute_degraded_windows,
    hb_concurrent,
    hb_precedes,
    make_engine,
    parse_engine_spec,
)
from repro.obs import metrics

from .conftest import lock_execution


class RecordingEngine(AnalysisEngine):
    """Test double: remembers every BusEvent it was fed."""

    name = "recorder"
    version = "t"

    def __init__(self, requires_order=True):
        super().__init__()
        self.requires_order = requires_order
        self.seen = []

    def feed(self, ev):
        self.seen.append(ev)
        return []

    def counterexamples(self):
        return []


class TestFanOut:
    def test_every_engine_sees_the_same_annotated_event(self):
        ex = lock_execution(0)
        a, b = RecordingEngine(), RecordingEngine()
        bus = AnalysisBus(ex.n_threads, [a, b], ordered=True)
        for m in ex.messages:
            bus.feed(m)
        assert len(a.seen) == len(b.seen) == len(ex.messages)
        for ea, eb in zip(a.seen, b.seen):
            # identity, not equality: the annotation was computed once
            assert ea is eb
        for i, ev in enumerate(a.seen):
            assert ev.index == i
            assert ev.clock == tuple(ev.msg.clock)
            assert ev.hb is not None

    def test_feed_batch_annotates_once_and_shares(self):
        ex = lock_execution(1)
        a, b = RecordingEngine(), RecordingEngine()
        bus = AnalysisBus(ex.n_threads, [a, b], ordered=True)
        bus.feed_batch(list(ex.messages))
        assert bus.events_fed == len(ex.messages)
        for ea, eb in zip(a.seen, b.seen):
            assert ea is eb

    def test_findings_concatenated_in_engine_order(self):
        class Finder(RecordingEngine):
            def __init__(self, tag):
                super().__init__()
                self.tag = tag

            def feed(self, ev):
                super().feed(ev)
                return [self.tag]

        bus_exec = lock_execution(2)
        bus = AnalysisBus(bus_exec.n_threads,
                          [Finder("first"), Finder("second")], ordered=True)
        found = bus.feed(bus_exec.messages[0])
        assert found == ["first", "second"]


class TestSyncHappensBefore:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_agrees_with_offline_sync_computation(self, seed):
        ex = lock_execution(seed)
        rec = RecordingEngine()
        bus = AnalysisBus(ex.n_threads, [rec], ordered=True)
        for m in ex.messages:
            bus.feed(m)
        comp = Computation(ex.events, causality="sync")
        evs = rec.seen
        for i, a in enumerate(evs):
            for b in evs[i + 1:]:
                assert hb_concurrent(a, b) == comp.concurrent(a.event,
                                                              b.event)
                assert hb_precedes(a, b) == comp.precedes(a.event, b.event)

    def test_unordered_bus_skips_hb_annotation(self):
        ex = lock_execution(0)
        rec = RecordingEngine(requires_order=False)
        bus = AnalysisBus(ex.n_threads, [rec], ordered=False)
        bus.feed(ex.messages[0])
        assert rec.seen[0].hb is None


class TestOrderingContract:
    def test_unordered_bus_rejects_order_requiring_engine(self):
        with pytest.raises(EngineError, match="requires causally-ordered"):
            AnalysisBus(2, [AtomicityEngine(2)], ordered=False)
        with pytest.raises(EngineError):
            AnalysisBus(2, [PatternEngine(2, "W(x);R(x)")], ordered=False)

    def test_ltl_engine_tolerates_raw_arrival_order(self):
        # the lattice buffers internally, so the legacy strict pipeline
        # (raw arrivals, no delivery buffer) stays valid for it
        bus = AnalysisBus(2, [LtlEngine(2, {"x": 0}, "x >= 0")],
                          ordered=False)
        assert bus.engines[0].requires_order is False

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            AnalysisBus(0, [])


class TestGracefulDegradation:
    def test_finish_partial_degrades_every_verdict(self):
        ex = lock_execution(3)
        engines = [AtomicityEngine(ex.n_threads),
                   PatternEngine(ex.n_threads, "W(v0);R(v0)")]
        bus = AnalysisBus(ex.n_threads, engines, ordered=True)
        counts = [0] * ex.n_threads
        for m in ex.messages[: len(ex.messages) // 2]:
            bus.feed(m)
            counts[m.thread] += 1
        bus.finish_partial(counts)
        for v in bus.verdicts():
            assert v.sound is False
            assert v.degraded_windows
            doc = v.to_json()
            assert doc["sound"] is False
            assert doc["degraded_windows"]

    def test_finish_keeps_verdicts_sound(self):
        ex = lock_execution(3)
        bus = AnalysisBus(ex.n_threads, [AtomicityEngine(ex.n_threads)],
                          ordered=True)
        for m in ex.messages:
            bus.feed(m)
        bus.finish()
        assert all(v.sound for v in bus.verdicts())
        assert bus.degraded_windows == ()

    def test_compute_degraded_windows_exact_and_conservative(self):
        # exact: only the cut-short threads are windows
        ws = compute_degraded_windows([3, 5], [5, 5])
        assert [(w.thread, w.first_missing, w.analyzed) for w in ws] == \
            [(0, 4, 3)]
        # complete delivery with known totals: nothing degraded
        assert compute_degraded_windows([5, 5], [5, 5]) == ()
        # unknown totals: every thread is conservatively degraded
        ws = compute_degraded_windows([2, 0])
        assert [(w.thread, w.first_missing) for w in ws] == [(0, 3), (1, 1)]

    def test_compute_degraded_windows_rejects_overdelivery(self):
        with pytest.raises(ValueError, match="delivered 6 > expected 5"):
            compute_degraded_windows([6], [5])


class TestSelectionStrings:
    def test_parse_engine_spec(self):
        assert parse_engine_spec("atomicity") == ("atomicity", None)
        assert parse_engine_spec("pattern:W(x);R(y)") == \
            ("pattern", "W(x);R(y)")
        assert parse_engine_spec("LTL:x >= 0") == ("ltl", "x >= 0")

    @pytest.mark.parametrize("bad", ["", "   ", ":arg"])
    def test_parse_rejects_nameless_selections(self, bad):
        with pytest.raises(EngineError):
            parse_engine_spec(bad)

    def test_make_engine_ltl_uses_default_spec(self):
        e = make_engine("ltl", 2, {"c": 0}, default_spec="c >= 0")
        assert isinstance(e, LtlEngine)
        assert e.spec_text() == "c >= 0"

    def test_make_engine_ltl_inline_formula_wins(self):
        e = make_engine("ltl:c >= 1", 2, {"c": 0}, default_spec="c >= 0")
        assert e.spec_text() == "c >= 1"

    def test_make_engine_ltl_without_any_spec_fails(self):
        with pytest.raises(EngineError, match="needs a specification"):
            make_engine("ltl", 2, {"c": 0})

    def test_make_engine_pattern_requires_steps(self):
        with pytest.raises(EngineError, match="needs a pattern"):
            make_engine("pattern", 2, {})

    def test_make_engine_atomicity_rejects_argument(self):
        with pytest.raises(ValueError, match="takes no argument"):
            make_engine("atomicity:fast", 2, {})

    def test_make_engine_unknown_name_lists_available(self):
        with pytest.raises(EngineError, match="atomicity.*ltl.*pattern"):
            make_engine("fuzzer", 2, {})


class TestVerdictContract:
    def test_verdict_and_qualified(self):
        v = EngineVerdict(engine="atomicity", version="1",
                          spec="unserializable access patterns (AVIO table)",
                          violations=0, counterexamples=(), sound=True)
        assert v.verdict == "clean"
        assert v.qualified == "atomicity@1"
        bad = EngineVerdict(engine="ltl", version="1", spec="c >= 0",
                            violations=2, counterexamples=("a", "b"),
                            sound=True)
        assert bad.verdict == "violation"

    def test_to_json_shape(self):
        v = EngineVerdict(engine="pattern", version="1", spec="W(x);R(x)",
                          violations=1, counterexamples=("m",), sound=False)
        doc = v.to_json()
        assert doc == {
            "engine": "pattern", "version": "1", "spec": "W(x);R(x)",
            "verdict": "violation", "violations": 1,
            "counterexamples": ["m"], "sound": False,
            "degraded_windows": [],
        }


class TestBusMetrics:
    def test_labelled_per_engine_counters(self):
        ex = lock_execution(4)
        metrics.enable(reset=True)
        try:
            engines = [AtomicityEngine(ex.n_threads),
                       PatternEngine(ex.n_threads, "W(v0);R(v0)")]
            bus = AnalysisBus(ex.n_threads, engines, ordered=True)
            for m in ex.messages:
                bus.feed(m)
            bus.finish()
            snap = metrics.REGISTRY.snapshot()
            for name in ("atomicity", "pattern"):
                inst = snap[f"engine.events{{engine={name}}}"]
                assert inst["value"] == len(ex.messages)
                assert inst["labels"] == {"engine": name}
                assert f"engine.findings{{engine={name}}}" in snap
        finally:
            metrics.disable()

    def test_snapshot_reports_every_engine(self):
        ex = lock_execution(5)
        bus = AnalysisBus(ex.n_threads, [AtomicityEngine(ex.n_threads)],
                          ordered=True)
        bus.feed_batch(list(ex.messages))
        snap = bus.snapshot()
        assert snap["events"] == len(ex.messages)
        assert snap["ordered"] is True
        assert snap["finished"] is False
        assert snap["engines"][0]["engine"] == "atomicity"
