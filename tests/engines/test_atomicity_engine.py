"""AtomicityEngine: streaming AVIO detection vs the offline oracle.

The engine must be *equivalent* to
:func:`repro.analysis.atomicity.find_atomicity_violations` on complete
streams — same triples, same report texts — while running online with a
bounded live window.  The deterministic cases mirror
``tests/analysis/test_atomicity.py`` shapes fed through the bus; the
random-program sweep pins exact parity, with and without retirement.
"""

import pytest

import repro.engines.atomicity as atomicity_mod
from repro.analysis.atomicity import find_atomicity_violations
from repro.core import all_accesses
from repro.engines import AnalysisBus, AtomicityEngine
from repro.sched import FixedScheduler, Program, run_program
from repro.sched.program import (
    Acquire,
    Internal,
    Read,
    Release,
    Write,
    straightline,
)

from .conftest import lock_execution


def run(threads, initial, schedule=None):
    p = Program(initial=initial, threads=threads)
    return run_program(p, FixedScheduler(schedule or [], strict=False),
                       relevance=all_accesses())


def feed(execution, engine=None, finish=True):
    engine = engine or AtomicityEngine(execution.n_threads)
    bus = AnalysisBus(execution.n_threads, [engine], ordered=True)
    for m in execution.messages:
        bus.feed(m)
    if finish:
        bus.finish()
    return engine


def region_reader(var="x", n_reads=2):
    ops = [Acquire("L")]
    for _ in range(n_reads):
        ops.append(Read(var))
        ops.append(Internal())
    ops = ops[:-1] + [Release("L")]
    return straightline(ops)


def offline_pretty(execution):
    return sorted(v.pretty() for v in find_atomicity_violations(execution))


class TestUnserializablePatterns:
    def test_rwr_non_repeatable_read(self):
        ex = run([region_reader(), straightline([Write("x", 1)])],
                 {"x": 0, "L": 0})
        engine = feed(ex)
        assert len(engine.findings) == 1
        f = engine.findings[0]
        assert f.pattern == ("R", "W", "R")
        assert f.var == "x"
        assert f.lock == "L"

    def test_wrw_intermediate_read(self):
        writer = straightline([Acquire("L"), Write("x", 1), Internal(),
                               Write("x", 2), Release("L")])
        ex = run([writer, straightline([Read("x")])], {"x": 0, "L": 0})
        engine = feed(ex)
        assert {f.pattern for f in engine.findings} == {("W", "R", "W")}

    def test_rww_lost_remote_write(self):
        local = straightline([Acquire("L"), Read("x"), Internal(),
                              Write("x", 9), Release("L")])
        ex = run([local, straightline([Write("x", 1)])], {"x": 0, "L": 0})
        assert ("R", "W", "W") in {f.pattern for f in feed(ex).findings}

    def test_wwr_lost_local_write(self):
        local = straightline([Acquire("L"), Write("x", 1), Internal(),
                              Read("x"), Release("L")])
        ex = run([local, straightline([Write("x", 2)])], {"x": 0, "L": 0})
        assert ("W", "W", "R") in {f.pattern for f in feed(ex).findings}


class TestSerializablePatterns:
    @pytest.mark.parametrize("local_ops, remote_op", [
        ([Read("x"), Read("x")], Read("x")),          # R-R-R
        ([Write("x", 1), Read("x")], Read("x")),      # W-R-R
        ([Read("x"), Write("x", 1)], Read("x")),      # R-R-W
    ])
    def test_serializable_triples_not_reported(self, local_ops, remote_op):
        ops = [Acquire("L")]
        for i, op in enumerate(local_ops):
            if i:
                ops.append(Internal())
            ops.append(op)
        ops.append(Release("L"))
        ex = run([straightline(ops), straightline([remote_op])],
                 {"x": 0, "L": 0})
        assert feed(ex).findings == []

    def test_remote_under_same_lock_not_reported(self):
        remote = straightline([Acquire("L"), Write("x", 1), Release("L")])
        ex = run([region_reader(), remote], {"x": 0, "L": 0})
        assert feed(ex).findings == []

    def test_remote_under_different_lock_reported(self):
        remote = straightline([Acquire("M"), Write("x", 1), Release("M")])
        ex = run([region_reader(), remote], {"x": 0, "L": 0, "M": 0})
        assert len(feed(ex).findings) == 1

    def test_same_thread_never_reported(self):
        body = straightline([Acquire("L"), Read("x"), Write("x", 1),
                             Read("x"), Release("L"), Write("x", 2)])
        ex = run([body], {"x": 0, "L": 0})
        assert feed(ex).findings == []

    def test_different_variables_not_reported(self):
        ex = run([region_reader("x"), straightline([Write("y", 1)])],
                 {"x": 0, "y": 0, "L": 0})
        assert feed(ex).findings == []


class TestEmissionTiming:
    def test_nothing_emitted_before_region_closes(self):
        """Findings inside an open region are deferred to its release —
        an unreleased lock span is not an atomic block."""
        ex = run([region_reader(), straightline([Write("x", 1)])],
                 {"x": 0, "L": 0})
        engine = AtomicityEngine(ex.n_threads)
        bus = AnalysisBus(ex.n_threads, [engine], ordered=True)
        emitted_at = []
        for m in ex.messages:
            if bus.feed(m):
                emitted_at.append(m.event.kind.name)
        bus.finish()
        assert engine.findings          # the violation was found...
        assert set(emitted_at) <= {"RELEASE", "READ", "WRITE"}

    def test_remote_after_close_reports_immediately(self):
        """A region's pairs stay live after release: a later remote access
        concurrent with both halves still lands (schedule T0 fully first)."""
        ex = run([region_reader(), straightline([Write("x", 1)])],
                 {"x": 0, "L": 0}, schedule=[0] * 8 + [1])
        engine = feed(ex)
        assert len(engine.findings) == 1

    def test_unreleased_region_drops_its_findings(self):
        local = straightline([Acquire("L"), Read("x"), Internal(),
                              Read("x")])      # never released
        ex = run([local, straightline([Write("x", 1)])], {"x": 0, "L": 0})
        engine = feed(ex)
        assert engine.findings == []
        assert find_atomicity_violations(ex) == []   # oracle agrees


class TestOfflineParity:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_lock_programs(self, seed):
        ex = lock_execution(seed)
        engine = feed(ex)
        assert sorted(engine.counterexamples()) == offline_pretty(ex)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_wider_programs(self, seed):
        ex = lock_execution(seed, n_threads=4, n_vars=3, n_locks=3,
                            ops_per_thread=16)
        engine = feed(ex)
        assert sorted(engine.counterexamples()) == offline_pretty(ex)

    def test_pretty_matches_offline_text_exactly(self):
        ex = run([region_reader(), straightline([Write("x", 1)])],
                 {"x": 0, "L": 0})
        assert feed(ex).counterexamples() == \
            [v.pretty() for v in find_atomicity_violations(ex)]


class TestRetirement:
    @pytest.mark.parametrize("seed", range(6))
    def test_pruning_preserves_parity(self, seed, monkeypatch):
        """An aggressive retirement cadence must not change the findings:
        only accesses covered by every thread's frontier are retired."""
        monkeypatch.setattr(atomicity_mod, "_PRUNE_EVERY", 4)
        ex = lock_execution(seed, ops_per_thread=20)
        engine = feed(ex)
        assert sorted(engine.counterexamples()) == offline_pretty(ex)

    def test_pruning_actually_retires(self, monkeypatch):
        monkeypatch.setattr(atomicity_mod, "_PRUNE_EVERY", 4)
        ex = lock_execution(1, n_threads=2, ops_per_thread=40)
        engine = feed(ex)
        snap = engine.snapshot()
        assert snap["retired"] > 0
        assert snap["live_accesses"] < snap["data_events"]


class TestBatchParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_feed_batch_equals_feed(self, seed):
        ex = lock_execution(seed)
        one = AtomicityEngine(ex.n_threads)
        bus_one = AnalysisBus(ex.n_threads, [one], ordered=True)
        found_one = []
        for m in ex.messages:
            found_one.extend(bus_one.feed(m))
        found_one.extend(bus_one.finish())

        many = AtomicityEngine(ex.n_threads)
        bus_many = AnalysisBus(ex.n_threads, [many], ordered=True)
        found_many = []
        msgs = list(ex.messages)
        for i in range(0, len(msgs), 5):
            found_many.extend(bus_many.feed_batch(msgs[i:i + 5]))
        found_many.extend(bus_many.finish())

        assert [f.key for f in found_one] == [f.key for f in found_many]
        assert one.counterexamples() == many.counterexamples()
        assert one.verdict() == many.verdict()


class TestContract:
    def test_rejects_unannotated_events(self):
        from repro.engines.bus import BusEvent
        ex = lock_execution(0)
        ev = BusEvent(msg=ex.messages[0], index=0,
                      clock=tuple(ex.messages[0].clock), hb=None)
        with pytest.raises(ValueError, match="sync-HB"):
            AtomicityEngine(ex.n_threads).feed(ev)

    def test_verdict_attribution(self):
        ex = run([region_reader(), straightline([Write("x", 1)])],
                 {"x": 0, "L": 0})
        v = feed(ex).verdict()
        assert v.engine == "atomicity"
        assert v.qualified == "atomicity@1"
        assert v.spec == "unserializable access patterns (AVIO table)"
        assert v.verdict == "violation"
        assert v.sound is True

    def test_snapshot_shape(self):
        ex = lock_execution(2)
        snap = feed(ex).snapshot()
        assert snap["engine"] == "atomicity"
        assert snap["finished"] is True
        assert snap["open_regions"] == 0
        assert snap["data_events"] > 0
