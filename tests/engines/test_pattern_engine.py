"""PatternEngine: predictive pattern matching vs a brute-force oracle.

The property is classical: events ``e1..ek`` (matching the pattern steps)
occur in order in *some* linearization of the causal partial order iff
there is no backward causality — ``∀ i<j: ¬(e_j ⊳ e_i)`` under the
synchronization-only happens-before order.  The oracle enumerates every
witness combination against :class:`Computation(causality="sync")`; the
engine must agree on violation existence (when nothing was suppressed)
and every match it reports must be oracle-valid.
"""

import itertools

import pytest

import repro.engines.pattern as pattern_mod
from repro.core import all_accesses
from repro.core.computation import Computation
from repro.engines import AnalysisBus, EngineError, PatternEngine, parse_pattern
from repro.sched import FixedScheduler, Program, run_program
from repro.sched.program import Acquire, Read, Release, Write, straightline

from .conftest import lock_execution


def run(threads, initial, schedule=None):
    p = Program(initial=initial, threads=threads)
    return run_program(p, FixedScheduler(schedule or [], strict=False),
                       relevance=all_accesses())


def feed(execution, pattern):
    engine = PatternEngine(execution.n_threads, pattern)
    bus = AnalysisBus(execution.n_threads, [engine], ordered=True)
    for m in execution.messages:
        bus.feed(m)
    bus.finish()
    return engine


def oracle_witnesses(execution, pattern):
    """Every oracle-valid witness tuple (as eid tuples), brute force."""
    steps = parse_pattern(pattern)
    comp = Computation(execution.events, causality="sync")
    events = [m.event for m in execution.messages]
    pools = [[e for e in events if s.matches(e)] for s in steps]
    out = set()
    for combo in itertools.product(*pools):
        if len({e.eid for e in combo}) != len(combo):
            continue
        if all(not comp.precedes(combo[j], combo[i])
               for i in range(len(combo))
               for j in range(i + 1, len(combo))):
            out.add(tuple(e.eid for e in combo))
    return out


class TestParsing:
    def test_steps_and_constraints(self):
        steps = parse_pattern("W(x) ; r(y)@T2 ; ANY(z)=3")
        assert [s.var for s in steps] == ["x", "y", "z"]
        assert steps[1].thread == 1          # @T2 is 0-based internally
        assert steps[2].value == "3"
        assert len(steps[2].kinds) == 4      # ANY covers R/W/ACQ/REL

    @pytest.mark.parametrize("bad", [
        "W(x);;R(y)",        # empty step
        "W(x);",             # trailing ';'
        "X(x)",              # unknown kind
        "W x",               # missing parens
        "",                  # nothing at all
    ])
    def test_rejects_bad_patterns(self, bad):
        with pytest.raises(EngineError):
            parse_pattern(bad)


class TestDeterministicMatching:
    def test_concurrent_events_match_both_orders(self):
        """Two causally-unrelated accesses can appear in either order in
        some linearization — both patterns must match."""
        ex = run([straightline([Write("x", 1)]),
                  straightline([Read("x")])], {"x": 0})
        assert feed(ex, "W(x);R(x)").matches
        assert feed(ex, "R(x);W(x)").matches

    def test_program_order_forbids_reversal(self):
        """Within one thread the causal order is total: the reversed
        pattern has no witness."""
        ex = run([straightline([Write("x", 1), Read("x")])], {"x": 0})
        assert feed(ex, "W(x)@T1;R(x)@T1").matches
        assert not feed(ex, "R(x)@T1;W(x)@T1").matches

    def test_sync_edges_forbid_reordering(self):
        """Accesses under the same lock are ordered by the release→acquire
        edge; the pattern against that order must not match."""
        t1 = straightline([Acquire("L"), Write("x", 1), Release("L")])
        t2 = straightline([Acquire("L"), Read("x"), Release("L")])
        # schedule T1's region fully before T2's: sync-HB orders W before R
        ex = run([t1, t2], {"x": 0, "L": 0}, schedule=[0, 0, 0, 1, 1, 1])
        assert feed(ex, "W(x);R(x)").matches
        assert not feed(ex, "R(x);W(x)").matches

    def test_value_constraint(self):
        ex = run([straightline([Write("x", 1), Write("x", 2)])], {"x": 0})
        assert feed(ex, "W(x)=1;W(x)=2").matches
        assert not feed(ex, "W(x)=2;W(x)=1").matches
        assert not feed(ex, "W(x)=7").matches

    def test_same_event_cannot_fill_two_steps(self):
        ex = run([straightline([Write("x", 1)])], {"x": 0})
        assert not feed(ex, "W(x);W(x)").matches

    def test_out_of_delivery_order_witnesses(self):
        """A witness for step 2 may be delivered before the eventual
        witness for step 1 (partial assignments, not prefixes)."""
        ex = run([straightline([Write("y", 1)]),
                  straightline([Write("x", 1)])],
                 {"x": 0, "y": 0}, schedule=[0, 1])
        # delivery order is W(y) then W(x); the pattern asks x-then-y,
        # realizable because the writes are concurrent
        engine = feed(ex, "W(x);W(y)")
        assert engine.matches

    def test_single_step_pattern(self):
        ex = run([straightline([Acquire("L"), Release("L")])], {"L": 0})
        assert feed(ex, "ACQ(L)").matches
        assert not feed(ex, "ACQ(M)").matches


class TestOracleAgreement:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("pattern", [
        "W(v0);R(v0)",
        "R(v0);W(v1);W(v0)",
        "ACQ(L0);W(v0);REL(L0)",
    ])
    def test_existence_and_witness_validity(self, seed, pattern):
        ex = lock_execution(seed, ops_per_thread=8)
        engine = feed(ex, pattern)
        valid = oracle_witnesses(ex, pattern)
        snap = engine.snapshot()
        # every reported match is a realizable witness chain
        for m in engine.matches:
            assert m.key in valid
        # unless bounded, the engine finds a match iff the oracle has one
        if not snap["suppressed_candidates"] and not snap["suppressed_matches"]:
            assert bool(engine.matches) == bool(valid)

    @pytest.mark.parametrize("seed", range(4))
    def test_thread_constrained_patterns(self, seed):
        ex = lock_execution(seed, ops_per_thread=8)
        pattern = "W(v0)@T1;R(v0)@T2"
        engine = feed(ex, pattern)
        valid = oracle_witnesses(ex, pattern)
        for m in engine.matches:
            assert m.key in valid
            assert m.witnesses[0].thread == 0
            assert m.witnesses[1].thread == 1


class TestBounds:
    def test_matches_deduplicated_by_witness_chain(self):
        ex = lock_execution(3)
        engine = feed(ex, "W(v0);R(v0)")
        keys = [m.key for m in engine.matches]
        assert len(keys) == len(set(keys))

    def test_match_cap_reported_not_hidden(self, monkeypatch):
        monkeypatch.setattr(pattern_mod, "_MAX_MATCHES", 1)
        ex = run([straightline([Write("x", 1), Write("x", 2)]),
                  straightline([Read("x"), Read("x")])], {"x": 0})
        engine = feed(ex, "W(x);R(x)")
        assert len(engine.matches) == 1
        assert engine.snapshot()["suppressed_matches"] > 0

    def test_candidate_cap_reported_not_hidden(self, monkeypatch):
        monkeypatch.setattr(pattern_mod, "_MAX_CANDIDATES", 1)
        ex = lock_execution(4)
        engine = feed(ex, "W(v0);W(v1);R(v0)")
        assert engine.snapshot()["suppressed_candidates"] > 0

    def test_dominance_pruning_keeps_existence(self):
        """Dominated assignments constrain the future strictly more, so
        pruning them never loses the existence answer: agreement with the
        oracle on a stream long enough to trigger pruning."""
        ex = lock_execution(5, n_threads=2, ops_per_thread=25)
        pattern = "W(v0);R(v1)"
        engine = feed(ex, pattern)
        snap = engine.snapshot()
        if not snap["suppressed_candidates"]:
            assert bool(engine.matches) == \
                bool(oracle_witnesses(ex, pattern))


class TestBatchParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_feed_batch_equals_feed(self, seed):
        ex = lock_execution(seed)
        one = PatternEngine(ex.n_threads, "W(v0);R(v0);W(v1)")
        bus_one = AnalysisBus(ex.n_threads, [one], ordered=True)
        for m in ex.messages:
            bus_one.feed(m)
        bus_one.finish()

        many = PatternEngine(ex.n_threads, "W(v0);R(v0);W(v1)")
        bus_many = AnalysisBus(ex.n_threads, [many], ordered=True)
        msgs = list(ex.messages)
        for i in range(0, len(msgs), 7):
            bus_many.feed_batch(msgs[i:i + 7])
        bus_many.finish()

        assert [m.key for m in one.matches] == [m.key for m in many.matches]
        assert one.counterexamples() == many.counterexamples()
        assert one.snapshot() == many.snapshot()


class TestContract:
    def test_rejects_unannotated_events(self):
        from repro.engines.bus import BusEvent
        ex = lock_execution(0)
        ev = BusEvent(msg=ex.messages[0], index=0,
                      clock=tuple(ex.messages[0].clock), hb=None)
        with pytest.raises(ValueError, match="sync-HB"):
            PatternEngine(ex.n_threads, "W(v0)").feed(ev)

    def test_verdict_attribution(self):
        ex = run([straightline([Write("x", 1)]),
                  straightline([Read("x")])], {"x": 0})
        v = feed(ex, "W(x) ; R(x)").verdict()
        assert v.engine == "pattern"
        assert v.spec == "W(x) ; R(x)"
        assert v.verdict == "violation"
        assert "pattern match [W(x) ; R(x)]" in v.counterexamples[0]
