"""Program/op model tests."""

import pytest

from repro.sched.program import (
    Acquire,
    Internal,
    Join,
    Notify,
    Program,
    Read,
    Release,
    Spawn,
    Wait,
    Write,
    straightline,
)


class TestOps:
    def test_ops_are_frozen(self):
        r = Read("x")
        with pytest.raises(AttributeError):
            r.var = "y"

    def test_write_carries_label(self):
        w = Write("x", 1, label="x := 1")
        assert w.label == "x := 1"

    def test_equality(self):
        assert Read("x") == Read("x")
        assert Write("x", 1) != Write("x", 2)
        assert Acquire("L") != Release("L")
        assert Wait("c") == Wait("c")
        assert Notify("c") == Notify("c")
        assert Join(2) == Join(2)

    def test_spawn_holds_body(self):
        def body():
            yield Internal()

        s = Spawn(body)
        assert s.body is body


class TestProgram:
    def test_requires_threads(self):
        with pytest.raises(ValueError):
            Program(initial={}, threads=[])

    def test_initial_copied(self):
        init = {"x": 0}
        p = Program(initial=init, threads=[straightline([Internal()])])
        init["x"] = 99
        assert p.initial["x"] == 0

    def test_default_relevance_is_all_store_vars(self):
        p = Program(initial={"a": 0, "b": 0},
                    threads=[straightline([Internal()])])
        assert p.default_relevance_vars() == frozenset({"a", "b"})

    def test_explicit_relevance(self):
        p = Program(initial={"a": 0, "b": 0},
                    threads=[straightline([Internal()])],
                    relevant_vars={"a"})
        assert p.default_relevance_vars() == frozenset({"a"})

    def test_spawn_returns_fresh_generators(self):
        p = Program(initial={"x": 0},
                    threads=[straightline([Write("x", 1), Write("x", 2)])])
        g1 = p.spawn()[0]
        g2 = p.spawn()[0]
        assert next(g1) == Write("x", 1)
        assert next(g2) == Write("x", 1)  # independent instance

    def test_straightline_reusable(self):
        body = straightline([Internal(), Read("x")])
        assert list(body()) == [Internal(), Read("x")]
        assert list(body()) == [Internal(), Read("x")]
