"""Tests for the deterministic scheduling substrate."""

import pytest

from repro.sched import (
    Acquire,
    DeadlockError,
    FixedScheduler,
    Internal,
    Notify,
    Program,
    RandomScheduler,
    Read,
    Release,
    RoundRobinScheduler,
    StepLimitExceeded,
    Wait,
    Write,
    explore_all,
    run_program,
    straightline,
)
from repro.workloads import (
    landing_controller,
    producer_consumer,
    racy_counter,
    xyz_program,
)


def two_internal_threads(k=2):
    return Program(
        initial={"x": 0},
        threads=[straightline([Internal()] * k) for _ in range(2)],
        name="internals",
    )


class TestRunProgram:
    def test_records_every_event(self):
        p = two_internal_threads(3)
        r = run_program(p, FixedScheduler([], strict=False))
        assert len(r.events) == 6
        assert all(e.kind.name == "INTERNAL" for e in r.events)

    def test_schedule_matches_events(self):
        p = two_internal_threads(2)
        r = run_program(p, FixedScheduler([0, 1, 0, 1]))
        assert r.schedule == [0, 1, 0, 1]
        assert [e.thread for e in r.events] == [0, 1, 0, 1]

    def test_read_returns_store_value(self):
        seen = []

        def body():
            v = yield Read("x")
            seen.append(v)
            yield Write("x", v + 10)
            v2 = yield Read("x")
            seen.append(v2)

        p = Program(initial={"x": 5}, threads=[body])
        r = run_program(p, FixedScheduler([], strict=False))
        assert seen == [5, 15]
        assert r.final_store["x"] == 15

    def test_undeclared_variable_read_raises(self):
        def body():
            yield Read("nope")

        p = Program(initial={"x": 0}, threads=[body])
        with pytest.raises(KeyError):
            run_program(p, FixedScheduler([], strict=False))

    def test_undeclared_variable_write_raises(self):
        def body():
            yield Write("nope", 1)

        p = Program(initial={"x": 0}, threads=[body])
        with pytest.raises(KeyError):
            run_program(p, FixedScheduler([], strict=False))

    def test_replay_determinism(self):
        p = xyz_program()
        sched = [0, 0, 1, 1, 0, 0, 1, 1, 1, 0]
        r1 = run_program(p, FixedScheduler(sched))
        r2 = run_program(p, FixedScheduler(sched))
        assert [e.eid for e in r1.events] == [e.eid for e in r2.events]
        assert [tuple(m.clock) for m in r1.messages] == [tuple(m.clock) for m in r2.messages]
        assert r1.final_store == r2.final_store

    def test_step_limit(self):
        def spinner():
            while True:
                v = yield Read("x")
                yield Write("x", v)

        p = Program(initial={"x": 0}, threads=[spinner])
        with pytest.raises(StepLimitExceeded):
            run_program(p, FixedScheduler([], strict=False), max_steps=50)

    def test_sink_streams_messages(self):
        got = []
        run_program(xyz_program(), FixedScheduler([], strict=False), sink=got.append)
        assert len(got) == 4

    def test_state_sequence(self):
        r = run_program(xyz_program(),
                        FixedScheduler([0, 0, 1, 1, 0, 0, 1, 1, 1, 0]))
        assert r.state_sequence(("x", "y", "z")) == [
            (-1, 0, 0), (0, 0, 0), (0, 0, 1), (1, 0, 1), (1, 1, 1)]

    def test_relevant_state_sequence_matches_messages(self):
        r = run_program(xyz_program(),
                        FixedScheduler([0, 0, 1, 1, 0, 0, 1, 1, 1, 0]))
        seq = r.relevant_state_sequence(("x", "y", "z"))
        assert len(seq) == len(r.messages) + 1


class TestSchedulers:
    def test_fixed_strict_rejects_infeasible(self):
        p = two_internal_threads(1)
        # thread 0 has one event; asking for it twice is infeasible
        with pytest.raises(ValueError, match="infeasible"):
            run_program(p, FixedScheduler([0, 0, 0]))

    def test_fixed_nonstrict_falls_back(self):
        p = two_internal_threads(1)
        r = run_program(p, FixedScheduler([1, 1, 1], strict=False))
        assert sorted(r.schedule) == [0, 1]

    def test_round_robin_alternates(self):
        p = two_internal_threads(2)
        r = run_program(p, RoundRobinScheduler(quantum=1))
        assert r.schedule == [0, 1, 0, 1]

    def test_round_robin_quantum(self):
        p = two_internal_threads(2)
        r = run_program(p, RoundRobinScheduler(quantum=2))
        assert r.schedule == [0, 0, 1, 1]

    def test_round_robin_invalid_quantum(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(quantum=0)

    def test_random_scheduler_is_seed_deterministic(self):
        p = racy_counter(3, 2)
        r1 = run_program(p, RandomScheduler(7))
        r2 = run_program(p, RandomScheduler(7))
        assert r1.schedule == r2.schedule

    def test_random_scheduler_seeds_differ(self):
        p = racy_counter(3, 2)
        schedules = {tuple(run_program(p, RandomScheduler(s)).schedule)
                     for s in range(8)}
        assert len(schedules) > 1


class TestLocks:
    def test_mutual_exclusion(self):
        """With the lock held, the other thread cannot enter."""

        def body(tag):
            def gen():
                yield Acquire("L")
                yield Write("owner", tag)
                v = yield Read("owner")
                assert v == tag, "critical section interleaved!"
                yield Release("L")

            return gen

        p = Program(initial={"owner": 0, "L": 0},
                    threads=[body(1), body(2)])
        for ex in explore_all(p):
            pass  # assertion inside the bodies does the checking

    def test_double_acquire_is_error(self):
        def body():
            yield Acquire("L")
            yield Acquire("L")

        p = Program(initial={"L": 0}, threads=[body])
        with pytest.raises(RuntimeError, match="re-acquiring"):
            run_program(p, FixedScheduler([], strict=False))

    def test_release_unheld_is_error(self):
        def body():
            yield Release("L")

        p = Program(initial={"L": 0}, threads=[body])
        with pytest.raises(RuntimeError, match="does not hold"):
            run_program(p, FixedScheduler([], strict=False))

    def test_deadlock_detected(self):
        def left():
            yield Acquire("A")
            yield Internal()
            yield Acquire("B")

        def right():
            yield Acquire("B")
            yield Internal()
            yield Acquire("A")

        p = Program(initial={"A": 0, "B": 0}, threads=[left, right])
        with pytest.raises(DeadlockError) as ei:
            run_program(p, FixedScheduler([0, 1, 0, 1], strict=False))
        assert set(ei.value.blocked) == {0, 1}

    def test_lock_events_recorded_as_writes(self):
        def body():
            yield Acquire("L")
            yield Release("L")

        p = Program(initial={"L": 0}, threads=[body])
        r = run_program(p, FixedScheduler([], strict=False))
        assert [e.kind.is_write for e in r.events] == [True, True]


class TestWaitNotify:
    def test_wake_event_after_notify(self):
        def notifier():
            yield Notify("c")

        def waiter():
            yield Wait("c")
            yield Internal()

        p = Program(initial={"c": 0}, threads=[notifier, waiter])
        r = run_program(p, FixedScheduler([], strict=False))
        kinds = [e.kind.name for e in r.events]
        assert kinds == ["NOTIFY", "WAKE", "INTERNAL"]

    def test_sticky_notify_credit(self):
        """A notify that precedes the wait still wakes it (documented
        deviation from Java's lost-notification semantics)."""
        def notifier():
            yield Notify("c")

        def waiter():
            yield Internal()
            yield Wait("c")
            yield Internal()

        p = Program(initial={"c": 0}, threads=[notifier, waiter])
        # notifier runs first, then waiter
        r = run_program(p, FixedScheduler([0, 1, 1, 1], strict=False))
        assert r.events[-1].kind.name == "INTERNAL"

    def test_wait_without_notify_deadlocks(self):
        def waiter():
            yield Wait("c")

        p = Program(initial={"c": 0}, threads=[waiter])
        with pytest.raises(DeadlockError):
            run_program(p, FixedScheduler([], strict=False))

    def test_notify_wakes_all_current_waiters(self):
        def waiter():
            yield Wait("c")
            yield Internal()

        def notifier():
            yield Internal()
            yield Notify("c")

        p = Program(initial={"c": 0}, threads=[waiter, waiter, notifier])
        # both waiters block during prefetch; the notifier's notify wakes both
        r = run_program(p, FixedScheduler([2, 2], strict=False))
        assert sum(1 for e in r.events if e.kind.name == "WAKE") == 2


class TestExploreAll:
    def test_counts_match_formula_for_independent_threads(self):
        """Two threads of k internal events each: C(2k, k) interleavings."""
        from math import comb

        for k in (1, 2, 3):
            p = two_internal_threads(k)
            n = sum(1 for _ in explore_all(p))
            assert n == comb(2 * k, k), k

    def test_every_execution_unique(self):
        p = racy_counter(2, 1)
        sigs = [tuple(e.schedule) for e in explore_all(p)]
        assert len(sigs) == len(set(sigs))

    def test_max_executions_bounds(self):
        p = two_internal_threads(3)
        assert sum(1 for _ in explore_all(p, max_executions=4)) == 4

    def test_finds_lost_update(self):
        finals = {e.final_store["c"] for e in explore_all(racy_counter(2, 1))}
        assert finals == {1, 2}

    def test_locked_counter_never_loses_updates(self):
        from repro.workloads import locked_counter

        finals = {e.final_store["c"] for e in explore_all(locked_counter(2, 1))}
        assert finals == {2}

    def test_deadlocked_branches_are_skipped_but_explored(self):
        def left():
            yield Acquire("A")
            yield Acquire("B")
            yield Release("B")
            yield Release("A")

        def right():
            yield Acquire("B")
            yield Acquire("A")
            yield Release("A")
            yield Release("B")

        p = Program(initial={"A": 0, "B": 0}, threads=[left, right])
        results = list(explore_all(p))
        # all yielded executions completed (no deadlock), both orders seen
        assert results
        assert all(len(e.events) == 8 for e in results)

    def test_wait_notify_explorable(self):
        n = sum(1 for _ in explore_all(producer_consumer(1), max_executions=10_000))
        assert n > 0


class TestProgramValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Program(initial={}, threads=[])

    def test_scheduler_picking_nonrunnable_rejected(self):
        class Bad(FixedScheduler):
            def pick(self, runnable, step):
                return 99

        p = two_internal_threads(1)
        with pytest.raises(ValueError, match="non-runnable"):
            run_program(p, Bad([]))

    def test_landing_controller_default_run_terminates(self):
        r = run_program(landing_controller(), FixedScheduler([], strict=False))
        assert r.final_store["landing"] in (0, 1)
