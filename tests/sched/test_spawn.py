"""Dynamic thread creation/destruction (Spawn/Join) — the §2 extension."""

import pytest

from repro.core import CausalityIndex
from repro.lattice import ComputationLattice
from repro.sched import (
    DeadlockError,
    FixedScheduler,
    Join,
    Program,
    RandomScheduler,
    Spawn,
    Write,
    explore_all,
    run_program,
)


def child_writer(var="c", value=1):
    def body():
        yield Write(var, value)

    return body


def spawn_join_program():
    def parent():
        yield Write("p", 1)
        idx = yield Spawn(child_writer())
        yield Write("p", 2)
        yield Join(idx)
        yield Write("p", 3)

    return Program(initial={"p": 0, "c": 0}, threads=[parent],
                   relevant_vars=frozenset({"p", "c"}), name="spawn-join")


class TestSpawn:
    def test_thread_count_grows(self):
        r = run_program(spawn_join_program(), FixedScheduler([], strict=False))
        assert r.n_threads == 2

    def test_clocks_padded_to_final_width(self):
        r = run_program(spawn_join_program(), FixedScheduler([], strict=False))
        assert all(m.clock.width == 2 for m in r.messages)

    def test_spawn_edge(self):
        """Everything before the spawn precedes everything the child does."""
        r = run_program(spawn_join_program(), FixedScheduler([], strict=False))
        idx = CausalityIndex(2, r.messages)
        by = {m.event.label: m for m in r.messages}
        assert idx.precedes(by["p=1"], by["c=1"])

    def test_join_edge(self):
        """Everything the child did precedes everything after the join."""
        r = run_program(spawn_join_program(), FixedScheduler([], strict=False))
        idx = CausalityIndex(2, r.messages)
        by = {m.event.label: m for m in r.messages}
        assert idx.precedes(by["c=1"], by["p=3"])

    def test_child_concurrent_with_parent_between(self):
        r = run_program(spawn_join_program(), FixedScheduler([], strict=False))
        idx = CausalityIndex(2, r.messages)
        by = {m.event.label: m for m in r.messages}
        assert idx.concurrent(by["p=2"], by["c=1"])

    def test_exhaustive_exploration_with_spawn(self):
        # c=1 can land before or after p=2, and the exit/join ordering adds
        # one more interleaving: 3 total
        n = sum(1 for _ in explore_all(spawn_join_program()))
        assert n == 3

    def test_lattice_over_spawned_computation(self):
        r = run_program(spawn_join_program(), FixedScheduler([], strict=False))
        lat = ComputationLattice(2, {"p": 0, "c": 0}, r.messages)
        assert lat.count_runs() == 2  # c=1 before/after p=2; p=3 always last

    def test_nested_spawn(self):
        def grandchild():
            yield Write("g", 1)

        def child():
            idx = yield Spawn(grandchild)
            yield Join(idx)
            yield Write("c", 1)

        def parent():
            idx = yield Spawn(child)
            yield Join(idx)
            yield Write("p", 1)

        p = Program(initial={"p": 0, "c": 0, "g": 0}, threads=[parent],
                    relevant_vars=frozenset({"p", "c", "g"}))
        r = run_program(p, FixedScheduler([], strict=False))
        assert r.n_threads == 3
        idx = CausalityIndex(3, r.messages)
        by = {m.event.label: m for m in r.messages}
        assert idx.precedes(by["g=1"], by["c=1"])
        assert idx.precedes(by["c=1"], by["p=1"])

    def test_multiple_children_concurrent(self):
        def parent():
            a = yield Spawn(child_writer("a"))
            b = yield Spawn(child_writer("b"))
            yield Join(a)
            yield Join(b)

        p = Program(initial={"a": 0, "b": 0}, threads=[parent],
                    relevant_vars=frozenset({"a", "b"}))
        r = run_program(p, FixedScheduler([], strict=False))
        assert r.n_threads == 3
        idx = CausalityIndex(3, r.messages)
        by = {m.event.label: m for m in r.messages}
        assert idx.concurrent(by["a=1"], by["b=1"])

    def test_spawn_under_random_schedules_theorem3(self):
        from repro.core.vectorclock import lt

        for seed in range(5):
            r = run_program(spawn_join_program(), RandomScheduler(seed))
            comp = r.computation()
            by_eid = {m.event.eid: m for m in r.messages}
            for a, b, truth in comp.relevant_pairs():
                ma, mb = by_eid[a.eid], by_eid[b.eid]
                assert ma.causally_precedes(mb) == truth
                assert lt(tuple(ma.clock), tuple(mb.clock)) == truth


class TestJoinErrors:
    def test_join_unknown_thread(self):
        def parent():
            yield Join(7)

        p = Program(initial={"x": 0}, threads=[parent])
        with pytest.raises(ValueError, match="unknown thread"):
            run_program(p, FixedScheduler([], strict=False))

    def test_join_static_thread_rejected(self):
        def a():
            yield Join(1)

        def b():
            yield Write("x", 1)

        p = Program(initial={"x": 0}, threads=[a, b])
        with pytest.raises(ValueError, match="static thread"):
            # run b first so the join becomes runnable
            run_program(p, FixedScheduler([1], strict=False))

    def test_join_never_finishing_child_deadlocks(self):
        def stuck_child():
            from repro.sched import Wait

            yield Wait("never")

        def parent():
            idx = yield Spawn(stuck_child)
            yield Join(idx)

        p = Program(initial={"x": 0}, threads=[parent])
        with pytest.raises(DeadlockError) as ei:
            run_program(p, FixedScheduler([], strict=False))
        assert any("join" in why for why in ei.value.blocked.values())
