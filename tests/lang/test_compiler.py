"""MiniLang compiler/interpreter tests: semantics, event shape, static
checks, and end-to-end predictive analysis from source."""

import pytest

from repro.analysis import detect, predict
from repro.lang import MiniLangError, compile_source
from repro.sched import DeadlockError, FixedScheduler, RandomScheduler, run_program
from repro.workloads import LANDING_PROPERTY


def run_src(src, schedule=None, **kw):
    p = compile_source(src)
    sched = FixedScheduler(schedule or [], strict=False)
    return run_program(p, sched, **kw)


class TestSemantics:
    def test_arithmetic(self):
        ex = run_src("shared int x = 0;\nthread t { x = (2 + 3) * 4 - 6 / 2; }")
        assert ex.final_store["x"] == 17

    def test_locals_do_not_emit_events(self):
        ex = run_src("shared int x = 0;\n"
                     "thread t { local int a = 5; local int b = a * 2; x = b; }")
        assert ex.final_store["x"] == 10
        # only one shared access: the write of x
        assert [e.kind.name for e in ex.events] == ["WRITE"]

    def test_shared_reads_emit_events(self):
        ex = run_src("shared int x = 1, y = 0;\nthread t { y = x + x; }")
        kinds = [(e.kind.name, e.var) for e in ex.events]
        assert kinds == [("READ", "x"), ("READ", "x"), ("WRITE", "y")]
        assert ex.final_store["y"] == 2

    def test_if_else_branches(self):
        src = ("shared int x = %d, y = 0;\n"
               "thread t { if (x > 0) { y = 1; } else { y = 2; } }")
        assert run_src(src % 5).final_store["y"] == 1
        assert run_src(src % 0).final_store["y"] == 2

    def test_while_loop(self):
        ex = run_src("shared int n = 0;\n"
                     "thread t { local int i = 0; "
                     "while (i < 4) { n = n + 1; i = i + 1; } }")
        assert ex.final_store["n"] == 4

    def test_short_circuit_and(self):
        """x == 0 short-circuits: y is never read."""
        ex = run_src("shared int x = 0, y = 0, z = 0;\n"
                     "thread t { if (x == 1 && y == 1) { z = 1; } }")
        read_vars = [e.var for e in ex.events if e.kind.name == "READ"]
        assert read_vars == ["x"]

    def test_short_circuit_or(self):
        ex = run_src("shared int x = 1, y = 0, z = 0;\n"
                     "thread t { if (x == 1 || y == 1) { z = 1; } }")
        read_vars = [e.var for e in ex.events if e.kind.name == "READ"]
        assert read_vars == ["x"]
        assert ex.final_store["z"] == 1

    def test_unary_operators(self):
        ex = run_src("shared int x = 0, y = 0;\n"
                     "thread t { x = -3; y = !0 + !5; }")
        assert ex.final_store["x"] == -3
        assert ex.final_store["y"] == 1

    def test_skip_is_internal(self):
        ex = run_src("shared int x = 0;\nthread t { skip; }")
        assert [e.kind.name for e in ex.events] == ["INTERNAL"]


class TestSynchronization:
    def test_lock_unlock(self):
        src = ("shared int c = 0;\n"
               "thread a { lock(m); c = c + 1; unlock(m); }\n"
               "thread b { lock(m); c = c + 1; unlock(m); }")
        for seed in range(5):
            ex = run_program(compile_source(src), RandomScheduler(seed))
            assert ex.final_store["c"] == 2

    def test_wait_notify(self):
        src = ("shared int d = 0, got = 0;\n"
               "thread producer { d = 42; notify(c); }\n"
               "thread consumer { wait(c); got = d; }")
        ex = run_src(src)
        assert ex.final_store["got"] == 42

    def test_deadlock_reachable(self):
        src = ("shared int x = 0;\n"
               "thread a { lock(A); lock(B); unlock(B); unlock(A); }\n"
               "thread b { lock(B); lock(A); unlock(A); unlock(B); }")
        with pytest.raises(DeadlockError):
            run_src(src, schedule=[0, 1, 0])


class TestStaticChecks:
    def test_undefined_variable(self):
        with pytest.raises(MiniLangError, match="undefined variable 'ghost'"):
            compile_source("shared int x = 0;\nthread t { x = ghost; }")

    def test_assignment_to_undeclared(self):
        with pytest.raises(MiniLangError, match="undeclared"):
            compile_source("shared int x = 0;\nthread t { ghost = 1; }")

    def test_local_shadowing_shared_rejected(self):
        with pytest.raises(MiniLangError, match="shadows"):
            compile_source("shared int x = 0;\nthread t { local int x = 1; }")

    def test_duplicate_local_rejected(self):
        with pytest.raises(MiniLangError, match="duplicate local"):
            compile_source("shared int x = 0;\n"
                           "thread t { local int a = 1; local int a = 2; }")

    def test_locals_are_thread_scoped(self):
        # the same local name in two threads is fine
        compile_source("shared int x = 0;\n"
                       "thread a { local int i = 1; x = i; }\n"
                       "thread b { local int i = 2; x = i; }")


LANDING_SRC = """
shared int landing = 0, approved = 0, radio = 1;

thread controller {
    if (radio == 0) { approved = 0; } else { approved = 1; }
    if (approved == 1) { landing = 1; }
}

thread watchdog {
    local int i = 0;
    while (radio == 1 && i < 3) {
        skip;                       // checkRadio
        i = i + 1;
        if (i == 2) { radio = 0; }
    }
}
"""


class TestEndToEnd:
    def test_fig1_from_source_reproduces_fig5(self):
        """The paper's Fig. 1 written as MiniLang source: the compiler
        inserts the instrumentation, and the analysis predicts both Fig. 5
        violations from the successful run."""
        program = compile_source(LANDING_SRC, name="landing-src")
        ex = run_program(program, FixedScheduler([0] * 8, strict=False))
        assert detect(ex, LANDING_PROPERTY).ok
        report = predict(ex, LANDING_PROPERTY, mode="full")
        assert report.nodes == 6
        assert report.n_runs == 3
        assert len(report.violations) == 2
        assert report.predicted

    def test_relevant_vars_are_all_shared(self):
        program = compile_source(LANDING_SRC)
        assert program.default_relevance_vars() == frozenset(
            {"landing", "approved", "radio"})

    def test_source_program_explorable(self):
        from repro.sched import explore_all

        program = compile_source(
            "shared int p = 0, q = 0;\nthread a { p = 1; }\nthread b { q = 1; }"
        )
        assert sum(1 for _ in explore_all(program)) == 2


class TestSpawnJoin:
    POOL_SRC = (
        "shared int done = 0, total = 0;\n"
        "worker adder {\n"
        "    lock(m); total = total + 1; unlock(m);\n"
        "}\n"
        "thread main {\n"
        "    spawn adder;\n"
        "    spawn adder;\n"
        "    join adder;\n"
        "    join adder;\n"
        "    done = 1;\n"
        "}\n"
    )

    def test_workers_spawned_and_joined(self):
        ex = run_src(self.POOL_SRC)
        assert ex.n_threads == 3
        assert ex.final_store == {"done": 1, "total": 2}

    def test_join_edges_in_causality(self):
        from repro.core import CausalityIndex

        ex = run_src(self.POOL_SRC)
        idx = CausalityIndex(ex.n_threads, ex.messages)
        done = next(m for m in ex.messages if m.event.var == "done")
        for m in ex.messages:
            if m.event.var == "total":
                assert idx.precedes(m, done)

    def test_workers_not_auto_started(self):
        src = ("shared int x = 0;\n"
               "worker never { x = 99; }\n"
               "thread main { x = 1; }\n")
        ex = run_src(src)
        assert ex.n_threads == 1
        assert ex.final_store["x"] == 1

    def test_spawn_unknown_template_rejected(self):
        with pytest.raises(MiniLangError, match="no worker template"):
            compile_source("shared int x = 0;\nthread t { spawn ghost; }")

    def test_join_without_spawn_is_runtime_error(self):
        src = ("shared int x = 0;\n"
               "worker w { x = 1; }\n"
               "thread t { join w; }\n")
        with pytest.raises(MiniLangError, match="no unjoined spawn"):
            run_src(src)

    def test_template_only_program_rejected(self):
        with pytest.raises(MiniLangError, match="no .*template.* threads"):
            compile_source("shared int x = 0;\nworker w { x = 1; }")

    def test_workers_can_spawn_workers(self):
        src = (
            "shared int n = 0;\n"
            "worker leaf { lock(m); n = n + 1; unlock(m); }\n"
            "worker mid { spawn leaf; join leaf; }\n"
            "thread main { spawn mid; join mid; }\n"
        )
        ex = run_src(src)
        assert ex.n_threads == 3
        assert ex.final_store["n"] == 1


class TestStaticCheckSpans:
    """Compiler static checks reuse the parser span format: the error
    points at the offending AST node with file:line:col."""

    def test_undefined_variable_span(self):
        with pytest.raises(MiniLangError) as excinfo:
            compile_source("shared int x = 0;\n"
                           "thread t {\n"
                           "  x = ghost + 1;\n"
                           "}", filename="prog.ml")
        exc = excinfo.value
        assert exc.line == 3
        assert exc.col == 7  # column of 'ghost'
        assert str(exc).startswith("prog.ml:3:7: ")

    def test_shadow_span(self):
        with pytest.raises(MiniLangError) as excinfo:
            compile_source("shared int x = 0;\n"
                           "thread t { local int x = 1; }")
        assert excinfo.value.line == 2
        assert "shadows" in excinfo.value.problem

    def test_assignment_to_undeclared_span(self):
        with pytest.raises(MiniLangError) as excinfo:
            compile_source("shared int x = 0;\n"
                           "thread t {\n"
                           "  ghost = 1;\n"
                           "}")
        assert excinfo.value.line == 3
