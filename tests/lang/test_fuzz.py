"""MiniLang fuzzing: random programs compile, run, and keep the core
invariants (hypothesis-generated ASTs, loop-free so termination is given)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vectorclock import lt
from repro.lang.ast import (
    Assign,
    Binary,
    Block,
    If,
    LocalDecl,
    Name,
    Num,
    ProgramAst,
    SharedDecl,
    Skip,
    ThreadDef,
)
from repro.lang.compiler import compile_program
from repro.sched import RandomScheduler, run_program

SHARED = ("a", "b", "c")


def exprs(depth, local_names=()):
    names = [Name(n) for n in SHARED + tuple(local_names)]
    base = st.one_of(
        st.integers(-5, 5).map(Num),
        st.sampled_from(names) if names else st.integers(0, 1).map(Num),
    )
    if depth == 0:
        return base
    sub = exprs(depth - 1, local_names)
    return st.one_of(
        base,
        st.builds(Binary, st.sampled_from(["+", "-", "*"]), sub, sub),
        st.builds(Binary, st.sampled_from(["==", "<", ">="]), sub, sub),
    )


def stmts(depth):
    if depth == 0:
        return st.one_of(
            st.builds(Skip),
            st.builds(Assign, st.sampled_from(SHARED), exprs(1)),
        )
    sub = stmts(depth - 1)
    return st.one_of(
        st.builds(Skip),
        st.builds(Assign, st.sampled_from(SHARED), exprs(depth)),
        st.builds(
            If,
            exprs(1),
            st.lists(sub, min_size=1, max_size=3).map(
                lambda xs: Block(tuple(xs))
            ),
            st.one_of(
                st.none(),
                st.lists(sub, min_size=1, max_size=2).map(
                    lambda xs: Block(tuple(xs))
                ),
            ),
        ),
    )


programs = st.builds(
    lambda bodies: ProgramAst(
        shared=(SharedDecl(names=SHARED, values=(0, 1, -1)),),
        threads=tuple(
            ThreadDef(name=f"t{i}", body=Block(tuple(body)))
            for i, body in enumerate(bodies)
        ),
    ),
    st.lists(st.lists(stmts(2), min_size=1, max_size=4),
             min_size=1, max_size=3),
)


@given(programs, st.integers(0, 100))
@settings(max_examples=80, deadline=None)
def test_random_programs_run_and_satisfy_theorem3(ast, seed):
    program = compile_program(ast)
    result = run_program(program, RandomScheduler(seed), max_steps=5_000)
    # every event touches a declared shared variable or is internal
    for e in result.events:
        if e.kind.is_access:
            assert e.var in SHARED
    # Theorem 3 against the oracle
    comp = result.computation()
    by_eid = {m.event.eid: m for m in result.messages}
    for x, y, truth in comp.relevant_pairs():
        mx, my = by_eid[x.eid], by_eid[y.eid]
        assert mx.causally_precedes(my) == truth
        assert lt(tuple(mx.clock), tuple(my.clock)) == truth


@given(programs)
@settings(max_examples=40, deadline=None)
def test_random_programs_deterministic_per_schedule(ast):
    program = compile_program(ast)
    a = run_program(program, RandomScheduler(7), max_steps=5_000)
    b = run_program(program, RandomScheduler(7), max_steps=5_000)
    assert a.final_store == b.final_store
    assert [e.eid for e in a.events] == [e.eid for e in b.events]


@given(programs, st.integers(0, 50))
@settings(max_examples=40, deadline=None)
def test_lattice_construction_never_fails_on_fuzzed_programs(ast, seed):
    from repro.lattice import ComputationLattice

    program = compile_program(ast)
    result = run_program(program, RandomScheduler(seed), max_steps=5_000)
    initial = {v: result.initial_store[v] for v in SHARED}
    lat = ComputationLattice(program.n_threads, initial, result.messages)
    assert len(lat) >= 1
    assert lat.count_runs() >= 1
