"""Cross-validation: MiniLang source workloads vs the native generators.

The compiled programs must produce the same relevant messages (labels and
clock values) as the hand-built ones — the strongest end-to-end check that
the compiler's automatic instrumentation matches manual instrumentation.
"""

import pytest

from repro.analysis import (
    detect,
    find_potential_deadlocks,
    predict,
)
from repro.lang import compile_source
from repro.sched import FixedScheduler, RandomScheduler, run_program
from repro.workloads import XYZ_PROPERTY, xyz_program
from repro.workloads.minilang_sources import (
    LANDING_SOURCE,
    PHILOSOPHERS_SOURCE,
    POOL_SOURCE,
    XYZ_SOURCE,
)


class TestXyzEquivalence:
    def test_same_messages_under_matching_schedule(self):
        """The compiled xyz and the native xyz produce identical message
        clocks when scheduled to realize the paper's observed execution."""
        native = run_program(xyz_program(),
                             FixedScheduler([0, 0, 1, 1, 0, 0, 1, 1, 1, 0]))
        # compiled op stream per thread: t1 = R x, W x, skip, R x, W y (5)
        #                                t2 = R x, W z, skip, R x, W x (5)
        compiled = run_program(compile_source(XYZ_SOURCE),
                               FixedScheduler([0, 0, 1, 1, 0, 0, 1, 1, 1, 0]))
        assert [(m.event.label, tuple(m.clock)) for m in native.messages] == [
            (m.event.label, tuple(m.clock)) for m in compiled.messages]

    def test_same_prediction(self):
        compiled = run_program(compile_source(XYZ_SOURCE),
                               FixedScheduler([0, 0, 1, 1, 0, 0, 1, 1, 1, 0]))
        assert detect(compiled, XYZ_PROPERTY).ok
        report = predict(compiled, XYZ_PROPERTY, mode="full")
        assert report.nodes == 7 and report.n_runs == 3
        assert len(report.violations) == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_equivalent_final_states_any_schedule(self, seed):
        native = run_program(xyz_program(), RandomScheduler(seed))
        compiled = run_program(compile_source(XYZ_SOURCE),
                               RandomScheduler(seed))
        # same op shapes -> same schedules realize the same data flow
        assert native.final_store == compiled.final_store


class TestLandingSource:
    def test_reproduces_fig5_prediction(self):
        from repro.workloads import LANDING_PROPERTY

        program = compile_source(LANDING_SOURCE)
        # controller first (clean run), then the watchdog
        ex = run_program(program, FixedScheduler([0] * 8, strict=False))
        assert detect(ex, LANDING_PROPERTY).ok
        report = predict(ex, LANDING_PROPERTY, mode="full")
        assert report.nodes == 6
        assert len(report.violations) == 2


class TestPhilosophersSource:
    def test_deadlock_predicted_from_source(self):
        program = compile_source(PHILOSOPHERS_SOURCE)
        ex = run_program(program, FixedScheduler([], strict=False))
        assert ex.final_store["meals"] == 4
        reports = find_potential_deadlocks(ex)
        assert len(reports) == 1
        assert len(reports[0].cycle) == 4


class TestPoolSource:
    def test_three_workers(self):
        ex = run_program(compile_source(POOL_SOURCE),
                         FixedScheduler([], strict=False))
        assert ex.n_threads == 4
        assert ex.final_store == {"total": 3, "done": 1}

    @pytest.mark.parametrize("seed", range(4))
    def test_total_correct_any_schedule(self, seed):
        ex = run_program(compile_source(POOL_SOURCE), RandomScheduler(seed))
        assert ex.final_store["total"] == 3
