"""MiniLang parser tests."""

import pytest

from repro.lang.ast import (
    Assign,
    Binary,
    Block,
    If,
    LocalDecl,
    LockStmt,
    Name,
    NotifyStmt,
    Num,
    Skip,
    Unary,
    UnlockStmt,
    WaitStmt,
    While,
)
from repro.lang.parser import MiniLangError, parse_source


def first_stmt(body: str):
    ast = parse_source(f"shared int x = 0, y = 0;\nthread t {{ {body} }}")
    return ast.threads[0].body.statements[0]


class TestTopLevel:
    def test_shared_declarations(self):
        ast = parse_source("shared int a = 1, b = -2;\nshared int c = 0;\n"
                           "thread t { skip; }")
        assert ast.shared_names() == ("a", "b", "c")
        assert ast.initial_values() == {"a": 1, "b": -2, "c": 0}

    def test_multiple_threads(self):
        ast = parse_source("shared int x = 0;\n"
                           "thread a { skip; }\nthread b { x = 1; }")
        assert [t.name for t in ast.threads] == ["a", "b"]

    def test_no_threads_rejected(self):
        with pytest.raises(MiniLangError, match="no .*threads"):
            parse_source("shared int x = 0;")

    def test_duplicate_shared_rejected(self):
        with pytest.raises(MiniLangError, match="duplicate shared"):
            parse_source("shared int x = 0, x = 1;\nthread t { skip; }")

    def test_duplicate_thread_rejected(self):
        with pytest.raises(MiniLangError, match="duplicate thread"):
            parse_source("shared int x = 0;\n"
                         "thread t { skip; }\nthread t { skip; }")

    def test_comments_ignored(self):
        ast = parse_source("// header\nshared int x = 0; // trailing\n"
                           "thread t { skip; // mid\n }")
        assert ast.shared_names() == ("x",)

    def test_unexpected_character(self):
        with pytest.raises(MiniLangError, match="unexpected character"):
            parse_source("shared int x = 0; $")

    def test_error_carries_line_number(self):
        try:
            parse_source("shared int x = 0;\nthread t {\n  x = ;\n}")
        except MiniLangError as exc:
            assert exc.line == 3
        else:  # pragma: no cover
            pytest.fail("expected MiniLangError")


class TestStatements:
    def test_assignment(self):
        s = first_stmt("x = y + 1;")
        assert isinstance(s, Assign) and s.target == "x"
        assert isinstance(s.value, Binary) and s.value.op == "+"

    def test_local_decl(self):
        s = first_stmt("local int t = 3;")
        assert isinstance(s, LocalDecl) and s.name == "t"
        assert s.value == Num(3)

    def test_skip(self):
        assert isinstance(first_stmt("skip;"), Skip)

    def test_if_else(self):
        s = first_stmt("if (x == 0) { y = 1; } else { y = 2; }")
        assert isinstance(s, If)
        assert isinstance(s.then, Block) and isinstance(s.orelse, Block)

    def test_if_without_else(self):
        s = first_stmt("if (x == 0) { y = 1; }")
        assert isinstance(s, If) and s.orelse is None

    def test_while(self):
        s = first_stmt("while (x < 3) { x = x + 1; }")
        assert isinstance(s, While)

    def test_sync_statements(self):
        assert isinstance(first_stmt("lock(m);"), LockStmt)
        assert isinstance(first_stmt("unlock(m);"), UnlockStmt)
        assert isinstance(first_stmt("wait(c);"), WaitStmt)
        assert isinstance(first_stmt("notify(c);"), NotifyStmt)

    def test_missing_semicolon(self):
        with pytest.raises(MiniLangError):
            first_stmt("x = 1")

    def test_unterminated_block(self):
        with pytest.raises(MiniLangError, match="unterminated|end of input"):
            parse_source("shared int x = 0;\nthread t { skip;")


class TestExpressions:
    def test_precedence_arith(self):
        s = first_stmt("x = 1 + 2 * 3;")
        assert isinstance(s.value, Binary) and s.value.op == "+"
        assert isinstance(s.value.right, Binary) and s.value.right.op == "*"

    def test_boolean_precedence(self):
        s = first_stmt("x = y == 1 && x == 0 || y == 2;")
        assert s.value.op == "||"
        assert s.value.left.op == "&&"

    def test_unary(self):
        s = first_stmt("x = !(y == 1);")
        assert isinstance(s.value, Unary) and s.value.op == "!"
        s = first_stmt("x = -y;")
        assert isinstance(s.value, Unary) and s.value.op == "-"

    def test_parenthesized(self):
        s = first_stmt("x = (1 + y) * 2;")
        assert s.value.op == "*"

    def test_name_reference(self):
        s = first_stmt("x = y;")
        assert s.value == Name("y")


class TestErrorSpans:
    """MiniLangError renders the repository's shared file:line:col span
    format and carries structured .line/.col/.filename attributes."""

    def test_col_points_at_offending_token(self):
        try:
            parse_source("shared int x = 0;\nthread t {\n  x = ;\n}")
        except MiniLangError as exc:
            assert exc.line == 3
            assert exc.col == 7  # the ';' where an expression was expected
        else:  # pragma: no cover
            pytest.fail("expected MiniLangError")

    def test_filename_prefixes_message(self):
        with pytest.raises(MiniLangError) as excinfo:
            parse_source("shared int x = 0;\nthread t { x = ; }",
                         filename="prog.ml")
        exc = excinfo.value
        assert exc.filename == "prog.ml"
        assert str(exc).startswith(f"prog.ml:{exc.line}:{exc.col}: ")
        assert str(exc).endswith(exc.problem)

    def test_span_property(self):
        with pytest.raises(MiniLangError) as excinfo:
            parse_source("shared int x = 0; $", filename="bad.ml")
        assert excinfo.value.span == (
            f"bad.ml:{excinfo.value.line}:{excinfo.value.col}")

    def test_without_filename_renders_line_col(self):
        with pytest.raises(MiniLangError) as excinfo:
            parse_source("shared int x = 0;\nthread t { x = ; }")
        exc = excinfo.value
        assert str(exc).startswith(f"line {exc.line}:{exc.col}: ")

    def test_unexpected_character_col(self):
        with pytest.raises(MiniLangError) as excinfo:
            parse_source("shared int x = 0; $")
        assert excinfo.value.line == 1
        assert excinfo.value.col == 19

    def test_multiline_col_resets_per_line(self):
        with pytest.raises(MiniLangError) as excinfo:
            parse_source("shared int x = 0;\n// comment\n   $")
        assert excinfo.value.line == 3
        assert excinfo.value.col == 4

    def test_name_nodes_carry_spans(self):
        ast = parse_source("shared int x = 0, y = 0;\n"
                           "thread t { x = y + 1; }")
        stmt = ast.threads[0].body.statements[0]
        assert (stmt.line, stmt.col) == (2, 12)
        assert (stmt.value.left.line, stmt.value.left.col) == (2, 16)

    def test_spans_do_not_break_equality(self):
        # spans are compare=False metadata: structural equality still holds.
        assert parse_source("shared int x = 0;\nthread t { x = x; }") == \
            parse_source("shared int x = 0;\nthread t { x = x; }")
        a = first_stmt("x = y;")
        assert a.value == Name("y")
