"""Tree clocks — sublinear vector-clock joins for Algorithm A's hot path.

Flat MVC joins (``MutableVectorClock.merge``) are O(n) pointwise maxima on
*every* access event, and ``algoa.vc_joins`` shows them dominating the
instrumentation cost as thread counts grow.  The tree clock data structure
(Mathur, Tunç, Pavlogiannis, Viswanathan — *Tree Clocks: An Efficient Data
Structure for Dynamic Race Prediction*, arXiv 2201.06325) makes the join
cost proportional to the **knowledge actually transferred**: each clock
keeps, besides the flat component values, a rooted tree recording *through
whom* each component was learned, and a join walks only the subtrees whose
values changed — unchanged subtrees are skipped with one integer compare.

Soundness adaptation for Algorithm A
------------------------------------

The published tree clock targets happens-before race detection, where lock
clocks are only ever *copies* of thread clocks.  Algorithm A (paper Fig. 2)
also **joins into** variable clocks (step 2's ``V^a_x <- max{V^a_x, V_i}``),
and lets *irrelevant* events merge clocks without ticking the thread's
visible component.  Both break the classic pruning invariant, which uses
component values as versions of a thread's knowledge: two different
knowledge states can then share one visible component value, and a pruned
join would silently drop the difference.

This implementation therefore versions knowledge with **internal epochs**
instead of visible components:

* every mutation of a thread clock first bumps its root's *epoch*
  (``eclk``), so each epoch value names at most one knowledge state;
* tree nodes carry ``(tid, eclk, vclk, aclk)`` — the epoch, the *visible*
  relevant-event count (the paper's MVC component, what :meth:`snapshot`
  emits), and the parent's epoch at attachment time;
* pruning compares epochs only; visible components ride along as payload.

Variable clocks (``V^a_x``/``V^w_x``) have no events of their own, so they
are *rootless* — permanently: their top level is a list of thread-rooted
subtrees, and they never mint epochs.  Epochs for thread ``t`` are
allocated **only** by ``t``'s own clock; a variable clock that invented
epoch values for some thread's node would collide with that thread's
genuine epochs and re-enable exactly the unsound pruning the epochs exist
to prevent (caught by the property tests during development).  A join
**into** a variable clock attaches the source's root subtree at the top
level with an *unprunable* edge (``aclk = None``) — nobody's epoch versions
the variable clock's aggregate state, so that edge is always examined (one
O(1) epoch compare) — while every edge *inside* the subtree keeps its
(sound, prunable) thread-epoch annotation.  Stale top-level shells left by
earlier accesses disappear as their nodes are re-adopted into newer
subtrees.

The invariant maintained by every operation, and the only property pruning
relies on, is per-edge::

    for an edge (p -> c, aclk=a) in any clock:
        thread p.tid's own clock, at its epoch a, already knew every
        (tid, value) pair recorded in the subtree currently under c

Epochs never leave the process: messages still carry plain
:class:`~repro.core.vectorclock.VectorClock` snapshots of the visible
components, so the wire format, the observer and the archive are
unaffected.  The equivalence with flat clocks is property-tested over
randomized Algorithm-A-shaped operation soups in
``tests/core/test_treeclock.py`` and gated end-to-end by differential
replay in ``benchmarks/bench_treeclock.py``.

Complexity: a join that transfers nothing costs O(1) per top-level subtree
of the source (one epoch compare); in general a join costs O(nodes whose
value actually changed).  For workloads with access locality that is O(1)
per event where flat clocks pay O(n); for a single variable hammered by
all n threads every transfer genuinely carries O(n) new components and the
tree's higher per-node constant loses to the flat zip — the crossover is
measured in ``BENCH_treeclock.json`` and discussed in
``docs/PERFORMANCE.md``.  Nodes form intrusive doubly-linked sibling
lists, so detaching and re-attaching a node during a join is O(1).
"""

from __future__ import annotations

from typing import Iterator, Optional

from .vectorclock import VectorClock

__all__ = ["TreeClock"]

# Node layout (plain lists beat __slots__ objects on the per-event path).
# ``aclk`` is the parent's epoch at attachment, or None for an unprunable
# top-level edge.  Siblings form an intrusive doubly-linked list headed at
# the parent's ``first_child``, kept in descending-aclk order so a pruned
# scan can stop at the first stale edge; prepend and unlink are O(1).
_TID, _ECLK, _VCLK, _ACLK, _PARENT, _FIRST, _PREV, _NEXT = range(8)


def _new_node(tid: int) -> list:
    return [tid, 0, 0, 0, None, None, None, None]


class TreeClock:
    """A multithreaded vector clock with joins sublinear in clock width.

    Drop-in for :class:`~repro.core.vectorclock.MutableVectorClock` at
    Algorithm A's call sites: ``increment``, ``merge``, ``copy_from``,
    ``snapshot``, ``grow``, indexing and iteration all behave identically
    on the *visible* components.  Restrictions (checked loudly):

    * ``merge``/``copy_from`` accept only other :class:`TreeClock`\\ s —
      a raw sequence carries no provenance, and merging it would poison
      the pruning metadata (use the flat backend for that pattern);
    * ``copy_from(src)`` requires ``self <= src`` pointwise (always true
      at Algorithm A's copy sites; verified when
      :attr:`check_preconditions` is on);
    * only the owning thread's component can be incremented.

    Args:
        width: number of threads (may :meth:`grow`).
        root: owning thread index for a *thread* clock (``V_i``), or
            ``None`` for a rootless *variable* clock (``V^a_x``/``V^w_x``).
    """

    __slots__ = ("_n", "_flat", "_eflat", "_nodes", "_root", "_topsent")

    #: When True, :meth:`copy_from` verifies its ``self <= other``
    #: precondition on every call.  The check is O(n) — the very cost the
    #: tree exists to avoid — so it is off by default and switched on by
    #: the property tests (``tests/core/test_treeclock.py``).
    check_preconditions = False

    def __init__(self, width: int, root: Optional[int] = None):
        if width <= 0:
            raise ValueError("clock width must be positive")
        if root is not None and not 0 <= root < width:
            raise ValueError(f"root {root} out of range for width {width}")
        self._n = width
        #: Visible MVC components (the paper's V[j]).
        self._flat = [0] * width
        #: Epoch view: latest known epoch of each thread's clock.
        self._eflat = [0] * width
        #: tid -> node (or None), for every thread we have a tree node for.
        self._nodes: list = [None] * width
        self._root: Optional[list] = None
        #: Sentinel whose child chain is the top level of a rootless clock.
        self._topsent = _new_node(-1)
        if root is not None:
            node = _new_node(root)
            self._nodes[root] = node
            self._root = node

    # -- flat protocol (identical to MutableVectorClock) ----------------------

    @property
    def width(self) -> int:
        return self._n

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, j: int) -> int:
        return self._flat[j]

    def __iter__(self) -> Iterator[int]:
        return iter(self._flat)

    def __repr__(self) -> str:
        r = self._root[_TID] if self._root is not None else None
        return f"TC(root={r}, {tuple(self._flat)})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TreeClock):
            return self._flat == other._flat
        if isinstance(other, VectorClock):
            return tuple(self._flat) == other.components
        if isinstance(other, (list, tuple)):
            return self._flat == list(other)
        from .vectorclock import MutableVectorClock

        if isinstance(other, MutableVectorClock):
            return self._flat == list(other)
        return NotImplemented

    def snapshot(self) -> VectorClock:
        """Freeze the visible components (what a message carries)."""
        return VectorClock._from_trusted(tuple(self._flat))

    def grow(self, new_width: int) -> None:
        """Extend with zero components (dynamic thread creation)."""
        if new_width < self._n:
            raise ValueError("clocks cannot shrink")
        pad = new_width - self._n
        if pad:
            self._flat.extend([0] * pad)
            self._eflat.extend([0] * pad)
            self._nodes.extend([None] * pad)
            self._n = new_width

    # -- mutation --------------------------------------------------------------

    def increment(self, index: int) -> None:
        """``V[index] += 1`` — step 1 of Algorithm A.  Only the owning
        thread of a rooted clock may tick (its own component)."""
        root = self._root
        if root is None or root[_TID] != index:
            raise ValueError(
                f"tree clock rooted at "
                f"{None if root is None else root[_TID]} cannot increment "
                f"component {index}; only the owning thread ticks its clock"
            )
        # A new knowledge state: bump the epoch with the visible component.
        root[_ECLK] += 1
        root[_VCLK] += 1
        self._eflat[index] = root[_ECLK]
        self._flat[index] = root[_VCLK]

    def merge(self, other: "TreeClock") -> bool:
        """In-place join ``V <- max{V, other}`` (steps 2 and 3).

        Returns True when the whole join was satisfied by O(1)-per-subtree
        epoch compares (nothing to learn) — the ``algoa.vc_join_fast``
        signal.
        """
        if not isinstance(other, TreeClock):
            raise TypeError(
                "TreeClock.merge requires another TreeClock (raw sequences "
                "carry no provenance; use the flat backend for that)"
            )
        if other._n > self._n:
            self.grow(other._n)
        elif other._n < self._n:
            raise ValueError(f"clock width mismatch: {self._n} vs {other._n}")
        root = self._root
        if root is not None:
            # Every mutation of a rooted clock is a new knowledge state.
            root[_ECLK] += 1
            self._eflat[root[_TID]] = root[_ECLK]
        eflat = self._eflat
        fast = True
        src = other._root
        if src is not None:
            if src[_ECLK] > eflat[src[_TID]]:
                self._adopt(src)
                fast = False
        else:
            src = other._topsent[_FIRST]
            while src is not None:
                # Unprunable top-level edges: always examine the subtree
                # root; its epoch decides in O(1) whether to descend.
                if src[_ECLK] > eflat[src[_TID]]:
                    self._adopt(src)
                    fast = False
                src = src[_NEXT]
        return fast

    def _adopt(self, top: list) -> None:
        """Copy the updated part of a source subtree into this clock.

        ``top`` is a node of *another* clock whose epoch exceeds ours.
        Our node for each adopted tid is unlinked (O(1)), refreshed and
        re-linked at its mirrored position; the scan of a source node's
        children stops at the first edge whose ``aclk`` is at or below our
        *old* epoch view of that node's tid — by the edge invariant
        everything from there on is already known.  Skipped nodes keep
        whatever position (and children) they already had in our tree,
        which preserves the edge invariant: it speaks about genuine thread
        states, not about where a node currently sits.
        """
        flat, eflat, nodes = self._flat, self._eflat, self._nodes
        # (source node, our old epoch view of its tid, our copy's parent);
        # parent None means attach at our top.
        stack = [(top, eflat[top[_TID]], None)]
        while stack:
            s, old_epoch, parent = stack.pop()
            tid = s[_TID]
            node = nodes[tid]
            if node is None:
                node = _new_node(tid)
                nodes[tid] = node
            else:
                # O(1) unlink from its current sibling chain.
                p = node[_PARENT]
                if p is not None:
                    nxt = node[_NEXT]
                    prv = node[_PREV]
                    if prv is None:
                        p[_FIRST] = nxt
                    else:
                        prv[_NEXT] = nxt
                    if nxt is not None:
                        nxt[_PREV] = prv
            node[_ECLK] = s[_ECLK]
            eflat[tid] = s[_ECLK]
            v = s[_VCLK]
            node[_VCLK] = v
            if v > flat[tid]:
                flat[tid] = v
            # Attach: mirrored position, or our top for the subtree root.
            if parent is None:
                root = self._root
                if root is not None:
                    # Sound: the root epoch was bumped for this very merge,
                    # so anyone later learning it learns this state too.
                    node[_ACLK] = root[_ECLK]
                    parent = root
                else:
                    node[_ACLK] = None
                    parent = self._topsent
            else:
                # The source edge's aclk: its invariant transfers verbatim.
                node[_ACLK] = s[_ACLK]
            node[_PARENT] = parent
            first = parent[_FIRST]
            node[_PREV] = None
            node[_NEXT] = first
            if first is not None:
                first[_PREV] = node
            parent[_FIRST] = node
            # Scan source children (descending aclk).  Pushing in scan
            # order and popping in reverse prepends ascending, restoring
            # descending order under our copy.
            c = s[_FIRST]
            while c is not None:
                aclk = c[_ACLK]
                if aclk is not None and aclk <= old_epoch:
                    break  # the rest of the chain is already known
                if c[_ECLK] > eflat[c[_TID]]:
                    stack.append((c, eflat[c[_TID]], node))
                c = c[_NEXT]

    def copy_from(self, other: "TreeClock") -> None:
        """In-place assignment ``V <- other`` (the chained writes of step 3).

        Requires ``self <= other`` pointwise — true by construction at
        Algorithm A's copy sites, where the source was just merged with
        the target.  Under that precondition a join IS the assignment on
        the visible components, so this delegates to :meth:`merge`.  No
        structural re-rooting happens: a variable clock stays rootless
        (it must never mint epochs for another thread's tid — see the
        module docstring), and stale top-level shells it accumulates cost
        O(1) each to skip and vanish as their nodes are re-adopted.
        """
        if not isinstance(other, TreeClock):
            raise TypeError("TreeClock.copy_from requires another TreeClock")
        if self.check_preconditions:
            if other._n >= self._n and any(
                a > b for a, b in zip(self._flat, other._flat)
            ):
                raise ValueError(
                    "TreeClock.copy_from requires self <= other pointwise "
                    "(merge the target into the source first, as Algorithm "
                    "A's steps do)"
                )
        self.merge(other)

    # -- diagnostics -----------------------------------------------------------

    def _tops(self) -> list:
        """Top-level nodes: the root, or the rootless top chain."""
        if self._root is not None:
            return [self._root]
        out = []
        c = self._topsent[_FIRST]
        while c is not None:
            out.append(c)
            c = c[_NEXT]
        return out

    def _children(self, node: list) -> list:
        out = []
        c = node[_FIRST]
        while c is not None:
            out.append(c)
            c = c[_NEXT]
        return out

    def tree_depth(self) -> int:
        """Height of the deepest subtree (diagnostic / test support)."""
        best = 0
        stack = [(t, 1) for t in self._tops()]
        while stack:
            node, d = stack.pop()
            if d > best:
                best = d
            stack.extend((c, d + 1) for c in self._children(node))
        return best

    def check_invariants(self) -> None:
        """Structural self-check used by the property tests."""
        seen: set[int] = set()
        for top in self._tops():
            stack = [top]
            while stack:
                node = stack.pop()
                tid = node[_TID]
                assert tid not in seen, f"tid {tid} appears twice"
                seen.add(tid)
                assert self._nodes[tid] is node
                assert node[_VCLK] == self._flat[tid]
                assert node[_ECLK] == self._eflat[tid]
                children = self._children(node)
                aclks = [c[_ACLK] for c in children]
                finite = [a for a in aclks if a is not None]
                assert finite == sorted(finite, reverse=True), (
                    f"children of {tid} out of aclk order: {aclks}"
                )
                prev = None
                for c in children:
                    assert c[_PARENT] is node
                    assert c[_PREV] is prev
                    prev = c
                    stack.append(c)
        for tid in range(self._n):
            node = self._nodes[tid]
            assert node is None or tid in seen, f"node {tid} unreachable"
        assert sum(1 for v in self._flat if v) <= len(seen) or not seen
