"""The distributed-systems interpretation of Algorithm A (paper §3.2, Fig. 3).

§3.2 asks whether the MVC algorithm could be derived from standard vector
clocks for message-passing distributed systems.  The answer is "*almost*":
associate two processes with each shared variable ``x`` — an *access
process* ``xa`` and a *write process* ``xw`` — and model

* a **write** of ``x`` by thread ``i`` as: request ``i → xa``, request
  ``xa → xw``, acknowledgment ``xw → i`` (all ordinary clock-carrying
  messages);
* a **read** of ``x`` by thread ``i`` as: request ``i → xa``, a **hidden**
  request ``xa → xw`` (a message "not considered by the standard MVC update
  algorithm" — its only role is to trigger the ack), acknowledgment
  ``xw → i``.

The hidden message is the "almost": reads must *not* update the write
process's clock, which is what keeps reads permutable by the observer.

This module implements that interpretation as an explicit actor simulation —
processes with mailboxes exchanging clock-stamped messages — and
:class:`DistributedInterpretation` exposes the same event API as
:class:`~repro.core.algorithm_a.AlgorithmA`.  The test-suite verifies that
the two produce *identical* clocks on arbitrary executions, mechanizing
§3.2's equivalence argument.

One deviation from pure Mattern/Fidge clocks, inherent to the paper's MVCs:
clocks are ``n``-dimensional over the *threads* only; variable processes
never tick a component of their own, and thread processes tick theirs only
on relevant events (Algorithm A step 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .algorithm_a import RelevancePredicate
from .events import Event, EventKind, Message, VarName
from .vectorclock import MutableVectorClock

__all__ = ["DistributedInterpretation", "Exchange"]


@dataclass(frozen=True)
class Exchange:
    """One message of the Fig. 3 protocol, for inspection/testing."""

    sender: str  # "t<i>", "<x>a", or "<x>w"
    receiver: str
    kind: str  # "request" | "ack"
    hidden: bool
    #: Clock attached to the message (None for hidden messages — they carry
    #: no clock by definition).
    clock: Optional[tuple[int, ...]]


class _Process:
    """A process of the simulated distributed system: a clock + a mailbox."""

    def __init__(self, name: str, width: int):
        self.name = name
        self.clock = MutableVectorClock(width)
        self.mailbox: list[tuple[bool, Optional[tuple[int, ...]]]] = []

    def receive(self, hidden: bool, clock: Optional[tuple[int, ...]]) -> None:
        """Standard VC receive: merge the attached clock — unless the
        message is hidden (Fig. 3's dotted arrow)."""
        self.mailbox.append((hidden, clock))
        if not hidden and clock is not None:
            self.clock.merge(clock)


class DistributedInterpretation:
    """Algorithm A realized as Fig. 3's message-passing protocol.

    Drop-in behavioral twin of :class:`AlgorithmA` (``process``, ``on_read``,
    ``on_write``, ``on_internal``, ``emitted``); additionally records every
    protocol message in :attr:`exchanges`.
    """

    def __init__(
        self,
        n_threads: int,
        relevance: Optional[RelevancePredicate] = None,
    ):
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        self._n = n_threads
        self._relevance: RelevancePredicate = relevance or (
            lambda e: e.kind.is_write
        )
        self._threads = [_Process(f"t{i}", n_threads) for i in range(n_threads)]
        self._access: dict[VarName, _Process] = {}
        self._write: dict[VarName, _Process] = {}
        self._event_counts = [0] * n_threads
        self._emit_index = 0
        self.emitted: list[Message] = []
        self.exchanges: list[Exchange] = []

    def _var_procs(self, x: VarName) -> tuple[_Process, _Process]:
        a = self._access.get(x)
        if a is None:
            a = _Process(f"{x}a", self._n)
            w = _Process(f"{x}w", self._n)
            self._access[x] = a
            self._write[x] = w
            return a, w
        return a, self._write[x]

    def _send(self, src: _Process, dst: _Process, kind: str,
              hidden: bool = False) -> None:
        clock = None if hidden else tuple(src.clock)
        self.exchanges.append(
            Exchange(sender=src.name, receiver=dst.name, kind=kind,
                     hidden=hidden, clock=clock)
        )
        dst.receive(hidden, clock)

    # -- the protocol ------------------------------------------------------------

    def process(
        self,
        thread: int,
        kind: EventKind,
        var: Optional[VarName] = None,
        value: object = None,
        label: Optional[str] = None,
    ) -> Optional[Message]:
        if not 0 <= thread < self._n:
            raise IndexError(thread)
        self._event_counts[thread] += 1
        proto = Event(thread=thread, seq=self._event_counts[thread],
                      kind=kind, var=var, value=value, relevant=False,
                      label=label)
        relevant = self._relevance(proto)
        ti = self._threads[thread]

        # Local relevant event: the thread process ticks its own component
        # (Algorithm A step 1) before any protocol message is sent.
        if relevant:
            ti.clock.increment(thread)

        if kind.is_access:
            xa, xw = self._var_procs(var)
            if kind.is_write:
                # Fig. 3 right: i --req--> xa --req--> xw --ack--> i,
                # then the access/write processes synchronize on the result.
                self._send(ti, xa, "request")
                self._send(xa, xw, "request")
                self._send(xw, ti, "ack")
                # the action is performed at xw; both variable processes end
                # up with the writer's full knowledge
                xa.clock.merge(tuple(xw.clock))
                xw.clock.merge(tuple(xa.clock))
            else:
                # Fig. 3 left: i --req--> xa --hidden--> xw --ack--> i.
                self._send(ti, xa, "request")
                self._send(xa, xw, "request", hidden=True)
                self._send(xw, ti, "ack")
                # xa additionally learns what the ack taught the reader
                # (step 2's V^a_x <- max{V^a_x, V_i} with the post-merge V_i)
                xa.clock.merge(tuple(ti.clock))

        if not relevant:
            return None
        event = Event(thread=proto.thread, seq=proto.seq, kind=proto.kind,
                      var=proto.var, value=proto.value, relevant=True,
                      label=proto.label)
        msg = Message(event=event, thread=thread, clock=ti.clock.snapshot(),
                      emit_index=self._emit_index)
        self._emit_index += 1
        self.emitted.append(msg)
        return msg

    # -- AlgorithmA-compatible façade ----------------------------------------------

    def on_read(self, thread: int, var: VarName, value: object = None,
                label: Optional[str] = None) -> Optional[Message]:
        return self.process(thread, EventKind.READ, var, value, label)

    def on_write(self, thread: int, var: VarName, value: object = None,
                 label: Optional[str] = None) -> Optional[Message]:
        return self.process(thread, EventKind.WRITE, var, value, label)

    def on_internal(self, thread: int, label: Optional[str] = None) -> Optional[Message]:
        return self.process(thread, EventKind.INTERNAL, label=label)

    def thread_clock(self, i: int) -> tuple[int, ...]:
        return tuple(self._threads[i].clock)

    def access_clock(self, x: VarName) -> tuple[int, ...]:
        p = self._access.get(x)
        return tuple(p.clock) if p is not None else (0,) * self._n

    def write_clock(self, x: VarName) -> tuple[int, ...]:
        p = self._write.get(x)
        return tuple(p.clock) if p is not None else (0,) * self._n
