"""Event and message model.

A *multithreaded execution* (paper Section 2.1) is a sequence of events
``e_1 e_2 ... e_r``, each belonging to one of ``n`` threads and having type
*internal*, *read* or *write* of a shared variable.  Synchronization events
(lock acquire/release, wait/notify) are modeled as *writes* of the lock's
shared variable (Section 3.1), but we keep distinct kinds so that analyses
(e.g. race detection) can tell them apart; for causality purposes
:attr:`EventKind.is_write` is what matters.

Algorithm A turns relevant events into messages ``⟨e, i, V⟩`` sent to the
observer (:class:`Message`).
"""

from __future__ import annotations

import enum
import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

from .vectorclock import VectorClock

__all__ = ["EventKind", "Event", "Message", "Envelope", "VarName"]

# Shared-variable names. Anything hashable works internally; strings are used
# throughout examples and serialization.
VarName = Hashable


class EventKind(enum.Enum):
    """Type of an event in a multithreaded execution."""

    INTERNAL = "internal"
    READ = "read"
    WRITE = "write"
    # Synchronization events; treated as WRITEs of the lock variable by
    # Algorithm A (paper Section 3.1).
    ACQUIRE = "acquire"
    RELEASE = "release"
    # wait/notify: a write of a dummy shared variable by the notifying thread
    # before notification and by the notified thread after notification.
    NOTIFY = "notify"
    WAKE = "wake"

    @property
    def is_access(self) -> bool:
        """True for events that access a shared variable (read or write)."""
        return self is not EventKind.INTERNAL

    @property
    def is_write(self) -> bool:
        """True for events with *write* causality weight (Section 3.1)."""
        return self in _WRITE_KINDS

    @property
    def is_read(self) -> bool:
        return self is EventKind.READ


_WRITE_KINDS = frozenset(
    {
        EventKind.WRITE,
        EventKind.ACQUIRE,
        EventKind.RELEASE,
        EventKind.NOTIFY,
        EventKind.WAKE,
    }
)


@dataclass(frozen=True)
class Event:
    """One event ``e^k_i`` of a multithreaded execution.

    Attributes:
        thread: index ``i`` of the generating thread (0-based internally).
        seq: ``k`` — position of this event within its thread, *1-based* to
            match the paper's ``e^k_i`` notation (the first event of a thread
            has ``seq == 1``).
        kind: internal / read / write / synchronization.
        var: the shared variable accessed, or ``None`` for internal events.
        value: for writes, the value written; for reads, the value read.
            Carried so the observer can reconstruct global states
            (Section 4: "each relevant event contains global state update
            information").
        relevant: whether the event belongs to the relevant set ``R``.
        label: optional human-readable label (e.g. ``"landing = 1"``).
    """

    thread: int
    seq: int
    kind: EventKind
    var: Optional[VarName] = None
    value: Any = None
    relevant: bool = False
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.thread < 0:
            raise ValueError(f"negative thread index: {self.thread}")
        if self.seq < 1:
            raise ValueError(f"event seq is 1-based, got {self.seq}")
        if self.kind.is_access and self.var is None:
            raise ValueError(f"{self.kind} event requires a variable")
        if self.kind is EventKind.INTERNAL and self.var is not None:
            raise ValueError("internal events cannot name a variable")

    @property
    def eid(self) -> tuple[int, int]:
        """Unique id ``(thread, seq)`` — the paper's ``e^k_i``."""
        return (self.thread, self.seq)

    def pretty(self) -> str:
        if self.label is not None:
            body = self.label
        elif self.kind.is_access:
            op = "W" if self.kind.is_write else "R"
            body = f"{op}({self.var})"
            if self.value is not None:
                body += f"={self.value!r}"
        else:
            body = "internal"
        star = "*" if self.relevant else ""
        return f"e{self.seq}_T{self.thread + 1}{star}[{body}]"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.pretty()


@dataclass(frozen=True)
class Message:
    """A message ``⟨e, i, V⟩`` emitted by Algorithm A for a relevant event.

    ``V`` is the snapshot of the generating thread's MVC *after* processing
    the event.  By Theorem 3, for two messages ``⟨e, i, V⟩`` and
    ``⟨e', i', V'⟩``: ``e ⊳ e'`` iff ``V[i] <= V'[i]`` iff ``V < V'``.
    """

    event: Event
    thread: int
    clock: VectorClock
    # Monotone stamp of emission order; used only by tests/benchmarks to
    # reconstruct or scramble delivery order, never by the observer logic.
    emit_index: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.thread != self.event.thread:
            raise ValueError(
                f"message thread {self.thread} != event thread {self.event.thread}"
            )

    def causally_precedes(self, other: "Message") -> bool:
        """Theorem 3 test: ``self ⊳ other`` via ``V[i] <= V'[i]``.

        Note the paper's emphasis: the index is the *sender's* ``i`` on both
        sides ("no typo: the second i is not an i'").
        """
        if self.event.eid == other.event.eid:
            return False
        return self.clock[self.thread] <= other.clock[self.thread]

    def concurrent_with(self, other: "Message") -> bool:
        return not self.causally_precedes(other) and not other.causally_precedes(self)

    # -- wire format (socket transport / cross-process observer) ------------

    def to_json(self) -> str:
        e = self.event
        return json.dumps(
            {
                "thread": self.thread,
                "seq": e.seq,
                "kind": e.kind.value,
                "var": e.var if isinstance(e.var, (str, int)) or e.var is None else str(e.var),
                "value": e.value,
                "relevant": e.relevant,
                "label": e.label,
                "clock": list(self.clock.components),
                "emit_index": self.emit_index,
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "Message":
        d = json.loads(line)
        event = Event(
            thread=d["thread"],
            seq=d["seq"],
            kind=EventKind(d["kind"]),
            var=d["var"],
            value=d["value"],
            relevant=d["relevant"],
            label=d.get("label"),
        )
        return cls(
            event=event,
            thread=d["thread"],
            clock=VectorClock(d["clock"]),
            emit_index=d.get("emit_index", -1),
        )

    def pretty(self) -> str:
        return f"⟨{self.event.pretty()}, T{self.thread + 1}, {tuple(self.clock)}⟩"

    @property
    def delivery_index(self) -> tuple[int, int]:
        """``(thread, clock[thread])`` — the per-thread *relevant* position
        the observer's delivery layer sequences on (1-based).  Distinct from
        :attr:`Event.eid`, whose ``seq`` counts all events of the thread."""
        return (self.thread, self.clock[self.thread])


@dataclass(frozen=True)
class Envelope:
    """Wire envelope around a :class:`Message`: sender sequence + checksum.

    The paper's observer tolerates arbitrary *reordering* because per-thread
    sequencing is encoded in the MVCs themselves; tolerating *loss,
    duplication and corruption* needs two extra pieces of metadata that the
    payload cannot carry for itself:

    * ``seq`` — a monotone per-sender send index, so a reliable transport
      can ack/retransmit and the observer can spot transport-level
      duplicates even when the payload is unreadable;
    * ``checksum`` — CRC-32 of the canonical payload JSON, computed at
      send time, so the observer can detect payload corruption (a tampered
      message then counts as a *loss* of its ``(thread, index)`` slot
      rather than silently poisoning the lattice).

    An envelope whose :attr:`ok` is False must never be unwrapped into the
    analysis: its payload bytes are untrustworthy.
    """

    message: Message
    seq: int
    checksum: int

    @staticmethod
    def payload_checksum(message: Message) -> int:
        return zlib.crc32(message.to_json().encode("utf-8"))

    @classmethod
    def wrap(cls, message: Message, seq: int) -> "Envelope":
        return cls(message=message, seq=seq,
                   checksum=cls.payload_checksum(message))

    @property
    def ok(self) -> bool:
        """Does the payload still match the send-time checksum?"""
        return self.checksum == self.payload_checksum(self.message)

    @property
    def thread(self) -> int:
        """Routing key, so envelopes ride thread-sharded channels."""
        return self.message.thread

    def to_json(self) -> str:
        return json.dumps({
            "type": "envelope",
            "seq": self.seq,
            "crc": self.checksum,
            "payload": self.message.to_json(),
        })

    @classmethod
    def from_json(cls, line: str) -> "Envelope":
        d = json.loads(line)
        if d.get("type") != "envelope":
            raise ValueError("not an envelope record")
        return cls(message=Message.from_json(d["payload"]),
                   seq=d["seq"], checksum=d["crc"])
