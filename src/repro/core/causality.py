"""Observer-side causality reconstruction from MVC messages.

The observer receives messages ``⟨e, i, V⟩`` *in any order* and, thanks to
Theorem 3, can recover the relevant causal partial order ``⊳``::

    e ⊳ e'   iff   V[i] <= V'[i]   iff   V < V'

:class:`CausalityIndex` stores messages and answers precedence, concurrency,
covering-relation (Hasse diagram) and linear-extension queries.  It is the
bridge between the raw message stream and the computation lattice
(`repro.lattice`).

Two comparison kernels coexist (ablation: ``benchmarks/bench_overhead.py``):
scalar Theorem-3 tests (two int compares per query — optimal for point
queries) and a numpy :class:`~repro.core.vectorclock.ClockArena` bulk kernel
for whole-relation materialization (O(m²n) in one C pass).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from .events import Message
from .vectorclock import ClockArena

__all__ = ["CausalityIndex", "hasse_reduction", "is_linear_extension"]


class CausalityIndex:
    """An incrementally-built index over received messages.

    Messages may arrive in any delivery order; the index keyed by event id
    ``(thread, seq)`` is insensitive to it.
    """

    def __init__(self, n_threads: int, messages: Iterable[Message] = ()):
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        self._n = n_threads
        self._msgs: list[Message] = []
        self._by_eid: dict[tuple[int, int], int] = {}
        self._arena = ClockArena(width=n_threads)
        for m in messages:
            self.add(m)

    # -- construction -----------------------------------------------------------

    def add(self, msg: Message) -> int:
        """Insert a message; returns its index.  Duplicate event ids rejected."""
        if msg.clock.width != self._n:
            raise ValueError(
                f"message clock width {msg.clock.width} != index width {self._n}"
            )
        eid = msg.event.eid
        if eid in self._by_eid:
            raise ValueError(f"duplicate message for event {eid}")
        idx = len(self._msgs)
        self._msgs.append(msg)
        self._by_eid[eid] = idx
        self._arena.append(msg.clock)
        return idx

    def add_batch(self, msgs: Sequence[Message]) -> int:
        """Insert many messages with one arena write; returns the index of
        the first.  Same checks as :meth:`add` (duplicates — including
        within the batch — and width mismatches reject the offending
        message before anything past it is inserted)."""
        start = len(self._msgs)
        accepted: list[Message] = []
        try:
            for msg in msgs:
                if msg.clock.width != self._n:
                    raise ValueError(
                        f"message clock width {msg.clock.width} != index "
                        f"width {self._n}"
                    )
                eid = msg.event.eid
                if eid in self._by_eid:
                    raise ValueError(f"duplicate message for event {eid}")
                self._by_eid[eid] = start + len(accepted)
                accepted.append(msg)
        finally:
            if accepted:
                self._msgs.extend(accepted)
                self._arena.extend([m.clock for m in accepted])
        return start

    def __len__(self) -> int:
        return len(self._msgs)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._msgs)

    @property
    def n_threads(self) -> int:
        return self._n

    @property
    def messages(self) -> Sequence[Message]:
        return tuple(self._msgs)

    def message(self, eid: tuple[int, int]) -> Message:
        return self._msgs[self._by_eid[eid]]

    def __contains__(self, eid: tuple[int, int]) -> bool:
        return eid in self._by_eid

    # -- point queries (Theorem 3, scalar kernel) --------------------------------

    def precedes(self, a: Message | tuple[int, int], b: Message | tuple[int, int]) -> bool:
        """``a ⊳ b`` via the Theorem 3 test ``V[i] <= V'[i]``."""
        ma = a if isinstance(a, Message) else self.message(a)
        mb = b if isinstance(b, Message) else self.message(b)
        return ma.causally_precedes(mb)

    def concurrent(self, a: Message | tuple[int, int], b: Message | tuple[int, int]) -> bool:
        ma = a if isinstance(a, Message) else self.message(a)
        mb = b if isinstance(b, Message) else self.message(b)
        return ma.concurrent_with(mb)

    def predecessors(self, b: Message | tuple[int, int]) -> list[Message]:
        mb = b if isinstance(b, Message) else self.message(b)
        return [m for m in self._msgs if m.causally_precedes(mb)]

    def successors(self, a: Message | tuple[int, int]) -> list[Message]:
        ma = a if isinstance(a, Message) else self.message(a)
        return [m for m in self._msgs if ma.causally_precedes(m)]

    # -- bulk queries (numpy kernel) ----------------------------------------------

    def relation_matrix(self) -> np.ndarray:
        """Strict-precedence boolean matrix ``P[a, b] = (msgs[a] ⊳ msgs[b])``.

        Theorem 3's third characterization, ``e ⊳ e' iff V < V'``, vectorizes
        as ``leq & ~eq`` over the arena.
        """
        le = self._arena.pairwise_leq()
        m = len(self._msgs)
        eq = le & le.T
        np.fill_diagonal(eq, True)
        return le & ~eq

    def concurrency_matrix(self) -> np.ndarray:
        """``C[a, b] = msgs[a] || msgs[b]`` (irreflexive)."""
        p = self.relation_matrix()
        c = ~p & ~p.T
        np.fill_diagonal(c, False)
        return c

    def count_concurrent_pairs(self) -> int:
        return int(self.concurrency_matrix().sum()) // 2

    # -- structure ------------------------------------------------------------------

    def covering_edges(self) -> list[tuple[Message, Message]]:
        """The Hasse diagram of ``⊳`` (see :func:`hasse_reduction`)."""
        p = self.relation_matrix()
        keep = hasse_reduction(p)
        out = []
        rows, cols = np.nonzero(keep)
        for a, b in zip(rows.tolist(), cols.tolist()):
            out.append((self._msgs[a], self._msgs[b]))
        return out

    def per_thread_chains(self) -> dict[int, list[Message]]:
        """Messages grouped by thread, ordered by seq (program order)."""
        chains: dict[int, list[Message]] = {i: [] for i in range(self._n)}
        for m in self._msgs:
            chains.setdefault(m.thread, []).append(m)
        for c in chains.values():
            c.sort(key=lambda m: m.event.seq)
        return chains

    def linearize(self) -> list[Message]:
        """One consistent run: messages sorted topologically w.r.t. ``⊳``.

        Sorting by clock sum (lattice level) then thread is a valid linear
        extension: if ``a ⊳ b`` then ``V_a < V_b`` so ``sum(V_a) < sum(V_b)``.
        """
        return sorted(self._msgs, key=lambda m: (m.clock.sum(), m.thread, m.event.seq))

    def minimal_messages(self) -> list[Message]:
        """Messages with no predecessor (lattice level-1 candidates)."""
        p = self.relation_matrix()
        has_pred = p.any(axis=0)
        return [m for m, hp in zip(self._msgs, has_pred.tolist()) if not hp]


def hasse_reduction(precedes: np.ndarray) -> np.ndarray:
    """Transitive reduction of a strict-order boolean matrix.

    An edge ``a -> b`` is *covering* iff ``a ≺ b`` and there is no ``c`` with
    ``a ≺ c ≺ b``.  Computed as one boolean matrix product (numpy ``@`` on
    bools goes through int; ``(P @ P) > 0`` keeps it vectorized).
    """
    if precedes.shape[0] != precedes.shape[1]:
        raise ValueError("precedence matrix must be square")
    if precedes.size == 0:
        return precedes.copy()
    through = (precedes.astype(np.uint8) @ precedes.astype(np.uint8)) > 0
    return precedes & ~through


def is_linear_extension(order: Sequence[Message]) -> bool:
    """Does this delivery order respect ``⊳``?  O(m²) scalar Theorem-3 tests."""
    for i, later in enumerate(order):
        for earlier in order[:i]:
            if later.causally_precedes(earlier):
                return False
    return True
