"""Ground-truth multithreaded computations (paper Section 2.2).

A *multithreaded computation* is the smallest partial order ``≺`` on the
events of an execution ``M`` such that:

* ``e^k_i ≺ e^l_i`` whenever ``k < l`` (program order within a thread);
* ``e ≺ e'`` whenever ``e <_x e'`` for some shared variable ``x`` and at
  least one of ``e, e'`` is a write (read-write, write-read and write-write
  causality; read-read pairs are permutable);
* transitivity.

:class:`Computation` implements this definition *directly* from a recorded
execution, independently of Algorithm A.  It is the oracle against which the
MVC algorithm is validated (Theorem 3 tests in ``tests/core/test_theorem3.py``)
and the reference for lattice feasibility checks.

Implementation note: reachability is computed once, by a topological sweep in
execution order, representing each event's predecessor set as a Python int
bitset.  ``x | y`` on ints is a single C loop over machine words, so closure
costs O(r^2 / 64) words for r events — comfortably fast for the tens of
thousands of events the tests use (this is the "algorithmic optimization
first" rule from the HPC guides; an explicit Floyd–Warshall would be O(r^3)).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from .events import Event, EventKind, VarName

__all__ = ["Computation", "execution_from_specs"]


class Computation:
    """The causal partial order of one recorded multithreaded execution.

    Args:
        execution: events in their global execution (total) order.  Each
            event's ``seq`` must match its position within its thread
            (1-based), as produced by :class:`repro.core.algorithm_a.AlgorithmA`
            or :func:`execution_from_specs`.
        causality: ``"full"`` is the paper's ``≺`` (all shared-variable
            access edges).  ``"sync"`` keeps only program order plus access
            edges through *synchronization* events (lock acquire/release,
            notify/wake) — the happens-before relation classic race
            detection needs, under which conflicting *data* accesses are not
            ordered by the very accesses being examined.
    """

    def __init__(self, execution: Sequence[Event], causality: str = "full"):
        if causality not in ("full", "sync"):
            raise ValueError(f"unknown causality mode {causality!r}")
        self._causality = causality
        self._events: list[Event] = list(execution)
        self._index: dict[tuple[int, int], int] = {}
        for pos, e in enumerate(self._events):
            if e.eid in self._index:
                raise ValueError(f"duplicate event id {e.eid}")
            self._index[e.eid] = pos
        self._validate_seq()
        # _pred[p] is an int bitset of positions strictly causally before p.
        self._pred: list[int] = self._close()

    def _validate_seq(self) -> None:
        counts: dict[int, int] = {}
        for e in self._events:
            expect = counts.get(e.thread, 0) + 1
            if e.seq != expect:
                raise ValueError(
                    f"event {e.eid} out of order: expected seq {expect} "
                    f"for thread {e.thread}"
                )
            counts[e.thread] = expect

    def _close(self) -> list[int]:
        """One pass in execution order, accumulating predecessor bitsets.

        For each event we join: (i) the bitset of the previous event of the
        same thread, and (ii) for accesses of ``x``, the bitsets of the
        events the definition makes direct predecessors — every earlier
        *access* of ``x`` if this is a write, every earlier *write* of ``x``
        if this is a read.  Keeping, per variable, the cumulative bitset of
        earlier accesses/writes (plus the events themselves) makes each step
        O(words).
        """
        pred: list[int] = []
        last_of_thread: dict[int, int] = {}  # thread -> position of last event
        # Per variable: bitset of {accesses of x} ∪ their predecessors, and
        # bitset of {writes of x} ∪ their predecessors.
        acc_closure: dict[VarName, int] = {}
        wr_closure: dict[VarName, int] = {}

        sync_only = self._causality == "sync"
        for pos, e in enumerate(self._events):
            ordering_access = e.kind.is_access and (
                not sync_only or e.kind is not EventKind.READ and e.kind is not EventKind.WRITE
            )
            p = 0
            lp = last_of_thread.get(e.thread)
            if lp is not None:
                p |= pred[lp] | (1 << lp)
            if ordering_access:
                if e.kind.is_write:
                    p |= acc_closure.get(e.var, 0)
                else:
                    p |= wr_closure.get(e.var, 0)
            pred.append(p)
            last_of_thread[e.thread] = pos
            if ordering_access:
                closure_with_self = p | (1 << pos)
                acc_closure[e.var] = acc_closure.get(e.var, 0) | closure_with_self
                if e.kind.is_write:
                    wr_closure[e.var] = wr_closure.get(e.var, 0) | closure_with_self
        return pred

    # -- basic queries --------------------------------------------------------

    @property
    def events(self) -> Sequence[Event]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def position(self, e: Event | tuple[int, int]) -> int:
        eid = e.eid if isinstance(e, Event) else e
        return self._index[eid]

    def precedes(self, a: Event | tuple[int, int], b: Event | tuple[int, int]) -> bool:
        """The paper's ``a ≺ b`` (strict causal precedence)."""
        pa, pb = self.position(a), self.position(b)
        return bool(self._pred[pb] >> pa & 1)

    def concurrent(self, a: Event | tuple[int, int], b: Event | tuple[int, int]) -> bool:
        """The paper's ``a || b``: neither precedes the other, and distinct."""
        pa, pb = self.position(a), self.position(b)
        if pa == pb:
            return False
        return not (self._pred[pb] >> pa & 1) and not (self._pred[pa] >> pb & 1)

    def predecessors(self, e: Event | tuple[int, int]) -> list[Event]:
        """All events strictly causally before ``e``, in execution order."""
        p = self._pred[self.position(e)]
        return [self._events[i] for i in _bits(p)]

    def relevant_events(self) -> list[Event]:
        return [e for e in self._events if e.relevant]

    def relevant_precedes(self, a: Event, b: Event) -> bool:
        """The relevant causality ``a ⊳ b`` = ``≺ ∩ (R × R)`` (Section 2.3)."""
        return a.relevant and b.relevant and self.precedes(a, b)

    def relevant_pairs(self) -> Iterator[tuple[Event, Event, bool]]:
        """Yield ``(a, b, a ⊳ b)`` over all ordered pairs of relevant events."""
        rel = self.relevant_events()
        for a in rel:
            pa = self.position(a)
            for b in rel:
                if a.eid == b.eid:
                    continue
                yield a, b, bool(self._pred[self.position(b)] >> pa & 1)

    # -- requirement oracles (Section 3, Requirements for A) -------------------

    def count_relevant_preceding(
        self, j: int, e: Event, inclusive: bool
    ) -> int:
        """Number of relevant events of thread ``j`` that causally precede
        ``e`` — requirement (a)'s right-hand side.  With ``inclusive`` and
        ``e.thread == j``, ``e`` itself is counted when relevant."""
        p = self.position(e)
        mask = self._pred[p]
        n = sum(
            1
            for i in _bits(mask)
            if self._events[i].thread == j and self._events[i].relevant
        )
        if inclusive and e.thread == j and e.relevant:
            n += 1
        return n

    def last_access_position(self, x: VarName, upto: int, write_only: bool) -> Optional[int]:
        """Position of the most recent (<= upto) access/write of ``x``."""
        for i in range(upto, -1, -1):
            e = self._events[i]
            if e.kind.is_access and e.var == x:
                if not write_only or e.kind.is_write:
                    return i
        return None

    # -- linearizations ---------------------------------------------------------

    def is_consistent_run(self, order: Sequence[Event]) -> bool:
        """Is ``order`` a permutation of all events consistent with ``≺``?

        (The paper's *consistent multithreaded run*, Section 2.2.)
        """
        if len(order) != len(self._events):
            return False
        seen = 0
        for e in order:
            pos = self._index.get(e.eid if isinstance(e, Event) else e)
            if pos is None or (seen >> pos & 1):
                return False
            if self._pred[pos] & ~seen:
                return False  # some predecessor not yet placed
            seen |= 1 << pos
        return True

    def count_linearizations(self, limit: int = 10_000_000) -> int:
        """Number of consistent runs (linear extensions of ``≺``).

        Exponential in general; memoized over downsets.  ``limit`` aborts
        runaway counts in tests.
        """
        events = self._events
        n = len(events)
        preds = self._pred
        full = (1 << n) - 1
        from functools import lru_cache

        @lru_cache(maxsize=None)
        def count(downset: int) -> int:
            if downset == full:
                return 1
            total = 0
            for i in range(n):
                if downset >> i & 1:
                    continue
                if preds[i] & ~downset:
                    continue
                total += count(downset | (1 << i))
                if total > limit:
                    raise OverflowError("linearization count exceeds limit")
            return total

        return count(0)


def _bits(mask: int) -> Iterator[int]:
    """Indices of set bits, ascending."""
    i = 0
    while mask:
        if mask & 1:
            yield i
        mask >>= 1
        i += 1


def execution_from_specs(
    specs: Iterable[tuple[int, str, Optional[VarName]] | tuple[int, str, Optional[VarName], object]],
    relevant_vars: Optional[Iterable[VarName]] = None,
    relevance: str = "writes",
) -> list[Event]:
    """Build an execution from compact tuples — test/benchmark convenience.

    Each spec is ``(thread, kind, var)`` or ``(thread, kind, var, value)``
    with ``kind`` in ``{"r", "w", "i"}``.  Relevance mirrors JMPaX's rule:
    ``"writes"`` marks writes of ``relevant_vars`` (all vars when ``None``),
    ``"accesses"`` marks reads too, ``"none"`` marks nothing.
    """
    rel_vars = None if relevant_vars is None else frozenset(relevant_vars)
    kinds = {"r": EventKind.READ, "w": EventKind.WRITE, "i": EventKind.INTERNAL}
    counts: dict[int, int] = {}
    out: list[Event] = []
    for spec in specs:
        thread, kind_s, var = spec[0], spec[1], spec[2]
        value = spec[3] if len(spec) > 3 else None
        kind = kinds[kind_s]
        counts[thread] = counts.get(thread, 0) + 1
        var_ok = kind.is_access and (rel_vars is None or var in rel_vars)
        if relevance == "writes":
            is_rel = kind.is_write and var_ok
        elif relevance == "accesses":
            is_rel = var_ok
        elif relevance == "none":
            is_rel = False
        else:
            raise ValueError(f"unknown relevance rule {relevance!r}")
        out.append(
            Event(
                thread=thread,
                seq=counts[thread],
                kind=kind,
                var=var if kind.is_access else None,
                value=value,
                relevant=is_rel,
            )
        )
    return out
