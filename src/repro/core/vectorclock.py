"""Multithreaded vector clocks (MVCs).

The paper (Section 3) associates an ``n``-dimensional vector of natural
numbers with every thread (``V_i``) and two such vectors with every shared
variable (the *access* MVC ``V^a_x`` and the *write* MVC ``V^w_x``).
``V[j]`` is the number of relevant events of thread ``t_j`` known to the
clock's owner.

Two representations are provided, selected by profiling (see
``benchmarks/bench_overhead.py``):

* :class:`VectorClock` — an immutable, hashable, tuple-backed clock.  This is
  the observer-side representation: clocks received in messages are stored in
  lattice nodes, used as dict keys, and compared pairwise.  For the thread
  counts this system targets (n <= 64) plain Python tuples beat numpy arrays
  on both comparison and join, because the per-call numpy dispatch overhead
  dominates at such tiny widths.

* :class:`MutableVectorClock` — a mutable list-backed clock used *inside*
  Algorithm A, where clocks are updated in place on every event and
  snapshotting must be cheap.

* :class:`ClockArena` — a numpy ``(m, n)`` matrix of ``m`` clocks for bulk
  observer-side queries (e.g. "which of these 10k events causally precede
  e?").  This is where vectorization pays off; see
  ``repro.core.causality.CausalityIndex``.

All orderings follow the paper's definitions: ``V <= V'`` iff
``V[j] <= V'[j]`` for all ``j``; ``V < V'`` iff ``V <= V'`` and they differ;
``join`` is the componentwise max.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "VectorClock",
    "MutableVectorClock",
    "ClockArena",
    "leq",
    "lt",
    "concurrent",
    "join",
    "CLOCK_BACKENDS",
    "resolve_clock_backend",
    "make_thread_clock",
    "make_var_clock",
]


def leq(a: Sequence[int], b: Sequence[int]) -> bool:
    """Componentwise ``a <= b`` for two equal-width clock-like sequences."""
    if len(a) != len(b):
        raise ValueError(f"clock width mismatch: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b))


def lt(a: Sequence[int], b: Sequence[int]) -> bool:
    """Strict clock order: ``a <= b`` and ``a != b``."""
    if len(a) != len(b):
        raise ValueError(f"clock width mismatch: {len(a)} vs {len(b)}")
    strict = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            strict = True
    return strict


def concurrent(a: Sequence[int], b: Sequence[int]) -> bool:
    """Neither ``a <= b`` nor ``b <= a`` (the paper's ``e || e'``)."""
    return not leq(a, b) and not leq(b, a)


def join(a: Sequence[int], b: Sequence[int]) -> tuple[int, ...]:
    """Componentwise maximum, the paper's ``max{V, V'}``."""
    if len(a) != len(b):
        raise ValueError(f"clock width mismatch: {len(a)} vs {len(b)}")
    return tuple(x if x >= y else y for x, y in zip(a, b))


class VectorClock:
    """An immutable multithreaded vector clock.

    Instances are hashable and totally safe to share across data structures;
    all "mutating" operations return new clocks.

    >>> a = VectorClock((1, 0)); b = VectorClock((1, 1))
    >>> a <= b, a < b, a.concurrent(b)
    (True, True, False)
    >>> (a.join(b)).components
    (1, 1)
    """

    __slots__ = ("_c",)

    def __init__(self, components: Iterable[int]):
        c = tuple(int(x) for x in components)
        if any(x < 0 for x in c):
            raise ValueError(f"negative clock component in {c}")
        self._c = c

    # -- construction ------------------------------------------------------

    @classmethod
    def _from_trusted(cls, components: tuple[int, ...]) -> "VectorClock":
        """Wrap an already-validated tuple without re-checking it.

        ``MutableVectorClock.snapshot``/``TreeClock.snapshot`` call this on
        every emitted message; the public constructor's per-component
        validation was ~28% of Algorithm A's event cost (bench_treeclock).
        Internal use only — callers guarantee a tuple of non-negative ints.
        """
        vc = cls.__new__(cls)
        vc._c = components
        return vc

    @classmethod
    def zero(cls, width: int) -> "VectorClock":
        """The all-zero clock of the given width (initial MVC value)."""
        if width <= 0:
            raise ValueError(f"clock width must be positive, got {width}")
        return cls((0,) * width)

    @classmethod
    def unit(cls, width: int, index: int) -> "VectorClock":
        """Zero clock with a single 1 at ``index`` (first event of a thread)."""
        z = [0] * width
        z[index] = 1
        return cls(z)

    # -- basic protocol ----------------------------------------------------

    @property
    def components(self) -> tuple[int, ...]:
        return self._c

    @property
    def width(self) -> int:
        return len(self._c)

    def __len__(self) -> int:
        return len(self._c)

    def __iter__(self) -> Iterator[int]:
        return iter(self._c)

    def __getitem__(self, j: int) -> int:
        return self._c[j]

    def __hash__(self) -> int:
        return hash(self._c)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VectorClock):
            return self._c == other._c
        if isinstance(other, tuple):
            return self._c == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"VC{self._c}"

    # -- ordering ----------------------------------------------------------

    def __le__(self, other: "VectorClock") -> bool:
        return leq(self._c, other._c)

    def __lt__(self, other: "VectorClock") -> bool:
        return lt(self._c, other._c)

    def __ge__(self, other: "VectorClock") -> bool:
        return leq(other._c, self._c)

    def __gt__(self, other: "VectorClock") -> bool:
        return lt(other._c, self._c)

    def concurrent(self, other: "VectorClock") -> bool:
        """The paper's ``V || V'``: incomparable under the clock order."""
        return concurrent(self._c, other._c)

    # -- lattice operations -------------------------------------------------

    def join(self, other: "VectorClock") -> "VectorClock":
        return VectorClock(join(self._c, other._c))

    def meet(self, other: "VectorClock") -> "VectorClock":
        """Componentwise minimum (dual of join; used by lattice GC)."""
        if len(self._c) != len(other._c):
            raise ValueError("clock width mismatch")
        return VectorClock(tuple(min(x, y) for x, y in zip(self._c, other._c)))

    def incremented(self, index: int) -> "VectorClock":
        """A copy with component ``index`` bumped by one."""
        c = list(self._c)
        c[index] += 1
        return VectorClock(c)

    def sum(self) -> int:
        """Total relevant events known to this clock (lattice level number)."""
        return sum(self._c)

    def to_numpy(self) -> np.ndarray:
        return np.asarray(self._c, dtype=np.int64)


class MutableVectorClock:
    """A mutable list-backed clock for the hot path of Algorithm A.

    Algorithm A updates ``V_i``, ``V^a_x`` and ``V^w_x`` in place on every
    event; allocating an immutable clock per update would double the
    per-event cost (measured in ``bench_overhead.py``).  :meth:`snapshot`
    freezes the current value into a :class:`VectorClock` for emission in a
    message.
    """

    __slots__ = ("_c",)

    def __init__(self, width_or_components: int | Iterable[int]):
        if isinstance(width_or_components, int):
            if width_or_components <= 0:
                raise ValueError("clock width must be positive")
            self._c = [0] * width_or_components
        else:
            self._c = [int(x) for x in width_or_components]
            if any(x < 0 for x in self._c):
                raise ValueError("negative clock component")

    @property
    def width(self) -> int:
        return len(self._c)

    def __len__(self) -> int:
        return len(self._c)

    def __getitem__(self, j: int) -> int:
        return self._c[j]

    def __setitem__(self, j: int, v: int) -> None:
        if v < 0:
            raise ValueError("negative clock component")
        self._c[j] = v

    def __iter__(self) -> Iterator[int]:
        return iter(self._c)

    def __repr__(self) -> str:
        return f"MVC{tuple(self._c)}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MutableVectorClock):
            return self._c == other._c
        if isinstance(other, VectorClock):
            return tuple(self._c) == other.components
        return NotImplemented

    def increment(self, index: int) -> None:
        """``V[index] += 1`` — step 1 of Algorithm A for relevant events."""
        self._c[index] += 1

    def merge(self, other: "MutableVectorClock | VectorClock | Sequence[int]") -> None:
        """In-place join: ``V <- max{V, other}`` (steps 2 and 3)."""
        c = self._c
        if len(c) != len(other):
            raise ValueError("clock width mismatch")
        for j, v in enumerate(other):
            if v > c[j]:
                c[j] = v

    def copy_from(self, other: "MutableVectorClock | VectorClock | Sequence[int]") -> None:
        """In-place assignment ``V <- other`` (the chained writes in step 3)."""
        if len(self._c) != len(other):
            raise ValueError("clock width mismatch")
        self._c[:] = list(other)

    def snapshot(self) -> VectorClock:
        """Freeze the current value for inclusion in a message."""
        return VectorClock._from_trusted(tuple(self._c))

    def grow(self, new_width: int) -> None:
        """Extend with zero components (dynamic thread creation support)."""
        if new_width < len(self._c):
            raise ValueError("clocks cannot shrink")
        self._c.extend([0] * (new_width - len(self._c)))


class ClockArena:
    """A bulk store of clocks as a numpy ``(capacity, width)`` int64 matrix.

    Observer-side analyses compare one clock against *many* (e.g. finding all
    events that causally precede a given one, or counting concurrent pairs
    for race detection).  Doing this row-by-row in Python is O(m·n) interpreter
    work; a single vectorized comparison is one C pass.  The arena amortizes
    allocation by doubling capacity.

    >>> arena = ClockArena(width=2)
    >>> i = arena.append((1, 0)); j = arena.append((1, 1)); k = arena.append((2, 0))
    >>> list(arena.all_leq((1, 1)))
    [True, True, False]
    """

    def __init__(self, width: int, capacity: int = 64):
        if width <= 0:
            raise ValueError("clock width must be positive")
        self._width = width
        self._data = np.zeros((max(capacity, 1), width), dtype=np.int64)
        self._size = 0

    @property
    def width(self) -> int:
        return self._width

    def __len__(self) -> int:
        return self._size

    def append(self, clock: Sequence[int]) -> int:
        """Store a clock; returns its row index."""
        if len(clock) != self._width:
            raise ValueError("clock width mismatch")
        if self._size == self._data.shape[0]:
            self._data = np.vstack([self._data, np.zeros_like(self._data)])
        row = self._size
        if isinstance(clock, VectorClock):
            self._data[row, :] = clock.components
        else:
            self._data[row, :] = list(clock)
        self._size += 1
        return row

    def get(self, row: int) -> VectorClock:
        if not 0 <= row < self._size:
            raise IndexError(row)
        return VectorClock(self._data[row])

    def view(self) -> np.ndarray:
        """Read-only numpy view of the live rows (no copy)."""
        v = self._data[: self._size]
        v.flags.writeable = False
        return v

    def all_leq(self, clock: Sequence[int]) -> np.ndarray:
        """Boolean mask: rows ``r`` with ``arena[r] <= clock`` componentwise."""
        c = np.asarray(
            clock.components if isinstance(clock, VectorClock) else list(clock),
            dtype=np.int64,
        )
        return (self._data[: self._size] <= c).all(axis=1)

    def all_geq(self, clock: Sequence[int]) -> np.ndarray:
        """Boolean mask: rows ``r`` with ``arena[r] >= clock`` componentwise."""
        c = np.asarray(
            clock.components if isinstance(clock, VectorClock) else list(clock),
            dtype=np.int64,
        )
        return (self._data[: self._size] >= c).all(axis=1)

    def extend(self, clocks: Sequence[Sequence[int]]) -> int:
        """Bulk :meth:`append`; returns the row index of the first clock.

        One capacity check and one numpy assignment for the whole batch —
        the batched observer path (``Observer.receive_batch``) uses this to
        amortize the per-row dispatch cost of :meth:`append`.
        """
        k = len(clocks)
        if k == 0:
            return self._size
        for c in clocks:
            if len(c) != self._width:
                raise ValueError("clock width mismatch")
        while self._size + k > self._data.shape[0]:
            self._data = np.vstack([self._data, np.zeros_like(self._data)])
        first = self._size
        self._data[first : first + k, :] = [
            c.components if isinstance(c, VectorClock) else list(c)
            for c in clocks
        ]
        self._size += k
        return first

    def pairwise_leq(self) -> np.ndarray:
        """Full ``(m, m)`` boolean matrix ``L[a, b] = (arena[a] <= arena[b])``.

        One broadcasted comparison; O(m^2 n) in C.  Used by the causality
        index and by race detection to find concurrent pairs.
        """
        live = self._data[: self._size]
        return (live[:, None, :] <= live[None, :, :]).all(axis=2)


# -- clock backend seam --------------------------------------------------------
#
# Algorithm A's in-place clocks come in two flavours behind one seam:
#
# * ``"flat"`` — :class:`MutableVectorClock`; O(n) joins, lowest constant
#   factor.  Best at small thread counts.
# * ``"tree"`` — :class:`repro.core.treeclock.TreeClock`; joins touch only
#   the changed subtree (O(1) when nothing transferred).  Wins as the
#   thread count grows; see ``BENCH_treeclock.json`` for the crossover.
# * ``"auto"`` — flat below :data:`AUTO_TREE_THRESHOLD` threads, tree at or
#   above it (threshold picked from the measured crossover).
#
# Only the *process-local* clocks are backend-specific: messages always
# carry immutable :class:`VectorClock` snapshots, so the observer, wire
# format and archive are unaffected by the choice.

CLOCK_BACKENDS = ("flat", "tree", "auto")

#: Thread count at which ``"auto"`` switches from flat to tree clocks
#: (measured flat-vs-tree crossover, benchmarks/bench_treeclock.py).
AUTO_TREE_THRESHOLD = 16


def resolve_clock_backend(backend: str, n_threads: int) -> str:
    """Normalize a backend name to ``"flat"`` or ``"tree"``."""
    if backend == "auto":
        return "tree" if n_threads >= AUTO_TREE_THRESHOLD else "flat"
    if backend not in ("flat", "tree"):
        raise ValueError(
            f"unknown clock backend {backend!r}; choose one of {CLOCK_BACKENDS}"
        )
    return backend


def make_thread_clock(backend: str, width: int, owner: int):
    """A thread clock ``V_i`` for the resolved ``backend`` (rooted at its
    owning thread for the tree backend)."""
    if backend == "tree":
        from .treeclock import TreeClock

        return TreeClock(width, root=owner)
    return MutableVectorClock(width)


def make_var_clock(backend: str, width: int):
    """A variable clock ``V^a_x``/``V^w_x`` (rootless for the tree
    backend: variables have no events of their own)."""
    if backend == "tree":
        from .treeclock import TreeClock

        return TreeClock(width)
    return MutableVectorClock(width)
