"""Core of the reproduction: MVCs, Algorithm A, and causality.

This package contains the paper's primary contribution:

* :mod:`repro.core.vectorclock` — multithreaded vector clock datatypes;
* :mod:`repro.core.events` — events and observer messages ``⟨e, i, V⟩``;
* :mod:`repro.core.algorithm_a` — the Fig. 2 instrumentation algorithm;
* :mod:`repro.core.computation` — ground-truth ``≺`` per Section 2.2
  (the oracle for Theorem 3);
* :mod:`repro.core.causality` — observer-side ``⊳`` reconstruction.
"""

from .algorithm_a import AlgorithmA, all_accesses, relevant_writes
from .causality import CausalityIndex, hasse_reduction, is_linear_extension
from .computation import Computation, execution_from_specs
from .distributed import DistributedInterpretation
from .events import Envelope, Event, EventKind, Message
from .vectorclock import ClockArena, MutableVectorClock, VectorClock

__all__ = [
    "AlgorithmA",
    "all_accesses",
    "relevant_writes",
    "CausalityIndex",
    "hasse_reduction",
    "is_linear_extension",
    "Computation",
    "execution_from_specs",
    "DistributedInterpretation",
    "Envelope",
    "Event",
    "EventKind",
    "Message",
    "ClockArena",
    "MutableVectorClock",
    "VectorClock",
]
