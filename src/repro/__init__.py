"""repro — MultiPathExplorer: predictive runtime analysis of multithreaded
programs via multithreaded vector clocks.

A from-scratch Python reproduction of

    Grigore Roşu and Koushik Sen,
    "An Instrumentation Technique for Online Analysis of Multithreaded
    Programs", PADTAD workshop at IPDPS 2004,

including the MVC instrumentation algorithm (Algorithm A), the computation
lattice, past-time-LTL monitor synthesis, and the JMPaX-style predictive
analyzer, plus the substrates needed to run it all reproducibly
(deterministic scheduler, reordering channels, real-thread backend).

Quickstart::

    from repro import run_program, FixedScheduler, predict
    from repro.workloads import (landing_controller,
                                 LANDING_OBSERVED_SCHEDULE, LANDING_PROPERTY)

    execution = run_program(landing_controller(),
                            FixedScheduler(LANDING_OBSERVED_SCHEDULE))
    report = predict(execution, LANDING_PROPERTY)
    assert report.observed_ok and report.violations   # bug predicted!

See ``examples/`` for full walk-throughs and ``DESIGN.md`` for the system
inventory and paper-experiment index.
"""

from .analysis import (
    AnalysisReport,
    DetectionResult,
    ModelCheckResult,
    OnlinePredictor,
    PredictionReport,
    Race,
    analyze,
    definitely,
    detect,
    find_atomicity_violations,
    find_potential_deadlocks,
    find_races,
    find_races_from_messages,
    model_check,
    possibly,
    predict,
    predict_liveness_violations,
    predict_many,
    prediction_coverage,
)
from .core import (
    AlgorithmA,
    CausalityIndex,
    Computation,
    Event,
    EventKind,
    Message,
    MutableVectorClock,
    VectorClock,
    all_accesses,
    relevant_writes,
)
from .instrument import (
    InstrumentedRuntime,
    SharedArray,
    SharedStruct,
    SharedVar,
    instrument_function,
    run_threads,
    to_execution_result,
)
from .lattice import ComputationLattice, LevelByLevelBuilder, Run, Violation
from .logic import Monitor, evaluate_lasso, evaluate_trace, parse
from .lang import compile_source
from .observer import (
    CausalDelivery,
    FifoChannel,
    MultiChannel,
    Observer,
    ReorderingChannel,
    read_trace,
    write_trace,
)
from .sched import (
    DeadlockError,
    ExecutionResult,
    FixedScheduler,
    PCTScheduler,
    Program,
    RandomScheduler,
    RoundRobinScheduler,
    explore_all,
    run_program,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisReport",
    "ModelCheckResult",
    "analyze",
    "definitely",
    "find_atomicity_violations",
    "find_potential_deadlocks",
    "model_check",
    "possibly",
    "predict_many",
    "prediction_coverage",
    "compile_source",
    "CausalDelivery",
    "read_trace",
    "write_trace",
    "PCTScheduler",
    "DetectionResult",
    "OnlinePredictor",
    "PredictionReport",
    "Race",
    "detect",
    "find_races",
    "find_races_from_messages",
    "predict",
    "predict_liveness_violations",
    "AlgorithmA",
    "CausalityIndex",
    "Computation",
    "Event",
    "EventKind",
    "Message",
    "MutableVectorClock",
    "VectorClock",
    "all_accesses",
    "relevant_writes",
    "InstrumentedRuntime",
    "SharedArray",
    "SharedStruct",
    "SharedVar",
    "instrument_function",
    "run_threads",
    "to_execution_result",
    "ComputationLattice",
    "LevelByLevelBuilder",
    "Run",
    "Violation",
    "Monitor",
    "evaluate_lasso",
    "evaluate_trace",
    "parse",
    "FifoChannel",
    "MultiChannel",
    "Observer",
    "ReorderingChannel",
    "DeadlockError",
    "ExecutionResult",
    "FixedScheduler",
    "Program",
    "RandomScheduler",
    "RoundRobinScheduler",
    "explore_all",
    "run_program",
    "__version__",
]
