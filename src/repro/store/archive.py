"""The trace archive: a durable, append-only store of analyzed sessions.

Layout on disk::

    <root>/
      catalog.json          # the index (repro.store.catalog)
      traces/
        s000001-xyz.rpt     # v2 segment files, one per committed session
        s000002-bank.rpt.part   # in-flight writer (never cataloged)

Writing is two-phase so the catalog only ever names complete traces:

1. :meth:`TraceArchive.begin` allocates an id and opens a
   :class:`PendingTrace` streaming into ``<id>.rpt.part``;
2. the pipeline calls :meth:`PendingTrace.write` per analyzed message
   (tracking the final per-thread vector clocks as it goes);
3. :meth:`PendingTrace.commit` seals the segment file, renames it to its
   final name, and publishes the catalog entry — or :meth:`PendingTrace.abort`
   deletes the partial file, leaving no trace of a failed session.

All catalog mutation is serialized behind one archive-wide lock; the
analysis server commits from its worker threads concurrently.
"""

from __future__ import annotations

import os
import re
import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

from ..core.events import Message, VarName
from ..obs import metrics as _metrics
from ..observer.trace import TraceFormatError
from .catalog import (
    VERDICT_CLEAN,
    VERDICT_VIOLATION,
    Catalog,
    CatalogEntry,
    CatalogError,
    CatalogQuery,
)
from .format import FORMAT_VERSION, SegmentWriter, read_trace_meta

__all__ = ["TraceArchive", "PendingTrace", "CatalogRebuildReport"]

_C_COMMITTED = _metrics.REGISTRY.counter(
    "store.traces_committed", unit="traces",
    help="sessions committed to the archive (catalog entries created)")
_C_ABORTED = _metrics.REGISTRY.counter(
    "store.traces_aborted", unit="traces",
    help="in-flight archive writes abandoned (failed sessions)")
_C_GCED = _metrics.REGISTRY.counter(
    "store.traces_gced", unit="traces",
    help="archived traces removed by retention GC")
_C_REBUILT = _metrics.REGISTRY.counter(
    "store.catalog_rebuilds", unit="rebuilds",
    help="corrupt catalog.json files quarantined and rebuilt from trace "
         "footers on archive open")

# Trace-id sequence extractor; tolerates an optional shard namespace
# prefix (``sh00-s000001-xyz``) in front of the classic ``s000001-xyz``.
_ID_SEQ = re.compile(r"^(?:[A-Za-z0-9_]+-)??s(\d{6})-")


class PendingTrace:
    """An in-flight archive write: a session being recorded.

    Mirrors the Algorithm A sink shape (``write(msg)``), accumulates the
    final per-thread vector clocks, and resolves to exactly one of
    :meth:`commit` (trace published, catalog entry returned) or
    :meth:`abort` (partial file removed).  Both are idempotent and
    thread-safe — the server may race a worker's commit against a reader
    thread's teardown.
    """

    def __init__(self, archive: "TraceArchive", trace_id: str,
                 n_threads: int, initial: Mapping[VarName, Any],
                 program: str, spec: Optional[str]):
        self.archive = archive
        self.id = trace_id
        self.program = program
        self.spec = spec
        self.n_threads = n_threads
        self._final_clocks: list[tuple[int, ...]] = [
            (0,) * n_threads for _ in range(n_threads)]
        self._part_path = archive.traces_dir / f"{trace_id}.rpt.part"
        self._final_path = archive.traces_dir / f"{trace_id}.rpt"
        self._writer: Optional[SegmentWriter] = SegmentWriter(
            self._part_path, n_threads, initial, program=program,
            events_per_segment=archive.events_per_segment)
        self._lock = threading.Lock()
        self._resolved = False

    @property
    def count(self) -> int:
        w = self._writer
        return w.count if w is not None else 0

    def write(self, msg: Message) -> None:
        """Append one analyzed message (not thread-safe against itself:
        exactly one writer thread, the session's worker, calls this)."""
        w = self._writer
        if w is None:
            raise RuntimeError(f"pending trace {self.id} already resolved")
        w.write(msg)
        self._final_clocks[msg.thread] = tuple(msg.clock)

    @property
    def final_clocks(self) -> tuple[tuple[int, ...], ...]:
        """Final MVC per thread: the clock of each thread's last archived
        message (all-zeros for silent threads)."""
        return tuple(self._final_clocks)

    def commit(self, counterexamples: list[str], sound: bool,
               wall_time_s: float,
               engines: Optional[list] = None) -> Optional[CatalogEntry]:
        """Seal the trace and publish its catalog entry.

        ``engines`` is the per-engine attribution — a list of
        :class:`~repro.engines.base.EngineVerdict` (or anything with
        ``engine``/``version``/``spec``/``qualified``), in verdict order;
        the first engine is the primary one named in the catalog.  Without
        it the entry is attributed to the classic pipeline (``ltl`` when a
        spec was given, ``none`` otherwise).

        Returns ``None`` when the trace was already resolved (a concurrent
        abort won the race)."""
        with self._lock:
            if self._resolved:
                return None
            self._resolved = True
            writer, self._writer = self._writer, None
        if engines:
            primary = engines[0]
            engine, engine_version = primary.engine, primary.version
            engine_spec = primary.spec
            qualified = [v.qualified for v in engines]
            engine_specs = [v.spec for v in engines]
        else:
            engine = "ltl" if self.spec else "none"
            engine_version = "1"
            engine_spec = self.spec
            qualified = [f"{engine}@{engine_version}"] if self.spec else []
            engine_specs = [self.spec] if self.spec else []
        # the verdict is embedded in the footer too, so a lost catalog.json
        # can be rebuilt from the trace files alone (file size and path are
        # recomputable from the file itself and deliberately omitted)
        extras = {
            "program": self.program,
            "spec": self.spec,
            "n_threads": self.n_threads,
            "verdict": VERDICT_VIOLATION if counterexamples else VERDICT_CLEAN,
            "violations": len(counterexamples),
            "counterexamples": list(counterexamples),
            "final_clocks": [list(c) for c in self.final_clocks],
            "sound": sound,
            "wall_time_s": round(wall_time_s, 6),
            "created_at": time.time(),
            "engine": engine,
            "engine_version": engine_version,
            "engines": qualified,
            "engine_spec": engine_spec,
            "engine_specs": engine_specs,
        }
        writer.close(extra=extras)
        os.replace(self._part_path, self._final_path)
        entry = CatalogEntry(
            id=self.id,
            program=self.program,
            spec=self.spec,
            n_threads=self.n_threads,
            events=writer.count,
            verdict=extras["verdict"],
            violations=len(counterexamples),
            counterexamples=tuple(counterexamples),
            final_clocks=self.final_clocks,
            sound=sound,
            wall_time_s=extras["wall_time_s"],
            created_at=extras["created_at"],
            bytes=self._final_path.stat().st_size,
            path=str(self._final_path.relative_to(self.archive.root)),
            format=FORMAT_VERSION,
            engine=engine,
            engine_version=engine_version,
            engines=tuple(qualified),
            engine_spec=engine_spec,
            engine_specs=tuple(engine_specs),
        )
        self.archive._publish(entry)
        if _metrics.ENABLED:
            _C_COMMITTED.inc()
        return entry

    def abort(self) -> None:
        """Drop the partial file; no catalog entry is ever created."""
        with self._lock:
            if self._resolved:
                return
            self._resolved = True
            writer, self._writer = self._writer, None
        if writer is not None:
            writer.abort()
        if _metrics.ENABLED:
            _C_ABORTED.inc()


@dataclass
class CatalogRebuildReport:
    """What happened when a corrupt ``catalog.json`` was rebuilt."""

    #: Where the damaged document was moved (never deleted).
    quarantined_to: str
    #: Entries reconstructed from trace footers.
    rebuilt: int = 0
    #: ``(filename, reason)`` for traces that could not be re-indexed
    #: (sealed by a pre-footer-extras writer, or damaged).
    skipped: list[tuple[str, str]] = field(default_factory=list)


class TraceArchive:
    """A directory of archived traces plus their catalog.

    Args:
        root: archive directory; created (with ``traces/``) if absent.
        events_per_segment: segment granularity handed to the v2 writer.
        namespace: prefix for every allocated trace id (e.g. ``sh00`` →
            ``sh00-s000001-xyz``).  A fleet gives each shard's archive
            directory its own namespace so the per-shard catalogs share
            one fleet-wide id space and query results never collide.

    Thread-safe: catalog reads and mutations are serialized behind one
    lock, and every mutation persists the catalog atomically before
    returning.

    A truncated or otherwise unreadable ``catalog.json`` does not prevent
    the archive from opening: the damaged document is *quarantined*
    (renamed alongside, never deleted) and the catalog is rebuilt from the
    verdicts embedded in each sealed trace's footer —
    :attr:`last_rebuild` reports what was recovered and what had to be
    skipped.
    """

    CATALOG_NAME = "catalog.json"

    def __init__(self, root: str | Path, events_per_segment: int = 512,
                 namespace: str = ""):
        self.root = Path(root)
        self.traces_dir = self.root / "traces"
        self.traces_dir.mkdir(parents=True, exist_ok=True)
        self.events_per_segment = events_per_segment
        self.namespace = namespace
        self._lock = threading.RLock()
        #: Set when this open had to quarantine and rebuild the catalog.
        self.last_rebuild: Optional[CatalogRebuildReport] = None
        try:
            self._catalog = Catalog.load(self.root / self.CATALOG_NAME)
        except CatalogError:
            self._catalog, self.last_rebuild = self._rebuild_catalog()

    # -- catalog recovery -----------------------------------------------------

    def _quarantine_catalog(self) -> Path:
        src = self.root / self.CATALOG_NAME
        dst = self.root / (self.CATALOG_NAME + ".quarantined")
        n = 1
        while dst.exists():
            dst = self.root / (self.CATALOG_NAME + f".quarantined.{n}")
            n += 1
        os.replace(src, dst)
        return dst

    def _rebuild_catalog(self) -> tuple[Catalog, CatalogRebuildReport]:
        """The corrupt-catalog recovery path: move the damaged document
        aside and re-index every sealed trace from its footer verdict."""
        quarantined = self._quarantine_catalog()
        report = CatalogRebuildReport(quarantined_to=str(quarantined))
        catalog = Catalog(self.root / self.CATALOG_NAME)
        max_seq = 0
        for trace_path in sorted(self.traces_dir.glob("*.rpt")):
            trace_id = trace_path.stem
            m = _ID_SEQ.match(trace_id)
            if m:
                max_seq = max(max_seq, int(m.group(1)))
            try:
                meta = read_trace_meta(trace_path)
            except (TraceFormatError, OSError) as exc:
                report.skipped.append((trace_path.name, str(exc)))
                continue
            if meta.catalog is None:
                report.skipped.append(
                    (trace_path.name,
                     "no catalog extras in footer (sealed by an older "
                     "writer); re-import with 'repro archive --import-trace'"))
                continue
            try:
                entry = self._entry_from_footer(trace_id, trace_path, meta)
                catalog.add(entry)
            except (CatalogError, KeyError, TypeError, ValueError) as exc:
                report.skipped.append((trace_path.name, repr(exc)))
                continue
            report.rebuilt += 1
        catalog.next_seq = max_seq + 1
        catalog.save()
        if _metrics.ENABLED:
            _C_REBUILT.inc()
        return catalog, report

    def _entry_from_footer(self, trace_id: str, trace_path: Path,
                           meta) -> CatalogEntry:
        doc = dict(meta.catalog)
        doc.setdefault("program", meta.header.program)
        doc.setdefault("n_threads", meta.header.n_threads)
        doc["id"] = trace_id           # the filename is authoritative
        doc["events"] = meta.events
        doc["bytes"] = trace_path.stat().st_size
        doc["path"] = str(trace_path.relative_to(self.root))
        doc["format"] = FORMAT_VERSION
        return CatalogEntry.from_json(doc)

    # -- recording ------------------------------------------------------------

    def begin(self, program: str, n_threads: int,
              initial: Mapping[VarName, Any],
              spec: Optional[str] = None) -> PendingTrace:
        """Open an in-flight recording (allocates and persists the id)."""
        with self._lock:
            trace_id = self._catalog.allocate_id(program,
                                                 namespace=self.namespace)
            self._catalog.save()   # ids survive a restart mid-recording
        return PendingTrace(self, trace_id, n_threads, initial,
                            program=program, spec=spec)

    def _publish(self, entry: CatalogEntry) -> None:
        with self._lock:
            self._catalog.add(entry)
            self._catalog.save()

    def record_messages(self, program: str, n_threads: int,
                        initial: Mapping[VarName, Any], messages,
                        spec: Optional[str] = None,
                        engines: Optional[list[str]] = None) -> CatalogEntry:
        """Archive a complete message stream in one call.

        Runs the live pipeline (``Observer`` with causal delivery, feeding
        the analysis bus — a single LTL engine when only ``spec`` is given,
        or the selected ``engines``) while streaming the messages into
        a pending trace, then commits with the resulting verdict — the
        ``repro archive`` CLI path.  ``messages`` may be any iterable,
        including a lazy :func:`~repro.observer.trace.iter_trace` stream.
        """
        from ..logic.monitor import Monitor
        from ..observer.observer import Observer

        monitor = Monitor(spec) if spec else None
        observer = Observer(n_threads, initial, spec=monitor,
                            causal_log=True, engines=engines)
        pending = self.begin(program, n_threads, initial, spec=spec)
        t0 = time.perf_counter()
        try:
            for m in messages:
                observer.receive(m)
                pending.write(m)
            observer.finish()
        except BaseException:
            pending.abort()
            raise
        entry = pending.commit(
            observer.counterexamples(),
            observer.health.sound_everywhere,
            time.perf_counter() - t0,
            engines=observer.engine_verdicts())
        assert entry is not None   # nothing else can resolve this pending
        return entry

    def adopt_sealed(self, sealed_path: str | Path,
                     wall_time_s: Optional[float] = None) -> CatalogEntry:
        """Move an externally sealed v2 trace into the archive and publish
        its catalog entry from the verdict embedded in its footer.

        This is how the crash-resilient server promotes a finished
        session's durable journal: the worker seals the journal file
        (footer + catalog extras) in its own process, then the daemon
        adopts it here.  Raises :class:`TraceFormatError` if the file is
        unsealed, :class:`~repro.store.catalog.CatalogError` if its footer
        carries no catalog extras.
        """
        sealed_path = Path(sealed_path)
        meta = read_trace_meta(sealed_path)
        if meta.catalog is None:
            raise CatalogError(
                f"{sealed_path}: footer has no embedded catalog extras; "
                "cannot adopt without a verdict")
        with self._lock:
            trace_id = self._catalog.allocate_id(
                meta.catalog.get("program", meta.header.program),
                namespace=self.namespace)
            self._catalog.save()
        final = self.traces_dir / f"{trace_id}.rpt"
        shutil.move(str(sealed_path), final)
        if wall_time_s is not None:
            meta = TraceArchive._with_wall_time(meta, wall_time_s)
        entry = self._entry_from_footer(trace_id, final, meta)
        self._publish(entry)
        if _metrics.ENABLED:
            _C_COMMITTED.inc()
        return entry

    @staticmethod
    def _with_wall_time(meta, wall_time_s: float):
        doc = dict(meta.catalog)
        doc["wall_time_s"] = round(wall_time_s, 6)
        return type(meta)(header=meta.header, events=meta.events,
                          segments=meta.segments, catalog=doc)

    # -- queries --------------------------------------------------------------

    def entries(self, query: Optional[CatalogQuery] = None
                ) -> list[CatalogEntry]:
        with self._lock:
            return self._catalog.entries(query)

    def get(self, entry_id: str) -> CatalogEntry:
        with self._lock:
            return self._catalog.get(entry_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._catalog)

    def total_bytes(self) -> int:
        with self._lock:
            return self._catalog.total_bytes()

    def path_of(self, entry: CatalogEntry) -> Path:
        return self.root / entry.path

    # -- removal --------------------------------------------------------------

    def remove(self, entry_id: str) -> CatalogEntry:
        """Drop one trace: catalog entry first (persisted), then the file —
        a crash in between leaves an orphan file, never a dangling entry."""
        with self._lock:
            entry = self._catalog.remove(entry_id)
            self._catalog.save()
        try:
            self.path_of(entry).unlink()
        except OSError:
            pass
        if _metrics.ENABLED:
            _C_GCED.inc()
        return entry

    def gc(self, policy, now: Optional[float] = None, dry_run: bool = False):
        """Apply a retention policy; see :func:`repro.store.gc.collect`."""
        from .gc import collect

        return collect(self, policy, now=now, dry_run=dry_run)
