"""The archive catalog: one index record per archived trace.

The catalog is what turns a directory of segment files into a queryable
store: every committed trace gets a :class:`CatalogEntry` carrying the
session identity (program, spec, thread count), the size of the trace
(events, bytes), the **live verdict** (violation count, counterexample
texts, soundness) and the **final per-thread vector clocks** — exactly the
quantities the deterministic replay engine must reproduce bit-for-bit, so
the catalog doubles as the expected-output side of the regression corpus
(``repro replay --all --expect-catalog``).

Persistence is one JSON document (``catalog.json`` at the archive root),
written atomically (temp file + ``os.replace``) so a crash mid-save never
leaves a truncated catalog next to intact trace files.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Optional

__all__ = ["CatalogEntry", "CatalogQuery", "Catalog", "CatalogError"]

_CATALOG_VERSION = 1

#: Catalog verdict strings (`CatalogEntry.verdict`).
VERDICT_VIOLATION = "violation"
VERDICT_CLEAN = "clean"


class CatalogError(ValueError):
    """The catalog file is missing, unparseable, or structurally wrong."""


@dataclass(frozen=True)
class CatalogEntry:
    """One archived trace: identity, size, verdict, replay expectations."""

    id: str
    program: str
    n_threads: int
    events: int
    #: ``"violation"`` or ``"clean"`` (derived from ``violations``).
    verdict: str
    #: Number of violations the live analysis reported.
    violations: int
    #: The live counterexamples, pretty-printed — replay must reproduce
    #: this list exactly (same order, same text).
    counterexamples: tuple[str, ...]
    #: Final MVC of each thread (clock of its last archived message;
    #: all-zeros for a thread that emitted nothing).
    final_clocks: tuple[tuple[int, ...], ...]
    #: Was the live analysis sound everywhere (no loss, no degradation)?
    sound: bool
    #: Wall-clock seconds the live analysis took (replay overhead baseline).
    wall_time_s: float
    #: Unix timestamp the entry was committed (GC's age input).
    created_at: float
    #: Size of the trace file in bytes (GC's size input).
    bytes: int
    #: Trace file path, relative to the archive root.
    path: str
    spec: Optional[str] = None
    #: On-disk trace format version (2 for archive-written traces).
    format: int = 2
    #: Primary analysis engine the verdict came from (``"ltl"`` for every
    #: pre-bus entry with a spec, ``"none"`` for spec-less recordings).
    engine: str = "ltl"
    #: The primary engine's version string.
    engine_version: str = "1"
    #: Every engine that analyzed the stream, as ``name@version``
    #: attribution strings, in verdict order (empty for pre-bus entries).
    engines: tuple[str, ...] = ()
    #: The primary engine's own specification text (the LTL formula, the
    #: pattern string, or a fixed description for spec-less engines).
    engine_spec: Optional[str] = None
    #: Every engine's specification text, parallel to ``engines`` — what
    #: deterministic replay needs to rebuild the exact pipeline
    #: (:func:`repro.store.replay.selections_for_entry`).
    engine_specs: tuple[Optional[str], ...] = ()

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, doc: dict) -> "CatalogEntry":
        try:
            spec = doc.get("spec")
            engine = doc.get("engine") or ("ltl" if spec else "none")
            engine_version = doc.get("engine_version", "1")
            if "engines" in doc:
                engines = tuple(doc["engines"])
            else:   # pre-bus document: attribute the primary engine
                engines = ((f"{engine}@{engine_version}",)
                           if engine != "none" else ())
            return cls(
                id=doc["id"],
                program=doc["program"],
                n_threads=doc["n_threads"],
                events=doc["events"],
                verdict=doc["verdict"],
                violations=doc["violations"],
                counterexamples=tuple(doc["counterexamples"]),
                final_clocks=tuple(tuple(c) for c in doc["final_clocks"]),
                sound=doc["sound"],
                wall_time_s=doc["wall_time_s"],
                created_at=doc["created_at"],
                bytes=doc["bytes"],
                path=doc["path"],
                spec=spec,
                format=doc.get("format", 2),
                engine=engine,
                engine_version=engine_version,
                engines=engines,
                engine_spec=doc.get("engine_spec", spec),
                engine_specs=tuple(doc.get("engine_specs") or ()),
            )
        except (KeyError, TypeError) as exc:
            raise CatalogError(
                f"malformed catalog entry {doc.get('id', '<no id>')!r}: "
                f"{exc!r}") from exc


@dataclass(frozen=True)
class CatalogQuery:
    """Filter over catalog entries — the ``repro query`` predicate.

    All supplied conditions must hold (conjunction); ``None`` means
    "don't care".  ``program`` is an exact match, ``spec_contains`` a
    substring test on the spec text, ``since``/``before`` bound
    ``created_at``.  ``engine`` matches an entry analyzed by that engine:
    a bare name (``"atomicity"``) matches any version, a qualified
    ``"atomicity@1"`` matches exactly.
    """

    program: Optional[str] = None
    spec_contains: Optional[str] = None
    verdict: Optional[str] = None
    engine: Optional[str] = None
    min_events: Optional[int] = None
    max_events: Optional[int] = None
    since: Optional[float] = None
    before: Optional[float] = None

    def __post_init__(self) -> None:
        if self.verdict not in (None, VERDICT_VIOLATION, VERDICT_CLEAN):
            raise ValueError(
                f"verdict filter must be {VERDICT_VIOLATION!r} or "
                f"{VERDICT_CLEAN!r}, got {self.verdict!r}")

    def matches(self, entry: CatalogEntry) -> bool:
        if self.program is not None and entry.program != self.program:
            return False
        if (self.spec_contains is not None
                and self.spec_contains not in (entry.spec or "")):
            return False
        if self.verdict is not None and entry.verdict != self.verdict:
            return False
        if self.engine is not None and not self._engine_matches(entry):
            return False
        if self.min_events is not None and entry.events < self.min_events:
            return False
        if self.max_events is not None and entry.events > self.max_events:
            return False
        if self.since is not None and entry.created_at < self.since:
            return False
        if self.before is not None and entry.created_at >= self.before:
            return False
        return True

    def _engine_matches(self, entry: CatalogEntry) -> bool:
        want = self.engine
        names = set(entry.engines)
        names.add(f"{entry.engine}@{entry.engine_version}")
        if "@" in want:
            return want in names
        return any(q.partition("@")[0] == want for q in names)


class Catalog:
    """The archive's index document, with atomic persistence.

    Not thread-safe by itself — :class:`~repro.store.archive.TraceArchive`
    serializes access behind its own lock.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.next_seq = 1
        self._entries: dict[str, CatalogEntry] = {}

    # -- persistence ----------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "Catalog":
        """Read the catalog document; a missing file is an empty catalog."""
        cat = cls(path)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return cat
        except (OSError, json.JSONDecodeError) as exc:
            raise CatalogError(f"cannot read catalog {path}: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("version") != _CATALOG_VERSION:
            raise CatalogError(
                f"catalog {path}: unsupported document version "
                f"{doc.get('version') if isinstance(doc, dict) else doc!r}")
        cat.next_seq = int(doc.get("next_seq", 1))
        for raw in doc.get("entries", []):
            entry = CatalogEntry.from_json(raw)
            cat._entries[entry.id] = entry
        return cat

    def save(self) -> None:
        """Atomically write the document (temp file + rename)."""
        doc = {
            "version": _CATALOG_VERSION,
            "next_seq": self.next_seq,
            "entries": [e.to_json() for e in self.entries()],
        }
        tmp = self.path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, default=str)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    # -- mutation -------------------------------------------------------------

    def allocate_id(self, program: str, namespace: str = "") -> str:
        """Mint a unique trace id: a monotone sequence number plus the
        program name, e.g. ``s000003-xyz``.  A nonempty ``namespace``
        prefixes the id (``sh00-s000003-xyz``) so several archive
        directories — one per fleet shard — share one id namespace."""
        seq = self.next_seq
        self.next_seq += 1
        safe = "".join(c if c.isalnum() or c in "-_" else "-"
                       for c in program) or "unknown"
        prefix = ""
        if namespace:
            prefix = "".join(c if c.isalnum() or c == "_" else "-"
                             for c in namespace).strip("-") + "-"
        return f"{prefix}s{seq:06d}-{safe}"

    def add(self, entry: CatalogEntry) -> None:
        if entry.id in self._entries:
            raise CatalogError(f"duplicate catalog id {entry.id!r}")
        self._entries[entry.id] = entry

    def remove(self, entry_id: str) -> CatalogEntry:
        try:
            return self._entries.pop(entry_id)
        except KeyError as exc:
            raise CatalogError(f"no catalog entry {entry_id!r}") from exc

    # -- queries --------------------------------------------------------------

    def get(self, entry_id: str) -> CatalogEntry:
        try:
            return self._entries[entry_id]
        except KeyError as exc:
            raise CatalogError(f"no catalog entry {entry_id!r}") from exc

    def entries(
        self, query: Optional[CatalogQuery] = None
    ) -> list[CatalogEntry]:
        """All (matching) entries, oldest first (by creation then id)."""
        out: Iterable[CatalogEntry] = self._entries.values()
        if query is not None:
            out = (e for e in out if query.matches(e))
        return sorted(out, key=lambda e: (e.created_at, e.id))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry_id: str) -> bool:
        return entry_id in self._entries

    def total_bytes(self) -> int:
        return sum(e.bytes for e in self._entries.values())
