"""Deterministic replay: re-run an archived trace through the analyzer.

The message stream *is* the analysis input — Algorithm A's messages carry
the clocks, the values, everything (the paper's observer works "online or
offline" for exactly this reason).  So feeding an archived stream back
through the same pipeline — ``CausalDelivery`` → ``Observer`` →
``OnlinePredictor`` — must reproduce the live verdict **bit-for-bit**:
same violation count, same counterexample texts in the same order, same
final per-thread vector clocks, same soundness claim.  Nothing about the
analysis depends on wall time, thread scheduling, or the machine; only on
the message sequence, and that is what the archive preserved.

That determinism buys two capabilities:

* **audit** — :func:`verify_entry` replays a trace and diffs the result
  against its catalog entry; ``repro replay --all --expect-catalog`` does
  it for the whole archive, turning it into a standing regression corpus
  (any future change to the analyzer that drifts a verdict fails loudly);
* **re-analysis** — :func:`replay_trace` with a *different* ``spec``
  answers "would this recorded run have violated property Q?" without
  re-running the program.

Replay is streaming (built on :func:`~repro.observer.trace.iter_trace`):
peak memory is one segment plus the analyzer's own two lattice levels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from ..core.events import Message
from ..logic.monitor import Monitor
from ..obs import metrics as _metrics
from ..observer.observer import Observer
from ..observer.trace import TraceHeader, iter_trace
from .archive import TraceArchive
from .catalog import CatalogEntry, CatalogQuery

__all__ = ["ReplayResult", "ReplayReport", "replay_trace", "replay_entry",
           "verify_entry", "verify_all", "selections_for_entry"]

_C_REPLAYED = _metrics.REGISTRY.counter(
    "store.events_replayed", unit="messages",
    help="archived messages fed back through the analysis pipeline")
_G_REPLAY_RATE = _metrics.REGISTRY.gauge(
    "store.replay_events_per_sec", unit="messages/s",
    help="throughput of the most recent replay (events / wall seconds)")


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one replay — the same quantities a catalog entry pins."""

    program: str
    spec: Optional[str]
    n_threads: int
    events: int
    violations: int
    counterexamples: tuple[str, ...]
    final_clocks: tuple[tuple[int, ...], ...]
    sound: bool
    elapsed_s: float
    #: Per-engine verdict documents (:meth:`EngineVerdict.to_json` shape),
    #: in engine order; ``violations``/``counterexamples`` above are their
    #: aggregation.
    engines: tuple[dict, ...] = ()

    @property
    def verdict(self) -> str:
        return "violation" if self.violations else "clean"

    @property
    def events_per_sec(self) -> float:
        return self.events / self.elapsed_s if self.elapsed_s > 0 else 0.0


@dataclass
class ReplayReport:
    """Aggregate of a ``replay --all`` sweep over the archive."""

    checked: int = 0
    ok: int = 0
    #: ``entry id -> list of human-readable drift descriptions``.
    drifted: dict[str, list[str]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.drifted

    def summary(self) -> str:
        if self.clean:
            return (f"replayed {self.checked} archived trace(s): "
                    "all verdicts reproduced exactly")
        lines = [f"replayed {self.checked} archived trace(s): "
                 f"{len(self.drifted)} DRIFTED"]
        for entry_id, problems in sorted(self.drifted.items()):
            for p in problems:
                lines.append(f"  {entry_id}: {p}")
        return "\n".join(lines)


def replay_trace(path: str | Path, spec: Optional[str] = None,
                 program: Optional[str] = None,
                 engines: Optional[Sequence[str]] = None) -> ReplayResult:
    """Replay one trace file (v1 or v2) through the full pipeline.

    ``spec=None`` replays without a predictor (clocks and delivery only);
    a spec string re-analyzes the stream against that property.
    ``engines`` selects explicit analysis engines (see
    :mod:`repro.engines`) instead of the spec-implied single LTL engine —
    the differential-replay case.  The observer routes every message
    through its causal-delivery buffer (``causal_log=True``) — the exact
    ingestion path of a live session — and the result carries the final
    per-thread vector clocks, taken from each thread's last message.
    """
    stream = iter_trace(path)
    header = next(stream)
    assert isinstance(header, TraceHeader)
    monitor = Monitor(spec) if spec else None
    observer = Observer(header.n_threads, header.initial, spec=monitor,
                        causal_log=True,
                        engines=list(engines) if engines else None)
    final_clocks = [(0,) * header.n_threads
                    for _ in range(header.n_threads)]
    events = 0
    t0 = time.perf_counter()
    for msg in stream:
        assert isinstance(msg, Message)
        observer.receive(msg)
        final_clocks[msg.thread] = tuple(msg.clock)
        events += 1
    observer.finish()
    elapsed = time.perf_counter() - t0
    if _metrics.ENABLED:
        _C_REPLAYED.inc(events)
        _G_REPLAY_RATE.set(round(events / elapsed, 3) if elapsed > 0 else 0.0)
    verdicts = observer.engine_verdicts()
    counterexamples = tuple(observer.counterexamples())
    return ReplayResult(
        program=program if program is not None else header.program,
        spec=spec,
        n_threads=header.n_threads,
        events=events,
        violations=sum(v.violations for v in verdicts),
        counterexamples=counterexamples,
        final_clocks=tuple(final_clocks),
        sound=observer.health.sound_everywhere,
        elapsed_s=elapsed,
        engines=tuple(v.to_json() for v in verdicts),
    )


def selections_for_entry(entry: CatalogEntry) -> tuple[list[str], list[str]]:
    """Reconstruct the engine selection strings a catalog entry was
    analyzed under, for bit-for-bit reproduction.

    Returns ``(selections, missing)``: ``selections`` are the strings to
    pass back to :func:`replay_trace`, in the entry's verdict order;
    ``missing`` names engines whose selection cannot be rebuilt from the
    catalog (an unknown engine name, or an entry written before per-engine
    spec recording whose non-primary spec text was not retained).
    """
    specs: tuple[Optional[str], ...]
    if len(entry.engine_specs) == len(entry.engines):
        specs = entry.engine_specs
    else:   # entry predates per-engine spec recording: primary only
        specs = tuple(
            entry.spec if q.partition("@")[0] == "ltl"
            else (entry.engine_spec
                  if q.partition("@")[0] == entry.engine else None)
            for q in entry.engines)
    selections: list[str] = []
    missing: list[str] = []
    for qualified, spec_text in zip(entry.engines, specs):
        name = qualified.partition("@")[0]
        if name == "atomicity":
            selections.append("atomicity")
        elif name in ("ltl", "pattern") and spec_text:
            selections.append(f"{name}:{spec_text}")
        else:
            missing.append(qualified)
    return selections, missing


def replay_entry(archive: TraceArchive,
                 entry: Union[CatalogEntry, str],
                 spec: Optional[str] = None,
                 engines: Optional[Sequence[str]] = None) -> ReplayResult:
    """Replay one archived trace.  ``spec=None`` means *the spec it was
    recorded under* (the reproduce case); pass a different spec string to
    re-analyze the same computation against a new property, or ``engines``
    to run an explicit engine pipeline over it."""
    if isinstance(entry, str):
        entry = archive.get(entry)
    effective = entry.spec if spec is None else spec
    return replay_trace(archive.path_of(entry), spec=effective,
                        program=entry.program, engines=engines)


def verify_entry(archive: TraceArchive,
                 entry: Union[CatalogEntry, str],
                 extra_engines: Sequence[str] = ()) -> list[str]:
    """Replay under the recorded engine pipeline and diff against the
    catalog entry.

    Returns a list of human-readable drift descriptions — empty means the
    verdict was reproduced bit-for-bit (count, counterexample texts,
    final clocks, soundness, event count all equal).  ``extra_engines``
    run additional engines alongside the recorded ones (differential
    replay); their findings are reported by the caller via the result, and
    the catalog diff stays restricted to the recorded engines' verdicts.
    """
    if isinstance(entry, str):
        entry = archive.get(entry)
    recorded, missing = selections_for_entry(entry)
    extras = [e for e in extra_engines if e not in recorded]
    if recorded or extras:
        result = replay_entry(archive, entry, engines=recorded + extras)
    else:   # pre-engine entry: the classic spec-implied pipeline
        result = replay_entry(archive, entry)
    problems: list[str] = []
    if result.events != entry.events:
        problems.append(
            f"event count drifted: catalog {entry.events}, "
            f"replay {result.events}")
    if missing:
        problems.append(
            f"cannot reconstruct engine selection(s) {missing} from the "
            "catalog (only the primary engine's spec is recorded); "
            "verdict not reproducible")
    else:
        # the recorded engines come first in the replay pipeline, so their
        # verdicts are the first len(recorded) documents (all of them for
        # a pre-engine entry)
        docs = (result.engines[:len(recorded)] if recorded
                else result.engines)
        violations = sum(d["violations"] for d in docs)
        counterexamples = tuple(
            c for d in docs for c in d["counterexamples"])
        if violations != entry.violations:
            problems.append(
                f"violation count drifted: catalog {entry.violations}, "
                f"replay {violations}")
        if counterexamples != entry.counterexamples:
            problems.append(
                f"counterexamples drifted: catalog "
                f"{list(entry.counterexamples)}, replay "
                f"{list(counterexamples)}")
    if result.final_clocks != entry.final_clocks:
        problems.append(
            f"final vector clocks drifted: catalog "
            f"{[list(c) for c in entry.final_clocks]}, replay "
            f"{[list(c) for c in result.final_clocks]}")
    if result.sound != entry.sound:
        problems.append(
            f"soundness drifted: catalog {entry.sound}, "
            f"replay {result.sound}")
    return problems


def verify_all(archive: TraceArchive,
               query: Optional[CatalogQuery] = None,
               extra_engines: Sequence[str] = ()) -> ReplayReport:
    """The regression corpus: replay every (matching) archived trace and
    collect verdict drift — ``repro replay --all --expect-catalog``."""
    report = ReplayReport()
    for entry in archive.entries(query):
        report.checked += 1
        problems = verify_entry(archive, entry, extra_engines=extra_engines)
        if problems:
            report.drifted[entry.id] = problems
        else:
            report.ok += 1
    return report
