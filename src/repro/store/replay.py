"""Deterministic replay: re-run an archived trace through the analyzer.

The message stream *is* the analysis input — Algorithm A's messages carry
the clocks, the values, everything (the paper's observer works "online or
offline" for exactly this reason).  So feeding an archived stream back
through the same pipeline — ``CausalDelivery`` → ``Observer`` →
``OnlinePredictor`` — must reproduce the live verdict **bit-for-bit**:
same violation count, same counterexample texts in the same order, same
final per-thread vector clocks, same soundness claim.  Nothing about the
analysis depends on wall time, thread scheduling, or the machine; only on
the message sequence, and that is what the archive preserved.

That determinism buys two capabilities:

* **audit** — :func:`verify_entry` replays a trace and diffs the result
  against its catalog entry; ``repro replay --all --expect-catalog`` does
  it for the whole archive, turning it into a standing regression corpus
  (any future change to the analyzer that drifts a verdict fails loudly);
* **re-analysis** — :func:`replay_trace` with a *different* ``spec``
  answers "would this recorded run have violated property Q?" without
  re-running the program.

Replay is streaming (built on :func:`~repro.observer.trace.iter_trace`):
peak memory is one segment plus the analyzer's own two lattice levels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..core.events import Message
from ..logic.monitor import Monitor
from ..obs import metrics as _metrics
from ..observer.observer import Observer
from ..observer.trace import TraceHeader, iter_trace
from .archive import TraceArchive
from .catalog import CatalogEntry, CatalogQuery

__all__ = ["ReplayResult", "ReplayReport", "replay_trace", "replay_entry",
           "verify_entry", "verify_all"]

_C_REPLAYED = _metrics.REGISTRY.counter(
    "store.events_replayed", unit="messages",
    help="archived messages fed back through the analysis pipeline")
_G_REPLAY_RATE = _metrics.REGISTRY.gauge(
    "store.replay_events_per_sec", unit="messages/s",
    help="throughput of the most recent replay (events / wall seconds)")


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one replay — the same quantities a catalog entry pins."""

    program: str
    spec: Optional[str]
    n_threads: int
    events: int
    violations: int
    counterexamples: tuple[str, ...]
    final_clocks: tuple[tuple[int, ...], ...]
    sound: bool
    elapsed_s: float

    @property
    def verdict(self) -> str:
        return "violation" if self.violations else "clean"

    @property
    def events_per_sec(self) -> float:
        return self.events / self.elapsed_s if self.elapsed_s > 0 else 0.0


@dataclass
class ReplayReport:
    """Aggregate of a ``replay --all`` sweep over the archive."""

    checked: int = 0
    ok: int = 0
    #: ``entry id -> list of human-readable drift descriptions``.
    drifted: dict[str, list[str]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.drifted

    def summary(self) -> str:
        if self.clean:
            return (f"replayed {self.checked} archived trace(s): "
                    "all verdicts reproduced exactly")
        lines = [f"replayed {self.checked} archived trace(s): "
                 f"{len(self.drifted)} DRIFTED"]
        for entry_id, problems in sorted(self.drifted.items()):
            for p in problems:
                lines.append(f"  {entry_id}: {p}")
        return "\n".join(lines)


def replay_trace(path: str | Path, spec: Optional[str] = None,
                 program: Optional[str] = None) -> ReplayResult:
    """Replay one trace file (v1 or v2) through the full pipeline.

    ``spec=None`` replays without a predictor (clocks and delivery only);
    a spec string re-analyzes the stream against that property.  The
    observer routes every message through its causal-delivery buffer
    (``causal_log=True``) — the exact ingestion path of a live session —
    and the result carries the final per-thread vector clocks, taken from
    each thread's last message.
    """
    stream = iter_trace(path)
    header = next(stream)
    assert isinstance(header, TraceHeader)
    monitor = Monitor(spec) if spec else None
    observer = Observer(header.n_threads, header.initial, spec=monitor,
                        causal_log=True)
    final_clocks = [(0,) * header.n_threads
                    for _ in range(header.n_threads)]
    events = 0
    t0 = time.perf_counter()
    for msg in stream:
        assert isinstance(msg, Message)
        observer.receive(msg)
        final_clocks[msg.thread] = tuple(msg.clock)
        events += 1
    observer.finish()
    elapsed = time.perf_counter() - t0
    if _metrics.ENABLED:
        _C_REPLAYED.inc(events)
        _G_REPLAY_RATE.set(round(events / elapsed, 3) if elapsed > 0 else 0.0)
    variables = sorted(monitor.variables) if monitor else []
    counterexamples = tuple(v.pretty(variables)
                            for v in observer.violations)
    return ReplayResult(
        program=program if program is not None else header.program,
        spec=spec,
        n_threads=header.n_threads,
        events=events,
        violations=len(counterexamples),
        counterexamples=counterexamples,
        final_clocks=tuple(final_clocks),
        sound=observer.health.sound_everywhere,
        elapsed_s=elapsed,
    )


def replay_entry(archive: TraceArchive,
                 entry: Union[CatalogEntry, str],
                 spec: Optional[str] = None) -> ReplayResult:
    """Replay one archived trace.  ``spec=None`` means *the spec it was
    recorded under* (the reproduce case); pass a different spec string to
    re-analyze the same computation against a new property."""
    if isinstance(entry, str):
        entry = archive.get(entry)
    effective = entry.spec if spec is None else spec
    return replay_trace(archive.path_of(entry), spec=effective,
                        program=entry.program)


def verify_entry(archive: TraceArchive,
                 entry: Union[CatalogEntry, str]) -> list[str]:
    """Replay under the recorded spec and diff against the catalog entry.

    Returns a list of human-readable drift descriptions — empty means the
    verdict was reproduced bit-for-bit (count, counterexample texts,
    final clocks, soundness, event count all equal).
    """
    if isinstance(entry, str):
        entry = archive.get(entry)
    result = replay_entry(archive, entry)
    problems: list[str] = []
    if result.events != entry.events:
        problems.append(
            f"event count drifted: catalog {entry.events}, "
            f"replay {result.events}")
    if result.violations != entry.violations:
        problems.append(
            f"violation count drifted: catalog {entry.violations}, "
            f"replay {result.violations}")
    if result.counterexamples != entry.counterexamples:
        problems.append(
            f"counterexamples drifted: catalog "
            f"{list(entry.counterexamples)}, replay "
            f"{list(result.counterexamples)}")
    if result.final_clocks != entry.final_clocks:
        problems.append(
            f"final vector clocks drifted: catalog "
            f"{[list(c) for c in entry.final_clocks]}, replay "
            f"{[list(c) for c in result.final_clocks]}")
    if result.sound != entry.sound:
        problems.append(
            f"soundness drifted: catalog {entry.sound}, "
            f"replay {result.sound}")
    return problems


def verify_all(archive: TraceArchive,
               query: Optional[CatalogQuery] = None) -> ReplayReport:
    """The regression corpus: replay every (matching) archived trace and
    collect verdict drift — ``repro replay --all --expect-catalog``."""
    report = ReplayReport()
    for entry in archive.entries(query):
        report.checked += 1
        problems = verify_entry(archive, entry)
        if problems:
            report.drifted[entry.id] = problems
        else:
            report.ok += 1
    return report
