"""repro.store — persistent trace archive with deterministic replay.

The paper's observer analyzes a message stream "online or offline"; this
package makes offline a first-class citizen.  An archive is a directory of
**v2 trace files** (binary-framed, CRC-checksummed, gzip-compressed
segments — :mod:`repro.store.format`) plus a **catalog**
(:mod:`repro.store.catalog`) recording, per session: program, spec, thread
count, event count, the live verdict and the final per-thread vector
clocks.  Because the analysis is a deterministic function of the message
stream, :mod:`repro.store.replay` can feed any archived trace back through
``CausalDelivery`` → ``Observer`` → ``OnlinePredictor`` and reproduce the
live verdict bit-for-bit — or re-analyze it under a *different* spec
without re-running the program.  :mod:`repro.store.gc` bounds the archive
by age, size and count.

Entry points:

* :class:`TraceArchive` — ``begin()``/``commit()`` two-phase recording,
  queries, GC; the analysis server drives it via
  ``ServerConfig(archive_dir=...)``;
* :func:`replay_trace` / :func:`replay_entry` — deterministic replay;
* :func:`verify_all` — the standing regression corpus
  (``repro replay --all --expect-catalog``);
* CLI: ``repro archive / replay / query / gc``.

Format spec, catalog schema, retention semantics and the determinism
guarantee are documented in ``docs/STORE.md``.
"""

from .archive import CatalogRebuildReport, PendingTrace, TraceArchive
from .catalog import Catalog, CatalogEntry, CatalogError, CatalogQuery
from .format import (
    FORMAT_VERSION,
    SegmentWriter,
    TraceMeta,
    TracePrefix,
    iter_trace_v2,
    read_trace_meta,
    read_trace_prefix,
    read_trace_v2,
)
from .gc import GCReport, RetentionPolicy
from .replay import (
    ReplayReport,
    ReplayResult,
    replay_entry,
    replay_trace,
    verify_all,
    verify_entry,
)

__all__ = [
    "TraceArchive",
    "PendingTrace",
    "Catalog",
    "CatalogEntry",
    "CatalogError",
    "CatalogQuery",
    "CatalogRebuildReport",
    "FORMAT_VERSION",
    "SegmentWriter",
    "TraceMeta",
    "TracePrefix",
    "iter_trace_v2",
    "read_trace_v2",
    "read_trace_meta",
    "read_trace_prefix",
    "RetentionPolicy",
    "GCReport",
    "ReplayResult",
    "ReplayReport",
    "replay_trace",
    "replay_entry",
    "verify_entry",
    "verify_all",
]
