"""Trace format v2: binary-framed, checksummed, gzip-compressed segments.

The v1 JSONL format (:mod:`repro.observer.trace`) is ideal for eyeballing
a short run but pays for it at archive scale: every message repeats its
field names, nothing detects a flipped bit, and the only corruption signal
is a JSON parse error somewhere downstream.  The archive format fixes all
three while staying append-streamable (the writer emits a segment as soon
as it fills — it never needs the whole trace in memory, and neither does
the reader).

Layout::

    magic            8 bytes   b"RPROTRC2"
    frame*           until EOF

    frame  := type:u8  length:u32le  payload[length]  crc32(payload):u32le

    type 0x01 HEADER   payload = UTF-8 JSON {"version": 2, "n_threads",
                                 "initial", "program"}
    type 0x02 SEGMENT  payload = gzip(UTF-8 newline-joined Message JSON
                                 lines) — up to ``events_per_segment``
                                 messages per segment
    type 0x03 FOOTER   payload = UTF-8 JSON {"events": N, "segments": S}

Integrity guarantees, in reading order:

* a wrong magic is a :class:`TraceFormatError` at offset 0;
* every frame's CRC-32 is verified *before* its payload is parsed or
  decompressed — a flipped bit anywhere in a frame is reported as a
  checksum mismatch at that frame's byte offset, and the payload is never
  trusted;
* truncation (EOF inside a frame) is reported at the byte offset where
  the frame started;
* the FOOTER's event count must match the number of messages actually
  decoded — a trace missing its tail segments fails loudly even when
  every surviving frame is intact;
* a missing FOOTER (writer died before :meth:`SegmentWriter.close`) is
  itself a format error: archives only contain committed traces.

Errors reuse :class:`repro.observer.trace.TraceFormatError`; for this
binary format the error's position field carries the **byte offset** of
the offending frame (the ``problem`` text says so explicitly).
"""

from __future__ import annotations

import gzip
import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterator, Mapping, Optional, Union

from ..core.events import Message, VarName
from ..obs import metrics as _metrics
from ..observer.trace import V2_MAGIC, TraceFormatError, TraceHeader

__all__ = ["FORMAT_VERSION", "MAGIC", "SegmentWriter", "iter_trace_v2",
           "read_trace_v2", "TracePrefix", "read_trace_prefix",
           "TraceMeta", "read_trace_meta"]

FORMAT_VERSION = 2
MAGIC = V2_MAGIC
assert len(MAGIC) == 8

_FT_HEADER = 0x01
_FT_SEGMENT = 0x02
_FT_FOOTER = 0x03
_FRAME_HEAD = struct.Struct("<BI")     # type, payload length
_FRAME_CRC = struct.Struct("<I")

#: Refuse absurd frame lengths up front so a corrupted length field cannot
#: make the reader allocate gigabytes before the CRC check runs.
MAX_FRAME_PAYLOAD = 1 << 28

_C_SEGMENTS = _metrics.REGISTRY.counter(
    "store.segments_written", unit="segments",
    help="v2 trace segments flushed to archive files")
_C_BYTES_RAW = _metrics.REGISTRY.counter(
    "store.bytes_raw", unit="bytes",
    help="uncompressed message bytes handed to the segment compressor")
_C_BYTES_COMPRESSED = _metrics.REGISTRY.counter(
    "store.bytes_compressed", unit="bytes",
    help="compressed segment payload bytes written to archive files")
_C_EVENTS_ARCHIVED = _metrics.REGISTRY.counter(
    "store.events_archived", unit="messages",
    help="messages written into v2 trace files")
_C_CHECKPOINTS = _metrics.REGISTRY.counter(
    "store.segment_checkpoints", unit="checkpoints",
    help="mid-stream durability checkpoints (partial segment flushed and "
         "synced without sealing the trace)")


class SegmentWriter:
    """Streaming v2 writer: magic + header frame, then gzip segments.

    The v2 counterpart of :class:`~repro.observer.trace.TraceWriter`, with
    the same sink shape (``write(msg)``) and the same durability contract:
    a clean :meth:`close` flushes the last partial segment, writes the
    footer, and fsyncs; an exception inside a ``with`` block still closes
    the file handle (no leak) without masking the original error.
    :meth:`abort` additionally unlinks the partial file — the archive uses
    it for sessions that fail mid-stream.
    """

    def __init__(
        self,
        path: str | Path,
        n_threads: int,
        initial: Mapping[VarName, Any],
        program: str = "unknown",
        events_per_segment: int = 512,
        compresslevel: int = 6,
    ):
        if events_per_segment < 1:
            raise ValueError("events_per_segment must be >= 1")
        self.path = Path(path)
        self._per_segment = events_per_segment
        self._level = compresslevel
        self._buffer: list[str] = []
        self.count = 0
        self.segments = 0
        self.bytes_raw = 0
        self.bytes_written = len(MAGIC)
        self._fh: Optional[IO[bytes]] = open(path, "wb")
        try:
            self._fh.write(MAGIC)
            header = {"version": FORMAT_VERSION, "n_threads": n_threads,
                      "initial": dict(initial), "program": program}
            self._emit(_FT_HEADER, json.dumps(header).encode("utf-8"))
        except BaseException:
            self._abandon()
            raise

    # -- frame plumbing -------------------------------------------------------

    def _emit(self, frame_type: int, payload: bytes) -> None:
        assert self._fh is not None
        self._fh.write(_FRAME_HEAD.pack(frame_type, len(payload)))
        self._fh.write(payload)
        self._fh.write(_FRAME_CRC.pack(zlib.crc32(payload)))
        self.bytes_written += _FRAME_HEAD.size + len(payload) + _FRAME_CRC.size

    def _flush_segment(self) -> None:
        if not self._buffer:
            return
        raw = ("\n".join(self._buffer)).encode("utf-8")
        payload = gzip.compress(raw, compresslevel=self._level)
        self._emit(_FT_SEGMENT, payload)
        self.segments += 1
        self.bytes_raw += len(raw)
        self._buffer.clear()
        if _metrics.ENABLED:
            _C_SEGMENTS.inc()
            _C_BYTES_RAW.inc(len(raw))
            _C_BYTES_COMPRESSED.inc(len(payload))

    # -- sink interface -------------------------------------------------------

    def write(self, msg: Message) -> None:
        if self._fh is None:
            raise RuntimeError("segment writer is closed")
        try:
            self._buffer.append(msg.to_json())
            self.count += 1
            if len(self._buffer) >= self._per_segment:
                self._flush_segment()
        except BaseException:
            self._abandon()
            raise
        if _metrics.ENABLED:
            _C_EVENTS_ARCHIVED.inc()

    def checkpoint(self, fsync: bool = True) -> int:
        """Mid-stream durability point: flush the buffered partial segment
        (however short) and push it to disk *without* sealing the trace.

        The file stays open and writable; the footer is still only written
        by :meth:`close`.  This is the incremental-journal primitive the
        crash-resilient server builds on: everything checkpointed is
        readable back through :func:`read_trace_prefix` even if the writer
        process is later killed mid-frame.  Returns the number of events
        durable so far.
        """
        if self._fh is None:
            raise RuntimeError("segment writer is closed")
        try:
            self._flush_segment()
            self._fh.flush()
            if fsync:
                os.fsync(self._fh.fileno())
        except BaseException:
            self._abandon()
            raise
        if _metrics.ENABLED:
            _C_CHECKPOINTS.inc()
        return self.count

    def close(self, extra: Optional[Mapping[str, Any]] = None) -> None:
        """Flush the tail segment, seal with the footer, fsync, close.

        ``extra``, when given, is embedded in the footer under the
        ``"catalog"`` key — the archive stores the final verdict there so a
        lost ``catalog.json`` can be rebuilt from trace footers alone.
        """
        fh = self._fh
        if fh is None:
            return
        try:
            self._flush_segment()
            footer: dict[str, Any] = {"events": self.count,
                                      "segments": self.segments}
            if extra is not None:
                footer["catalog"] = dict(extra)
            self._emit(_FT_FOOTER, json.dumps(footer).encode("utf-8"))
            self._fh = None
            fh.flush()
            os.fsync(fh.fileno())
        finally:
            self._fh = None
            fh.close()

    def abort(self) -> None:
        """Error path: close without sealing and remove the partial file.
        Idempotent; safe after :meth:`close` (then it does nothing)."""
        if self._fh is None:
            return
        self._abandon()
        try:
            self.path.unlink()
        except OSError:
            pass

    def _abandon(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            try:
                fh.close()
            except OSError:
                pass

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self._abandon()
        else:
            self.close()


def _read_exact(fh: IO[bytes], n: int) -> Optional[bytes]:
    """Read exactly n bytes, or None at clean EOF; raises on short reads
    being distinguished by the caller (returns the partial chunk)."""
    chunk = fh.read(n)
    if not chunk:
        return None
    while len(chunk) < n:
        more = fh.read(n - len(chunk))
        if not more:
            return chunk      # truncated: caller reports the offset
        chunk += more
    return chunk


def _frames(path: str | Path, fh: IO[bytes]) -> Iterator[tuple[int, int, bytes]]:
    """Yield ``(frame_offset, frame_type, payload)`` with the CRC already
    verified; raises :class:`TraceFormatError` at the frame's byte offset
    on any structural damage."""
    offset = len(MAGIC)
    while True:
        head = _read_exact(fh, _FRAME_HEAD.size)
        if head is None:
            return
        if len(head) < _FRAME_HEAD.size:
            raise TraceFormatError(
                path, offset,
                f"truncated frame at byte offset {offset}: "
                f"{len(head)} of {_FRAME_HEAD.size} header bytes")
        frame_type, length = _FRAME_HEAD.unpack(head)
        if length > MAX_FRAME_PAYLOAD:
            raise TraceFormatError(
                path, offset,
                f"frame at byte offset {offset} declares an implausible "
                f"payload of {length} bytes (corrupt length field?)")
        body = _read_exact(fh, length + _FRAME_CRC.size)
        got = 0 if body is None else len(body)
        if got < length + _FRAME_CRC.size:
            raise TraceFormatError(
                path, offset,
                f"truncated frame at byte offset {offset}: payload+crc is "
                f"{got} of {length + _FRAME_CRC.size} bytes")
        payload, crc_bytes = body[:length], body[length:]
        (crc,) = _FRAME_CRC.unpack(crc_bytes)
        if crc != zlib.crc32(payload):
            raise TraceFormatError(
                path, offset,
                f"checksum mismatch in frame at byte offset {offset}: "
                f"stored crc32={crc:#010x}, "
                f"computed {zlib.crc32(payload):#010x}")
        yield offset, frame_type, payload
        offset += _FRAME_HEAD.size + length + _FRAME_CRC.size


def _json_payload(path: str | Path, offset: int, payload: bytes,
                  what: str) -> dict:
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(
            path, offset,
            f"{what} frame at byte offset {offset} is not valid JSON "
            f"({exc})") from exc
    if not isinstance(doc, dict):
        raise TraceFormatError(
            path, offset,
            f"{what} frame at byte offset {offset} must be a JSON object")
    return doc


def iter_trace_v2(
    path: str | Path,
) -> Iterator[Union[TraceHeader, Message]]:
    """Stream a v2 trace: yields :class:`TraceHeader` then each message.

    Decompresses one segment at a time — peak memory is one segment, not
    the trace.  All integrity violations raise :class:`TraceFormatError`
    with the offending frame's byte offset.
    """
    with open(path, "rb") as fh:
        if fh.read(len(MAGIC)) != MAGIC:
            raise TraceFormatError(
                path, 0, f"not a v2 trace file (magic {MAGIC!r} missing)")
        events = 0
        segments = 0
        footer: Optional[dict] = None
        saw_header = False
        for offset, frame_type, payload in _frames(path, fh):
            if footer is not None:
                raise TraceFormatError(
                    path, offset,
                    f"frame at byte offset {offset} after the footer "
                    "(the footer must be the final frame)")
            if not saw_header:
                if frame_type != _FT_HEADER:
                    raise TraceFormatError(
                        path, offset,
                        f"first frame must be the header, got frame type "
                        f"{frame_type:#04x} at byte offset {offset}")
                doc = _json_payload(path, offset, payload, "header")
                version = doc.get("version")
                if version != FORMAT_VERSION:
                    raise TraceFormatError(
                        path, offset,
                        f"unsupported trace version {version!r} (this "
                        f"reader understands version {FORMAT_VERSION})")
                for key in ("n_threads", "initial"):
                    if key not in doc:
                        raise TraceFormatError(
                            path, offset,
                            f"header lacks the mandatory {key!r} field")
                if not isinstance(doc["n_threads"], int):
                    raise TraceFormatError(
                        path, offset,
                        f"header n_threads must be an integer, "
                        f"got {doc['n_threads']!r}")
                try:
                    yield TraceHeader(
                        n_threads=doc["n_threads"],
                        initial=dict(doc["initial"]),
                        program=doc.get("program", "unknown"),
                        version=FORMAT_VERSION,
                    )
                except (TypeError, ValueError) as exc:
                    raise TraceFormatError(
                        path, offset, f"invalid header: {exc}") from exc
                saw_header = True
                continue
            if frame_type == _FT_SEGMENT:
                try:
                    raw = gzip.decompress(payload)
                except (OSError, EOFError, zlib.error) as exc:
                    raise TraceFormatError(
                        path, offset,
                        f"segment at byte offset {offset} failed to "
                        f"decompress ({exc})") from exc
                segments += 1
                for line in raw.decode("utf-8").splitlines():
                    if not line:
                        continue
                    try:
                        msg = Message.from_json(line)
                    except (KeyError, TypeError, ValueError) as exc:
                        raise TraceFormatError(
                            path, offset,
                            f"segment at byte offset {offset} holds a "
                            f"malformed message record: {exc}") from exc
                    events += 1
                    yield msg
            elif frame_type == _FT_FOOTER:
                footer = _json_payload(path, offset, payload, "footer")
                if footer.get("events") != events:
                    raise TraceFormatError(
                        path, offset,
                        f"footer declares {footer.get('events')!r} events "
                        f"but {events} were decoded (missing or extra "
                        "segments)")
                if footer.get("segments") != segments:
                    raise TraceFormatError(
                        path, offset,
                        f"footer declares {footer.get('segments')!r} "
                        f"segments but {segments} were decoded")
            else:
                raise TraceFormatError(
                    path, offset,
                    f"unknown frame type {frame_type:#04x} at byte offset "
                    f"{offset}")
        if not saw_header:
            raise TraceFormatError(
                path, len(MAGIC), "empty v2 trace file (no header frame)")
        if footer is None:
            raise TraceFormatError(
                path, len(MAGIC),
                "v2 trace has no footer frame (writer closed uncleanly?)")


def read_trace_v2(path: str | Path):
    """Load a whole v2 trace into a :class:`~repro.observer.trace.Trace`."""
    from ..observer.trace import Trace

    stream = iter_trace_v2(path)
    header = next(stream)
    assert isinstance(header, TraceHeader)
    return Trace(
        n_threads=header.n_threads,
        initial=dict(header.initial),
        messages=[m for m in stream if isinstance(m, Message)],
        program=header.program,
    )


@dataclass
class TracePrefix:
    """The recoverable prefix of a (possibly torn) v2 trace file.

    ``complete`` is True iff a footer frame was read — the writer closed
    cleanly.  When the writer was killed mid-frame, ``truncated_at``
    carries a human-readable description of where reading stopped; every
    message before that point is intact (each frame is CRC-verified before
    it is trusted).
    """

    header: TraceHeader
    messages: list[Message]
    complete: bool
    footer: Optional[dict] = None
    truncated_at: Optional[str] = None


def read_trace_prefix(path: str | Path) -> TracePrefix:
    """Read as much of a v2 trace as is intact — the recovery read path.

    Unlike :func:`iter_trace_v2`, damage *after* a run of good frames is
    not an error: reading stops at the first torn, checksum-failed or
    undecodable frame and everything before it is returned.  A missing or
    unreadable header is still a :class:`TraceFormatError` (there is no
    prefix to recover without one).
    """
    with open(path, "rb") as fh:
        if fh.read(len(MAGIC)) != MAGIC:
            raise TraceFormatError(
                path, 0, f"not a v2 trace file (magic {MAGIC!r} missing)")
        frames = _frames(path, fh)
        try:
            offset, frame_type, payload = next(frames)
        except StopIteration:
            raise TraceFormatError(
                path, len(MAGIC), "empty v2 trace file (no header frame)")
        if frame_type != _FT_HEADER:
            raise TraceFormatError(
                path, offset,
                f"first frame must be the header, got frame type "
                f"{frame_type:#04x} at byte offset {offset}")
        doc = _json_payload(path, offset, payload, "header")
        if doc.get("version") != FORMAT_VERSION:
            raise TraceFormatError(
                path, offset,
                f"unsupported trace version {doc.get('version')!r}")
        header = TraceHeader(
            n_threads=doc["n_threads"], initial=dict(doc["initial"]),
            program=doc.get("program", "unknown"), version=FORMAT_VERSION)
        messages: list[Message] = []
        footer: Optional[dict] = None
        truncated: Optional[str] = None
        while True:
            try:
                offset, frame_type, payload = next(frames)
            except StopIteration:
                break
            except TraceFormatError as exc:
                truncated = exc.problem
                break
            if frame_type == _FT_SEGMENT:
                # decode the whole segment before trusting any of it: a
                # half-decodable segment would otherwise leave a prefix
                # that no full-file reader agrees with
                try:
                    raw = gzip.decompress(payload)
                    batch = [Message.from_json(line)
                             for line in raw.decode("utf-8").splitlines()
                             if line]
                except Exception as exc:  # noqa: BLE001 - tail damage
                    truncated = (f"segment at byte offset {offset} "
                                 f"undecodable ({exc})")
                    break
                messages.extend(batch)
            elif frame_type == _FT_FOOTER:
                try:
                    footer = _json_payload(path, offset, payload, "footer")
                except TraceFormatError as exc:
                    truncated = exc.problem
                break
            else:
                truncated = (f"unknown frame type {frame_type:#04x} at "
                             f"byte offset {offset}")
                break
        return TracePrefix(
            header=header, messages=messages, complete=footer is not None,
            footer=footer, truncated_at=truncated)


@dataclass(frozen=True)
class TraceMeta:
    """Header + footer of a sealed v2 trace, segments skipped.

    ``catalog`` is the footer's embedded catalog extras (verdict,
    counterexamples, final clocks ...) when the writer recorded them —
    the raw material of a catalog rebuild.  ``None`` for traces sealed by
    older writers.
    """

    header: TraceHeader
    events: int
    segments: int
    catalog: Optional[dict]


def read_trace_meta(path: str | Path) -> TraceMeta:
    """Read a sealed trace's header and footer without decompressing any
    segment.  Raises :class:`TraceFormatError` if the file has no footer
    (unsealed) or is otherwise structurally damaged."""
    with open(path, "rb") as fh:
        if fh.read(len(MAGIC)) != MAGIC:
            raise TraceFormatError(
                path, 0, f"not a v2 trace file (magic {MAGIC!r} missing)")
        header: Optional[TraceHeader] = None
        footer: Optional[dict] = None
        segments = 0
        for offset, frame_type, payload in _frames(path, fh):
            if header is None:
                if frame_type != _FT_HEADER:
                    raise TraceFormatError(
                        path, offset,
                        f"first frame must be the header, got "
                        f"{frame_type:#04x}")
                doc = _json_payload(path, offset, payload, "header")
                header = TraceHeader(
                    n_threads=doc["n_threads"], initial=dict(doc["initial"]),
                    program=doc.get("program", "unknown"),
                    version=FORMAT_VERSION)
            elif frame_type == _FT_SEGMENT:
                segments += 1
            elif frame_type == _FT_FOOTER:
                footer = _json_payload(path, offset, payload, "footer")
    if header is None:
        raise TraceFormatError(
            path, len(MAGIC), "empty v2 trace file (no header frame)")
    if footer is None:
        raise TraceFormatError(
            path, len(MAGIC),
            "v2 trace has no footer frame (writer closed uncleanly?)")
    catalog = footer.get("catalog")
    return TraceMeta(
        header=header,
        events=int(footer.get("events", 0)),
        segments=segments,
        catalog=catalog if isinstance(catalog, dict) else None,
    )
