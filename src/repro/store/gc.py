"""Retention GC: bound the archive by age, total size, and entry count.

A production trace store cannot grow forever; this module implements the
retention semantics documented in ``docs/STORE.md``:

* **age** — entries older than ``max_age_s`` are always removed;
* **size** — after the age pass, the *oldest* survivors are removed until
  the catalog's total trace bytes fit under ``max_total_bytes``;
* **count** — finally, the oldest survivors beyond ``max_entries`` go.

Oldest-first is the only eviction order: the archive is append-only and a
regression corpus, so the newest traces (the ones most likely to cover
recent code) are always the last to go.  ``dry_run`` computes the victim
set without touching disk — ``repro gc --dry-run`` prints it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from .catalog import CatalogEntry

__all__ = ["RetentionPolicy", "GCReport", "plan", "collect"]


@dataclass(frozen=True)
class RetentionPolicy:
    """What to keep.  ``None`` disables that bound; an all-``None`` policy
    removes nothing (GC is a no-op, not a purge)."""

    max_age_s: Optional[float] = None
    max_total_bytes: Optional[int] = None
    max_entries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_age_s is not None and self.max_age_s < 0:
            raise ValueError("max_age_s must be >= 0")
        if self.max_total_bytes is not None and self.max_total_bytes < 0:
            raise ValueError("max_total_bytes must be >= 0")
        if self.max_entries is not None and self.max_entries < 0:
            raise ValueError("max_entries must be >= 0")

    @property
    def bounded(self) -> bool:
        return any(v is not None for v in
                   (self.max_age_s, self.max_total_bytes, self.max_entries))


@dataclass
class GCReport:
    """What one GC pass did (or, under ``dry_run``, would do)."""

    removed: list[CatalogEntry] = field(default_factory=list)
    kept: int = 0
    bytes_freed: int = 0
    dry_run: bool = False

    def summary(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        return (f"{verb} {len(self.removed)} trace(s), "
                f"{self.bytes_freed} bytes; {self.kept} kept")


def plan(entries: list[CatalogEntry], policy: RetentionPolicy,
         now: Optional[float] = None) -> list[CatalogEntry]:
    """Pure victim selection: which of ``entries`` (any order) the policy
    evicts, oldest first.  Separated from the I/O so it is unit-testable
    against hand-built catalogs."""
    now = time.time() if now is None else now
    ordered = sorted(entries, key=lambda e: (e.created_at, e.id))
    victims: list[CatalogEntry] = []
    survivors: list[CatalogEntry] = []
    for e in ordered:
        if (policy.max_age_s is not None
                and now - e.created_at > policy.max_age_s):
            victims.append(e)
        else:
            survivors.append(e)
    if policy.max_total_bytes is not None:
        total = sum(e.bytes for e in survivors)
        while survivors and total > policy.max_total_bytes:
            oldest = survivors.pop(0)
            victims.append(oldest)
            total -= oldest.bytes
    if policy.max_entries is not None:
        while len(survivors) > policy.max_entries:
            victims.append(survivors.pop(0))
    return sorted(victims, key=lambda e: (e.created_at, e.id))


def collect(archive, policy: RetentionPolicy, now: Optional[float] = None,
            dry_run: bool = False) -> GCReport:
    """Run one GC pass over ``archive`` (a
    :class:`~repro.store.archive.TraceArchive`)."""
    entries = archive.entries()
    victims = plan(entries, policy, now=now)
    report = GCReport(
        removed=victims,
        kept=len(entries) - len(victims),
        bytes_freed=sum(e.bytes for e in victims),
        dry_run=dry_run,
    )
    if not dry_run:
        for e in victims:
            archive.remove(e.id)
    return report
