"""LTL evaluation over lasso words ``u · vω`` (paper §4, liveness prediction).

The paper sketches liveness prediction: find paths ``u`` and ``uv`` in the
computation lattice reaching the *same* shared-variable global state, then
check whether the infinite word ``u vω`` satisfies the liveness property —
"it is shown in [22] (Markey–Schnoebelen) that the test ``u vω ⊨ φ`` can be
done in polynomial time and space".

:func:`evaluate_lasso` implements that test for future-time LTL (``always``,
``eventually``, ``until``, ``next`` plus boolean/state formulas) by the
standard bottom-up labeling of the ``len(u) + len(v)`` positions, with a
least-fixpoint sweep over the loop for ``until``/``eventually``.

Past-time operators are rejected: a position inside ``v`` has a different
past on every unrolling, so finite position-labeling is unsound for them.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .ast import (
    Always,
    And,
    Atom,
    Bool,
    Compare,
    Eventually,
    Formula,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Until,
    subformulas,
)
from .ast import _PAST  # noqa: F401  (fragment check below)
from .parser import parse

__all__ = ["evaluate_lasso", "LassoUnsupportedError"]

State = Mapping[str, object]


class LassoUnsupportedError(ValueError):
    """The formula contains operators outside the lasso-checkable fragment."""


def evaluate_lasso(
    formula: Formula | str,
    u: Sequence[State],
    v: Sequence[State],
) -> bool:
    """Does the infinite word ``u · vω`` satisfy ``formula`` at position 0?

    ``v`` must be non-empty (it is the repeated loop).  ``u`` may be empty.
    """
    if isinstance(formula, str):
        formula = parse(formula)
    if not v:
        raise ValueError("the loop part v of a lasso must be non-empty")
    for g in subformulas(formula):
        if isinstance(g, _PAST):
            raise LassoUnsupportedError(
                f"past-time operator {g} not supported on lasso words"
            )

    states = list(u) + list(v)
    n = len(states)
    loop_start = len(u)

    def succ(p: int) -> int:
        return p + 1 if p + 1 < n else loop_start

    # Bottom-up labeling: vals[id(f)][p] = truth of f at position p.
    vals: dict[int, list[bool]] = {}

    for f in subformulas(formula):
        if id(f) in vals:
            continue
        if isinstance(f, Bool):
            row = [f.value] * n
        elif isinstance(f, Compare):
            row = [f.test(s) for s in states]
        elif isinstance(f, Atom):
            row = [bool(f.fn(s)) for s in states]
        elif isinstance(f, Not):
            a = vals[id(f.operand)]
            row = [not x for x in a]
        elif isinstance(f, And):
            a, b = vals[id(f.left)], vals[id(f.right)]
            row = [x and y for x, y in zip(a, b)]
        elif isinstance(f, Or):
            a, b = vals[id(f.left)], vals[id(f.right)]
            row = [x or y for x, y in zip(a, b)]
        elif isinstance(f, Implies):
            a, b = vals[id(f.left)], vals[id(f.right)]
            row = [(not x) or y for x, y in zip(a, b)]
        elif isinstance(f, Iff):
            a, b = vals[id(f.left)], vals[id(f.right)]
            row = [x == y for x, y in zip(a, b)]
        elif isinstance(f, Next):
            a = vals[id(f.operand)]
            row = [a[succ(p)] for p in range(n)]
        elif isinstance(f, Eventually):
            a = vals[id(f.operand)]
            # From any position the suffix plus the whole loop is reachable.
            loop_any = any(a[loop_start:])
            row = [any(a[p:]) or loop_any for p in range(n)]
        elif isinstance(f, Always):
            a = vals[id(f.operand)]
            loop_all = all(a[loop_start:])
            row = [all(a[p:]) and loop_all for p in range(n)]
        elif isinstance(f, Until):
            a, b = vals[id(f.left)], vals[id(f.right)]
            # Least fixpoint of U_p = b_p or (a_p and U_{succ(p)}):
            # initialize to False, sweep backwards n+1 times (enough for the
            # value to propagate once around the loop).
            row = [False] * n
            for _sweep in range(n + 1):
                changed = False
                for p in range(n - 1, -1, -1):
                    nv = b[p] or (a[p] and row[succ(p)])
                    if nv != row[p]:
                        row[p] = nv
                        changed = True
                if not changed:
                    break
            # (least fixpoint starting from all-False gives U's "b must
            # eventually happen" semantics for free)
        else:  # pragma: no cover
            raise LassoUnsupportedError(f"unsupported node {f!r}")
        vals[id(f)] = row

    return vals[id(formula)][0] if n else False
