"""Specification logic: past-time LTL with the paper's interval operator.

* :mod:`repro.logic.ast` — formula and state-expression AST;
* :mod:`repro.logic.parser` — concrete syntax (the paper's properties parse
  verbatim modulo ``==``);
* :mod:`repro.logic.monitor` — HR-style online monitor synthesis (O(|φ|)
  bits of state per lattice node);
* :mod:`repro.logic.lasso` — LTL over ``u·vω`` words for liveness prediction.
"""

from .ast import (
    And,
    Always,
    Atom,
    BinArith,
    Bool,
    Compare,
    Const,
    End,
    Eventually,
    Formula,
    Historically,
    Iff,
    Implies,
    Interval,
    Next,
    Not,
    Once,
    Or,
    Prev,
    Since,
    Start,
    Until,
    Var,
    is_past_time,
    subformulas,
    temporal_subformulas,
    variables_of,
)
from .lasso import LassoUnsupportedError, evaluate_lasso
from .monitor import Monitor, MonitorState, evaluate_trace
from .parser import ParseError, parse

__all__ = [
    "And",
    "Always",
    "Atom",
    "BinArith",
    "Bool",
    "Compare",
    "Const",
    "End",
    "Eventually",
    "Formula",
    "Historically",
    "Iff",
    "Implies",
    "Interval",
    "Next",
    "Not",
    "Once",
    "Or",
    "Prev",
    "Since",
    "Start",
    "Until",
    "Var",
    "is_past_time",
    "subformulas",
    "temporal_subformulas",
    "variables_of",
    "LassoUnsupportedError",
    "evaluate_lasso",
    "Monitor",
    "MonitorState",
    "evaluate_trace",
    "ParseError",
    "parse",
]
