"""Composite monitors: several specifications in one lattice pass.

JMPaX checks one user specification; a practical deployment monitors many.
Rather than building the computation lattice once per property,
:class:`CompositeMonitor` bundles monitors behind the same functional
interface (``initial_state`` / ``step``), so a single
:class:`~repro.lattice.levels.LevelByLevelBuilder` sweep checks them all.
The composite verdict is the conjunction; per-spec verdicts are recoverable
from the composite state via :meth:`verdicts`, which is how
:func:`repro.analysis.predictive.predict_many` attributes violations.

Cost note: composite monitor states are tuples of sub-states, so two paths
merge only when *all* sub-monitors agree — state sets per lattice node can
be up to the product of the individual sets.  For a handful of properties
this is still far cheaper than rebuilding the lattice per property.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from .ast import Formula
from .monitor import Monitor

__all__ = ["CompositeMonitor"]

State = Mapping[str, object]

# Composite monitor state: one sub-state per monitor, then one verdict bool
# per monitor (the verdicts ride along so violations are attributable).
CompositeState = Optional[tuple]


class CompositeMonitor:
    """Monitor product of several past-time specifications.

    Implements the same protocol as :class:`~repro.logic.monitor.Monitor`
    (``initial_state``, ``step``, ``variables``), so it drops into the
    predictive analyzer unchanged.
    """

    def __init__(self, specs: Sequence[str | Formula | Monitor]):
        if not specs:
            raise ValueError("composite monitor needs at least one spec")
        self.monitors: list[Monitor] = [
            s if isinstance(s, Monitor) else Monitor(s) for s in specs
        ]

    @property
    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for m in self.monitors:
            out |= m.variables
        return out

    @property
    def formula(self):  # for report strings
        return " AND ".join(str(m.formula) for m in self.monitors)

    def __len__(self) -> int:
        return len(self.monitors)

    def initial_state(self) -> CompositeState:
        return None

    def step(self, mstate: CompositeState, state: State) -> tuple[tuple, bool]:
        subs = mstate[: len(self.monitors)] if mstate is not None else (
            tuple(m.initial_state() for m in self.monitors)
        )
        new_subs = []
        verdicts = []
        for monitor, sub in zip(self.monitors, subs):
            ns, ok = monitor.step(sub, state)
            new_subs.append(ns)
            verdicts.append(ok)
        frozen = tuple(new_subs) + (tuple(verdicts),)
        return frozen, all(verdicts)

    def verdicts(self, mstate: tuple) -> tuple[bool, ...]:
        """Per-spec verdicts carried in a composite state produced by
        :meth:`step`."""
        if mstate is None:
            raise ValueError("no state processed yet")
        return mstate[-1]

    def failing_specs(self, mstate: tuple) -> list[int]:
        """Indices of the specifications violated at this state."""
        return [i for i, ok in enumerate(self.verdicts(mstate)) if not ok]
