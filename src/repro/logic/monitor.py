"""Online monitor synthesis for past-time LTL (+ interval) specifications.

Following the monitor-synthesis scheme the paper builds on (its refs
[17, 18], Havelund & Roşu), a past-time formula is monitored with O(|φ|)
bits of state: the truth values of all subformulas at the *previous* state.
Processing a new global state recomputes all values bottom-up in one pass;
temporal operators consult the previous values via their recurrences::

    prev f          : pre[f]
    once f          : now[f] or pre[once f]
    historically f  : now[f] and pre[historically f]
    f since g       : now[g] or (now[f] and pre[f since g])
    [p, q)          : not now[q] and (now[p] or pre[[p, q)])
    start f         : now[f] and not pre[f]
    end f           : pre[f] and not now[f]

At the initial state the Havelund–Roşu convention ``pre = now`` applies
(hence ``start``/``end`` are false initially, ``once f = f``, etc.).

The monitor state (:class:`MonitorState`) is a hashable tuple, which is what
lets the predictive analyzer (paper §4) store *sets* of monitor states per
computation-lattice node and thus check all multithreaded runs in parallel
while keeping only one or two lattice levels in memory.

:func:`evaluate_trace` is the independent brute-force semantics used as the
oracle in property-based tests.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from .ast import (
    And,
    Atom,
    Bool,
    Compare,
    End,
    Formula,
    Historically,
    Iff,
    Implies,
    Interval,
    Not,
    Once,
    Or,
    Prev,
    Since,
    Start,
    is_past_time,
    subformulas,
    variables_of,
)
from .parser import parse

__all__ = ["Monitor", "MonitorState", "evaluate_trace"]

State = Mapping[str, object]

#: Truth values of every subformula at the last processed state
#: (``None`` before the first state).
MonitorState = Optional[tuple[bool, ...]]


class Monitor:
    """A synthesized online monitor for a past-time formula.

    The monitor itself is purely functional: :meth:`step` maps
    ``(monitor_state, new_global_state)`` to ``(new_monitor_state,
    verdict)``.  Keeping it functional is essential for predictive analysis,
    where the same monitor is advanced along *every* path of the computation
    lattice simultaneously.

    >>> m = Monitor("start(landing == 1) -> [approved == 1, radio == 0)")
    >>> s = m.initial_state()
    >>> s, ok = m.step(s, {"landing": 0, "approved": 0, "radio": 1})
    >>> ok
    True
    """

    def __init__(self, formula: Formula | str):
        if isinstance(formula, str):
            formula = parse(formula)
        if not is_past_time(formula):
            raise ValueError(
                f"monitors require past-time formulas; {formula} contains a "
                f"future-time operator (use repro.analysis.liveness for those)"
            )
        self.formula = formula
        # Post-order with dedup by identity: children are evaluated before
        # their parents, and a subformula *object* shared by several parents
        # (common when formulas are built programmatically) gets exactly one
        # column — keeping its first, earliest position so every parent
        # reads an already-computed value.
        self._nodes: list[Formula] = []
        seen: set[int] = set()
        for n in subformulas(formula):
            if id(n) not in seen:
                seen.add(id(n))
                self._nodes.append(n)
        self._index: dict[int, int] = {id(n): i for i, n in enumerate(self._nodes)}
        self._root = self._index[id(formula)]
        # Per-node closures fn(now, pre, state) -> bool, compiled once.
        # Profiling on wide lattices (DESIGN §4) showed the isinstance
        # dispatch plus recursive expression eval dominating predictive
        # analysis; compiling halves the per-state cost while the hypothesis
        # suite pins the semantics to evaluate_trace.
        self._ops = [self._compile_node(i, n) for i, n in enumerate(self._nodes)]

    def _compile_node(self, i: int, node: Formula):
        idx = self._index
        if isinstance(node, Bool):
            v = node.value
            return lambda now, pre, state: v
        if isinstance(node, Compare):
            test = node.compile()
            return lambda now, pre, state: test(state)
        if isinstance(node, Atom):
            fn = node.fn
            return lambda now, pre, state: bool(fn(state))
        if isinstance(node, Not):
            j = idx[id(node.operand)]
            return lambda now, pre, state: not now[j]
        if isinstance(node, And):
            a, b = idx[id(node.left)], idx[id(node.right)]
            return lambda now, pre, state: now[a] and now[b]
        if isinstance(node, Or):
            a, b = idx[id(node.left)], idx[id(node.right)]
            return lambda now, pre, state: now[a] or now[b]
        if isinstance(node, Implies):
            a, b = idx[id(node.left)], idx[id(node.right)]
            return lambda now, pre, state: (not now[a]) or now[b]
        if isinstance(node, Iff):
            a, b = idx[id(node.left)], idx[id(node.right)]
            return lambda now, pre, state: now[a] == now[b]
        if isinstance(node, Prev):
            j = idx[id(node.operand)]
            return lambda now, pre, state: now[j] if pre is None else pre[j]
        if isinstance(node, Once):
            j = idx[id(node.operand)]
            return lambda now, pre, state: now[j] or (pre is not None and pre[i])
        if isinstance(node, Historically):
            j = idx[id(node.operand)]
            return lambda now, pre, state: now[j] and (pre is None or pre[i])
        if isinstance(node, Since):
            a, b = idx[id(node.left)], idx[id(node.right)]
            return lambda now, pre, state: now[b] or (
                now[a] and pre is not None and pre[i]
            )
        if isinstance(node, Interval):
            a, b = idx[id(node.start)], idx[id(node.stop)]
            return lambda now, pre, state: not now[b] and (
                now[a] or (pre is not None and pre[i])
            )
        if isinstance(node, Start):
            j = idx[id(node.operand)]
            return lambda now, pre, state: now[j] and not (
                now[j] if pre is None else pre[j]
            )
        if isinstance(node, End):
            j = idx[id(node.operand)]
            return lambda now, pre, state: (
                now[j] if pre is None else pre[j]
            ) and not now[j]
        raise TypeError(f"unsupported node {node!r}")  # pragma: no cover

    @property
    def variables(self) -> frozenset[str]:
        """The specification's relevant variables (drives instrumentation)."""
        return variables_of(self.formula)

    @property
    def width(self) -> int:
        """Number of bits of monitor memory."""
        return len(self._nodes)

    def initial_state(self) -> MonitorState:
        """Monitor state before any global state has been seen."""
        return None

    def step(self, mstate: MonitorState, state: State) -> tuple[tuple[bool, ...], bool]:
        """Consume one global state; return ``(new_mstate, verdict)``.

        ``verdict`` is the root formula's value at this state.  For safety
        monitoring the property must hold at *every* state, so a single
        ``False`` verdict is a violation.
        """
        pre = mstate  # None at the first state
        now: list[bool] = [False] * len(self._nodes)
        for i, op in enumerate(self._ops):
            now[i] = op(now, pre, state)
        frozen = tuple(now)
        return frozen, now[self._root]

    def check_trace(self, states: Sequence[State]) -> tuple[bool, Optional[int]]:
        """Monitor a whole state sequence.

        Returns ``(ok, first_violation_index)`` — the single-trace (JPaX
        style) verdict.
        """
        m = self.initial_state()
        for k, s in enumerate(states):
            m, ok = self.step(m, s)
            if not ok:
                return False, k
        return True, None


def evaluate_trace(formula: Formula | str, states: Sequence[State]) -> list[bool]:
    """Brute-force past-time semantics: the formula's value at each position.

    Independent of :class:`Monitor` (direct recursion over positions), so it
    serves as the test oracle for the synthesized monitors.
    """
    if isinstance(formula, str):
        formula = parse(formula)
    if not is_past_time(formula):
        raise ValueError("evaluate_trace handles past-time formulas only")
    n = len(states)
    cache: dict[tuple[int, int], bool] = {}

    def val(f: Formula, k: int) -> bool:
        key = (id(f), k)
        if key in cache:
            return cache[key]
        if isinstance(f, Bool):
            v = f.value
        elif isinstance(f, Compare):
            v = f.test(states[k])
        elif isinstance(f, Atom):
            v = bool(f.fn(states[k]))
        elif isinstance(f, Not):
            v = not val(f.operand, k)
        elif isinstance(f, And):
            v = val(f.left, k) and val(f.right, k)
        elif isinstance(f, Or):
            v = val(f.left, k) or val(f.right, k)
        elif isinstance(f, Implies):
            v = (not val(f.left, k)) or val(f.right, k)
        elif isinstance(f, Iff):
            v = val(f.left, k) == val(f.right, k)
        elif isinstance(f, Prev):
            v = val(f.operand, k - 1) if k > 0 else val(f.operand, 0)
        elif isinstance(f, Once):
            v = any(val(f.operand, j) for j in range(k + 1))
        elif isinstance(f, Historically):
            v = all(val(f.operand, j) for j in range(k + 1))
        elif isinstance(f, Since):
            # g at some j <= k and f at every position in (j, k]
            v = any(
                val(f.right, j) and all(val(f.left, i) for i in range(j + 1, k + 1))
                for j in range(k + 1)
            )
        elif isinstance(f, Interval):
            # p at some j <= k, q false at every position in [j, k] except
            # that q is allowed... recurrence: not q_k and (p_k or I_{k-1});
            # closed form: exists j <= k with p_j and q false on [j, k].
            v = any(
                val(f.start, j) and all(not val(f.stop, i) for i in range(j, k + 1))
                for j in range(k + 1)
            )
        elif isinstance(f, Start):
            v = val(f.operand, k) and not (val(f.operand, k - 1) if k > 0 else val(f.operand, 0))
        elif isinstance(f, End):
            v = (val(f.operand, k - 1) if k > 0 else val(f.operand, 0)) and not val(f.operand, k)
        else:  # pragma: no cover
            raise TypeError(f"unsupported node {f!r}")
        cache[key] = v
        return v

    return [val(formula, k) for k in range(n)]
