"""Formula AST for the specification language.

JMPaX checks safety properties written in a past-time temporal logic with the
interval notation of Havelund & Roşu's monitor-synthesis work (the paper's
[17, 18]), e.g. Example 2's ``(x > 0) -> [y == 0, y > z)``.

Grammar (see :mod:`repro.logic.parser` for concrete syntax):

* *state expressions*: integer arithmetic over shared-variable names;
* *atoms*: comparisons between state expressions, plus ``true``/``false``;
* *boolean*: ``not``, ``and``, ``or``, ``->``, ``<->``;
* *past-time temporal*:

  - ``prev f``  (``⊙f``): f held at the previous state;
  - ``once f``: f held at some past-or-current state;
  - ``historically f``: f held at every past-or-current state;
  - ``f since g``: g held at some past-or-current state and f has held ever
    since (inclusive);
  - ``[p, q)``: the paper's interval — p held at some past-or-current state
    and q has not held since then (q exclusive at the p point, inclusive
    afterwards): the recurrence is ``[p,q)_k = ¬q_k ∧ (p_k ∨ [p,q)_{k-1})``;
  - ``start f`` (``↑f``): f just became true (``f ∧ ¬⊙f``);
  - ``end f``  (``↓f``): f just became false (``⊙f ∧ ¬f``).

At the initial state the Havelund–Roşu convention applies: ``prev f = f``,
so ``start``/``end`` are false initially.

Future-time operators (``always``, ``eventually``, ``until``, ``next``) are
also represented; they are *not* monitorable online but are evaluated over
lasso words ``u vω`` by :mod:`repro.analysis.liveness` (paper §4's liveness
prediction via [22]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

__all__ = [
    "Expr",
    "Var",
    "Const",
    "BinArith",
    "Formula",
    "Atom",
    "Compare",
    "Bool",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Prev",
    "Once",
    "Historically",
    "Since",
    "Interval",
    "Start",
    "End",
    "Always",
    "Eventually",
    "Until",
    "Next",
    "subformulas",
    "temporal_subformulas",
    "is_past_time",
    "variables_of",
]

State = Mapping[str, object]


# ---------------------------------------------------------------------------
# State expressions (integer arithmetic over shared variables)
# ---------------------------------------------------------------------------


class Expr:
    """Base class of state expressions."""

    def eval(self, state: State) -> object:
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        raise NotImplementedError

    def compile(self) -> Callable[[State], object]:
        """Build a closure evaluating this expression without AST recursion.

        Profiling (see bench_overhead / DESIGN §4) showed recursive
        ``eval`` dominating monitor stepping on wide lattices; compiled
        closures cut the per-state cost roughly in half.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def eval(self, state: State) -> object:
        try:
            return state[self.name]
        except KeyError:
            raise KeyError(
                f"specification references variable {self.name!r} "
                f"not present in the monitored state {sorted(map(str, state))}"
            ) from None

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def compile(self) -> Callable[[State], object]:
        name = self.name

        def read(state: State, _name=name) -> object:
            try:
                return state[_name]
            except KeyError:
                raise KeyError(
                    f"specification references variable {_name!r} not "
                    f"present in the monitored state {sorted(map(str, state))}"
                ) from None

        return read

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    value: object

    def eval(self, state: State) -> object:
        return self.value

    def variables(self) -> frozenset[str]:
        return frozenset()

    def compile(self) -> Callable[[State], object]:
        value = self.value
        return lambda _state: value

    def __str__(self) -> str:
        return repr(self.value)


_ARITH_OPS: dict[str, Callable[[object, object], object]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
}


@dataclass(frozen=True)
class BinArith(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def eval(self, state: State) -> object:
        return _ARITH_OPS[self.op](self.left.eval(state), self.right.eval(state))

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def compile(self) -> Callable[[State], object]:
        op = _ARITH_OPS[self.op]
        left = self.left.compile()
        right = self.right.compile()
        return lambda state: op(left(state), right(state))

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class of formulas. Subclass sets define the fragment:

    * state formulas: :class:`Atom`, :class:`Compare`, :class:`Bool`;
    * boolean connectives;
    * past-time temporal (monitorable online);
    * future-time temporal (lasso evaluation only).
    """

    def children(self) -> tuple["Formula", ...]:
        return ()

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        return self.__class__.__name__


@dataclass(frozen=True)
class Bool(Formula):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class Atom(Formula):
    """An opaque predicate over the state (escape hatch for Python callers)."""

    fn: Callable[[State], bool]
    name: str = "atom"

    def __str__(self) -> str:
        return self.name


_CMP_OPS: dict[str, Callable[[object, object], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Compare(Formula):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def test(self, state: State) -> bool:
        return bool(_CMP_OPS[self.op](self.left.eval(state), self.right.eval(state)))

    def compile(self) -> Callable[[State], bool]:
        op = _CMP_OPS[self.op]
        left = self.left.compile()
        right = self.right.compile()
        return lambda state: bool(op(left(state), right(state)))

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Implies(Formula):
    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} -> {self.right})"


@dataclass(frozen=True)
class Iff(Formula):
    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} <-> {self.right})"


# -- past-time temporal -------------------------------------------------------


@dataclass(frozen=True)
class Prev(Formula):
    """``⊙f`` — f at the previous state (f at the initial state, HR convention)."""

    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"prev({self.operand})"


@dataclass(frozen=True)
class Once(Formula):
    """f held at some past-or-current state."""

    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"once({self.operand})"


@dataclass(frozen=True)
class Historically(Formula):
    """f held at every past-or-current state."""

    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"historically({self.operand})"


@dataclass(frozen=True)
class Since(Formula):
    """``f S g``: g held at some past-or-current point, f has held since."""

    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} since {self.right})"


@dataclass(frozen=True)
class Interval(Formula):
    """The paper's ``[p, q)``: p happened and q has been false since then."""

    start: Formula
    stop: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.start, self.stop)

    def __str__(self) -> str:
        return f"[{self.start}, {self.stop})"


@dataclass(frozen=True)
class Start(Formula):
    """``↑f = f ∧ ¬⊙f`` — f just became true."""

    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"start({self.operand})"


@dataclass(frozen=True)
class End(Formula):
    """``↓f = ⊙f ∧ ¬f`` — f just became false."""

    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"end({self.operand})"


# -- future-time temporal (lasso evaluation only) ------------------------------


@dataclass(frozen=True)
class Always(Formula):
    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"always({self.operand})"


@dataclass(frozen=True)
class Eventually(Formula):
    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"eventually({self.operand})"


@dataclass(frozen=True)
class Until(Formula):
    left: Formula
    right: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} until {self.right})"


@dataclass(frozen=True)
class Next(Formula):
    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"next({self.operand})"


# ---------------------------------------------------------------------------
# Structure helpers
# ---------------------------------------------------------------------------

_PAST = (Prev, Once, Historically, Since, Interval, Start, End)
_FUTURE = (Always, Eventually, Until, Next)


def subformulas(f: Formula) -> Iterator[Formula]:
    """All subformulas including ``f`` itself, children before parents
    (post-order) — the evaluation order monitors need."""
    for c in f.children():
        yield from subformulas(c)
    yield f


def temporal_subformulas(f: Formula) -> list[Formula]:
    """Past-time temporal subformulas in post-order; these are exactly the
    bits of history a synthesized monitor must remember (HR [17, 18])."""
    return [g for g in subformulas(f) if isinstance(g, _PAST)]


def is_past_time(f: Formula) -> bool:
    """True if ``f`` contains no future-time operator (monitorable online)."""
    return not any(isinstance(g, _FUTURE) for g in subformulas(f))


def variables_of(f: Formula) -> frozenset[str]:
    """Shared variables mentioned by the formula — JMPaX's *relevant
    variables* (§4.1: the instrumentor extracts them from the spec)."""
    out: set[str] = set()
    for g in subformulas(f):
        if isinstance(g, Compare):
            out |= g.left.variables() | g.right.variables()
    return frozenset(out)
