"""Recursive-descent parser for the specification language.

Concrete syntax (the paper's properties parse verbatim modulo ``==``)::

    start(landing == 1) -> [approved == 1, radio == 0)
    (x > 0) -> [y == 0, y > z)

Precedence, loosest to tightest: ``<->``, ``->`` (right-assoc), ``or``/``||``,
``since``/``until``, ``and``/``&&``, unary (``not``/``!``, ``prev``, ``once``,
``historically``, ``start``, ``end``, ``always``, ``eventually``, ``next``),
then primaries: ``true``, ``false``, ``[p, q)``, parenthesized formulas, and
comparison atoms over integer arithmetic (``+ - * // %``).

A ``(`` may open either a formula or an arithmetic expression; the parser
resolves this by tentatively parsing a comparison atom and backtracking.
"""

from __future__ import annotations

import re
from typing import Optional

from .ast import (
    And,
    Always,
    BinArith,
    Bool,
    Compare,
    Const,
    End,
    Eventually,
    Expr,
    Formula,
    Historically,
    Iff,
    Implies,
    Interval,
    Next,
    Not,
    Once,
    Or,
    Prev,
    Since,
    Start,
    Until,
    Var,
)

__all__ = ["parse", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed specifications, with position information.

    Carries the same ``file:line:col`` span contract as
    :class:`~repro.lang.parser.MiniLangError`: ``line``/``col`` are
    1-based, ``filename`` is optional (specs are usually inline strings),
    and :attr:`span` renders them the way every other tool in the
    repository points at source.  The rendered message keeps the caret
    pointer into the offending text.
    """

    def __init__(self, text: str, pos: int, message: str,
                 *, filename: Optional[str] = None):
        self.text = text
        self.pos = pos
        self.problem = message
        self.filename = filename
        prefix = text[:pos]
        self.line = prefix.count("\n") + 1
        self.col = pos - (prefix.rfind("\n") + 1) + 1
        lines = text.splitlines() or [""]
        src_line = lines[min(self.line - 1, len(lines) - 1)]
        pointer = " " * (self.col - 1) + "^"
        head = (f"{filename}:{self.line}:{self.col}: {message}" if filename
                else f"{message}")
        super().__init__(f"{head}\n  {src_line}\n  {pointer}")

    @property
    def span(self) -> str:
        """``file:line:col`` of the error (``<spec>`` for inline strings)."""
        return f"{self.filename or '<spec>'}:{self.line}:{self.col}"


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<num>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><->|->|==|!=|<=|>=|\|\||&&|//|[<>+\-*%!(),\[\)])
    """,
    re.VERBOSE,
)

_UNARY = {
    "not": Not,
    "prev": Prev,
    "once": Once,
    "historically": Historically,
    "start": Start,
    "end": End,
    "always": Always,
    "eventually": Eventually,
    "next": Next,
}

_KEYWORDS = set(_UNARY) | {"true", "false", "and", "or", "since", "until", "S", "U"}


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.items: list[tuple[str, str, int]] = []  # (kind, value, pos)
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None:
                raise ParseError(text, pos, f"unexpected character {text[pos]!r}")
            pos = m.end()
            kind = m.lastgroup
            if kind == "ws":
                continue
            self.items.append((kind, m.group(), m.start()))
        self.i = 0

    def peek(self) -> Optional[tuple[str, str, int]]:
        return self.items[self.i] if self.i < len(self.items) else None

    def next(self) -> tuple[str, str, int]:
        tok = self.peek()
        if tok is None:
            raise ParseError(self.text, len(self.text), "unexpected end of input")
        self.i += 1
        return tok

    def accept(self, value: str) -> bool:
        tok = self.peek()
        if tok is not None and tok[1] == value:
            self.i += 1
            return True
        return False

    def expect(self, value: str, what: str) -> None:
        tok = self.peek()
        if tok is None:
            raise ParseError(self.text, len(self.text), f"expected {what}")
        if tok[1] != value:
            raise ParseError(self.text, tok[2], f"expected {what}, found {tok[1]!r}")
        self.i += 1

    def save(self) -> int:
        return self.i

    def restore(self, mark: int) -> None:
        self.i = mark


def parse(text: str, filename: Optional[str] = None) -> Formula:
    """Parse a specification string into a :class:`~repro.logic.ast.Formula`.

    ``filename`` (optional) is attached to any :class:`ParseError` so its
    span reads ``file:line:col`` like MiniLang errors do.
    """
    try:
        toks = _Tokens(text)
        f = _iff(toks)
        tok = toks.peek()
        if tok is not None:
            raise ParseError(text, tok[2],
                             f"trailing input starting at {tok[1]!r}")
        return f
    except ParseError as exc:
        if filename is not None and exc.filename is None:
            raise ParseError(exc.text, exc.pos, exc.problem,
                             filename=filename) from None
        raise


def _iff(t: _Tokens) -> Formula:
    left = _implies(t)
    while t.accept("<->"):
        left = Iff(left, _implies(t))
    return left


def _implies(t: _Tokens) -> Formula:
    left = _or(t)
    if t.accept("->"):
        return Implies(left, _implies(t))  # right-associative
    return left


def _or(t: _Tokens) -> Formula:
    left = _since(t)
    while True:
        if t.accept("or") or t.accept("||"):
            left = Or(left, _since(t))
        else:
            return left


def _since(t: _Tokens) -> Formula:
    left = _and(t)
    while True:
        if t.accept("since") or t.accept("S"):
            left = Since(left, _and(t))
        elif t.accept("until") or t.accept("U"):
            left = Until(left, _and(t))
        else:
            return left


def _and(t: _Tokens) -> Formula:
    left = _unary(t)
    while True:
        if t.accept("and") or t.accept("&&"):
            left = And(left, _unary(t))
        else:
            return left


def _unary(t: _Tokens) -> Formula:
    tok = t.peek()
    if tok is not None:
        if tok[1] == "!":
            t.next()
            return Not(_unary(t))
        if tok[0] == "name" and tok[1] in _UNARY:
            # 'prev' is a keyword only when applied; 'prev' alone as a
            # variable name would be ambiguous — keep it reserved.
            t.next()
            return _UNARY[tok[1]](_unary(t))
    return _primary(t)


def _primary(t: _Tokens) -> Formula:
    tok = t.peek()
    if tok is None:
        raise ParseError(t.text, len(t.text), "expected a formula")
    if t.accept("true"):
        return Bool(True)
    if t.accept("false"):
        return Bool(False)
    if tok[1] == "[":
        t.next()
        p = _iff(t)
        t.expect(",", "',' in interval [p, q)")
        q = _iff(t)
        t.expect(")", "closing ')' of interval [p, q)")
        return Interval(p, q)
    # Ambiguous '(' or a bare atom: try a comparison atom first (covers
    # '(x + 1) > 2'), fall back to a parenthesized formula.
    mark = t.save()
    atom = _try_atom(t)
    if atom is not None:
        return atom
    t.restore(mark)
    if t.accept("("):
        f = _iff(t)
        t.expect(")", "closing ')'")
        return f
    raise ParseError(t.text, tok[2], f"expected a formula, found {tok[1]!r}")


def _try_atom(t: _Tokens) -> Optional[Formula]:
    try:
        left = _expr(t)
        tok = t.peek()
        if tok is None or tok[1] not in ("==", "!=", "<", "<=", ">", ">="):
            return None
        op = t.next()[1]
        right = _expr(t)
        return Compare(op, left, right)
    except ParseError:
        return None


def _expr(t: _Tokens) -> Expr:
    left = _term(t)
    while True:
        tok = t.peek()
        if tok is not None and tok[1] in ("+", "-"):
            t.next()
            left = BinArith(tok[1], left, _term(t))
        else:
            return left


def _term(t: _Tokens) -> Expr:
    left = _factor(t)
    while True:
        tok = t.peek()
        if tok is not None and tok[1] in ("*", "//", "%"):
            t.next()
            left = BinArith(tok[1], left, _factor(t))
        else:
            return left


def _factor(t: _Tokens) -> Expr:
    tok = t.peek()
    if tok is None:
        raise ParseError(t.text, len(t.text), "expected an expression")
    if tok[1] == "-":
        t.next()
        inner = _factor(t)
        return BinArith("-", Const(0), inner)
    if tok[0] == "num":
        t.next()
        return Const(int(tok[1]))
    if tok[0] == "name":
        if tok[1] in _KEYWORDS:
            raise ParseError(t.text, tok[2], f"{tok[1]!r} is a reserved word")
        t.next()
        return Var(tok[1])
    if tok[1] == "(":
        t.next()
        e = _expr(t)
        t.expect(")", "closing ')' in expression")
        return e
    raise ParseError(t.text, tok[2], f"expected an expression, found {tok[1]!r}")
