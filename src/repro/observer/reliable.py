"""Reliable transport: ack-based retransmission over a lossy wire.

``SocketTransport`` (the paper's deployment shape) assumes TCP's perfect
in-order byte stream.  When the wire itself is imperfect — frames dropped,
duplicated or corrupted above the socket layer, as :class:`LossyWire`
simulates and as UDP-style or multi-hop deployments really behave — the
two-process pipeline needs its own reliability layer.  This module
provides one:

* every payload rides a sequence-numbered, CRC-checked frame;
* the receiver acks each frame it accepts; duplicates are re-acked and
  dropped; corrupt frames are *not* acked, so the sender retries;
* the sender retransmits unacked frames after a per-send timeout with
  exponential backoff and (seeded) jitter, up to a bounded retry budget;
* the in-flight window is bounded: :meth:`ReliableSender.send` blocks
  (backpressure) when too many frames are unacked, so a slow or dead
  receiver cannot make the sender buffer grow without bound;
* heartbeats flow while the sender is idle, letting the receiver
  distinguish "quiet" from "crashed";
* the stream ends with a ``fin`` frame carrying the total count, which
  the receiver uses to verify zero loss end-to-end.

Wire format: newline-delimited JSON frames over TCP ::

    {"t": "msg", "seq": 3, "crc": 123, "payload": "<Message.to_json()>"}
    {"t": "ack", "seq": 3}
    {"t": "hb"}
    {"t": "fin", "count": 17}
    {"t": "finack"}

Delivery to the application is in send order (frames are reassembled by
``seq``), exactly once, or :class:`ReliableTransportError` is raised at
the sender once the retry budget is exhausted — loss is never silent.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.events import Message
from ..obs import metrics as _metrics

__all__ = ["RetransmitConfig", "ReliableSender", "ReliableReceiver",
           "FrameDecoder", "LossyWire", "ReliableTransportError"]

_C_FRAMES = _metrics.REGISTRY.counter(
    "reliable.frames_sent", unit="frames",
    help="data frames first-sent by the reliable sender")
_C_RETRANS = _metrics.REGISTRY.counter(
    "reliable.retransmissions", unit="frames",
    help="frames retransmitted after an ack timeout")
_C_HEARTBEATS = _metrics.REGISTRY.counter(
    "reliable.heartbeats", unit="frames",
    help="idle heartbeats sent")
_C_ACKS = _metrics.REGISTRY.counter(
    "reliable.acks", unit="frames",
    help="acks received by the sender")
_G_INFLIGHT = _metrics.REGISTRY.gauge(
    "reliable.window_inflight", unit="frames",
    help="unacked frames in flight (max = window pressure)")
_C_RECV_MSGS = _metrics.REGISTRY.counter(
    "reliable.recv_messages", unit="messages",
    help="messages delivered in order by the reliable receiver")
_C_RECV_DUPS = _metrics.REGISTRY.counter(
    "reliable.recv_duplicates", unit="frames",
    help="duplicate frames re-acked and dropped by the receiver")
_C_RECV_CORRUPT = _metrics.REGISTRY.counter(
    "reliable.recv_corrupt_frames", unit="frames",
    help="frames the receiver rejected (bad JSON, shape or CRC)")


class ReliableTransportError(RuntimeError):
    """Raised when the reliability contract cannot be met (retry budget
    exhausted, receiver gone, or stream closed incomplete)."""


def _frame(obj: dict) -> bytes:
    return (json.dumps(obj) + "\n").encode("utf-8")


@dataclass(frozen=True)
class RetransmitConfig:
    """Retransmission and flow-control knobs for :class:`ReliableSender`.

    One frozen value object holds everything that shapes the sender's
    recovery behavior, so deployments can pass a single tuned config
    around (and tests can assert against it) instead of seven loose
    keyword arguments.

    Attributes:
        timeout: initial per-send ack timeout, seconds.  Each retry
            multiplies it by ``backoff``.
        max_retries: retransmissions per frame before the sender declares
            the contract broken (:class:`ReliableTransportError`).
        backoff: exponential backoff multiplier (>= 1).
        jitter: fraction of each backoff randomized, decorrelating retry
            storms across senders; drawn from the seeded RNG.
        window: maximum unacked frames in flight.  When full,
            :meth:`ReliableSender.send` *blocks* — backpressure, so a slow
            or dead receiver bounds the sender's buffer instead of
            growing it.
        heartbeat_interval: idle period (seconds) after which a heartbeat
            frame is sent; ``None`` disables heartbeats.
        seed: RNG seed for the jitter (reproducible retry schedules).
    """

    timeout: float = 0.05
    max_retries: int = 10
    backoff: float = 2.0
    jitter: float = 0.1
    window: int = 64
    heartbeat_interval: Optional[float] = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if not 0.0 <= self.jitter:
            raise ValueError("jitter must be >= 0")
        if (self.heartbeat_interval is not None
                and self.heartbeat_interval <= 0):
            raise ValueError("heartbeat_interval must be positive or None")


class LossyWire:
    """Deterministic frame-level fault injector for a send function.

    Sits between a sender and its socket: each outgoing frame is dropped
    or duplicated according to a seeded RNG.  The transport on top must
    recover — this is the wire the acceptance demo runs over.
    """

    def __init__(self, send_fn: Callable[[bytes], None],
                 drop: float = 0.0, dup: float = 0.0, seed: int = 0):
        if not 0.0 <= drop <= 1.0 or not 0.0 <= dup <= 1.0:
            raise ValueError("rates must be within [0, 1]")
        if drop + dup > 1.0:
            raise ValueError("drop + dup must be at most 1")
        self._send = send_fn
        self._drop = drop
        self._dup = dup
        self._rng = random.Random(seed)
        self.frames_dropped = 0
        self.frames_duplicated = 0

    def __call__(self, data: bytes) -> None:
        u = self._rng.random()
        if u < self._drop:
            self.frames_dropped += 1
            return
        self._send(data)
        if u < self._drop + self._dup:
            self.frames_duplicated += 1
            self._send(data)


class FrameDecoder:
    """Receive-side frame state machine for **one** peer connection.

    Owns exactly the transport concerns — CRC check, ack emission,
    duplicate suppression and in-order reassembly by ``seq`` — and leaves
    policy to the caller: every reassembled :class:`Message` is handed to
    ``on_message`` in send order, and control frames the decoder does not
    consume (``fin``, handshake frames, anything unknown) are *returned*
    from :meth:`feed_line` so the caller decides how to answer them.
    This is the piece :class:`ReliableReceiver` (single peer) and the
    multi-session server (:mod:`repro.server`, one decoder per client
    connection) share.

    Args:
        send: callable taking raw frame ``bytes`` — used to emit acks back
            to this peer.
        on_message: called with each :class:`Message` as it becomes
            deliverable in seq order.  Exceptions propagate to the caller
            of :meth:`feed_line` (the server uses this to abort a session
            on overload without acking the frame that overflowed it).
        start_seq: first sequence number this decoder will deliver.  A
            resumed session hands the peer's already-delivered count here,
            so replayed frames below it are re-acked as duplicates instead
            of being delivered twice.
    """

    def __init__(self, send: Callable[[bytes], None],
                 on_message: Optional[Callable[[Message], None]] = None,
                 start_seq: int = 0):
        if start_seq < 0:
            raise ValueError("start_seq must be >= 0")
        self._send = send
        self._on_message = on_message
        self._by_seq: dict[int, str] = {}
        self._next_deliver = start_seq
        self.expected_total: Optional[int] = None
        self.duplicates = 0
        self.corrupt_frames = 0
        self.heartbeats = 0
        self.last_heartbeat: Optional[float] = None
        self.errors: list[str] = []

    @property
    def delivered(self) -> int:
        """Messages handed to ``on_message`` so far (== next seq wanted)."""
        return self._next_deliver

    @property
    def complete(self) -> bool:
        """A fin has been seen and every seq before its count delivered."""
        return (self.expected_total is not None
                and self._next_deliver >= self.expected_total)

    def feed_line(self, line: str) -> Optional[dict]:
        """Consume one wire line.  Data/heartbeat frames are fully handled
        here (returns ``None``); any other parsed frame is returned for the
        caller to act on.  A ``fin`` frame records its count before being
        returned.  Unparseable lines count as corrupt and return ``None``.
        """
        line = line.strip()
        if not line:
            return None
        try:
            d = json.loads(line)
        except ValueError:
            self.corrupt_frames += 1
            if _metrics.ENABLED:
                _C_RECV_CORRUPT.inc()
            return None
        if not isinstance(d, dict):
            self.corrupt_frames += 1
            if _metrics.ENABLED:
                _C_RECV_CORRUPT.inc()
            return None
        kind = d.get("t")
        if kind == "msg":
            self._on_msg_frame(d)
            return None
        if kind == "hb":
            self.heartbeats += 1
            self.last_heartbeat = time.monotonic()
            return None
        if kind == "fin":
            self.expected_total = d.get("count")
        return d

    def _on_msg_frame(self, d: dict) -> None:
        seq, payload = d.get("seq"), d.get("payload")
        if not isinstance(seq, int) or not isinstance(payload, str):
            self.corrupt_frames += 1
            if _metrics.ENABLED:
                _C_RECV_CORRUPT.inc()
            return
        if zlib.crc32(payload.encode("utf-8")) != d.get("crc"):
            self.corrupt_frames += 1
            if _metrics.ENABLED:
                _C_RECV_CORRUPT.inc()
            return  # no ack: the sender will retransmit an intact copy
        if seq < self._next_deliver or seq in self._by_seq:
            self.duplicates += 1
            if _metrics.ENABLED:
                _C_RECV_DUPS.inc()
        else:
            self._by_seq[seq] = payload
            while self._next_deliver in self._by_seq:
                text = self._by_seq.pop(self._next_deliver)
                try:
                    msg = Message.from_json(text)
                except Exception as exc:  # noqa: BLE001 - recorded
                    self.errors.append(f"seq {self._next_deliver}: {exc}")
                else:
                    if _metrics.ENABLED:
                        _C_RECV_MSGS.inc()
                    if self._on_message is not None:
                        self._on_message(msg)
                self._next_deliver += 1
        self._send(_frame({"t": "ack", "seq": seq}))


class ReliableSender:
    """The instrumented-program side: send messages, survive a lossy wire.

    Args:
        host/port: the :class:`ReliableReceiver` address.
        timeout/max_retries/backoff/jitter/window/heartbeat_interval/seed:
            individual retransmission knobs; see :class:`RetransmitConfig`
            for their semantics.
        wire: optional wrapper around the raw frame-send function — e.g.
            a :class:`LossyWire` — applied to data frames *and* heartbeats
            (acks travel the reverse direction and are not wrapped here).
        config: a complete :class:`RetransmitConfig`; when given it takes
            precedence over the individual keyword knobs.  The effective
            configuration is always readable back as :attr:`config`.
        sock: an already-connected socket to use instead of dialing
            ``host:port`` — the multi-session client performs its
            handshake synchronously and then hands the socket over.
        on_frame: callback for reverse-direction frames the sender does
            not consume itself (acks, finacks and heartbeats are handled
            internally; an ``err`` frame fails the transport with the
            peer's reason).  The server uses this channel to push the
            session's final ``result`` frame back to the client.
        first_seq: sequence number of the first frame this sender emits.
            A resuming client sets it to the server's delivered count so
            replayed messages keep their original sequence numbers (and
            :meth:`close`'s fin count stays the absolute stream total).
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 0.05,
        max_retries: int = 10,
        backoff: float = 2.0,
        jitter: float = 0.1,
        window: int = 64,
        heartbeat_interval: Optional[float] = 0.5,
        seed: int = 0,
        wire: Optional[Callable[[Callable[[bytes], None]],
                                Callable[[bytes], None]]] = None,
        config: Optional[RetransmitConfig] = None,
        sock: Optional[socket.socket] = None,
        on_frame: Optional[Callable[[dict], None]] = None,
        first_seq: int = 0,
    ):
        if first_seq < 0:
            raise ValueError("first_seq must be >= 0")
        if config is None:
            config = RetransmitConfig(
                timeout=timeout, max_retries=max_retries, backoff=backoff,
                jitter=jitter, window=window,
                heartbeat_interval=heartbeat_interval, seed=seed,
            )
        #: The effective (validated) retransmission configuration.
        self.config = config
        self._on_frame = on_frame
        if sock is not None:
            self._sock = sock
        elif host is not None and port is not None:
            self._sock = socket.create_connection((host, port))
        else:
            raise ValueError("need either host+port or a connected sock")
        self._sock_lock = threading.Lock()
        self._raw_send = self._locked_send
        self._wire_send = wire(self._raw_send) if wire else self._raw_send
        self._timeout = config.timeout
        self._max_retries = config.max_retries
        self._backoff = config.backoff
        self._jitter = config.jitter
        self._window = config.window
        self._hb_interval = config.heartbeat_interval
        self._rng = random.Random(config.seed)

        self._cond = threading.Condition()
        #: seq -> (frame bytes, retries so far, next retransmit deadline)
        self._unacked: dict[int, list] = {}
        self._next_seq = first_seq
        self._failed: Optional[str] = None
        self._fin_acked = False
        self._closing = False
        self._last_activity = time.monotonic()
        self.retransmissions = 0
        self.heartbeats_sent = 0

        self._ack_thread = threading.Thread(target=self._ack_loop, daemon=True)
        self._ack_thread.start()
        self._timer_thread = threading.Thread(target=self._timer_loop,
                                              daemon=True)
        self._timer_thread.start()

    # -- plumbing -------------------------------------------------------------

    def _locked_send(self, data: bytes) -> None:
        with self._sock_lock:
            self._sock.sendall(data)

    def _deadline(self, retries: int) -> float:
        base = self._timeout * (self._backoff ** retries)
        return time.monotonic() + base * (1.0 + self._jitter * self._rng.random())

    def _ack_loop(self) -> None:
        try:
            with self._sock.makefile("r", encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        d = json.loads(line)
                    except ValueError:
                        continue
                    kind = d.get("t") if isinstance(d, dict) else None
                    with self._cond:
                        if kind == "ack":
                            self._unacked.pop(d.get("seq"), None)
                            if _metrics.ENABLED:
                                _C_ACKS.inc()
                                _G_INFLIGHT.set(len(self._unacked))
                            self._cond.notify_all()
                            continue
                        if kind == "finack":
                            self._fin_acked = True
                            self._cond.notify_all()
                            continue
                        if kind == "err":
                            # the peer declared the stream dead (overload,
                            # session failure): fail fast with its reason
                            self._failed = (
                                f"peer error: {d.get('reason', 'unknown')}")
                            self._cond.notify_all()
                            continue
                    if self._on_frame is not None:
                        self._on_frame(d)
        except OSError:
            pass
        with self._cond:
            self._cond.notify_all()

    def _timer_loop(self) -> None:
        tick = min(self._timeout / 2, 0.02)
        while True:
            time.sleep(tick)
            with self._cond:
                if self._failed or (self._closing and not self._unacked):
                    if self._fin_acked or self._failed:
                        return
                now = time.monotonic()
                overdue = [
                    (seq, entry) for seq, entry in self._unacked.items()
                    if entry[2] <= now
                ]
                for seq, entry in overdue:
                    if entry[1] >= self._max_retries:
                        self._failed = (
                            f"frame seq={seq} unacked after "
                            f"{self._max_retries} retries"
                        )
                        self._cond.notify_all()
                        return
                    entry[1] += 1
                    entry[2] = self._deadline(entry[1])
                    self.retransmissions += 1
                    if _metrics.ENABLED:
                        _C_RETRANS.inc()
                    frame = entry[0]
                    self._transmit(frame)
                if (self._hb_interval is not None and not overdue
                        and now - self._last_activity > self._hb_interval):
                    self.heartbeats_sent += 1
                    if _metrics.ENABLED:
                        _C_HEARTBEATS.inc()
                    self._last_activity = now
                    self._transmit(_frame({"t": "hb"}))

    def _transmit(self, frame: bytes) -> None:
        try:
            self._wire_send(frame)
        except OSError as exc:
            # Condition() wraps an RLock, so this is safe from the timer
            # thread, which already holds it.
            with self._cond:
                self._failed = f"socket send failed: {exc}"
                self._cond.notify_all()

    def _raise_if_failed(self) -> None:
        if self._failed:
            raise ReliableTransportError(self._failed)

    # -- public API -----------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Queue one message; blocks while the in-flight window is full."""
        with self._cond:
            self._raise_if_failed()
            if self._closing:
                raise ReliableTransportError("sender already closed")
            while len(self._unacked) >= self._window and not self._failed:
                self._cond.wait(timeout=self._timeout)
            self._raise_if_failed()
            seq = self._next_seq
            self._next_seq += 1
            payload = msg.to_json()
            frame = _frame({
                "t": "msg", "seq": seq,
                "crc": zlib.crc32(payload.encode("utf-8")),
                "payload": payload,
            })
            self._unacked[seq] = [frame, 0, self._deadline(0)]
            self._last_activity = time.monotonic()
            if _metrics.ENABLED:
                _C_FRAMES.inc()
                _G_INFLIGHT.set(len(self._unacked))
        self._transmit(frame)
        self._raise_if_failed()

    def close(self, timeout: float = 10.0) -> None:
        """Flush: wait for every frame to be acked, then exchange fin/finack.

        Raises :class:`ReliableTransportError` if the contract could not be
        met — the caller *knows* whether everything arrived.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            self._raise_if_failed()
            self._closing = True
            while self._unacked and not self._failed:
                if not self._cond.wait(timeout=deadline - time.monotonic()):
                    break
                if time.monotonic() > deadline:
                    break
            self._raise_if_failed()
            if self._unacked:
                raise ReliableTransportError(
                    f"{len(self._unacked)} frames still unacked at close"
                )
            count = self._next_seq
        fin = _frame({"t": "fin", "count": count})
        # fin itself rides the lossy wire: retry until finacked.  Once the
        # finack is in, the exchange has *succeeded* — the peer may close
        # its end immediately after finacking, so a socket error raced by
        # a retransmitted fin or a heartbeat must not fail the close.
        retries = 0
        while True:
            self._transmit(fin)
            with self._cond:
                self._cond.wait_for(
                    lambda: self._fin_acked or self._failed is not None,
                    timeout=self._timeout * (self._backoff ** retries))
                if self._fin_acked:
                    break
                self._raise_if_failed()
            retries += 1
            if retries > self._max_retries:
                raise ReliableTransportError("fin never acknowledged")
        with self._sock_lock:
            # The ack-reader's makefile keeps the underlying fd alive past
            # close(); shutdown pushes our FIN out now so the peer's
            # post-finack drain sees EOF immediately instead of timing out.
            try:
                self._sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "ReliableSender":
        return self

    def __exit__(self, *exc) -> None:
        if exc[0] is None:
            self.close()
        else:  # don't mask the original error with flush failures
            with self._sock_lock:
                self._sock.close()


class ReliableReceiver:
    """The observer side: reassemble an exactly-once, in-order stream.

    Accepts one sender, acks every valid frame, drops duplicates (re-acking
    them — the ack may have been the lost frame), ignores corrupt frames
    (no ack → sender retries), and buffers out-of-order arrivals until the
    gap fills.  ``on_message`` (when given) is called with each
    :class:`Message` as it becomes deliverable in seq order.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 accept_timeout: float = 30.0,
                 on_message: Optional[Callable[[Message], None]] = None):
        self._server = socket.create_server((host, port))
        self.host, self.port = self._server.getsockname()
        self._accept_timeout = accept_timeout
        self._on_message = on_message
        self._thread: Optional[threading.Thread] = None
        self._received: list[Message] = []
        self._decoder = FrameDecoder(send=lambda data: None,
                                     on_message=self._deliver)
        self.sender_never_connected = False

    # decoder state, re-exported under the receiver's historical names
    @property
    def duplicates(self) -> int:
        return self._decoder.duplicates

    @property
    def corrupt_frames(self) -> int:
        return self._decoder.corrupt_frames

    @property
    def heartbeats(self) -> int:
        return self._decoder.heartbeats

    @property
    def last_heartbeat(self) -> Optional[float]:
        return self._decoder.last_heartbeat

    @property
    def errors(self) -> list[str]:
        return self._decoder.errors

    @property
    def _expected_total(self) -> Optional[int]:
        return self._decoder.expected_total

    @property
    def _next_deliver(self) -> int:
        return self._decoder.delivered

    def _deliver(self, msg: Message) -> None:
        self._received.append(msg)
        if self._on_message is not None:
            self._on_message(msg)

    def start(self) -> None:
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        self._server.settimeout(self._accept_timeout)
        try:
            conn, _addr = self._server.accept()
        except (socket.timeout, OSError):
            self.sender_never_connected = True
            return
        conn.settimeout(self._accept_timeout)
        self._decoder._send = conn.sendall
        try:
            with conn, conn.makefile("r", encoding="utf-8") as f:
                for line in f:
                    frame = self._decoder.feed_line(line)
                    if frame is not None and frame.get("t") == "fin":
                        conn.sendall(_frame({"t": "finack"}))
                        if self._decoder.complete:
                            return
        except (socket.timeout, OSError) as exc:
            self._decoder.errors.append(f"receive loop ended: {exc!r}")

    def wait(self, timeout: float = 10.0) -> list[Message]:
        """Wait for the full stream (fin received and every seq delivered);
        returns messages in send order."""
        if self._thread is None:
            raise RuntimeError("start was not called")
        try:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise TimeoutError(
                    "reliable receiver incomplete: "
                    + (f"{self._next_deliver}/{self._expected_total} delivered"
                       if self._expected_total is not None
                       else f"{self._next_deliver} delivered, no fin seen")
                )
        finally:
            self.close()
        if self.sender_never_connected:
            raise ConnectionError(
                f"no sender connected to {self.host}:{self.port} within "
                f"{self._accept_timeout}s"
            )
        if self._expected_total is not None \
                and len(self._received) != self._expected_total:
            raise ReliableTransportError(
                f"stream ended with {len(self._received)} of "
                f"{self._expected_total} messages"
            )
        return list(self._received)

    def close(self) -> None:
        self._server.close()

    def __enter__(self) -> "ReliableReceiver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
