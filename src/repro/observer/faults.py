"""Deterministic fault injection for the observer pipeline.

The paper's channels (``observer.channel``) model *reordering* — the fault
the MVC encoding tolerates for free.  Real wires also lose, duplicate,
corrupt and delay messages, and senders crash mid-stream.
:class:`FaultyChannel` composes over any existing :class:`Channel` and
injects exactly those faults from a seeded RNG, while recording a
ground-truth :class:`FaultLog` so tests can check that the observer's
health report matches the injected plan *exactly* (no missed faults, no
false positives).

Messages are wrapped in :class:`~repro.core.events.Envelope` (send-time
sequence number + CRC-32), because loss and corruption are only
*detectable* downstream with that metadata: corruption tampering the
payload leaves the send-time checksum stale, and the per-thread indices in
the MVCs expose every dropped ``(thread, index)`` slot as a gap.

Fault fates are mutually exclusive per message (one roll of the RNG
decides), which keeps the ground-truth bookkeeping unambiguous:

========  ==============================================================
fate      effect
========  ==============================================================
drop      envelope never enters the inner channel
dup       envelope enters the inner channel twice
corrupt   payload tampered *after* the checksum was computed
delay     envelope held back for 1..``delay_max`` subsequent ``put``s
crash     sender dies: this and every later message is silently lost
========  ==============================================================
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Union

from ..core.events import Envelope, Message
from ..obs import metrics as _metrics
from .channel import Channel, FifoChannel

__all__ = ["FaultPlan", "FaultLog", "FaultyChannel", "CORRUPTION_SENTINEL"]

_C_DROPPED = _metrics.REGISTRY.counter(
    "faults.dropped", unit="messages",
    help="messages dropped by the fault injector")
_C_DUPLICATED = _metrics.REGISTRY.counter(
    "faults.duplicated", unit="messages",
    help="messages duplicated by the fault injector")
_C_CORRUPTED = _metrics.REGISTRY.counter(
    "faults.corrupted", unit="messages",
    help="messages payload-tampered by the fault injector")
_C_DELAYED = _metrics.REGISTRY.counter(
    "faults.delayed", unit="messages",
    help="messages held back by the fault injector")
_C_CRASH_LOST = _metrics.REGISTRY.counter(
    "faults.crash_lost", unit="messages",
    help="messages swallowed by an injected sender crash")

#: Marker value planted into a tampered payload (makes corruption visible to
#: a human reading a hexdump; the checksum, not this value, detects it).
CORRUPTION_SENTINEL = "☠corrupt"


@dataclass(frozen=True)
class FaultPlan:
    """Fault rates and knobs, all driven by one seeded RNG.

    Rates are probabilities in ``[0, 1]`` and must sum to at most 1 (fates
    are exclusive).  ``crash_after=k`` kills the sender after ``k``
    messages have been offered (the ``k+1``-th and later are lost).
    """

    drop: float = 0.0
    dup: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    delay_max: int = 3
    crash_after: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop", "dup", "corrupt", "delay"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate {rate} outside [0, 1]")
        if self.drop + self.dup + self.corrupt + self.delay > 1.0 + 1e-9:
            raise ValueError("fault rates must sum to at most 1")
        if self.delay_max < 1:
            raise ValueError("delay_max must be >= 1")
        if self.crash_after is not None and self.crash_after < 0:
            raise ValueError("crash_after must be >= 0")

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse a CLI-style spec: ``"drop=0.05,dup=0.02,corrupt=0.01"``.

        Recognized keys: drop, dup, corrupt, delay, delay_max, crash_after.
        """
        kwargs: dict = {"seed": seed}
        for part in filter(None, (p.strip() for p in text.split(","))):
            if "=" not in part:
                raise ValueError(f"bad fault spec {part!r} (expected key=value)")
            key, _, value = part.partition("=")
            key = key.strip()
            if key in ("drop", "dup", "corrupt", "delay"):
                kwargs[key] = float(value)
            elif key in ("delay_max", "crash_after"):
                kwargs[key] = int(value)
            else:
                raise ValueError(f"unknown fault kind {key!r}")
        return cls(**kwargs)


@dataclass
class FaultLog:
    """Ground truth of everything the channel did, keyed by the
    ``(thread, index)`` delivery slot of each victim (``index`` is the
    1-based per-thread relevant position ``clock[thread]``)."""

    dropped: list[tuple[int, int]] = field(default_factory=list)
    duplicated: list[tuple[int, int]] = field(default_factory=list)
    corrupted: list[tuple[int, int]] = field(default_factory=list)
    delayed: list[tuple[int, int]] = field(default_factory=list)
    #: Send index at which the sender crashed (None = no crash).
    crashed_at: Optional[int] = None
    lost_to_crash: list[tuple[int, int]] = field(default_factory=list)

    @property
    def lost_slots(self) -> set[tuple[int, int]]:
        """Every slot that never reaches the observer intact: dropped,
        corrupted (payload unusable), or swallowed by the crash."""
        return set(self.dropped) | set(self.corrupted) | set(self.lost_to_crash)

    @property
    def total_faults(self) -> int:
        return (len(self.dropped) + len(self.duplicated) + len(self.corrupted)
                + len(self.delayed) + len(self.lost_to_crash))

    def summary(self) -> str:
        parts = [f"dropped={len(self.dropped)}",
                 f"duplicated={len(self.duplicated)}",
                 f"corrupted={len(self.corrupted)}",
                 f"delayed={len(self.delayed)}"]
        if self.crashed_at is not None:
            parts.append(f"crashed_at={self.crashed_at} "
                         f"(+{len(self.lost_to_crash)} lost)")
        return ", ".join(parts)


class FaultyChannel(Channel):
    """A :class:`Channel` decorator that injects faults on ``put``.

    Wraps each message in an :class:`Envelope` before the fault roll, so
    what travels the inner channel carries seq + checksum; :meth:`drain`
    therefore yields **envelopes**, and the consumer must verify
    :attr:`Envelope.ok` before unwrapping (``Observer`` in fault-tolerant
    mode does).

    The inner channel is any existing delivery-order model — FIFO,
    reordering, multi-channel — so loss composes with reordering.
    """

    def __init__(self, plan: FaultPlan, inner: Optional[Channel] = None):
        self.plan = plan
        self.inner = inner if inner is not None else FifoChannel()
        self.log = FaultLog()
        self._rng = random.Random(plan.seed)
        self._seq = 0
        self._put_count = 0
        self._crashed = False
        # (release_at_put_count, tiebreak, envelope) min-heap of delayed sends
        self._delayed: list[tuple[int, int, Envelope]] = []
        self._tiebreak = 0
        self._closed = False

    # -- fault fates -----------------------------------------------------------

    def _corrupt(self, env: Envelope) -> Envelope:
        """Tamper the payload *without* refreshing the checksum."""
        event = env.message.event
        bad_event = replace(event, value=CORRUPTION_SENTINEL)
        bad_msg = replace(env.message, event=bad_event)
        return Envelope(message=bad_msg, seq=env.seq, checksum=env.checksum)

    def put(self, msg: Message) -> None:
        """Offer one message to the wire; the seeded RNG decides its fate."""
        if self._closed:
            raise RuntimeError("channel closed")
        slot = msg.delivery_index
        if self._crashed:
            self.log.lost_to_crash.append(slot)
            if _metrics.ENABLED:
                _C_CRASH_LOST.inc()
            return
        if (self.plan.crash_after is not None
                and self._put_count >= self.plan.crash_after):
            self._crashed = True
            self.log.crashed_at = self._put_count
            self.log.lost_to_crash.append(slot)
            # a crashed sender also never flushes its delayed sends
            self.log.lost_to_crash.extend(
                env.message.delivery_index for _, _, env in self._delayed)
            for _, _, env in self._delayed:
                self.log.delayed.remove(env.message.delivery_index)
            if _metrics.ENABLED:
                # delayed→crashed messages stay counted in faults.delayed
                # (counters are monotonic); the log moves them instead
                _C_CRASH_LOST.inc(1 + len(self._delayed))
            self._delayed.clear()
            return
        self._put_count += 1
        env = Envelope.wrap(msg, self._seq)
        self._seq += 1

        u = self._rng.random()
        p = self.plan
        if u < p.drop:
            self.log.dropped.append(slot)
            if _metrics.ENABLED:
                _C_DROPPED.inc()
        elif u < p.drop + p.dup:
            self.log.duplicated.append(slot)
            if _metrics.ENABLED:
                _C_DUPLICATED.inc()
            self.inner.put(env)
            self.inner.put(env)
        elif u < p.drop + p.dup + p.corrupt:
            self.log.corrupted.append(slot)
            if _metrics.ENABLED:
                _C_CORRUPTED.inc()
            self.inner.put(self._corrupt(env))
        elif u < p.drop + p.dup + p.corrupt + p.delay:
            self.log.delayed.append(slot)
            if _metrics.ENABLED:
                _C_DELAYED.inc()
            release_at = self._put_count + self._rng.randint(1, p.delay_max)
            heapq.heappush(self._delayed,
                           (release_at, self._tiebreak, env))
            self._tiebreak += 1
        else:
            self.inner.put(env)
        self._release_due()

    def _release_due(self, flush_all: bool = False) -> None:
        while self._delayed and (flush_all
                                 or self._delayed[0][0] <= self._put_count):
            _, _, env = heapq.heappop(self._delayed)
            self.inner.put(env)

    def close(self) -> None:
        """Close: un-crashed senders flush their delayed sends first."""
        if not self._crashed:
            self._release_due(flush_all=True)
        self._closed = True
        self.inner.close()

    def drain(self) -> Iterator[Union[Envelope, Message]]:
        """Yield whatever survived the faults, in the inner channel's order."""
        return self.inner.drain()

    @property
    def crashed(self) -> bool:
        """Did the injected ``crash_after`` fire on this channel?"""
        return self._crashed
