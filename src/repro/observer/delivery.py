"""Causal-order delivery: linearize an out-of-order message stream.

The lattice builder consumes messages in any order, but some consumers — a
log, a downstream flat-trace tool, a human — want a single stream that
respects the causal order ``⊳``.  :class:`CausalDelivery` is the classic
vector-clock delivery buffer adapted to MVCs: a message ``⟨e, i, V⟩`` is
deliverable once, for every thread ``j``, the first ``V[j]`` relevant
messages of ``j`` (``V[i] - 1`` for the sender itself) have been delivered.
Because each relevant event ticks its own component, ``V[j]`` *is* the
number of thread-``j`` messages in ``e``'s causal past (requirement (a)),
so the test is two integers per thread — no graph needed.

Output is always a linear extension of ``⊳`` (property-tested under
arbitrary arrival permutations); ties are broken by arrival order, so FIFO
input passes through unchanged.

Fault model (see ``observer.faults``): real channels also *lose*,
*duplicate* and *corrupt* messages.  The buffer therefore

* suppresses duplicate event ids (counted in :attr:`duplicates_dropped`)
  instead of treating them as caller bugs — duplication is a normal
  transport fault;
* exposes the exact missing ``(thread, index)`` slots blocking progress
  (:meth:`gaps`, :meth:`missing_for`) — per-thread sequencing from the
  clocks makes gap detection precise, not heuristic;
* lets the observer :meth:`declare_lost` a gap after a stall, which
  *quarantines the causal cone* of the lost slot: every buffered or
  future message whose clock shows the lost message in its causal past can
  never be delivered soundly and is diverted to :attr:`quarantined`.
  Messages concurrent with the loss keep flowing — graceful degradation
  instead of a permanent stall.

Held-back messages are indexed by the single ``(thread, index)`` slot they
are currently waiting on, so a release does O(woken) work rather than
rescanning the whole buffer (the buffer can hold thousands of messages
behind one gap under heavy loss).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Optional

from ..core.events import Message
from ..obs import metrics as _metrics

__all__ = ["CausalDelivery"]

_C_OFFERED = _metrics.REGISTRY.counter(
    "delivery.offered", unit="messages",
    help="messages offered to the causal-delivery buffer")
_C_RELEASED = _metrics.REGISTRY.counter(
    "delivery.released", unit="messages",
    help="messages released in causal order")
_C_DUPLICATES = _metrics.REGISTRY.counter(
    "delivery.duplicates", unit="messages",
    help="duplicate offers suppressed (transport-level fault)")
_C_QUARANTINED = _metrics.REGISTRY.counter(
    "delivery.quarantined", unit="messages",
    help="messages diverted because a lost slot is in their causal past")
_C_LATE = _metrics.REGISTRY.counter(
    "delivery.late_arrivals", unit="messages",
    help="messages that arrived after their slot was declared lost")
_C_LOSSES = _metrics.REGISTRY.counter(
    "delivery.losses_declared", unit="slots",
    help="(thread, index) delivery slots declared lost")
_G_PENDING = _metrics.REGISTRY.gauge(
    "delivery.pending", unit="messages",
    help="buffer depth: messages parked behind a gap (max = high-water mark)")
_H_CASCADE = _metrics.REGISTRY.histogram(
    "delivery.release_cascade", unit="messages",
    help="messages released per releasing offer (cascade length)")
_H_BATCH = _metrics.REGISTRY.histogram(
    "delivery.batch_size", unit="messages",
    help="messages ingested per offer_batch call (end-to-end batching)")


class CausalDelivery:
    """Buffer that releases messages in causal order.

    >>> d = CausalDelivery(n_threads=2)
    >>> out = []
    >>> for msg in scrambled:          # any arrival order
    ...     out.extend(d.offer(msg))
    >>> d.pending                      # in-flight gaps still held
    0
    """

    def __init__(self, n_threads: int):
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        self._n = n_threads
        #: Number of messages already delivered per thread.
        self._delivered = [0] * n_threads
        #: Held-back messages, indexed by the one missing ``(thread, index)``
        #: slot each is currently blocked on.  Keys are always the *next*
        #: undelivered index of their thread, so there are at most
        #: ``n_threads`` live buckets; bucket order is arrival order.
        self._waiting: dict[tuple[int, int], list[Message]] = {}
        self._seen: set[tuple[int, int]] = set()
        #: Delivery slots ``(thread, clock[thread])`` that have *arrived*
        #: (delivered, parked or quarantined) — distinguishes a slot that is
        #: merely blocked from one that never showed up at all.
        self._seen_slots: set[tuple[int, int]] = set()
        #: ``(thread, index)`` slots declared lost (never deliverable).
        self._lost: set[tuple[int, int]] = set()
        #: Messages causally after a lost slot — undeliverable, diverted.
        self.quarantined: list[Message] = []
        #: Duplicate offers suppressed (transport-level fault, not an error).
        self.duplicates_dropped = 0
        #: Messages that arrived *after* their slot was declared lost.
        self.late_arrivals = 0

    @property
    def pending(self) -> int:
        """Messages buffered but not yet deliverable (excludes quarantine)."""
        return sum(len(b) for b in self._waiting.values())

    @property
    def delivered_counts(self) -> tuple[int, ...]:
        return tuple(self._delivered)

    @property
    def losses(self) -> tuple[tuple[int, int], ...]:
        """Slots declared lost, sorted."""
        return tuple(sorted(self._lost))

    # -- deliverability -------------------------------------------------------

    def _deliverable(self, msg: Message) -> bool:
        clock = msg.clock.components
        sender = msg.thread
        for j in range(self._n):
            need = clock[j] - 1 if j == sender else clock[j]
            if self._delivered[j] < need:
                return False
        # in-order within the sender's own stream
        return clock[sender] == self._delivered[sender] + 1

    def _first_blocker(self, msg: Message) -> Optional[tuple[int, int]]:
        """The next missing ``(thread, index)`` slot ``msg`` waits on, or
        ``None`` when deliverable now."""
        clock = msg.clock.components
        sender = msg.thread
        for j in range(self._n):
            need = clock[j] - 1 if j == sender else clock[j]
            if self._delivered[j] < need:
                return (j, self._delivered[j] + 1)
        if clock[sender] != self._delivered[sender] + 1:
            return (sender, self._delivered[sender] + 1)
        return None

    def _in_lost_cone(self, msg: Message) -> bool:
        """Is a lost slot in ``msg``'s causal past (or ``msg`` itself lost)?

        A lost ``(j, k)`` taints exactly the messages with ``clock[j] >= k``:
        by Theorem 3 causal ancestry is pointwise clock dominance, so the
        test covers the whole cone — including transitive dependents —
        without any graph walk.
        """
        for (j, k) in self._lost:
            if msg.clock[j] >= k:
                return True
        return False

    # -- ingestion ------------------------------------------------------------

    def _offer_core(self, msg: Message, released: list[Message]) -> object:
        """Metrics-free ingestion shared by :meth:`offer` and
        :meth:`offer_batch`.  Appends any releases to ``released`` and
        returns what happened: ``"dup"``, ``"late"`` (lost slot, counted
        as quarantined too), ``"quar"``, ``"parked"``, or the int number
        of messages this offer released."""
        if msg.clock.width != self._n:
            raise ValueError(
                f"clock width {msg.clock.width} != delivery width {self._n}"
            )
        eid = msg.event.eid
        if eid in self._seen:
            self.duplicates_dropped += 1
            return "dup"
        self._seen.add(eid)
        self._seen_slots.add(msg.delivery_index)
        if self._in_lost_cone(msg):
            self.quarantined.append(msg)
            if msg.delivery_index in self._lost:
                self.late_arrivals += 1
                return "late"
            return "quar"
        blocker = self._first_blocker(msg)
        if blocker is not None:
            self._waiting.setdefault(blocker, []).append(msg)
            return "parked"
        before = len(released)
        self._deliver(msg, released)
        return len(released) - before

    def offer(self, msg: Message) -> list[Message]:
        """Ingest one message; return everything that became deliverable,
        in causal order.  Duplicates are suppressed (counted), messages in
        a lost slot's causal cone are quarantined."""
        released: list[Message] = []
        outcome = self._offer_core(msg, released)
        if _metrics.ENABLED:
            _C_OFFERED.inc()
            if outcome == "dup":
                _C_DUPLICATES.inc()
            elif outcome == "late":
                _C_LATE.inc()
                _C_QUARANTINED.inc()
            elif outcome == "quar":
                _C_QUARANTINED.inc()
            elif outcome == "parked":
                _G_PENDING.set(self.pending)
            else:
                _C_RELEASED.inc(len(released))
                _H_CASCADE.observe(len(released))
                _G_PENDING.set(self.pending)
        return released

    def offer_batch(self, msgs: Iterable[Message]) -> list[Message]:
        """Ingest a batch; return everything that became deliverable, in
        causal order.

        Semantically identical to ``[*chain(map(self.offer, msgs))]`` —
        same releases, same order, same counter totals — but the
        per-message instrument updates are coalesced into one pass, which
        is where the observer's per-event Python overhead went after the
        clock work got cheap (see ``docs/PERFORMANCE.md``).  Batch sizes
        land in the ``delivery.batch_size`` histogram.
        """
        released: list[Message] = []
        n = dup = late = quar = 0
        for msg in msgs:
            outcome = self._offer_core(msg, released)
            n += 1
            if outcome == "dup":
                dup += 1
            elif outcome == "late":
                late += 1
                quar += 1
            elif outcome == "quar":
                quar += 1
            elif outcome != "parked" and _metrics.ENABLED and outcome:
                _H_CASCADE.observe(outcome)
        if _metrics.ENABLED:
            _C_OFFERED.inc(n)
            _H_BATCH.observe(n)
            if dup:
                _C_DUPLICATES.inc(dup)
            if late:
                _C_LATE.inc(late)
            if quar:
                _C_QUARANTINED.inc(quar)
            if released:
                _C_RELEASED.inc(len(released))
            _G_PENDING.set(self.pending)
        return released

    def _deliver(self, msg: Message, released: list[Message]) -> None:
        """Deliver ``msg`` and cascade through waiters it unblocks.

        Iterative worklist: delivering slot ``(t, k)`` wakes exactly the
        bucket keyed ``(t, k)``; each woken message is re-examined once and
        either delivered (possibly waking further buckets) or re-parked on
        its next missing slot.  Total work is O(releases × n_threads)."""
        ready = deque([msg])
        while ready:
            m = ready.popleft()
            self._delivered[m.thread] += 1
            released.append(m)
            woken = self._waiting.pop((m.thread, self._delivered[m.thread]), [])
            for w in woken:
                blocker = self._first_blocker(w)
                if blocker is None:
                    ready.append(w)
                else:
                    self._waiting.setdefault(blocker, []).append(w)

    def offer_many(self, msgs: Iterable[Message]) -> Iterator[Message]:
        for m in msgs:
            yield from self.offer(m)

    # -- gap detection and loss declaration -----------------------------------

    def gaps(self) -> list[tuple[int, int]]:
        """The missing ``(thread, index)`` slots currently blocking buffered
        messages, sorted.  Empty when nothing is held back."""
        return sorted(self._waiting)

    def arrived(self, slot: tuple[int, int]) -> bool:
        """Has the message for this delivery slot ever shown up?"""
        return slot in self._seen_slots

    def declare_lost(self, slots: Iterable[tuple[int, int]]) -> list[Message]:
        """Declare ``(thread, index)`` slots lost and quarantine their causal
        cones.  Returns the messages newly quarantined.

        A loss never *satisfies* a dependency, so no buffered message can
        become deliverable here; survivors concurrent with every lost slot
        simply stay parked on their existing gap.
        """
        newly = [s for s in slots if s not in self._lost]
        for (j, k) in newly:
            if k <= self._delivered[j]:
                raise ValueError(
                    f"slot ({j}, {k}) was already delivered; cannot be lost"
                )
            self._lost.add((j, k))
        if _metrics.ENABLED:
            _C_LOSSES.inc(len(newly))
        if not newly:
            return []
        evicted: list[Message] = []
        for key in list(self._waiting):
            bucket = self._waiting[key]
            keep = []
            for m in bucket:
                (evicted if self._in_lost_cone(m) else keep).append(m)
            if keep:
                self._waiting[key] = keep
            else:
                del self._waiting[key]
        self.quarantined.extend(evicted)
        if _metrics.ENABLED:
            _C_QUARANTINED.inc(len(evicted))
            _G_PENDING.set(self.pending)
        return evicted

    def missing_for(self, msg: Message) -> Optional[list[tuple[int, int]]]:
        """Diagnostic: which (thread, index) messages block ``msg``?
        ``None`` if it is deliverable now."""
        if self._deliverable(msg):
            return None
        out: list[tuple[int, int]] = []
        clock = msg.clock.components
        for j in range(self._n):
            need = clock[j] - 1 if j == msg.thread else clock[j]
            for k in range(self._delivered[j] + 1, need + 1):
                out.append((j, k))
        return out
