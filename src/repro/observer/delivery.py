"""Causal-order delivery: linearize an out-of-order message stream.

The lattice builder consumes messages in any order, but some consumers — a
log, a downstream flat-trace tool, a human — want a single stream that
respects the causal order ``⊳``.  :class:`CausalDelivery` is the classic
vector-clock delivery buffer adapted to MVCs: a message ``⟨e, i, V⟩`` is
deliverable once, for every thread ``j``, the first ``V[j]`` relevant
messages of ``j`` (``V[i] - 1`` for the sender itself) have been delivered.
Because each relevant event ticks its own component, ``V[j]`` *is* the
number of thread-``j`` messages in ``e``'s causal past (requirement (a)),
so the test is two integers per thread — no graph needed.

Output is always a linear extension of ``⊳`` (property-tested under
arbitrary arrival permutations); ties are broken by arrival order, so FIFO
input passes through unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..core.events import Message

__all__ = ["CausalDelivery"]


class CausalDelivery:
    """Buffer that releases messages in causal order.

    >>> d = CausalDelivery(n_threads=2)
    >>> out = []
    >>> for msg in scrambled:          # any arrival order
    ...     out.extend(d.offer(msg))
    >>> d.pending                      # in-flight gaps still held
    0
    """

    def __init__(self, n_threads: int):
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        self._n = n_threads
        #: Number of messages already delivered per thread.
        self._delivered = [0] * n_threads
        #: Held-back messages in arrival order.
        self._buffer: list[Message] = []
        self._seen: set[tuple[int, int]] = set()

    @property
    def pending(self) -> int:
        """Messages buffered but not yet deliverable."""
        return len(self._buffer)

    @property
    def delivered_counts(self) -> tuple[int, ...]:
        return tuple(self._delivered)

    def _deliverable(self, msg: Message) -> bool:
        clock = msg.clock.components
        sender = msg.thread
        for j in range(self._n):
            need = clock[j] - 1 if j == sender else clock[j]
            if self._delivered[j] < need:
                return False
        # in-order within the sender's own stream
        return clock[sender] == self._delivered[sender] + 1

    def offer(self, msg: Message) -> list[Message]:
        """Ingest one message; return everything that became deliverable,
        in causal order."""
        if msg.clock.width != self._n:
            raise ValueError(
                f"clock width {msg.clock.width} != delivery width {self._n}"
            )
        eid = msg.event.eid
        if eid in self._seen:
            raise ValueError(f"duplicate message for event {eid}")
        self._seen.add(eid)
        self._buffer.append(msg)
        released: list[Message] = []
        progress = True
        while progress:
            progress = False
            for i, held in enumerate(self._buffer):
                if self._deliverable(held):
                    self._buffer.pop(i)
                    self._delivered[held.thread] += 1
                    released.append(held)
                    progress = True
                    break
        return released

    def offer_many(self, msgs: Iterable[Message]) -> Iterator[Message]:
        for m in msgs:
            yield from self.offer(m)

    def missing_for(self, msg: Message) -> Optional[list[tuple[int, int]]]:
        """Diagnostic: which (thread, index) messages block ``msg``?
        ``None`` if it is deliverable now."""
        if self._deliverable(msg):
            return None
        out: list[tuple[int, int]] = []
        clock = msg.clock.components
        for j in range(self._n):
            need = clock[j] - 1 if j == msg.thread else clock[j]
            for k in range(self._delivered[j] + 1, need + 1):
                out.append((j, k))
        return out
